"""Legacy setup shim.

The environment ships setuptools 65.5 without the ``wheel`` package, so
PEP 660 editable installs (``pip install -e .``) cannot build an editable
wheel.  This shim lets ``python setup.py develop`` (and pip's legacy
editable path) work offline.
"""

from setuptools import setup

setup()
