"""Tests for copy-engine timing models and the DMA device."""

import pytest

from repro.hw import CacheModel, CopyTimingModel, DMAEngine, MachineParams, cpu_copy
from repro.hw.dma import DMASubtask, is_contiguous
from repro.mem import PAGE_SIZE, AddressSpace, PhysicalMemory
from repro.sim import Environment, WaitEvent


@pytest.fixture
def params():
    return MachineParams()


@pytest.fixture
def model(params):
    return CopyTimingModel(params)


class TestTimingModel:
    def test_avx_faster_than_erms_everywhere(self, model):
        for size in (256, 1024, 4096, 65536, 1 << 20):
            assert model.cpu_throughput(size, "avx") > model.cpu_throughput(size, "erms")

    def test_dma_slower_than_avx_for_small(self, model):
        assert model.dma_throughput(1024) < model.cpu_throughput(1024, "avx")

    def test_dma_beats_erms_at_4kb_scale(self, model):
        """Fig. 7-a: DMA 'excels at large copies (≥4KB)'."""
        crossover = model.crossover_size()
        assert crossover is not None
        assert 2048 <= crossover <= 16384

    def test_warm_buffers_improve_cpu_throughput(self, model):
        assert model.cpu_throughput(4096, "avx", warm=True) > model.cpu_throughput(
            4096, "avx"
        )

    def test_atcache_improves_dma_throughput(self, model):
        cold = model.dma_throughput(16384, pages_to_translate=8, atcache_hit_rate=0.0)
        hot = model.dma_throughput(16384, pages_to_translate=8, atcache_hit_rate=0.75)
        assert hot > cold

    def test_throughput_monotone_in_size(self, model):
        """Fixed costs amortize: throughput grows with copy size."""
        sizes = [256, 1024, 4096, 16384, 65536]
        for engine in ("avx", "erms"):
            tps = [model.cpu_throughput(s, engine) for s in sizes]
            assert tps == sorted(tps)
        dma = [model.dma_throughput(s) for s in sizes]
        assert dma == sorted(dma)

    def test_unknown_engine_rejected(self, params):
        with pytest.raises(ValueError):
            params.cpu_copy_cycles(100, engine="quantum")


class TestCpuCopy:
    def test_moves_bytes_and_charges_cycles(self, params):
        env = Environment(n_cores=1)
        phys = PhysicalMemory(64)
        aspace = AddressSpace(phys)
        src = aspace.mmap(PAGE_SIZE, populate=True)
        dst = aspace.mmap(PAGE_SIZE, populate=True)
        aspace.write(src, b"abc123" * 10)

        def proc():
            yield from cpu_copy(params, aspace, src, aspace, dst, 60)

        env.spawn(proc())
        env.run()
        assert aspace.read(dst, 60) == b"abc123" * 10
        assert env.now == params.cpu_copy_cycles(60, engine="avx")

    def test_cross_address_space_copy(self, params):
        env = Environment(n_cores=1)
        phys = PhysicalMemory(64)
        a = AddressSpace(phys)
        b = AddressSpace(phys)
        src = a.mmap(PAGE_SIZE, populate=True)
        dst = b.mmap(PAGE_SIZE, populate=True)
        a.write(src, b"cross-as")

        def proc():
            yield from cpu_copy(params, a, src, b, dst, 8, engine="erms")

        env.spawn(proc())
        env.run()
        assert b.read(dst, 8) == b"cross-as"

    def test_zero_length_copy_free(self, params):
        env = Environment(n_cores=1)
        phys = PhysicalMemory(8)
        aspace = AddressSpace(phys)
        src = aspace.mmap(PAGE_SIZE)
        dst = aspace.mmap(PAGE_SIZE)

        def proc():
            yield from cpu_copy(params, aspace, src, aspace, dst, 0)

        env.spawn(proc())
        env.run()
        assert env.now == 0


class TestDMA:
    def _setup(self, contiguous=True):
        env = Environment(n_cores=2)
        params = MachineParams()
        phys = PhysicalMemory(256, fragmented=not contiguous)
        aspace = AddressSpace(phys)
        dma = DMAEngine(env, params)
        return env, params, phys, aspace, dma

    def test_transfer_moves_bytes_off_cpu(self):
        env, params, phys, aspace, dma = self._setup()
        src = aspace.mmap(PAGE_SIZE * 2, populate=True, contiguous=True)
        dst = aspace.mmap(PAGE_SIZE * 2, populate=True, contiguous=True)
        payload = bytes(range(256)) * 32
        aspace.write(src, payload)

        def proc():
            done = dma.submit([DMASubtask(aspace, src, aspace, dst, len(payload))])
            yield WaitEvent(done)

        env.spawn(proc())
        env.run()
        assert aspace.read(dst, len(payload)) == payload
        # No CPU core consumed cycles for the transfer itself.
        assert all(core.busy_cycles == 0 for core in env.cores.cores)
        assert dma.busy_cycles == params.dma_transfer_cycles(len(payload))

    def test_noncontiguous_source_rejected(self):
        env, params, phys, aspace, dma = self._setup(contiguous=False)
        src = aspace.mmap(PAGE_SIZE * 4, populate=True)
        dst = aspace.mmap(PAGE_SIZE * 4, populate=True, contiguous=True)
        assert not is_contiguous(aspace, src, PAGE_SIZE * 4)

        def proc():
            done = dma.submit([DMASubtask(aspace, src, aspace, dst, PAGE_SIZE * 4)])
            yield WaitEvent(done)

        env.spawn(proc())
        with pytest.raises(RuntimeError, match="contiguous"):
            env.run()

    def test_batches_execute_fifo(self):
        env, params, phys, aspace, dma = self._setup()
        bufs = [aspace.mmap(PAGE_SIZE, populate=True) for _ in range(4)]
        aspace.write(bufs[0], b"A" * 100)
        aspace.write(bufs[2], b"B" * 100)
        completion_order = []

        def proc():
            d1 = dma.submit(
                [DMASubtask(aspace, bufs[0], aspace, bufs[1], 100,
                            on_done=lambda s: completion_order.append("first"))]
            )
            d2 = dma.submit(
                [DMASubtask(aspace, bufs[2], aspace, bufs[3], 100,
                            on_done=lambda s: completion_order.append("second"))]
            )
            yield WaitEvent(d2)
            assert d1.triggered

        env.spawn(proc())
        env.run()
        assert completion_order == ["first", "second"]

    def test_per_subtask_callback_fires_in_order(self):
        env, params, phys, aspace, dma = self._setup()
        src = aspace.mmap(PAGE_SIZE * 2, populate=True, contiguous=True)
        dst = aspace.mmap(PAGE_SIZE * 2, populate=True, contiguous=True)
        sizes = []

        def proc():
            done = dma.submit([
                DMASubtask(aspace, src, aspace, dst, 1000,
                           on_done=lambda s: sizes.append(s.nbytes)),
                DMASubtask(aspace, src + 1000, aspace, dst + 1000, 2000,
                           on_done=lambda s: sizes.append(s.nbytes)),
            ])
            yield WaitEvent(done)

        env.spawn(proc())
        env.run()
        assert sizes == [1000, 2000]


class TestCacheModel:
    def test_pollution_raises_cpi(self, params):
        cache = CacheModel(params)
        assert cache.cpi_factor("p") == 1.0
        cache.pollute("p", params.l1l2_bytes)
        assert cache.cpi_factor("p") == pytest.approx(1.0 + params.pollution_cpi_penalty)

    def test_pollution_saturates_at_one(self, params):
        cache = CacheModel(params)
        cache.pollute("p", params.l1l2_bytes * 100)
        assert cache.pollution("p") == 1.0

    def test_charge_inflates_and_decays(self, params):
        cache = CacheModel(params)
        cache.pollute("p", params.l1l2_bytes)
        inflated = cache.charge("p", 10_000)
        assert inflated > 10_000
        # Enough compute fully re-warms the cache.
        cache.charge("p", params.pollution_decay_bytes * 2)
        assert cache.pollution("p") == 0.0
        assert cache.charge("p", 10_000) == 10_000

    def test_keys_are_independent(self, params):
        cache = CacheModel(params)
        cache.pollute("app", 1 << 20)
        assert cache.cpi_factor("copier") == 1.0
