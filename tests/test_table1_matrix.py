"""Table 1: the capability matrix, checked against our implementations.

Each row of the paper's comparison is an executable property here: the
claimed capability (or limitation) of every system we implement must be
observable in its behaviour.
"""

import pytest

from repro.kernel import System
from repro.mem.phys import PAGE_SIZE


class TestCopierRow:
    """Copier: no alignment req., cross-privilege, cross-address-space,
    SIMD+DMA, non-blocking, absorbs copies."""

    def test_no_alignment_requirement(self):
        system = System(n_cores=3, copier=True, phys_frames=8192)
        proc = system.create_process("p")
        buf = proc.mmap(PAGE_SIZE * 2, populate=True)
        proc.write(buf + 7, b"unaligned")

        def gen():
            yield from proc.client.amemcpy(buf + 4099, buf + 7, 9)
            yield from proc.client.csync(buf + 4099, 9)
            return proc.read(buf + 4099, 9)

        p = proc.spawn(gen(), affinity=0)
        system.env.run_until(p.terminated, limit=10_000_000_000)
        assert p.result == b"unaligned"

    def test_cross_privilege_and_address_space(self):
        from repro.copier.task import Region

        system = System(n_cores=3, copier=True, phys_frames=8192)
        proc = system.create_process("p")
        kbuf = system.alloc_kernel_buffer(4096)
        system.kernel_as.write(kbuf, b"kernel-data")
        ubuf = proc.mmap(4096, populate=True)

        def gen():
            yield from proc.client.k_amemcpy(
                Region(system.kernel_as, kbuf, 11),
                Region(proc.aspace, ubuf, 11))
            yield from proc.client.csync(ubuf, 11)
            return proc.read(ubuf, 11)

        p = proc.spawn(gen(), affinity=0)
        system.env.run_until(p.terminated, limit=10_000_000_000)
        assert p.result == b"kernel-data"

    def test_non_blocking_submission(self):
        system = System(n_cores=3, copier=True, phys_frames=65536)
        proc = system.create_process("p")
        n = 256 * 1024
        src = proc.mmap(n, populate=True)
        dst = proc.mmap(n, populate=True)

        def gen():
            t0 = system.env.now
            yield from proc.client.amemcpy(dst, src, n)
            return system.env.now - t0

        p = proc.spawn(gen(), affinity=0)
        system.env.run_until(p.terminated, limit=10_000_000_000)
        # Submission cost is O(1), not O(n): far below the copy time.
        assert p.result < system.params.cpu_copy_cycles(n, "avx") / 50

    def test_multiple_replicas_supported(self):
        """Unlike remap-based zero-copy, async copy makes real replicas."""
        system = System(n_cores=3, copier=True, phys_frames=8192)
        proc = system.create_process("p")
        src = proc.mmap(4096, populate=True)
        d1 = proc.mmap(4096, populate=True)
        d2 = proc.mmap(4096, populate=True)
        proc.write(src, b"replica")

        def gen():
            yield from proc.client.amemcpy(d1, src, 7)
            yield from proc.client.amemcpy(d2, src, 7)
            yield from proc.client.csync_all()
            proc.write(d1, b"mutated")
            return proc.read(d2, 7)

        p = proc.spawn(gen(), affinity=0)
        system.env.run_until(p.terminated, limit=10_000_000_000)
        assert p.result == b"replica"  # independent replicas


class TestZeroCopySocketRow:
    """MSG_ZEROCOPY: page-aligned only, blocking-free but with ownership
    management (completion reaping)."""

    def test_requires_alignment(self):
        from repro.kernel.net import send, socket_pair

        system = System(n_cores=2, copier=False, phys_frames=8192)
        a, _b = socket_pair(system)
        proc = system.create_process("p")
        buf = proc.mmap(PAGE_SIZE * 4, populate=True)

        def gen():
            yield from send(system, proc, a, buf + 13, 4096,
                            mode="zerocopy")

        p = proc.spawn(gen(), affinity=0)
        with pytest.raises(ValueError, match="aligned"):
            system.env.run_until(p.terminated, limit=10_000_000_000)


class TestZIORow:
    """zIO: user-mode only, partial alignment, absorbs copies, cannot
    optimize inter-boundary copies."""

    def test_absorbs_untouched_copies(self):
        from repro.baselines.zio import ZIO

        system = System(n_cores=2, copier=False, phys_frames=16384)
        proc = system.create_process("p")
        zio = ZIO(system, proc)
        n = 16 * 1024
        a = proc.mmap(n, populate=True)
        b = proc.mmap(n, populate=True)

        def gen():
            yield from zio.copy(b, a, n)

        p = proc.spawn(gen(), affinity=0)
        system.env.run_until(p.terminated, limit=10_000_000_000)
        assert zio.stats["indirect"] == 1  # never materialized

    def test_small_copies_fall_through(self):
        from repro.baselines.zio import ZIO

        system = System(n_cores=2, copier=False, phys_frames=8192)
        proc = system.create_process("p")
        zio = ZIO(system, proc)
        a = proc.mmap(4096, populate=True)
        b = proc.mmap(4096, populate=True)

        def gen():
            yield from zio.copy(b, a, 1024)  # below the 4KB threshold

        p = proc.spawn(gen(), affinity=0)
        system.env.run_until(p.terminated, limit=10_000_000_000)
        assert zio.stats["sync"] == 1


class TestKernelMemcpyRow:
    """K-mode memcpy: ERMS (no SIMD state cost), blocking."""

    def test_kernel_uses_erms_not_avx(self):
        # The kernel rate is the ERMS rate — SIMD state saves are the
        # reason (modeled by MachineParams.simd_state_cycles).
        params = System(n_cores=1, copier=False).params
        kernel = params.cpu_copy_cycles(65536, engine="erms")
        user = params.cpu_copy_cycles(65536, engine="avx")
        assert kernel > user
        assert params.simd_state_cycles > 10 * params.erms_startup_cycles
