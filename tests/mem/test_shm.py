"""SharedSegment edge cases."""

import pytest

from repro.mem import PAGE_SIZE, AddressSpace, PhysicalMemory, SharedSegment


@pytest.fixture
def phys():
    return PhysicalMemory(128)


def test_read_write_cross_page(phys):
    seg = SharedSegment(phys, PAGE_SIZE * 3)
    data = bytes(range(200)) * 30
    seg.write(PAGE_SIZE - 100, data)
    assert seg.read(PAGE_SIZE - 100, len(data)) == data


def test_write_beyond_segment_rejected(phys):
    seg = SharedSegment(phys, PAGE_SIZE)
    with pytest.raises(ValueError):
        seg.write(PAGE_SIZE - 2, b"abc")
    with pytest.raises(ValueError):
        seg.read(PAGE_SIZE - 1, 2)


def test_release_frees_frames(phys):
    seg = SharedSegment(phys, PAGE_SIZE * 2)
    assert phys.frames_in_use == 2
    seg.release()
    assert phys.frames_in_use == 0


def test_release_with_live_mapping_keeps_frames(phys):
    seg = SharedSegment(phys, PAGE_SIZE)
    aspace = AddressSpace(phys)
    va = aspace.mmap(PAGE_SIZE, shared_segment=seg)
    aspace.write(va, b"held")
    seg.release()
    # The attached mapping still holds a reference: data survives.
    assert aspace.read(va, 4) == b"held"


def test_contiguous_segment_frames_adjacent(phys):
    seg = SharedSegment(phys, PAGE_SIZE * 4, contiguous=True)
    assert seg.frames == list(range(seg.frames[0], seg.frames[0] + 4))


def test_two_mappings_same_offsets(phys):
    seg = SharedSegment(phys, PAGE_SIZE * 2)
    a = AddressSpace(phys)
    b = AddressSpace(phys)
    va = a.mmap(PAGE_SIZE * 2, shared_segment=seg)
    vb = b.mmap(PAGE_SIZE * 2, shared_segment=seg)
    a.write(va + 5000, b"offset-check")
    assert b.read(vb + 5000, 12) == b"offset-check"
