"""Run-based translation, the sequential-run cache, and bulk primitives.

The run cache is a software TLB (vpn → frame) fed only by successful
translates and popped through the same ``_invalidate`` plumbing that
drives :meth:`AddressSpace.register_invalidation_hook` — so every mapping
change (CoW break/downgrade, munmap) must be observable here as "the
stale frame is never returned".
"""

import pytest

from repro.mem import (
    PAGE_SIZE,
    AddressSpace,
    NotPresentFault,
    PhysicalMemory,
    SegmentationFault,
)
from repro.mem.addrspace import copy_range
from repro.mem.phys import OutOfMemory


@pytest.fixture
def phys():
    return PhysicalMemory(n_frames=512)


@pytest.fixture
def aspace(phys):
    return AddressSpace(phys, name="test")


# --------------------------------------------------------------- translate_run


def test_translate_run_contiguous_is_one_run(aspace):
    va = aspace.mmap(PAGE_SIZE * 4, populate=True, contiguous=True)
    runs = aspace.translate_run(va, PAGE_SIZE * 4)
    assert len(runs) == 1
    assert runs[0][1] == 0
    assert runs[0][2] == PAGE_SIZE * 4


def test_translate_run_respects_offsets(aspace):
    va = aspace.mmap(PAGE_SIZE * 2, populate=True, contiguous=True)
    runs = aspace.translate_run(va + 100, PAGE_SIZE)
    assert len(runs) == 1
    frame, offset, nbytes = runs[0]
    assert offset == 100 and nbytes == PAGE_SIZE


def test_translate_run_splits_at_physical_discontinuity():
    phys = PhysicalMemory(n_frames=256, fragmented=True)
    aspace = AddressSpace(phys)
    va = aspace.mmap(PAGE_SIZE * 6, populate=True)
    runs = aspace.translate_run(va, PAGE_SIZE * 6)
    assert sum(r[2] for r in runs) == PAGE_SIZE * 6
    assert len(runs) > 1  # fragmented allocator breaks adjacency
    # Runs expanded per page must agree exactly with frames_for.
    expanded = []
    for frame, offset, nbytes in runs:
        while nbytes > 0:
            chunk = min(nbytes, PAGE_SIZE - offset)
            expanded.append((frame, offset, chunk))
            frame, offset, nbytes = frame + 1, 0, nbytes - chunk
    assert expanded == aspace.frames_for(va, PAGE_SIZE * 6)


def test_translate_run_raises_on_unmapped(aspace):
    va = aspace.mmap(PAGE_SIZE * 2)
    with pytest.raises(NotPresentFault):
        aspace.translate_run(va, PAGE_SIZE)


# ----------------------------------------------------------- cache soundness


def test_cow_break_never_returns_stale_frame(aspace, phys):
    va = aspace.mmap(PAGE_SIZE, populate=True)
    aspace.write(va, b"parent")
    child = aspace.fork()
    # Warm the child's run cache on the shared frame.
    shared_frame = child.translate_run(va, PAGE_SIZE)[0][0]
    child.write(va, b"child!")  # CoW break: child gets a private frame
    new_frame = child.translate_run(va, PAGE_SIZE)[0][0]
    assert new_frame != shared_frame
    assert child.read(va, 6) == b"child!"
    assert aspace.read(va, 6) == b"parent"


def test_fork_downgrade_invalidates_parent_cache(aspace):
    va = aspace.mmap(PAGE_SIZE, populate=True)
    aspace.write(va, b"before")  # warms a *writable* cache entry
    child = aspace.fork()        # downgrades the parent's PTE to CoW
    # A cached writable entry surviving the downgrade would let this
    # write land in the shared frame and leak into the child.
    aspace.write(va, b"after!")
    assert child.read(va, 6) == b"before"
    assert aspace.fault_counts["cow_copy"] + aspace.fault_counts["cow_reuse"] >= 1


def test_munmap_pops_cache_entry(monkeypatch, phys):
    monkeypatch.delenv("COPIER_SLOWPATH", raising=False)  # cache in play
    aspace = AddressSpace(phys)
    va = aspace.mmap(PAGE_SIZE, populate=True)
    aspace.read(va, 8)  # warm
    assert va // PAGE_SIZE in aspace._run_cache
    aspace.munmap(va, PAGE_SIZE)
    assert va // PAGE_SIZE not in aspace._run_cache
    with pytest.raises(SegmentationFault):
        aspace.translate_run(va, PAGE_SIZE)


def test_readonly_cache_entry_does_not_satisfy_writes(aspace):
    va = aspace.mmap(PAGE_SIZE, populate=True)
    child = aspace.fork()
    child.read(va, 8)  # warm a read-only (CoW) entry
    # The write must fall back to the full walk and take the CoW fault —
    # not write through the cached read-only frame.
    child.write(va, b"x")
    assert child.fault_counts["cow_copy"] + child.fault_counts["cow_reuse"] == 1
    assert aspace.read(va, 1) == b"\x00"  # parent's copy untouched
    assert child.read(va, 1) == b"x"


def test_run_cache_limit_clears(monkeypatch, aspace):
    import repro.mem.addrspace as mod
    monkeypatch.setattr(mod, "_RUN_CACHE_LIMIT", 4)
    va = aspace.mmap(PAGE_SIZE * 16, populate=True)
    for i in range(16):
        aspace.read(va + i * PAGE_SIZE, 1)
    assert len(aspace._run_cache) <= 4


def test_slowpath_aspace_bypasses_cache(monkeypatch, phys):
    monkeypatch.setenv("COPIER_SLOWPATH", "1")
    aspace = AddressSpace(phys)
    va = aspace.mmap(PAGE_SIZE * 2, populate=True)
    aspace.write(va, b"slow")
    assert aspace.read(va, 4) == b"slow"
    assert aspace._run_cache == {}


# ------------------------------------------------------------ bulk primitives


def test_read_into_write_from_roundtrip(aspace):
    va = aspace.mmap(PAGE_SIZE * 3)
    data = bytes(range(256)) * 44  # crosses pages at an odd offset
    aspace.write_from(va + 7, data)
    out = bytearray(len(data))
    aspace.read_into(va + 7, out)
    assert bytes(out) == data
    assert aspace.read(va + 7, len(data)) == data


def test_copy_range_cross_aspace(phys):
    a = AddressSpace(phys, name="a")
    b = AddressSpace(phys, name="b")
    src = a.mmap(PAGE_SIZE * 2, populate=True)
    dst = b.mmap(PAGE_SIZE * 2)
    payload = bytes(i % 251 for i in range(PAGE_SIZE + 500))
    a.write(src + 3, payload)
    copy_range(a, src + 3, b, dst + 9, len(payload))
    assert b.read(dst + 9, len(payload)) == payload


def test_copy_range_resolves_faults_like_read_write(phys):
    fast_src, fast_dst = AddressSpace(phys), AddressSpace(phys)
    sva = fast_src.mmap(PAGE_SIZE * 3)
    dva = fast_dst.mmap(PAGE_SIZE * 3)
    copy_range(fast_src, sva, fast_dst, dva, PAGE_SIZE * 3)
    # Same demand-zero counts the read-then-write composition produces.
    assert fast_src.fault_counts["demand_zero"] == 3
    assert fast_dst.fault_counts["demand_zero"] == 3


def test_copy_range_overlap_snapshot_semantics(aspace):
    """An aliasing copy reads a snapshot: the write never feeds back."""
    va = aspace.mmap(PAGE_SIZE * 2, populate=True)
    n = PAGE_SIZE
    pattern = bytes(i % 256 for i in range(n))
    aspace.write(va, pattern)
    # Overlapping forward copy within one page run.
    copy_range(aspace, va, aspace, va + 100, n)
    assert aspace.read(va + 100, n) == pattern
    assert aspace.read(va, 100) == pattern[:100]


def test_copy_range_matches_read_write_composition(phys):
    fast = AddressSpace(phys)
    ref = AddressSpace(phys)
    for aspace in (fast, ref):
        va = aspace.mmap(PAGE_SIZE * 4, populate=True)
        aspace.write(va, bytes(i % 253 for i in range(PAGE_SIZE * 2 + 123)))
    n = PAGE_SIZE + 777
    copy_range(fast, va + 11, fast, va + PAGE_SIZE * 2, n)
    ref.write(va + PAGE_SIZE * 2, ref.read(va + 11, n))
    assert fast.read(va, PAGE_SIZE * 4) == ref.read(va, PAGE_SIZE * 4)


# ----------------------------------------------------- mmap failure atomicity


def test_failed_mmap_does_not_leak_cursor_or_vma():
    phys = PhysicalMemory(n_frames=4)
    aspace = AddressSpace(phys)
    cursor = aspace._mmap_cursor
    with pytest.raises(OutOfMemory):
        aspace.mmap(PAGE_SIZE * 16, populate=True)
    assert aspace._mmap_cursor == cursor
    assert aspace.vmas == []
    assert phys.frames_in_use == 0
    # The next mapping lands exactly where the failed one would have.
    va = aspace.mmap(PAGE_SIZE, populate=True)
    assert va == cursor
