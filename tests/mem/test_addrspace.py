"""Address-space tests: demand paging, CoW, pinning, fork isolation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mem import (
    PAGE_SIZE,
    AddressSpace,
    NotPresentFault,
    PhysicalMemory,
    SegmentationFault,
    SharedSegment,
)


@pytest.fixture
def phys():
    return PhysicalMemory(n_frames=512)


@pytest.fixture
def aspace(phys):
    return AddressSpace(phys, name="test")


def test_mmap_returns_page_aligned_va(aspace):
    va = aspace.mmap(100)
    assert va % PAGE_SIZE == 0


def test_demand_paging_allocates_on_first_touch(aspace, phys):
    va = aspace.mmap(PAGE_SIZE * 4)
    assert phys.frames_in_use == 0
    aspace.write(va, b"hi")
    assert phys.frames_in_use == 1
    assert aspace.fault_counts["demand_zero"] == 1


def test_populate_allocates_eagerly(aspace, phys):
    aspace.mmap(PAGE_SIZE * 4, populate=True)
    assert phys.frames_in_use == 4


def test_translate_unmapped_raises_not_present(aspace):
    va = aspace.mmap(PAGE_SIZE)
    with pytest.raises(NotPresentFault):
        aspace.translate(va)


def test_translate_outside_vma_raises_segfault(aspace):
    with pytest.raises(SegmentationFault):
        aspace.translate(0xDEAD_0000)


def test_write_to_readonly_vma_raises_segfault(aspace):
    va = aspace.mmap(PAGE_SIZE, prot="r")
    with pytest.raises(SegmentationFault):
        aspace.write(va, b"x")


def test_read_write_roundtrip_cross_page(aspace):
    va = aspace.mmap(PAGE_SIZE * 3)
    data = bytes(range(256)) * 40  # 10240 bytes, spans 3 pages
    aspace.write(va + 10, data)
    assert aspace.read(va + 10, len(data)) == data


def test_read_unwritten_returns_zeros(aspace):
    va = aspace.mmap(PAGE_SIZE)
    assert aspace.read(va, 16) == b"\x00" * 16


def test_frames_for_spans_pages(aspace):
    va = aspace.mmap(PAGE_SIZE * 2, populate=True)
    spans = aspace.frames_for(va + 100, PAGE_SIZE)
    assert len(spans) == 2
    assert spans[0][1] == 100
    assert spans[0][2] == PAGE_SIZE - 100
    assert spans[1][2] == 100
    assert sum(s[2] for s in spans) == PAGE_SIZE


def test_check_range_valid_and_invalid(aspace):
    va = aspace.mmap(PAGE_SIZE)
    aspace.check_range(va, PAGE_SIZE)
    with pytest.raises(SegmentationFault):
        aspace.check_range(va, PAGE_SIZE * 10)


def test_ensure_mapped_resolves_all_pages(aspace):
    va = aspace.mmap(PAGE_SIZE * 3)
    kinds = aspace.ensure_mapped(va, PAGE_SIZE * 3)
    assert kinds == ["demand_zero"] * 3
    # Second pass: nothing left to resolve.
    assert aspace.ensure_mapped(va, PAGE_SIZE * 3) == []


# ------------------------------------------------------------------- fork/CoW


def test_fork_shares_frames_copy_on_write(aspace, phys):
    va = aspace.mmap(PAGE_SIZE, populate=True)
    aspace.write(va, b"parent")
    child = aspace.fork()
    assert child.read(va, 6) == b"parent"
    frames_before = phys.frames_in_use
    child.write(va, b"child!")
    assert phys.frames_in_use == frames_before + 1
    assert aspace.read(va, 6) == b"parent"
    assert child.read(va, 6) == b"child!"
    assert child.fault_counts["cow_copy"] == 1


def test_fork_parent_write_also_cows(aspace):
    va = aspace.mmap(PAGE_SIZE, populate=True)
    aspace.write(va, b"before")
    child = aspace.fork()
    aspace.write(va, b"after!")
    assert child.read(va, 6) == b"before"
    assert aspace.read(va, 6) == b"after!"


def test_cow_reuse_when_sole_owner(aspace, phys):
    va = aspace.mmap(PAGE_SIZE, populate=True)
    aspace.write(va, b"data")
    child = aspace.fork()
    child.write(va, b"x")  # breaks sharing: child copies
    frames = phys.frames_in_use
    # Parent is now the sole owner of the original frame: reuse, no copy.
    aspace.write(va, b"y")
    assert phys.frames_in_use == frames
    assert aspace.fault_counts["cow_reuse"] == 1


def test_fork_shares_shm_without_cow(phys, aspace):
    seg = SharedSegment(phys, PAGE_SIZE)
    va = aspace.mmap(PAGE_SIZE, shared_segment=seg)
    aspace.write(va, b"shared")
    child = aspace.fork()
    child.write(va, b"SHARED")
    # Writes through shm are visible to both sides — no CoW.
    assert aspace.read(va, 6) == b"SHARED"


def test_shared_segment_cross_process_visibility(phys):
    seg = SharedSegment(phys, PAGE_SIZE * 2)
    a = AddressSpace(phys)
    b = AddressSpace(phys)
    va_a = a.mmap(PAGE_SIZE * 2, shared_segment=seg)
    va_b = b.mmap(PAGE_SIZE * 2, shared_segment=seg)
    a.write(va_a + 4097, b"binder-msg")
    assert b.read(va_b + 4097, 10) == b"binder-msg"
    assert seg.read(4097, 10) == b"binder-msg"


# --------------------------------------------------------------------- pinning


def test_pin_defers_munmap_until_last_unpin(aspace, phys):
    va = aspace.mmap(PAGE_SIZE * 2)
    aspace.pin(va, PAGE_SIZE * 2)
    frames_pinned = phys.frames_in_use
    # munmap of a pinned range defers: translation gone, frames alive.
    aspace.munmap(va, PAGE_SIZE * 2)
    assert aspace.deferred_unmaps == 2
    assert phys.frames_in_use == frames_pinned
    with pytest.raises(SegmentationFault):
        aspace.translate(va)
    assert aspace.was_unmapped(va, PAGE_SIZE * 2)
    # The last unpin reclaims the deferred frames.
    aspace.unpin(va, PAGE_SIZE * 2)
    assert aspace.deferred_reclaimed == 2
    assert phys.frames_in_use == frames_pinned - 2
    assert aspace.pins_outstanding() == 0


def test_fork_with_pinned_pages_copies_eagerly(aspace, phys):
    va = aspace.mmap(PAGE_SIZE * 2, populate=True)
    aspace.write(va, b"dma-target")
    aspace.pin(va, PAGE_SIZE * 2)
    parent_frame, _ = aspace.translate(va)
    frames_before = phys.frames_in_use
    child = aspace.fork()
    # FOLL_PIN semantics: the pinned pages were copied for the child at
    # fork time, not CoW-shared.
    assert aspace.pinned_fork_copies == 2
    assert phys.frames_in_use == frames_before + 2
    assert child.read(va, 10) == b"dma-target"
    assert child.translate(va)[0] != parent_frame
    # The parent's mapping is untouched: still writable, same frame — an
    # in-flight DMA keeps landing where the pin promised, and the child
    # never sees those late writes.
    frame_now, offset = aspace.translate(va, write=True)
    assert frame_now == parent_frame
    phys.write(parent_frame, offset, b"late-dma!!")
    assert aspace.read(va, 10) == b"late-dma!!"
    assert child.read(va, 10) == b"dma-target"
    aspace.unpin(va, PAGE_SIZE * 2)
    assert aspace.pins_outstanding() == 0


def test_fork_pinned_child_unpinned(aspace):
    va = aspace.mmap(PAGE_SIZE, populate=True)
    aspace.pin(va, PAGE_SIZE)
    child = aspace.fork()
    # The pin belongs to the parent's in-flight copy, not the child.
    assert child.pins_outstanding() == 0
    with pytest.raises(RuntimeError):
        child.unpin(va, PAGE_SIZE)
    aspace.unpin(va, PAGE_SIZE)


def test_unpin_unpinned_rejected(aspace):
    va = aspace.mmap(PAGE_SIZE, populate=True)
    with pytest.raises(RuntimeError):
        aspace.unpin(va, PAGE_SIZE)


def test_munmap_frees_frames(aspace, phys):
    va = aspace.mmap(PAGE_SIZE * 2, populate=True)
    assert phys.frames_in_use == 2
    aspace.munmap(va, PAGE_SIZE * 2)
    assert phys.frames_in_use == 0
    with pytest.raises(SegmentationFault):
        aspace.read(va, 1)


# --------------------------------------------------------- invalidation hooks


def test_invalidation_hook_fires_on_cow_break(aspace):
    va = aspace.mmap(PAGE_SIZE, populate=True)
    aspace.write(va, b"z")
    child = aspace.fork()
    events = []
    child.register_invalidation_hook(lambda asid, vpn: events.append((asid, vpn)))
    child.write(va, b"w")
    assert events == [(child.asid, va // PAGE_SIZE)]


def test_invalidation_hook_fires_on_munmap(aspace):
    va = aspace.mmap(PAGE_SIZE, populate=True)
    events = []
    aspace.register_invalidation_hook(lambda asid, vpn: events.append(vpn))
    aspace.munmap(va, PAGE_SIZE)
    assert events == [va // PAGE_SIZE]


# ------------------------------------------------------------ property tests


@settings(max_examples=50, deadline=None)
@given(
    offset=st.integers(min_value=0, max_value=PAGE_SIZE * 3),
    data=st.binary(min_size=1, max_size=PAGE_SIZE * 2),
)
def test_property_write_read_roundtrip(offset, data):
    phys = PhysicalMemory(n_frames=64)
    aspace = AddressSpace(phys)
    va = aspace.mmap(PAGE_SIZE * 6)
    aspace.write(va + offset, data)
    assert aspace.read(va + offset, len(data)) == data


@settings(max_examples=30, deadline=None)
@given(
    writes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=PAGE_SIZE * 2),
            st.binary(min_size=1, max_size=512),
        ),
        min_size=1,
        max_size=8,
    )
)
def test_property_fork_isolation(writes):
    """After fork, child writes never leak into the parent and vice versa."""
    phys = PhysicalMemory(n_frames=256)
    parent = AddressSpace(phys)
    va = parent.mmap(PAGE_SIZE * 3, populate=True)
    parent.write(va, b"\xaa" * (PAGE_SIZE * 3))
    child = parent.fork()
    for offset, data in writes:
        child.write(va + offset, data)
    assert parent.read(va, PAGE_SIZE * 3) == b"\xaa" * (PAGE_SIZE * 3)


@settings(max_examples=30, deadline=None)
@given(n_pages=st.integers(min_value=1, max_value=8))
def test_property_ensure_mapped_is_idempotent(n_pages):
    phys = PhysicalMemory(n_frames=64)
    aspace = AddressSpace(phys)
    va = aspace.mmap(PAGE_SIZE * n_pages)
    first = aspace.ensure_mapped(va, PAGE_SIZE * n_pages)
    assert len(first) == n_pages
    assert aspace.ensure_mapped(va, PAGE_SIZE * n_pages) == []
    assert phys.frames_in_use == n_pages
