"""Unit tests for physical memory and frame accounting."""

import pytest

from repro.mem import PAGE_SIZE, PhysicalMemory
from repro.mem.phys import OutOfMemory


def test_alloc_returns_zeroed_frame():
    phys = PhysicalMemory(n_frames=8)
    frame = phys.alloc_frame()
    assert phys.read(frame, 0, PAGE_SIZE) == b"\x00" * PAGE_SIZE


def test_write_read_roundtrip():
    phys = PhysicalMemory(n_frames=8)
    frame = phys.alloc_frame()
    phys.write(frame, 100, b"hello")
    assert phys.read(frame, 100, 5) == b"hello"


def test_write_outside_frame_rejected():
    phys = PhysicalMemory(n_frames=8)
    frame = phys.alloc_frame()
    with pytest.raises(ValueError):
        phys.write(frame, PAGE_SIZE - 2, b"abc")


def test_out_of_memory():
    phys = PhysicalMemory(n_frames=2)
    phys.alloc_frame()
    phys.alloc_frame()
    with pytest.raises(OutOfMemory):
        phys.alloc_frame()


def test_free_returns_frame_to_pool():
    phys = PhysicalMemory(n_frames=2)
    f1 = phys.alloc_frame()
    phys.alloc_frame()
    phys.free_frame(f1)
    assert phys.frames_free == 1
    phys.alloc_frame()  # must not raise


def test_double_free_rejected():
    phys = PhysicalMemory(n_frames=4)
    frame = phys.alloc_frame()
    phys.free_frame(frame)
    with pytest.raises(ValueError):
        phys.free_frame(frame)


def test_refcounting_shares_frame():
    phys = PhysicalMemory(n_frames=4)
    frame = phys.alloc_frame()
    phys.share_frame(frame)
    assert phys.refcount(frame) == 2
    phys.free_frame(frame)
    assert phys.refcount(frame) == 1
    # Data survives while a reference remains.
    phys.write(frame, 0, b"x")
    assert phys.read(frame, 0, 1) == b"x"
    phys.free_frame(frame)
    assert phys.refcount(frame) == 0


def test_contiguous_allocation_is_adjacent():
    phys = PhysicalMemory(n_frames=32)
    frames = phys.alloc_frames(4, contiguous=True)
    assert frames == list(range(frames[0], frames[0] + 4))


def test_contiguous_allocation_fails_when_fragmented():
    phys = PhysicalMemory(n_frames=4)
    kept = [phys.alloc_frame() for _ in range(4)]
    phys.free_frame(kept[0])
    phys.free_frame(kept[2])
    with pytest.raises(OutOfMemory):
        phys.alloc_frames(2, contiguous=True)


def test_fragmented_allocator_breaks_contiguity():
    phys = PhysicalMemory(n_frames=64, fragmented=True)
    frames = [phys.alloc_frame() for _ in range(6)]
    adjacent_pairs = sum(
        1 for a, b in zip(frames, frames[1:]) if b == a + 1
    )
    assert adjacent_pairs < 5  # not a fully contiguous run


def test_copy_frame_duplicates_contents():
    phys = PhysicalMemory(n_frames=4)
    a = phys.alloc_frame()
    b = phys.alloc_frame()
    phys.write(a, 10, b"payload")
    phys.copy_frame(a, b)
    assert phys.read(b, 10, 7) == b"payload"
    # Copies are independent afterwards.
    phys.write(a, 10, b"XXXXXXX")
    assert phys.read(b, 10, 7) == b"payload"


def test_paddr_layout():
    phys = PhysicalMemory(n_frames=4)
    assert phys.paddr(3, 5) == 3 * PAGE_SIZE + 5


def _reference_contiguous_alloc(free, n):
    """The historic allocator: sort the whole free list descending every
    call, take the lowest run of ``n``.  Mutates ``free`` like the real
    one; returns the frames or None."""
    free.sort(reverse=True)
    run = []
    for frame in reversed(free):  # ascending
        if run and frame != run[-1] + 1:
            run = []
        run.append(frame)
        if len(run) == n:
            for f in run:
                free.remove(f)
            return run
    return None


def test_contiguous_alloc_matches_reference_semantics():
    """The dirty-flag allocator must produce the historic allocation
    sequence AND the historic free-list state (frame numbers feed DMA
    candidacy, so any drift changes simulated behaviour)."""
    import random

    rng = random.Random(42)
    phys = PhysicalMemory(n_frames=128)
    shadow = list(phys._free)
    held = []
    for step in range(300):
        roll = rng.random()
        if roll < 0.45 and phys.frames_free > 8:
            n = rng.randint(1, 6)
            expected = _reference_contiguous_alloc(shadow, n)
            if expected is None:
                with pytest.raises(OutOfMemory):
                    phys.alloc_frames(n, contiguous=True)
            else:
                got = phys.alloc_frames(n, contiguous=True)
                assert got == expected
                held.extend(got)
        elif roll < 0.7 and phys.frames_free > 0:
            frame = phys.alloc_frame()
            assert frame == shadow.pop()
            held.append(frame)
        elif held:
            frame = held.pop(rng.randrange(len(held)))
            phys.free_frame(frame)
            shadow.append(frame)
        assert sorted(phys._free) == sorted(shadow)
    # Final state: one more sorted alloc must agree exactly.
    expected = _reference_contiguous_alloc(shadow, 2)
    if expected is not None:
        assert phys.alloc_frames(2, contiguous=True) == expected
        assert phys._free == shadow
