"""Unit tests for physical memory and frame accounting."""

import pytest

from repro.mem import PAGE_SIZE, PhysicalMemory
from repro.mem.phys import OutOfMemory


def test_alloc_returns_zeroed_frame():
    phys = PhysicalMemory(n_frames=8)
    frame = phys.alloc_frame()
    assert phys.read(frame, 0, PAGE_SIZE) == b"\x00" * PAGE_SIZE


def test_write_read_roundtrip():
    phys = PhysicalMemory(n_frames=8)
    frame = phys.alloc_frame()
    phys.write(frame, 100, b"hello")
    assert phys.read(frame, 100, 5) == b"hello"


def test_write_outside_frame_rejected():
    phys = PhysicalMemory(n_frames=8)
    frame = phys.alloc_frame()
    with pytest.raises(ValueError):
        phys.write(frame, PAGE_SIZE - 2, b"abc")


def test_out_of_memory():
    phys = PhysicalMemory(n_frames=2)
    phys.alloc_frame()
    phys.alloc_frame()
    with pytest.raises(OutOfMemory):
        phys.alloc_frame()


def test_free_returns_frame_to_pool():
    phys = PhysicalMemory(n_frames=2)
    f1 = phys.alloc_frame()
    phys.alloc_frame()
    phys.free_frame(f1)
    assert phys.frames_free == 1
    phys.alloc_frame()  # must not raise


def test_double_free_rejected():
    phys = PhysicalMemory(n_frames=4)
    frame = phys.alloc_frame()
    phys.free_frame(frame)
    with pytest.raises(ValueError):
        phys.free_frame(frame)


def test_refcounting_shares_frame():
    phys = PhysicalMemory(n_frames=4)
    frame = phys.alloc_frame()
    phys.share_frame(frame)
    assert phys.refcount(frame) == 2
    phys.free_frame(frame)
    assert phys.refcount(frame) == 1
    # Data survives while a reference remains.
    phys.write(frame, 0, b"x")
    assert phys.read(frame, 0, 1) == b"x"
    phys.free_frame(frame)
    assert phys.refcount(frame) == 0


def test_contiguous_allocation_is_adjacent():
    phys = PhysicalMemory(n_frames=32)
    frames = phys.alloc_frames(4, contiguous=True)
    assert frames == list(range(frames[0], frames[0] + 4))


def test_contiguous_allocation_fails_when_fragmented():
    phys = PhysicalMemory(n_frames=4)
    kept = [phys.alloc_frame() for _ in range(4)]
    phys.free_frame(kept[0])
    phys.free_frame(kept[2])
    with pytest.raises(OutOfMemory):
        phys.alloc_frames(2, contiguous=True)


def test_fragmented_allocator_breaks_contiguity():
    phys = PhysicalMemory(n_frames=64, fragmented=True)
    frames = [phys.alloc_frame() for _ in range(6)]
    adjacent_pairs = sum(
        1 for a, b in zip(frames, frames[1:]) if b == a + 1
    )
    assert adjacent_pairs < 5  # not a fully contiguous run


def test_copy_frame_duplicates_contents():
    phys = PhysicalMemory(n_frames=4)
    a = phys.alloc_frame()
    b = phys.alloc_frame()
    phys.write(a, 10, b"payload")
    phys.copy_frame(a, b)
    assert phys.read(b, 10, 7) == b"payload"
    # Copies are independent afterwards.
    phys.write(a, 10, b"XXXXXXX")
    assert phys.read(b, 10, 7) == b"payload"


def test_paddr_layout():
    phys = PhysicalMemory(n_frames=4)
    assert phys.paddr(3, 5) == 3 * PAGE_SIZE + 5


def _reference_contiguous_alloc(free, n):
    """The historic allocator: sort the whole free list descending every
    call, take the lowest run of ``n``.  Mutates ``free`` like the real
    one; returns the frames or None."""
    free.sort(reverse=True)
    run = []
    for frame in reversed(free):  # ascending
        if run and frame != run[-1] + 1:
            run = []
        run.append(frame)
        if len(run) == n:
            for f in run:
                free.remove(f)
            return run
    return None


def test_contiguous_alloc_matches_reference_semantics():
    """The dirty-flag allocator must produce the historic allocation
    sequence AND the historic free-list state (frame numbers feed DMA
    candidacy, so any drift changes simulated behaviour)."""
    import random

    rng = random.Random(42)
    phys = PhysicalMemory(n_frames=128)
    shadow = list(phys._free)
    held = []
    for step in range(300):
        roll = rng.random()
        if roll < 0.45 and phys.frames_free > 8:
            n = rng.randint(1, 6)
            expected = _reference_contiguous_alloc(shadow, n)
            if expected is None:
                with pytest.raises(OutOfMemory):
                    phys.alloc_frames(n, contiguous=True)
            else:
                got = phys.alloc_frames(n, contiguous=True)
                assert got == expected
                held.extend(got)
        elif roll < 0.7 and phys.frames_free > 0:
            frame = phys.alloc_frame()
            assert frame == shadow.pop()
            held.append(frame)
        elif held:
            frame = held.pop(rng.randrange(len(held)))
            phys.free_frame(frame)
            shadow.append(frame)
        assert sorted(phys._free) == sorted(shadow)
    # Final state: one more sorted alloc must agree exactly.
    expected = _reference_contiguous_alloc(shadow, 2)
    if expected is not None:
        assert phys.alloc_frames(2, contiguous=True) == expected
        assert phys._free == shadow


# ------------------------------------------------ free-list sort pressure


def test_lifo_churn_never_resorts_free_list():
    """Alloc/free in LIFO order keeps the descending invariant intact, so
    contiguous allocation never pays a re-sort (``sort_work`` stays 0)."""
    phys = PhysicalMemory(n_frames=4096)
    a = phys.alloc_frames(64, contiguous=True)
    for frame in reversed(a):
        phys.free_frame(frame)
    b = phys.alloc_frames(64, contiguous=True)
    assert b == a
    assert phys.sort_work == 0


def test_free_burst_sort_work_bounded_by_dirty_tail():
    """A burst of out-of-order frees dirties only its own tail: the next
    contiguous alloc sorts the k burst entries, not the whole free list.

    The counter-based assertion pins the complexity class (the historic
    path charged the full list length every time) without wall-clock
    flakiness.
    """
    phys = PhysicalMemory(n_frames=4096)
    frames = phys.alloc_frames(64, contiguous=True)
    for frame in frames:  # ascending frees break descending order fast
        phys.free_frame(frame)
    again = phys.alloc_frames(64, contiguous=True)
    assert again == frames  # semantics identical to a full re-sort
    assert 0 < phys.sort_work <= len(frames)  # dirty tail only, not ~4096
    # The list is fully ordered again: further allocs stay sort-free.
    work = phys.sort_work
    phys.alloc_frames(8, contiguous=True)
    assert phys.sort_work == work


def test_free_frame_keeps_refcount_semantics_on_shared_frames():
    phys = PhysicalMemory(n_frames=16)
    frame = phys.alloc_frame()
    phys.share_frame(frame)
    phys.free_frame(frame)           # one ref left: frame stays allocated
    assert phys.refcount(frame) == 1
    assert frame not in phys._free
    phys.free_frame(frame)           # last ref: really freed
    assert phys.refcount(frame) == 0
    assert frame in phys._free


# ------------------------------------------------------ flat frame backing


def test_run_movers_cross_frame_boundaries():
    phys = PhysicalMemory(n_frames=64)
    src = phys.alloc_frames(3, contiguous=True)
    dst = phys.alloc_frames(3, contiguous=True)
    blob = bytes((i * 37 + 11) % 256 for i in range(3 * PAGE_SIZE))
    phys.write_run(src[0], 0, memoryview(blob), 0, len(blob))
    # Unaligned, multi-frame copy between the two runs.
    nbytes = 2 * PAGE_SIZE + 123
    phys.copy_run(src[0], 17, dst[0], 513, nbytes)
    out = bytearray(nbytes)
    phys.read_run(dst[0], 513, memoryview(out), 0, nbytes)
    assert bytes(out) == blob[17:17 + nbytes]


def test_copy_run_overlapping_ranges_is_a_memmove():
    phys = PhysicalMemory(n_frames=16)
    frames = phys.alloc_frames(2, contiguous=True)
    blob = bytes(range(256)) * (2 * PAGE_SIZE // 256)
    phys.write_run(frames[0], 0, memoryview(blob), 0, len(blob))
    # Forward-overlapping copy within the run (dst inside [src, src+n)).
    phys.copy_run(frames[0], 0, frames[0], 1000, PAGE_SIZE + 500)
    expect = bytearray(blob)
    expect[1000:1000 + PAGE_SIZE + 500] = blob[:PAGE_SIZE + 500]
    out = bytearray(len(blob))
    phys.read_run(frames[0], 0, memoryview(out), 0, len(blob))
    assert out == expect
    # Backward-overlapping copy too.
    phys.write_run(frames[0], 0, memoryview(blob), 0, len(blob))
    phys.copy_run(frames[0], 900, frames[0], 100, PAGE_SIZE)
    expect = bytearray(blob)
    expect[100:100 + PAGE_SIZE] = blob[900:900 + PAGE_SIZE]
    out = bytearray(len(blob))
    phys.read_run(frames[0], 0, memoryview(out), 0, len(blob))
    assert out == expect


def test_reclaimed_frame_is_scrubbed():
    phys = PhysicalMemory(n_frames=8)
    frame = phys.alloc_frame()
    phys.write(frame, 0, b"\xaa" * PAGE_SIZE)
    phys.free_frame(frame)
    again = phys.alloc_frame()
    assert again == frame  # LIFO: same frame comes right back
    assert phys.read(again, 0, PAGE_SIZE) == b"\x00" * PAGE_SIZE


def test_snapshot_frames_roundtrip():
    phys = PhysicalMemory(n_frames=32)
    frames = [phys.alloc_frame() for _ in range(5)]
    for i, frame in enumerate(frames):
        phys.write(frame, 0, bytes([i + 1]) * 64)
    phys.free_frame(frames.pop())
    image = phys.snapshot_frames()
    assert sorted(image) == sorted(frames)  # only live frames captured

    other = PhysicalMemory(n_frames=32)
    other.load_frames(image)
    for i, frame in enumerate(frames):
        assert other.read(frame, 0, 64) == bytes([i + 1]) * 64
