"""Quiesce refuses un-checkpointable machines with typed state errors.

A checkpoint never captures a half-machine: queued FUNC handlers
(closures), custom sigsegv callbacks, foreign blocked processes, shared
segments and already-shut-down services all raise
:class:`CheckpointStateError` *before* any bytes are produced, and an
in-place ``resume()`` after a successful quiesce leaves a fully working
service behind.
"""

import pytest

from repro.ckpt import CheckpointStateError, checkpoint
from repro.kernel.system import System
from repro.mem.phys import PAGE_SIZE

QUANTUM = 20_000


@pytest.fixture
def machine():
    system = System(n_cores=2, phys_frames=4096)
    proc = system.create_process("app")
    return system, proc


def _settle(env, out, count=1):
    horizon = env.now
    while len(out) < count:
        horizon += QUANTUM
        env.step(max_cycles=horizon - env.now)


def _copy(proc, nbytes=1024, handler=None, post=False):
    client = proc.client
    aspace = proc.aspace
    src = aspace.mmap(PAGE_SIZE, populate=True)
    dst = aspace.mmap(PAGE_SIZE, populate=True)
    out = []

    def op():
        yield from client.amemcpy(dst, src, nbytes, handler=handler)
        yield from client.csync(dst, nbytes)
        if post:
            yield from client.post_handlers()
        out.append(dst)

    proc.system.env.spawn(op(), name="quiesce-op")
    _settle(proc.system.env, out)


def test_queued_func_handler_blocks_checkpoint(machine):
    system, proc = machine
    ran = []
    _copy(proc, handler=("ufunc", ran.append, ("x",)))
    with pytest.raises(CheckpointStateError, match="post_handlers"):
        checkpoint(system)
    # The refusal is actionable: run the handlers, checkpoint succeeds.
    out = []

    def drain():
        yield from proc.client.post_handlers()
        out.append(True)

    # The refused quiesce left the service running (admission thawed).
    assert system.copier.running and not system.copier.draining
    system.env.spawn(drain(), name="drain-handlers")
    _settle(system.env, out)
    assert ran == ["x"]
    checkpoint(system)


def test_sigsegv_callback_blocks_checkpoint(machine):
    system, proc = machine
    _copy(proc)
    proc.client.sigsegv_handler = lambda task, exc: None
    with pytest.raises(CheckpointStateError, match="sigsegv"):
        checkpoint(system)
    proc.client.sigsegv_handler = None
    system.copier.resume()
    checkpoint(system)


def test_foreign_blocked_process_blocks_checkpoint(machine):
    system, proc = machine
    _copy(proc)
    never = system.env.event()

    def stuck():
        yield never

    system.env.spawn(stuck(), name="stuck-app")
    with pytest.raises(CheckpointStateError, match="alive"):
        checkpoint(system)


def test_shared_segment_blocks_checkpoint(machine):
    system, proc = machine
    _copy(proc)
    proc.aspace.vmas[-1].shared_segment = object()
    with pytest.raises(CheckpointStateError, match="shared-segment"):
        checkpoint(system)


def test_checkpoint_after_shutdown_raises(machine):
    system, proc = machine
    _copy(proc)
    assert system.copier.shutdown()["drained"]
    with pytest.raises(CheckpointStateError, match="shut down"):
        checkpoint(system)


def test_quiesce_is_idempotent_and_resume_restores_service(machine):
    system, proc = machine
    _copy(proc)
    svc = system.copier
    svc.quiesce()
    svc.quiesce()  # second call is a no-op on a parked service
    assert svc.quiesced and not svc.running
    svc.resume()
    assert svc.running and not svc.quiesced
    _copy(proc)  # the resumed service still copies
    assert svc.shutdown()["drained"]
    assert system.leaked_pins() == 0


def test_resume_requires_quiesced(machine):
    system, _ = machine
    with pytest.raises(CheckpointStateError):
        system.copier.resume()
