"""Differential restore oracle: a restored machine IS the machine.

Each scenario runs its workload in four phases with checkpoints taken at
three quiesce points (after phases 1, 2 and 3).  Run A checkpoints and
*resumes in place* at every point and finishes the workload; then, for
every saved blob, a second machine is restored from it and runs only the
remaining phases.  The restored machine must finish with an identical
virtual clock, event count, full ``stats_snapshot()``, byte-identical
data plane and zero leaked pins — the gem5/Ramulator fidelity bar from
ROADMAP item 4.  A third, never-quiesced run pins the data plane: the
checkpointed run's store content must match it byte for byte.

Scenarios cover the states ISSUE 8 names: fault-plan armed (mixed),
``COPIER_SLOWPATH=1``, and mid-overload (queue-depth admission with
small rings under concurrent bursts).
"""

import pytest

from repro.ckpt import checkpoint, restore
from repro.faultinject import FaultPlan
from repro.fleet.store import KVStore
from repro.kernel.system import System

QUANTUM = 20_000
N_PHASES = 4
QUIESCE_POINTS = (1, 2, 3)

SCENARIOS = {
    "plain": {"plan": None, "slowpath": False, "admission": None},
    "mixed-faults": {"plan": "mixed", "slowpath": False, "admission": None},
    "slowpath": {"plan": None, "slowpath": True, "admission": None},
    "overload": {"plan": None, "slowpath": False,
                 "admission": "queue-depth"},
}


def _build(spec):
    kwargs = {}
    if spec["plan"] is not None:
        kwargs["fault_plan"] = FaultPlan.named(spec["plan"], seed=1)
    if spec["admission"] is not None:
        kwargs["admission"] = spec["admission"]
    system = System(copier_kwargs=kwargs)
    store = KVStore(system, name="oracle-store",
                    queue_capacity=64 if spec["admission"] else 2048)
    return system, store


def _phase_ops(phase):
    ops = []
    for i in range(5):
        key = b"rk%d" % ((phase * 3 + i) % 4)
        ops.append((key, bytes([phase * 50 + i + 1]) * (2000 + 777 * i)))
    return ops


def _settle(env, done, count):
    horizon = env.now
    while len(done) < count:
        horizon += QUANTUM
        env.step(max_cycles=horizon - env.now)


def _run_phase(system, store, phase, overload):
    env = system.env
    done = []
    ops = _phase_ops(phase)
    if overload:
        # Burst: every op in flight at once through one client, so the
        # queue-depth valve actually sheds under the tiny rings.
        for key, value in ops:
            def runner(key=key, value=value, out=done):
                yield from store.set_op(key, value)
                out.append((yield from store.get_op(key)))

            env.spawn(runner(), name="burst-op")
        _settle(env, done, len(ops))
    else:
        for key, value in ops:
            out = []

            def runner(key=key, value=value, out=out):
                yield from store.set_op(key, value)
                out.append((yield from store.get_op(key)))

            env.spawn(runner(), name="oracle-op")
            _settle(env, out, 1)
            done.extend(out)
    assert all(r is not None for r in done)


def _final_state(system, store):
    return {
        "now": system.env.now,
        "events": system.env.events_executed,
        "snapshot": system.copier.stats_snapshot(),
        "digest": store.digest(),
        "store": store.snapshot(),
        "leaked": system.leaked_pins(),
    }


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_restore_is_differentially_identical(name, monkeypatch, tmp_path):
    spec = SCENARIOS[name]
    if spec["slowpath"]:
        monkeypatch.setenv("COPIER_SLOWPATH", "1")
    else:
        monkeypatch.delenv("COPIER_SLOWPATH", raising=False)
    overload = spec["admission"] is not None

    # Run A: checkpoint at every quiesce point, resume in place, finish.
    system_a, store_a = _build(spec)
    blobs = {}
    for phase in range(N_PHASES):
        _run_phase(system_a, store_a, phase, overload)
        point = phase + 1
        if point in QUIESCE_POINTS:
            ck = checkpoint(system_a, stores=[store_a])
            blobs[point] = ck.to_bytes()
            system_a.copier.resume()
    final_a = _final_state(system_a, store_a)
    assert final_a["leaked"] == 0

    # Run C: never quiesced — the data plane must be unperturbed by
    # checkpointing (counters legitimately differ: quiesce steps the
    # clock through parked wakeups).
    system_c, store_c = _build(spec)
    for phase in range(N_PHASES):
        _run_phase(system_c, store_c, phase, overload)
    assert store_c.digest() == final_a["digest"]
    assert store_c.snapshot()["keys"] == final_a["store"]["keys"]

    # Every saved blob restores into a machine whose future is identical.
    # The restored run repeats run A's *later* checkpoints too (quiesce
    # advances the clock, so both timelines must pause at the same
    # points) — and the checkpoint a restored machine takes at point j
    # must decode to the very payload run A saved there.
    assert sorted(blobs) == sorted(QUIESCE_POINTS)
    from repro.ckpt import Checkpoint
    for point, blob in sorted(blobs.items()):
        system_b, (store_b,) = restore(blob)
        for phase in range(point, N_PHASES):
            _run_phase(system_b, store_b, phase, overload)
            later = phase + 1
            if later in QUIESCE_POINTS:
                ck_b = checkpoint(system_b, stores=[store_b])
                assert (ck_b.payload
                        == Checkpoint.from_bytes(blobs[later]).payload), (
                    "checkpoint at point %d diverged when taken by the "
                    "machine restored from point %d" % (later, point))
                system_b.copier.resume()
        final_b = _final_state(system_b, store_b)
        assert final_b == final_a, "diverged from quiesce point %d" % point
        assert system_b.copier.shutdown()["drained"]

    assert system_a.copier.shutdown()["drained"]


def test_checkpoint_of_restored_machine_is_the_same_checkpoint():
    """restore(ckpt) → checkpoint() reproduces the exact payload: the
    serialization is a fixed point, so nothing is silently dropped."""
    system, store = _build(SCENARIOS["mixed-faults"])
    for phase in range(2):
        _run_phase(system, store, phase, overload=False)
    ck = checkpoint(system, stores=[store])
    system2, stores2 = restore(ck, resume=False)
    ck2 = checkpoint(system2, stores=stores2)
    assert ck2.payload == ck.payload


def test_restore_from_file_and_bytes(tmp_path):
    system, store = _build(SCENARIOS["plain"])
    _run_phase(system, store, 0, overload=False)
    ck = checkpoint(system, stores=[store])
    path = tmp_path / "machine.rckp"
    ck.save(path)

    from_file, (store_f,) = restore(str(path))
    from_bytes, (store_b,) = restore(ck.to_bytes())
    assert from_file.env.now == from_bytes.env.now == system.env.now
    assert store_f.digest() == store_b.digest() == store.digest()
