"""Damaged checkpoint files raise typed errors, never half-machines.

Every corruption mode maps to its own :class:`CheckpointError` subclass
(truncated header/payload, foreign magic, unsupported version, flipped
payload byte, garbage file), ``restore`` refuses them all, and the
``repro.tools.ckpt`` CLI turns them into non-zero exits.
"""

import hashlib
import pickle
import struct

import pytest

from repro.ckpt import format as ckpt_format
from repro.ckpt import (
    MAGIC,
    Checkpoint,
    CheckpointChecksumError,
    CheckpointError,
    CheckpointFormatError,
    CheckpointTruncatedError,
    CheckpointVersionError,
    checkpoint,
    restore,
)
from repro.kernel.system import System
from repro.tools import ckpt as ckpt_cli


@pytest.fixture(scope="module")
def blob():
    system = System(n_cores=2, phys_frames=4096)
    proc = system.create_process("app")
    proc.mmap(8192, populate=True)
    return checkpoint(system).to_bytes()


def test_header_truncation(blob):
    with pytest.raises(CheckpointTruncatedError):
        Checkpoint.from_bytes(blob[:10])


def test_payload_truncation(blob):
    with pytest.raises(CheckpointTruncatedError):
        Checkpoint.from_bytes(blob[: len(blob) // 2])


def test_bad_magic(blob):
    with pytest.raises(CheckpointFormatError):
        Checkpoint.from_bytes(b"XXXX" + blob[4:])


def test_version_mismatch(blob):
    bumped = bytearray(blob)
    bumped[4:6] = struct.pack(">H", 99)
    with pytest.raises(CheckpointVersionError):
        Checkpoint.from_bytes(bytes(bumped))


def test_flipped_payload_byte(blob):
    flipped = bytearray(blob)
    flipped[-20] ^= 0xFF
    with pytest.raises(CheckpointChecksumError):
        Checkpoint.from_bytes(bytes(flipped))


def test_garbage_file(blob):
    with pytest.raises(CheckpointError):
        Checkpoint.from_bytes(b"\x00" * 4096)


def test_restore_refuses_damage(blob, tmp_path):
    """restore() on a damaged file raises before any machine exists."""
    path = tmp_path / "damaged.rckp"
    flipped = bytearray(blob)
    flipped[len(flipped) // 2] ^= 0x55
    path.write_bytes(bytes(flipped))
    with pytest.raises(CheckpointChecksumError):
        restore(str(path))


def test_every_error_is_a_checkpoint_error():
    for cls in (CheckpointFormatError, CheckpointVersionError,
                CheckpointChecksumError, CheckpointTruncatedError):
        assert issubclass(cls, CheckpointError)


def test_envelope_round_trip(blob, tmp_path):
    ck = Checkpoint.from_bytes(blob)
    path = tmp_path / "ok.rckp"
    ck.save(path)
    assert Checkpoint.load(str(path)).payload == ck.payload
    assert blob[:4] == MAGIC


def test_cli_verify_and_info(blob, tmp_path):
    good = tmp_path / "good.rckp"
    good.write_bytes(blob)
    bad = tmp_path / "bad.rckp"
    bad.write_bytes(blob[: len(blob) - 30])
    assert ckpt_cli.main(["verify", str(good)]) == 0
    assert ckpt_cli.main(["info", str(good)]) == 0
    assert ckpt_cli.main(["verify", str(bad)]) == 1
    assert ckpt_cli.main(["info", str(bad)]) == 1


def test_cli_selftest(tmp_path):
    out = tmp_path / "selftest.rckp"
    assert ckpt_cli.main(["selftest", "--seed", "2", "--plan", "mixed",
                          "-o", str(out)]) == 0
    assert not out.exists()  # cleaned up without --keep


# ------------------------------------------------- undecodable payloads
#
# The decode guard in format.load_bytes must be narrow: a checksum-valid
# envelope whose payload is not a pickle maps to CheckpointFormatError,
# but an exception raised *by* the payload's own reconstruction (a bug,
# not corruption) must propagate untouched.

def _envelope(blob_bytes):
    """A well-framed envelope around an arbitrary (even bogus) payload."""
    digest = hashlib.sha256(blob_bytes).digest()
    return ckpt_format._HEADER.pack(MAGIC, ckpt_format.VERSION,
                                    len(blob_bytes), digest) + blob_bytes


def _detonate():
    raise RuntimeError("armed payload")


class _Grenade:
    def __reduce__(self):
        return (_detonate, ())


def test_undecodable_payload_is_format_error():
    truncated_pickle = pickle.dumps({"a": 1})[:-1]
    with pytest.raises(CheckpointFormatError):
        ckpt_format.load_bytes(_envelope(truncated_pickle))


def test_payload_reconstruction_bug_propagates():
    blob_bytes = pickle.dumps(_Grenade(), protocol=pickle.HIGHEST_PROTOCOL)
    with pytest.raises(RuntimeError, match="armed payload"):
        ckpt_format.load_bytes(_envelope(blob_bytes))
