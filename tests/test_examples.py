"""Smoke tests: every shipped example must run to completion.

Examples are the advertised entry points; a refactor that silently breaks
one should fail CI, not a reader.  Each main() runs in-process (they are
all deterministic simulations printing a table).
"""

import contextlib
import importlib.util
import io
import pathlib

import pytest

EXAMPLES = sorted(
    p for p in (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)

#: The heavyweight sweeps run minutes; smoke-test the quick ones fully and
#: the heavy ones via import only.
RUN_FULLY = {"quickstart.py", "sanitizer_demo.py", "os_services.py",
             "proxy_pipeline.py"}


def _load(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example(path):
    module = _load(path)
    assert module.__doc__, "examples must explain themselves"
    assert hasattr(module, "main")
    if path.name in RUN_FULLY:
        buf = io.StringIO()
        with contextlib.redirect_stdout(buf):
            module.main()
        assert buf.getvalue().strip(), "examples must print their results"
