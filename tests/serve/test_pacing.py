"""Pacing spec parsing: policy selection, env fallback, typed errors."""

import pytest

from repro.serve.pacing import (
    DEFAULT_CYCLES_PER_SECOND,
    FreeRunning,
    LockstepGate,
    PacingSpecError,
    WallClockRatio,
    make_pacing,
)


def test_named_policies_parse():
    assert isinstance(make_pacing("free"), FreeRunning)
    assert isinstance(make_pacing("gate"), LockstepGate)
    ratio = make_pacing("ratio")
    assert isinstance(ratio, WallClockRatio)
    assert ratio.cycles_per_second == DEFAULT_CYCLES_PER_SECOND
    assert not ratio.deterministic
    assert make_pacing("gate").deterministic


def test_ratio_argument_parses_and_floats():
    assert make_pacing("ratio:1000").cycles_per_second == 1000.0
    assert make_pacing("ratio:2.5e6").cycles_per_second == 2.5e6


def test_policy_instance_passes_through():
    policy = LockstepGate()
    assert make_pacing(policy) is policy


def test_none_consults_environment(monkeypatch):
    monkeypatch.setenv("COPIER_PACING", "gate")
    assert isinstance(make_pacing(None), LockstepGate)
    monkeypatch.delenv("COPIER_PACING")
    assert isinstance(make_pacing(None), FreeRunning)


def test_unknown_policy_raises_typed_error():
    with pytest.raises(PacingSpecError) as exc_info:
        make_pacing("warp")
    err = exc_info.value
    assert err.spec == "warp"
    assert "free/ratio/gate" in err.reason
    # Compatibility: the typed error is still a ValueError.
    assert isinstance(err, ValueError)


def test_bad_ratio_value_raises_typed_error():
    with pytest.raises(PacingSpecError) as exc_info:
        make_pacing("ratio:fast")
    assert exc_info.value.spec == "ratio:fast"
    assert "not a number" in exc_info.value.reason


@pytest.mark.parametrize("spec", ["ratio:0", "ratio:-2.9e9"])
def test_non_positive_ratio_raises_typed_error(spec):
    with pytest.raises(PacingSpecError) as exc_info:
        make_pacing(spec)
    assert "positive" in exc_info.value.reason


def test_bad_env_spec_raises_typed_error(monkeypatch):
    monkeypatch.setenv("COPIER_PACING", "ratio:")
    # "ratio:" has an empty argument: that is the default-rate form.
    assert isinstance(make_pacing(None), WallClockRatio)
    monkeypatch.setenv("COPIER_PACING", "turbo")
    with pytest.raises(PacingSpecError):
        make_pacing(None)
