"""SimDriver: pacing policies, sessions, the lockstep gate, and the
driver stats surfaced through ``stats_snapshot()["serve"]``."""

import asyncio
import time

import pytest

from repro.serve import SimDriver, make_pacing
from repro.serve.pacing import (
    DEFAULT_CYCLES_PER_SECOND,
    FreeRunning,
    LockstepGate,
    WallClockRatio,
)
from repro.sim import Timeout, WaitEvent
from repro.tools import copierstat
from tests.copier.conftest import Setup

BUF = 16 * 1024


def _serve_setup(pacing, **driver_kwargs):
    from repro.serve.facade import AsyncCopier

    setup = Setup(n_frames=4096)
    driver = SimDriver(env=setup.env, service=setup.service, pacing=pacing,
                       idle_sleep=0.0005, gate_poll=0.005, **driver_kwargs)
    copier = AsyncCopier(driver, setup.client)
    return setup, driver, copier


def _buffers(setup, n=2, nbytes=BUF):
    bufs = [setup.aspace.mmap(nbytes, populate=True) for _ in range(n)]
    for i, buf in enumerate(bufs):
        setup.aspace.write(buf, bytes([i + 1]) * nbytes)
    return bufs


# ---------------------------------------------------------------- pacing


def test_make_pacing_specs():
    assert isinstance(make_pacing(None), FreeRunning)
    assert isinstance(make_pacing("free"), FreeRunning)
    assert isinstance(make_pacing("gate"), LockstepGate)
    ratio = make_pacing("ratio")
    assert isinstance(ratio, WallClockRatio)
    assert ratio.cycles_per_second == DEFAULT_CYCLES_PER_SECOND
    assert make_pacing("ratio:1e6").cycles_per_second == 1e6
    existing = LockstepGate()
    assert make_pacing(existing) is existing
    with pytest.raises(ValueError):
        make_pacing("bogus")
    assert make_pacing("gate").deterministic
    assert not make_pacing("free").deterministic


def test_make_pacing_env_default(monkeypatch):
    monkeypatch.setenv("COPIER_PACING", "ratio:5e7")
    pacing = make_pacing(None)
    assert isinstance(pacing, WallClockRatio)
    assert pacing.cycles_per_second == 5e7
    monkeypatch.setenv("COPIER_PACING", "gate")
    assert isinstance(make_pacing(None), LockstepGate)


# ------------------------------------------------------------------ free


def test_free_pacing_roundtrip_and_stats():
    setup, driver, copier = _serve_setup("free")
    src, dst = _buffers(setup)

    async def go():
        async with driver:
            task = await copier.amemcpy(dst, src, BUF)
            assert task.is_finished
            await copier.csync(dst, BUF)

    asyncio.run(go())
    assert bytes(setup.aspace.read(dst, BUF)) == bytes([1]) * BUF
    assert driver.parked_ops == 0
    assert driver.stats.ops_submitted == 2
    assert driver.stats.steps > 0

    # The driver rides along in the service snapshot and copierstat.
    snap = setup.service.stats_snapshot()
    assert snap["serve"]["pacing"] == "free"
    assert snap["serve"]["ops_resolved"] == 2
    assert snap["serve"]["parked"] == 0
    report = copierstat.render(snap)
    assert "serve: pacing=free" in report
    assert "2 submitted / 2 resolved (0 parked)" in report
    # Snapshots without a driver render unchanged.
    assert copierstat.render_serve(None) == []


def test_driver_requires_env():
    with pytest.raises(ValueError):
        SimDriver()


# ----------------------------------------------------------------- ratio


def test_ratio_pacing_tracks_wall_clock():
    # 100M cycles/s: the 2M-cycle timeout below needs >= ~20ms of wall
    # time, so completion proves the driver waited for the wall clock.
    setup, driver, copier = _serve_setup("ratio:1e8")

    def timed():
        yield Timeout(2_000_000)
        return "done"

    async def go():
        async with driver:
            t0 = time.monotonic()
            result = await copier.acall(lambda: timed())
            return result, time.monotonic() - t0

    result, wall = asyncio.run(go())
    assert result == "done"
    assert setup.env.now >= 2_000_000
    assert wall >= 0.005  # paced, not free-run (generous for slow CI)


# -------------------------------------------------------------- sessions


def test_duplicate_session_key_rejected():
    _setup, driver, _copier = _serve_setup("free")
    driver.session(("conn", 1))
    with pytest.raises(ValueError):
        driver.session(("conn", 1))


def test_closed_session_rejects_external():
    _setup, driver, _copier = _serve_setup("free")
    sess = driver.session(("conn", 2))
    sess.close()
    assert driver.sessions_live == 0
    sess.close()  # idempotent
    assert driver.stats.sessions_closed == 1

    async def go():
        coro = asyncio.sleep(0)
        with pytest.raises(RuntimeError):
            await sess.external(coro)
        coro.close()  # external() refused it before awaiting

    asyncio.run(go())


# ------------------------------------------------------------------ gate


async def _gate_run(n_workers, launch_order, jitter):
    """Closed-loop gate workload with host-visible scheduling noise.

    Returns the sim counters that must be identical no matter how the
    host interleaved the workers.
    """
    from repro.serve.facade import AsyncCopier

    setup = Setup(n_frames=4096)
    driver = SimDriver(env=setup.env, service=setup.service, pacing="gate",
                       expected_sessions=n_workers, gate_poll=0.005)
    copier = AsyncCopier(driver, setup.client)
    bufs = _buffers(setup, n=2 * n_workers, nbytes=BUF)

    async def worker(wid):
        if jitter:
            await asyncio.sleep(0.001 * ((wid * 7) % 3))
        sess = driver.session(("w", wid))
        src, dst = bufs[2 * wid], bufs[2 * wid + 1]
        try:
            for _ in range(3):
                await copier.amemcpy(dst, src, BUF, session=sess)
                await copier.csync(dst, BUF, session=sess)
        finally:
            sess.close()

    async with driver:
        await asyncio.gather(*[worker(wid) for wid in launch_order])

    assert driver.parked_ops == 0
    assert setup.service.leaked_pins() == 0
    for wid in range(n_workers):
        expected = bytes([2 * wid + 1]) * BUF
        assert bytes(setup.aspace.read(bufs[2 * wid + 1], BUF)) == expected
    return (setup.env.now, setup.env.events_executed, driver.stats.rounds,
            setup.client.stats.bytes_copied)


def test_gate_counters_ignore_host_scheduling():
    """Launch order and sleep jitter must not leak into sim counters."""
    n = 4
    a = asyncio.run(_gate_run(n, list(range(n)), jitter=False))
    b = asyncio.run(_gate_run(n, list(reversed(range(n))), jitter=True))
    assert a == b
    assert a[2] > 0  # the gate actually ran rounds


def test_gate_fails_waiters_when_sim_goes_idle():
    """An op the sim can never resolve must error out, not hang."""
    setup, driver, copier = _serve_setup("gate", expected_sessions=1)
    never = setup.env.event()

    def stuck():
        yield WaitEvent(never)

    async def go():
        sess = driver.session(("w", 0))
        try:
            async with driver:
                with pytest.raises(RuntimeError, match="went idle"):
                    await copier.acall(lambda: stuck(), session=sess)
        finally:
            sess.close()

    asyncio.run(go())
    assert driver.stats.rounds == 1
