"""The async-load benchmark driver: end-to-end runs, the leak audit, and
the gate-mode determinism contract the perf baseline is gated on.

Marked ``faultfree``: the determinism and exact-count assertions are
calibrated against a healthy machine (the perf-baseline harness disarms
the fault knobs the same way).
"""

import pytest

from repro.bench.async_load import main, run_async_load

pytestmark = pytest.mark.faultfree


def _counters(result):
    return (result["sim_cycles"], result["events"], result["sim_bytes"])


def test_async_load_gate_is_deterministic():
    a = run_async_load(n_clients=24, n_requests=2, value_len=4096,
                       pacing="gate")
    b = run_async_load(n_clients=24, n_requests=2, value_len=4096,
                       pacing="gate")
    assert _counters(a) == _counters(b)
    assert a["requests_served"] == 24 * 2 * 2
    assert a["errors"] == []
    assert a["parked"] == 0
    assert a["leaked_pins"] == 0
    assert a["serve"]["rounds"] > 0
    assert a["serve"]["pacing"] == "gate"
    assert a["sim_bytes"] >= 24 * 2 * 2 * 4096  # SET+GET both copy


def test_async_load_free_pacing_completes():
    result = run_async_load(n_clients=8, n_requests=1, value_len=4096,
                            pacing="free")
    assert result["requests_served"] == 16
    assert result["parked"] == 0
    assert result["leaked_pins"] == 0


def test_async_load_cli_smoke(capsys):
    assert main(["--clients", "4", "--requests", "1"]) == 0
    out = capsys.readouterr().out
    assert "async_load: 4 clients" in out
    assert "leaked pins 0" in out
