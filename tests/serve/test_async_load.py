"""The async-load benchmark driver: end-to-end runs, the leak audit, and
the gate-mode determinism contract the perf baseline is gated on.

Marked ``faultfree``: the determinism and exact-count assertions are
calibrated against a healthy machine (the perf-baseline harness disarms
the fault knobs the same way).
"""

import asyncio

import pytest

from repro.apps.common import HEADER_LEN, KEY_LEN, decode_header
from repro.bench.async_load import _client, main, run_async_load

pytestmark = pytest.mark.faultfree


def _counters(result):
    return (result["sim_cycles"], result["events"], result["sim_bytes"])


def test_async_load_gate_is_deterministic():
    a = run_async_load(n_clients=24, n_requests=2, value_len=4096,
                       pacing="gate")
    b = run_async_load(n_clients=24, n_requests=2, value_len=4096,
                       pacing="gate")
    assert _counters(a) == _counters(b)
    assert a["requests_served"] == 24 * 2 * 2
    assert a["errors"] == []
    assert a["parked"] == 0
    assert a["leaked_pins"] == 0
    assert a["serve"]["rounds"] > 0
    assert a["serve"]["pacing"] == "gate"
    assert a["sim_bytes"] >= 24 * 2 * 2 * 4096  # SET+GET both copy


def test_async_load_free_pacing_completes():
    result = run_async_load(n_clients=8, n_requests=1, value_len=4096,
                            pacing="free")
    assert result["requests_served"] == 16
    assert result["parked"] == 0
    assert result["leaked_pins"] == 0


def test_async_load_cli_smoke(capsys):
    assert main(["--clients", "4", "--requests", "1"]) == 0
    out = capsys.readouterr().out
    assert "async_load: 4 clients" in out
    assert "leaked pins 0" in out


async def _toy_server(serve_pairs, abort_mid_reply=False):
    """A minimal Redis-framing server that serves ``serve_pairs``
    SET+GET pairs per connection and then abruptly drops the socket —
    modeling a server tearing connections down during shutdown."""
    db = {}

    async def handle(reader, writer):
        await reader.readexactly(4)  # hello
        try:
            for _ in range(serve_pairs * 2):
                meta = await reader.readexactly(HEADER_LEN + KEY_LEN)
                op, key, value_len = decode_header(meta)
                if op == "SET":
                    db[bytes(key)] = await reader.readexactly(value_len)
                    writer.write(b"+" + (0).to_bytes(8, "little"))
                else:
                    val = db[bytes(key)]
                    writer.write(b"+" + len(val).to_bytes(8, "little") + val)
                await writer.drain()
            if abort_mid_reply:
                # One more request gets a truncated reply: status byte
                # only, then the connection dies.
                await reader.readexactly(HEADER_LEN + KEY_LEN)
                writer.write(b"+")
                await writer.drain()
        except asyncio.IncompleteReadError:
            pass
        writer.transport.abort()  # RST, not FIN: a hard reset

    return await asyncio.start_server(handle, "127.0.0.1", 0)


def test_post_verification_disconnect_is_benign():
    """A reset after every received byte was verified is not a failure."""
    async def go():
        server = await _toy_server(serve_pairs=1)
        port = server.sockets[0].getsockname()[1]
        errors, resets = [], []
        # The client wants 3 pairs but the server hangs up after 1: the
        # drop lands at a reply boundary, with 2 requests verified.
        verified = await _client(port, 0, 3, 4096, errors, resets)
        server.close()
        await server.wait_closed()
        assert errors == []
        assert len(resets) == 1 and "after 2 verified" in resets[0]
        assert verified == 2
    asyncio.run(go())


def test_mid_reply_truncation_is_still_a_failure():
    """A reset that truncates a reply mid-read keeps failing the audit."""
    async def go():
        server = await _toy_server(serve_pairs=1, abort_mid_reply=True)
        port = server.sockets[0].getsockname()[1]
        errors, resets = [], []
        verified = await _client(port, 0, 3, 4096, errors, resets)
        server.close()
        await server.wait_closed()
        assert resets == []
        assert len(errors) == 1 and "mid-reply" in errors[0]
        assert verified == 2
    asyncio.run(go())
