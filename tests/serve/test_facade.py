"""AsyncCopier: outcome mapping from task retirement to awaited results.

These tests drive the simulator *manually* (``env.run()`` from the test
coroutine, no driver task) so the interleaving between submission, fault
injection and stepping is fully deterministic: under ``free`` pacing the
facade spawns generators at submit time, futures resolve from inside sim
execution, and a plain ``env.run()`` settles everything.
"""

import asyncio

import pytest

from repro.copier.errors import (
    AdmissionReject,
    CopyAborted,
    DeadlineMissed,
    TaskEFault,
)
from repro.serve import SimDriver
from repro.serve.facade import AsyncCopier
from repro.sim import Compute
from tests.copier.conftest import Setup

BUF = 16 * 1024


def drive(gen):
    """Run a submission generator inline: tasks land in the queues but
    nothing ingests them yet (same helper as the lifecycle tests)."""
    try:
        while True:
            next(gen)
    except StopIteration as stop:
        return stop.value


@pytest.fixture
def serve():
    # Pin the admission policy: under the overload-soak environment a
    # deadline-feasible valve would reject the 1-cycle-deadline task at
    # submit, masking the retirement outcome this file is about.
    setup = Setup(n_frames=4096, admission="always")
    driver = SimDriver(env=setup.env, service=setup.service, pacing="free")
    return setup, driver, AsyncCopier(driver, setup.client)


def _buffers(setup, n=2, nbytes=BUF):
    bufs = [setup.aspace.mmap(nbytes, populate=True) for _ in range(n)]
    for i, buf in enumerate(bufs):
        setup.aspace.write(buf, bytes([i + 1]) * nbytes)
    return bufs


async def _settle(env, *futures):
    """Let submissions reach the facade, then run the sim to quiescence."""
    await asyncio.sleep(0)
    env.run()
    return futures


def test_amemcpy_resolves_with_retired_task(serve):
    setup, _driver, copier = serve
    src, dst = _buffers(setup)

    async def go():
        t = asyncio.create_task(copier.amemcpy(dst, src, BUF))
        await _settle(setup.env, t)
        return await t

    task = asyncio.run(go())
    assert task.is_finished
    assert bytes(setup.aspace.read(dst, BUF)) == bytes([1]) * BUF


def test_csync_and_acall_deliver_return_values(serve):
    setup, _driver, copier = serve
    src, dst = _buffers(setup)

    def compute():
        yield Compute(10)
        return 42

    async def go():
        a = asyncio.create_task(copier.amemcpy(dst, src, BUF))
        s = asyncio.create_task(copier.csync(dst, BUF))
        c = asyncio.create_task(copier.acall(lambda: compute()))
        await _settle(setup.env, a, s, c)
        return await a, await s, await c

    _task, synced, value = asyncio.run(go())
    assert synced == BUF
    assert value == 42


def test_deadline_miss_raises_deadline_missed(serve):
    setup, _driver, copier = serve
    src, dst = _buffers(setup)

    async def go():
        t = asyncio.create_task(copier.amemcpy(dst, src, BUF,
                                               timeout_cycles=1))
        await _settle(setup.env, t)
        with pytest.raises(DeadlineMissed):
            await t

    asyncio.run(go())
    assert setup.client.stats.deadline_misses == 1


def test_acancel_aborts_the_parked_awaiter(serve):
    setup, _driver, copier = serve
    src, dst = _buffers(setup)

    async def go():
        # A lazy copy sits pending until the lazy period (2M cycles)
        # elapses — cancel it long before that.
        t = asyncio.create_task(copier.amemcpy(dst, src, BUF, lazy=True))
        await asyncio.sleep(0)                    # submit + spawn
        setup.env.step(max_cycles=10_000)         # queued, not kicked in
        c = asyncio.create_task(copier.acancel(dst, BUF))
        await _settle(setup.env, c)
        assert await c == 1
        with pytest.raises(CopyAborted):
            await t

    asyncio.run(go())
    assert setup.client.stats.cancelled == 1
    assert setup.aspace.pins_outstanding() == 0


def test_efault_propagates_through_csync(serve):
    setup, _driver, copier = serve
    src, dst = _buffers(setup)
    drive(setup.client.amemcpy(dst, src, BUF))  # queued, not ingested
    setup.aspace.munmap(src, BUF)               # source vanishes mid-flight

    async def go():
        t = asyncio.create_task(copier.csync(dst, BUF))
        await _settle(setup.env, t)
        with pytest.raises(TaskEFault):
            await t

    asyncio.run(go())
    assert setup.client.stats.efault_tasks == 1
    assert setup.aspace.pins_outstanding() == 0


def test_admission_reject_delivered_to_awaiter(serve):
    setup, driver, copier = serve
    src, dst = _buffers(setup)
    setup.service.draining = True

    async def go():
        t = asyncio.create_task(copier.amemcpy(dst, src, BUF))
        await _settle(setup.env, t)
        with pytest.raises(AdmissionReject):
            await t

    asyncio.run(go())
    # The submission failed *inside the sim*; the driver's books balance.
    assert driver.parked_ops == 0


def test_typed_sim_error_is_delivered_to_awaiter(serve):
    setup, _driver, copier = serve
    from repro.copier.queues import QueueFull

    def boom():
        yield Compute(10)
        raise QueueFull("synthetic backpressure")

    async def go():
        t = asyncio.create_task(copier.acall(lambda: boom()))
        await _settle(setup.env, t)
        with pytest.raises(QueueFull):
            await t

    asyncio.run(go())


def test_non_sim_error_is_not_swallowed_into_the_future(serve):
    # A bug in user code (here a ZeroDivisionError) must unwind the
    # simulator loudly instead of masquerading as a failed copy op:
    # the blanket ``except Exception`` this guards against would have
    # parked it in the future and kept the driver stepping.
    setup, _driver, copier = serve

    def buggy():
        yield Compute(10)
        return 1 // 0

    async def go():
        t = asyncio.create_task(copier.acall(lambda: buggy()))
        await asyncio.sleep(0)
        with pytest.raises(ZeroDivisionError):
            setup.env.run()
        assert not t.done()   # the op future never absorbed the bug
        t.cancel()

    asyncio.run(go())
