"""Socket frontends: real TCP round-trips through simulated copies.

Each test boots a server on an ephemeral localhost port, talks the wire
protocol with plain asyncio streams, and verifies the bytes that come
back went through the sim's copy plane.  The gate-determinism test is
marked ``faultfree``: it compares exact sim counters between two runs,
a calibration that holds only on a healthy machine.
"""

import asyncio

import pytest

from repro.apps import memcachedapp
from repro.apps.common import encode_get, encode_set
from repro.kernel.system import System
from repro.serve import (
    MemcachedSocketServer,
    RedisSocketServer,
    SimDriver,
    encode_hello,
)

VALUE = 8 * 1024


async def _redis_request(reader, writer, payload):
    writer.write(payload)
    await writer.drain()
    status = await reader.readexactly(1)
    length = int.from_bytes(await reader.readexactly(8), "little")
    data = await reader.readexactly(length) if length else b""
    return status, data


def test_redis_socket_set_get_roundtrip():
    async def go():
        system = System(n_cores=4)
        driver = SimDriver(system=system, pacing="free")
        server = RedisSocketServer(system, driver, max_conns=4,
                                   conn_buf_bytes=16 * 1024,
                                   store_bytes=64 * 1024)
        async with driver:
            port = await server.start()
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(encode_hello(0))

            val = bytes([7]) * VALUE
            status, _ = await _redis_request(
                reader, writer, encode_set(b"alpha", VALUE) + val)
            assert status == b"+"
            status, data = await _redis_request(
                reader, writer, encode_get(b"alpha"))
            assert status == b"+" and data == val

            # Overwrite, then read back the new value.
            val2 = bytes([9]) * VALUE
            await _redis_request(reader, writer,
                                 encode_set(b"alpha", VALUE) + val2)
            status, data = await _redis_request(
                reader, writer, encode_get(b"alpha"))
            assert status == b"+" and data == val2

            # Miss: never-set key.
            status, data = await _redis_request(
                reader, writer, encode_get(b"nosuch"))
            assert status == b"-" and data == b""

            writer.close()
            await writer.wait_closed()
            await server.stop()
        assert server.requests_served == 5
        assert driver.parked_ops == 0
        assert system.leaked_pins() == 0
        system.copier.shutdown()

    asyncio.run(go())


def test_redis_socket_rejects_bad_hello():
    async def go():
        system = System(n_cores=4)
        driver = SimDriver(system=system, pacing="free")
        server = RedisSocketServer(system, driver, max_conns=2,
                                   conn_buf_bytes=4096, store_bytes=4096)
        async with driver:
            port = await server.start()
            # cid out of range: the server drops the connection.
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(encode_hello(99))
            assert await reader.read(1) == b""  # EOF
            writer.close()
            # A duplicate cid while the first holder is live is dropped too.
            r1, w1 = await asyncio.open_connection("127.0.0.1", port)
            w1.write(encode_hello(0))
            w1.write(encode_get(b"x"))  # forces the session to register
            await w1.drain()
            await r1.readexactly(9)  # miss reply: session 0 is now live
            r2, w2 = await asyncio.open_connection("127.0.0.1", port)
            w2.write(encode_hello(0))
            assert await r2.read(1) == b""
            w2.close()
            w1.close()
            await server.stop()
        assert server.rejected_conns == 2
        system.copier.shutdown()

    asyncio.run(go())


def test_memcached_socket_set_and_multiget():
    async def go():
        system = System(n_cores=4)
        driver = SimDriver(system=system, pacing="free")
        server = MemcachedSocketServer(system, driver, max_conns=4,
                                       n_shards=2,
                                       conn_buf_bytes=64 * 1024,
                                       slot_bytes=16 * 1024)
        values = {kid: bytes([kid + 1]) * (4096 * (kid + 1))
                  for kid in range(3)}

        async def rpc(reader, writer, body):
            writer.write(len(body).to_bytes(4, "little") + body)
            await writer.drain()
            length = int.from_bytes(await reader.readexactly(4), "little")
            return await reader.readexactly(length) if length else b""

        async with driver:
            port = await server.start()
            # Writers land on different shards (cid % n_shards).
            conns = []
            for cid in range(2):
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port)
                writer.write(encode_hello(cid))
                conns.append((reader, writer))
            for kid, val in values.items():
                reader, writer = conns[kid % 2]
                assert await rpc(reader, writer,
                                 memcachedapp.encode_set(kid, val)) == b"OK"
            # One MGET gathers all three values through one csync.
            reader, writer = conns[0]
            reply = await rpc(reader, writer,
                              memcachedapp.encode_mget(list(values)))
            assert reply == b"".join(values[k] for k in values)
            # A miss yields an empty reply.
            assert await rpc(reader, writer,
                             memcachedapp.encode_mget([200])) == b""
            for _reader, writer in conns:
                writer.close()
                await writer.wait_closed()
            await server.stop()
        assert server.requests_served == 5
        assert driver.parked_ops == 0
        assert system.leaked_pins() == 0
        system.copier.shutdown()

    asyncio.run(go())


async def _gate_socket_run(n_clients, launch_order, jitter):
    """Socket clients under the gate; returns the sim counters."""
    system = System(n_cores=4)
    driver = SimDriver(system=system, pacing="gate",
                       expected_sessions=n_clients, gate_poll=0.005)
    server = RedisSocketServer(system, driver, max_conns=n_clients,
                               conn_buf_bytes=16 * 1024,
                               store_bytes=64 * 1024)

    async def client(cid):
        if jitter:
            await asyncio.sleep(0.001 * ((cid * 5) % 3))
        reader, writer = await asyncio.open_connection("127.0.0.1",
                                                       server.port)
        writer.write(encode_hello(cid))
        key = b"k%03d" % cid
        for r in range(2):
            val = bytes([(cid + r) % 255 + 1]) * VALUE
            status, _ = await _redis_request(
                reader, writer, encode_set(key, VALUE) + val)
            assert status == b"+"
            status, data = await _redis_request(reader, writer,
                                                encode_get(key))
            assert status == b"+" and data == val
        writer.close()
        await writer.wait_closed()

    async with driver:
        await server.start()
        await asyncio.gather(*[client(cid) for cid in launch_order])
        await server.stop()
    assert driver.parked_ops == 0
    assert system.leaked_pins() == 0
    counters = (system.env.now, system.env.events_executed,
                driver.stats.rounds, server.proc.client.stats.bytes_copied)
    system.copier.shutdown()
    return counters


@pytest.mark.faultfree
def test_gate_socket_counters_are_run_stable():
    """Wall-clock arrival order must not leak into the sim counters."""
    n = 6
    a = asyncio.run(_gate_socket_run(n, list(range(n)), jitter=False))
    b = asyncio.run(_gate_socket_run(n, list(reversed(range(n))),
                                     jitter=True))
    assert a == b
    assert a[2] > 0
