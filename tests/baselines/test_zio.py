"""zIO model unit tests (§2.2 characterization)."""

import pytest

from repro.baselines.zio import ZIO
from repro.kernel import System
from repro.mem.phys import PAGE_SIZE


def _mk():
    system = System(n_cores=2, copier=False, phys_frames=65536)
    proc = system.create_process("zio-app")
    return system, proc, ZIO(system, proc)


def _run(system, proc, gen):
    p = proc.spawn(gen, affinity=0)
    system.env.run_until(p.terminated, limit=50_000_000_000)
    return p.result


class TestThresholds:
    def test_below_threshold_copies_synchronously(self):
        system, proc, zio = _mk()
        a = proc.mmap(8192, populate=True)
        b = proc.mmap(8192, populate=True)
        proc.write(a, b"small")

        def gen():
            yield from zio.copy(b, a, 2048)

        _run(system, proc, gen())
        assert zio.stats["sync"] == 1
        assert proc.read(b, 5) == b"small"

    def test_above_threshold_defers(self):
        system, proc, zio = _mk()
        a = proc.mmap(16384, populate=True)
        b = proc.mmap(16384, populate=True)
        proc.write(a, b"\x42" * 16384)

        def gen():
            yield from zio.copy(b, a, 16384)

        _run(system, proc, gen())
        assert zio.stats["indirect"] == 1
        # Data NOT materialized yet.
        assert proc.read(b, 4) == b"\x00" * 4

    def test_steal_path_for_aligned_large(self):
        system, proc, zio = _mk()
        n = zio.STEAL_MIN
        a = proc.mmap(n, populate=True)
        b = proc.mmap(n, populate=True)
        proc.write(a, b"\x77" * n)

        def gen():
            yield from zio.copy(b, a, n)

        _run(system, proc, gen())
        assert zio.stats["steal"] == 1
        assert proc.read(b, n) == b"\x77" * n  # remap effect is immediate


class TestMaterialization:
    def test_touch_read_materializes(self):
        system, proc, zio = _mk()
        a = proc.mmap(16384, populate=True)
        b = proc.mmap(16384, populate=True)
        proc.write(a, b"\x55" * 16384)

        def gen():
            yield from zio.copy(b, a, 16384)
            yield from zio.touch_read(b, 100)
            return proc.read(b, 16384)

        assert _run(system, proc, gen()) == b"\x55" * 16384
        assert zio.stats["fault_copies"] == 1

    def test_source_overwrite_forces_copy_first(self):
        """The Redis input-buffer case: overwriting the source of a
        pending indirection materializes it with the OLD data."""
        system, proc, zio = _mk()
        a = proc.mmap(16384, populate=True)
        b = proc.mmap(16384, populate=True)
        proc.write(a, b"\x11" * 16384)

        def gen():
            yield from zio.copy(b, a, 16384)
            yield from zio.before_write(a, 16384)
            proc.write(a, b"\x99" * 16384)
            return proc.read(b, 16384)

        assert _run(system, proc, gen()) == b"\x11" * 16384
        assert zio.stats["fault_copies"] == 1

    def test_dst_overwrite_drops_indirection(self):
        system, proc, zio = _mk()
        a = proc.mmap(16384, populate=True)
        b = proc.mmap(16384, populate=True)

        def gen():
            yield from zio.copy(b, a, 16384)
            yield from zio.before_write(b, 16384)

        _run(system, proc, gen())
        assert zio.stats["dropped"] == 1
        assert zio.stats["fault_copies"] == 0


class TestSendInterposition:
    def test_send_source_resolves_indirection(self):
        system, proc, zio = _mk()
        a = proc.mmap(16384, populate=True)
        b = proc.mmap(16384, populate=True)

        def gen():
            yield from zio.copy(b, a, 16384)

        _run(system, proc, gen())
        src, ind = zio.send_source(b, 16384)
        assert src == a
        assert ind is not None
        zio.drop(ind)
        assert zio.stats["dropped"] == 1

    def test_send_source_passthrough_without_indirection(self):
        _system, _proc, zio = _mk()
        src, ind = zio.send_source(0x5000, 1024)
        assert src == 0x5000
        assert ind is None
