"""Repo-wide pytest options and fixtures.

``--slow`` opts into the long-running fuzz campaigns (tests marked
``@pytest.mark.slow``); without it they are skipped so tier-1 stays fast.

``@pytest.mark.faultfree`` disarms environment-driven fault injection
(``COPIER_FAULT_PLAN``) for tests whose assertions only hold on a
healthy machine — calibrated performance comparisons and
keeps-up-with-load invariants.  CI's fault-soak job runs the whole suite
with the mixed plan armed; correctness tests must pass under it, and
only these explicitly-marked tests opt out.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption("--slow", action="store_true", default=False,
                     help="run the opt-in slow fuzz campaigns")


def pytest_collection_modifyitems(config, items):
    if config.getoption("--slow"):
        return
    skip_slow = pytest.mark.skip(reason="slow fuzz campaign; pass --slow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


@pytest.fixture(autouse=True)
def _disarm_faults_when_marked(request, monkeypatch):
    if "faultfree" in request.keywords:
        monkeypatch.delenv("COPIER_FAULT_PLAN", raising=False)
        monkeypatch.delenv("COPIER_FAULT_SEED", raising=False)
