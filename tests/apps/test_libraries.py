"""Protobuf / OpenSSL / zlib / Avcodec app tests (§6.2.3, §6.2.4)."""

import pytest

from repro.apps.avcodec import VideoDecoder, measure_energy
from repro.apps.openssllib import SSLReader, encrypt
from repro.apps.protobuf import ProtobufReceiver, deserialize_bytes, serialize
from repro.apps.zlibapp import Deflater
from repro.hw.params import phone_params
from repro.kernel import System
from repro.kernel.net import send, socket_pair


def _send_message(system, payload, sock_tx):
    sender = system.create_process("msg-sender")
    buf = sender.mmap(len(payload), populate=True)
    sender.write(buf, payload)

    def gen():
        yield from send(system, sender, sock_tx, buf, len(payload))

    return sender.spawn(gen(), affinity=1)


class TestProtobuf:
    def test_serialize_roundtrip_pure(self):
        fields = [b"alpha", b"x" * 1000, b"tail"]
        assert deserialize_bytes(serialize(fields)) == fields

    @pytest.mark.parametrize("mode", ["sync", "copier"])
    def test_recv_deserialize_fields(self, mode):
        system = System(n_cores=3, copier=(mode == "copier"),
                        phys_frames=32768)
        rx_side, tx_side = socket_pair(system)
        fields = [bytes([i % 200]) * 1020 for i in range(16)]
        payload = serialize(fields)
        receiver = ProtobufReceiver(system, mode=mode)
        _send_message(system, payload, tx_side)

        def gen():
            return (yield from receiver.recv_and_deserialize(
                rx_side, len(payload)))

        p = receiver.proc.spawn(gen(), affinity=0)
        system.env.run_until(p.terminated, limit=5_000_000_000)
        latency, got = p.result
        assert got == fields
        assert latency > 0

    @pytest.mark.faultfree
    def test_copier_reduces_deserialize_latency(self):
        results = {}
        for mode in ("sync", "copier"):
            system = System(n_cores=3, copier=(mode == "copier"),
                            phys_frames=32768)
            rx_side, tx_side = socket_pair(system)
            payload = serialize([b"z" * 1020] * 16)  # ~16 KB
            receiver = ProtobufReceiver(system, mode=mode)
            _send_message(system, payload, tx_side)
            p = receiver.proc.spawn(
                receiver.recv_and_deserialize(rx_side, len(payload)),
                affinity=0)
            system.env.run_until(p.terminated, limit=5_000_000_000)
            results[mode] = p.result[0]
        assert results["copier"] < results["sync"]


class TestOpenSSL:
    @pytest.mark.parametrize("mode", ["sync", "copier"])
    def test_decrypts_correctly(self, mode):
        system = System(n_cores=3, copier=(mode == "copier"),
                        phys_frames=32768)
        rx_side, tx_side = socket_pair(system)
        plaintext = bytes(range(256)) * 32  # 8 KB
        _send_message(system, encrypt(plaintext), tx_side)
        reader = SSLReader(system, mode=mode)
        p = reader.proc.spawn(reader.ssl_read(rx_side, len(plaintext)),
                              affinity=0)
        system.env.run_until(p.terminated, limit=5_000_000_000)
        _latency, got = p.result
        assert got == plaintext

    @pytest.mark.faultfree
    def test_copier_gain_modest_and_flat_beyond_16k(self):
        """Decrypt dominates: small gain, flat past the TLS record cap."""
        def run(mode, nbytes):
            system = System(n_cores=3, copier=(mode == "copier"),
                            phys_frames=65536)
            rx_side, tx_side = socket_pair(system)
            plaintext = b"\x21" * nbytes
            # Pre-send all records.
            sender = system.create_process("s")
            buf = sender.mmap(nbytes, populate=True)
            sender.write(buf, encrypt(plaintext))

            def feed():
                pos = 0
                while pos < nbytes:
                    rec = min(16 * 1024, nbytes - pos)
                    yield from send(system, sender, tx_side, buf + pos, rec)
                    pos += rec

            sender.spawn(feed(), affinity=1)
            reader = SSLReader(system, mode=mode)
            p = reader.proc.spawn(reader.ssl_read(rx_side, nbytes),
                                  affinity=0)
            system.env.run_until(p.terminated, limit=20_000_000_000)
            return p.result[0]

        gains = {}
        for nbytes in (16 * 1024, 64 * 1024):
            gains[nbytes] = 1 - run("copier", nbytes) / run("sync", nbytes)
        assert 0 < gains[16 * 1024] < 0.25
        # Flat: the per-record pipeline caps the win.
        assert abs(gains[64 * 1024] - gains[16 * 1024]) < 0.08


class TestZlib:
    @pytest.mark.parametrize("mode", ["sync", "copier"])
    def test_deflate_compresses(self, mode):
        import zlib as _zlib

        system = System(n_cores=3, copier=(mode == "copier"),
                        phys_frames=65536)
        deflater = Deflater(system, mode=mode)
        data = b"repetitive " * 4000  # ~44 KB
        p = deflater.proc.spawn(deflater.deflate(data), affinity=0)
        system.env.run_until(p.terminated, limit=20_000_000_000)
        _latency, compressed = p.result
        assert _zlib.decompress(compressed) == data

    def test_copier_speeds_up_deflate(self):
        def run(mode):
            system = System(n_cores=3, copier=(mode == "copier"),
                            phys_frames=65536)
            deflater = Deflater(system, mode=mode)
            data = bytes([i % 97 for i in range(256 * 1024)])
            p = deflater.proc.spawn(deflater.deflate(data), affinity=0)
            system.env.run_until(p.terminated, limit=50_000_000_000)
            return p.result[0]

        sync_lat = run("sync")
        copier_lat = run("copier")
        assert copier_lat < sync_lat
        assert 1 - copier_lat / sync_lat < 0.30  # modest, like the paper


class TestAvcodec:
    def _run(self, mode, n_frames=6):
        params = phone_params()
        system = System(n_cores=3, params=params,
                        copier=(mode == "copier"),
                        copier_kwargs={"polling": "scenario"},
                        phys_frames=65536)
        decoder = VideoDecoder(system, mode=mode, frame_bytes=1 << 20)
        p = decoder.proc.spawn(decoder.decode_stream(n_frames), affinity=0)
        system.env.run_until(p.terminated, limit=200_000_000_000)
        return system, decoder

    def test_decode_produces_frames(self):
        _system, decoder = self._run("sync")
        assert len(decoder.latencies) == 6

    def test_copier_cuts_frame_latency_slightly(self):
        """Fig. 13-c: 3-10 % per-frame latency reduction on the phone."""
        _s1, sync_dec = self._run("sync")
        _s2, cop_dec = self._run("copier")
        gain = 1 - cop_dec.mean_latency / sync_dec.mean_latency
        assert 0.0 < gain < 0.25

    def test_scenario_polling_limits_energy_overhead(self):
        """Energy increase stays marginal (paper: +0.07-0.29 %) because the
        Copier thread sleeps outside the decode scenario."""
        s_sync, _d1 = self._run("sync")
        s_cop, _d2 = self._run("copier")
        e_sync = measure_energy(s_sync)
        e_cop = measure_energy(s_cop)
        assert e_cop < e_sync * 1.10

    def test_scenario_thread_asleep_after_stream(self):
        system, _decoder = self._run("copier")
        assert system.copier.scenario_active is False
