"""RPC framework tests (§5.1.1's framework-port case study)."""

import pytest

from repro.apps.rpc import (
    RpcChannel,
    RpcServer,
    decode_header,
    encode_request,
    run_rpc_benchmark,
)
from repro.kernel import System
from repro.kernel.net import socket_pair


def _mk(mode):
    return System(n_cores=4, copier=(mode == "copier"), phys_frames=131072)


class TestWireFormat:
    def test_header_roundtrip(self):
        msg = encode_request(7, 42, b"payload")
        method, request, length = decode_header(msg)
        assert (method, request, length) == (7, 42, 7)

    def test_empty_payload(self):
        msg = encode_request(1, 1, b"")
        assert decode_header(msg)[2] == 0


@pytest.mark.parametrize("mode", ["sync", "copier"])
def test_unary_call_roundtrip(mode):
    system = _mk(mode)
    server = RpcServer(system, mode=mode)
    server.register(5, lambda fields: [f.upper() for f in fields])
    c2s_tx, c2s_rx = socket_pair(system)
    s2c_tx, s2c_rx = socket_pair(system)
    channel = RpcChannel(system, c2s_tx, s2c_rx)
    system.env.spawn(server.worker(c2s_rx, s2c_tx, 1), affinity=0)

    def client():
        return (yield from channel.call(5, [b"hello", b"rpc"]))

    p = channel.proc.spawn(client(), affinity=1)
    system.env.run_until(p.terminated, limit=50_000_000_000)
    assert p.result == [b"HELLO", b"RPC"]
    assert server.served == 1


def test_multiple_connections_independent():
    system = _mk("copier")
    server, mean, _elapsed = run_rpc_benchmark(system, "copier", 8192,
                                               n_requests=5,
                                               n_connections=3)
    assert server.served == 15
    assert mean > 0


def test_request_ids_match_replies():
    """Sequential calls on one channel stay correctly correlated."""
    system = _mk("sync")
    server = RpcServer(system, mode="sync")
    server.register(1, lambda fields: [fields[0] + b"!"])
    c2s_tx, c2s_rx = socket_pair(system)
    s2c_tx, s2c_rx = socket_pair(system)
    channel = RpcChannel(system, c2s_tx, s2c_rx)
    system.env.spawn(server.worker(c2s_rx, s2c_tx, 3), affinity=0)

    def client():
        out = []
        for word in (b"a", b"bb", b"ccc"):
            reply = yield from channel.call(1, [word])
            out.append(reply[0])
        return out

    p = channel.proc.spawn(client(), affinity=1)
    system.env.run_until(p.terminated, limit=50_000_000_000)
    assert p.result == [b"a!", b"bb!", b"ccc!"]


def test_copier_framework_port_beats_baseline():
    """The framework port pays off for apps above it (§5.1.1)."""
    results = {}
    for mode in ("sync", "copier"):
        system = _mk(mode)
        _server, mean, _elapsed = run_rpc_benchmark(
            system, mode, 32 * 1024, n_requests=8, n_connections=2)
        results[mode] = mean
    assert results["copier"] < results["sync"], results


def test_handlers_see_plain_fields():
    """Apps above the framework never touch Copier APIs."""
    seen = []
    system = _mk("copier")
    server = RpcServer(system, mode="copier")
    server.register(9, lambda fields: (seen.append(list(fields)) or fields))
    c2s_tx, c2s_rx = socket_pair(system)
    s2c_tx, s2c_rx = socket_pair(system)
    channel = RpcChannel(system, c2s_tx, s2c_rx)
    system.env.spawn(server.worker(c2s_rx, s2c_tx, 1), affinity=0)

    def client():
        yield from channel.call(9, [b"plain", b"bytes"])

    p = channel.proc.spawn(client(), affinity=1)
    system.env.run_until(p.terminated, limit=50_000_000_000)
    assert seen == [[b"plain", b"bytes"]]
