"""TinyProxy tests (§6.2.2)."""

import pytest

from repro.apps.tinyproxy import TinyProxy, run_forwarding
from repro.kernel import System
from repro.kernel.net import recv, send, socket_pair


def _pipeline(mode, msg_bytes, n_messages=6, n_cores=4):
    system = System(n_cores=n_cores, copier=(mode == "copier"),
                    phys_frames=65536)
    total, elapsed, proxies, procs = run_forwarding(
        system, mode, msg_bytes, n_messages)
    return system, total, elapsed, proxies, procs


@pytest.mark.parametrize("mode", ["sync", "copier", "zio"])
def test_forwarding_delivers_payload_intact(mode):
    msg = 16 * 1024
    system, total, elapsed, proxies, procs = _pipeline(mode, msg)
    _wp, sink_p = procs[0]
    assert sink_p.result == bytes([0x42]) * msg
    assert proxies[0].forwarded == 6


def test_copier_improves_forwarding_throughput():
    """Fig. 12-a: Copier lifts proxy throughput via the 3-into-1 copy."""
    msg = 16 * 1024
    _s1, total1, elapsed1, _p1, _ = _pipeline("sync", msg, n_messages=12)
    _s2, total2, elapsed2, _p2, _ = _pipeline("copier", msg, n_messages=12)
    sync_mps = total1 / elapsed1
    copier_mps = total2 / elapsed2
    assert copier_mps > sync_mps


def test_copier_absorbs_the_chain():
    """The forwarded bytes short-circuit kernel→kernel (§4.4)."""
    msg = 32 * 1024
    system, _t, _e, proxies, _ = _pipeline("copier", msg)
    stats = proxies[0].proc.client.stats
    assert stats.bytes_absorbed > msg  # several messages' worth absorbed


def test_zio_user_copy_elimination_only():
    """zIO removes the user-space copy but cannot touch kernel copies."""
    msg = 32 * 1024
    system, _t, _e, proxies, _ = _pipeline("zio", msg)
    assert proxies[0].zio.stats["indirect"] > 0 or \
        proxies[0].zio.stats["sync"] == 0


def test_small_messages_fall_back_to_sync():
    msg = 512  # below copier_user_min_bytes
    system, total, elapsed, proxies, procs = _pipeline("copier", msg)
    _wp, sink_p = procs[0]
    assert sink_p.result == bytes([0x42]) * msg
    # No user-mode async copies were used.
    assert proxies[0].proc.client.stats.bytes_absorbed == 0


def test_multi_worker_scaling():
    """Fig. 12-b: more workers with per-process queues scale throughput."""
    msg = 8 * 1024

    def run(workers):
        system = System(n_cores=6, copier=True, phys_frames=131072)
        total, elapsed, _p, _ = run_forwarding(system, "copier", msg,
                                               n_messages=10,
                                               n_workers=workers)
        return total / elapsed

    one = run(1)
    four = run(4)
    assert four > one * 1.5
