"""Redis-like KV server tests (§6.2.1)."""

import pytest

from repro.apps.rediskv import RedisClient, RedisServer, run_benchmark
from repro.kernel import System


def _mk(mode):
    copier = mode == "copier"
    return System(n_cores=4, copier=copier, phys_frames=65536)


@pytest.mark.parametrize("mode", ["copier"])
@pytest.mark.parametrize("value_len", [256, 1024, 4096])
def test_small_value_roundtrip_below_breakeven(mode, value_len):
    """Values below the §4.6 break-even take the sync fallback paths but
    must still return correct data (the lazy recv is csynced first)."""
    system = _mk(mode)
    from repro.kernel.net import socket_pair

    server = RedisServer(system, mode=mode)
    listen_rx, listen_tx = socket_pair(system)
    reply_a, reply_b = socket_pair(system)
    client = RedisClient(system, 0, listen_tx, reply_b)
    client.proc.write(client.tx + 80, bytes([7]) * value_len)

    server.proc.spawn(server.serve(listen_rx, {0: reply_a}, 2), affinity=0)
    cp = client.proc.spawn(
        client.run([("SET", b"s", value_len), ("GET", b"s", value_len)]),
        affinity=1)
    system.env.run_until(cp.terminated, limit=10_000_000_000)
    assert client.proc.read(client.rx + 64, value_len) == bytes([7]) * value_len


@pytest.mark.parametrize("mode", ["sync", "copier", "zio", "ub"])
def test_set_get_roundtrip(mode):
    """A SET followed by a GET returns the stored value in every mode."""
    system = _mk(mode)
    from repro.kernel.net import socket_pair

    server = RedisServer(system, mode=mode)
    listen_rx, listen_tx = socket_pair(system)
    reply_a, reply_b = socket_pair(system)
    client = RedisClient(system, 0, listen_tx, reply_b)
    value_len = 16 * 1024

    server_proc = server.proc.spawn(
        server.serve(listen_rx, {0: reply_a}, 2), affinity=0)
    cp = client.proc.spawn(
        client.run([("SET", b"k", value_len), ("GET", b"k", value_len)]),
        affinity=1)
    system.env.run_until(cp.terminated, limit=10_000_000_000)

    # The GET reply payload equals the value the client SET.
    sent_value = client.proc.read(client.tx + 80, value_len)
    reply = client.proc.read(client.rx, 64 + value_len)
    assert reply[:3] == b"+OK"
    assert reply[64:] == sent_value
    assert server.requests_served == 2


@pytest.mark.faultfree
@pytest.mark.parametrize("op", ["SET", "GET"])
def test_copier_beats_baseline_latency(op):
    """Fig. 11's headline: Copier cuts Redis latency at 16 KB values."""
    value_len = 16 * 1024
    results = {}
    for mode in ("sync", "copier"):
        system = _mk(mode)
        _server, merged, _elapsed = run_benchmark(
            system, mode, op, value_len, n_requests=12, n_clients=2)
        results[mode] = merged.mean
    assert results["copier"] < results["sync"], results


def test_value_integrity_across_many_requests():
    """Distinct values per client survive the async machinery intact."""
    system = _mk("copier")
    from repro.kernel.net import socket_pair

    server = RedisServer(system, mode="copier")
    listen_rx, listen_tx = socket_pair(system)
    n_clients = 3
    value_len = 8 * 1024
    clients = []
    reply_socks = {}
    for cid in range(n_clients):
        ra, rb = socket_pair(system)
        reply_socks[cid] = ra
        clients.append(RedisClient(system, cid, listen_tx, rb))

    server.proc.spawn(server.serve(listen_rx, reply_socks, n_clients * 2),
                      affinity=0)
    cps = []
    for cid, client in enumerate(clients):
        # Each client stores a distinctive value then reads it back.
        client.proc.write(client.tx + 80, bytes([cid + 1]) * value_len)
        key = b"key-%d" % cid
        cps.append(client.proc.spawn(
            client.run([("SET", key, value_len), ("GET", key, value_len)]),
            affinity=1 + cid % 2))
    for cp in cps:
        system.env.run_until(cp.terminated, limit=10_000_000_000)
    for cid, client in enumerate(clients):
        reply = client.proc.read(client.rx + 64, value_len)
        assert reply == bytes([cid + 1]) * value_len, "client %d" % cid


def test_copier_mode_absorbs_on_get_path():
    """The GET chain (value→io_out→skb) short-circuits via absorption."""
    system = _mk("copier")
    server, merged, _ = run_benchmark(system, "copier", "GET", 16 * 1024,
                                      n_requests=6, n_clients=1)
    assert server.proc.client.stats.bytes_absorbed > 0


def test_zio_indirection_on_get():
    system = _mk("zio")
    server, merged, _ = run_benchmark(system, "zio", "GET", 16 * 1024,
                                      n_requests=5, n_clients=1)
    assert server.zio.stats["indirect"] > 0


def test_zio_materializes_on_set_buffer_reuse():
    """Redis's recycled input buffer forces zIO's fault-copy path (§6.2.1)."""
    system = _mk("zio")
    server, merged, _ = run_benchmark(system, "zio", "SET", 16 * 1024,
                                      n_requests=5, n_clients=1)
    assert server.zio.stats["fault_copies"] > 0


def test_throughput_reporting():
    system = _mk("sync")
    _server, merged, elapsed = run_benchmark(system, "sync", "SET", 4096,
                                             n_requests=10, n_clients=2)
    assert merged.count == 20
    assert merged.throughput(elapsed) > 0
    assert merged.p99 >= merged.mean * 0.5
