"""memcached-style multi-get server tests."""

import pytest

from repro.apps.memcachedapp import (
    MemcachedServer,
    encode_mget,
    encode_set,
    run_memcached,
)
from repro.kernel import System
from repro.kernel.net import recv, send, socket_pair


def _mk(mode, n_cores=4):
    return System(n_cores=n_cores, copier=(mode == "copier"),
                  phys_frames=262144)


@pytest.mark.parametrize("mode", ["sync", "copier"])
def test_set_then_multiget_returns_all_values(mode):
    system = _mk(mode)
    server = MemcachedServer(system, mode=mode)
    c2s_tx, c2s_rx = socket_pair(system)
    s2c_tx, s2c_rx = socket_pair(system)
    system.env.spawn(server.worker(c2s_rx, s2c_tx, 4), affinity=0)
    client = system.create_process("cl")
    tx = client.mmap(1 << 20, populate=True)
    rx = client.mmap(1 << 20, populate=True)
    value_len = 8 * 1024

    def gen():
        for k in (0, 1, 2):
            msg = encode_set(k, bytes([k + 0x41]) * value_len)
            client.write(tx, msg)
            yield from send(system, client, c2s_tx, tx, len(msg))
            yield from recv(system, client, s2c_rx, rx, 1 << 20)
        msg = encode_mget([0, 1, 2])
        client.write(tx, msg)
        yield from send(system, client, c2s_tx, tx, len(msg))
        got = yield from recv(system, client, s2c_rx, rx, 1 << 20)
        return client.read(rx, got)

    p = system.env.spawn(gen(), name="cl", affinity=1)
    system.env.run_until(p.terminated, limit=500_000_000_000)
    reply = p.result
    total = int.from_bytes(reply[:8], "little")
    assert total == 8 + 3 * value_len
    for i, ch in enumerate((0x41, 0x42, 0x43)):
        chunk = reply[8 + i * value_len: 8 + (i + 1) * value_len]
        assert chunk == bytes([ch]) * value_len, "value %d corrupted" % i
    assert server.requests == 4


def test_wide_multiget_is_correct():
    """A 16-key gather: many producers feed one send task — every slice
    must resolve to the right value (regression for the slice-recursion
    absorption fix)."""
    system = _mk("copier")
    server = MemcachedServer(system, mode="copier")
    c2s_tx, c2s_rx = socket_pair(system)
    s2c_tx, s2c_rx = socket_pair(system)
    n_keys = 16
    value_len = 4 * 1024
    system.env.spawn(server.worker(c2s_rx, s2c_tx, n_keys + 1), affinity=0)
    client = system.create_process("cl")
    tx = client.mmap(1 << 20, populate=True)
    rx = client.mmap(1 << 20, populate=True)

    def gen():
        for k in range(n_keys):
            msg = encode_set(k, bytes([k + 1]) * value_len)
            client.write(tx, msg)
            yield from send(system, client, c2s_tx, tx, len(msg))
            yield from recv(system, client, s2c_rx, rx, 1 << 20)
        msg = encode_mget(list(range(n_keys)))
        client.write(tx, msg)
        yield from send(system, client, c2s_tx, tx, len(msg))
        got = yield from recv(system, client, s2c_rx, rx, 1 << 20)
        return client.read(rx, got)

    p = system.env.spawn(gen(), name="cl", affinity=1)
    system.env.run_until(p.terminated, limit=1_000_000_000_000)
    reply = p.result
    for k in range(n_keys):
        chunk = reply[8 + k * value_len: 8 + (k + 1) * value_len]
        assert chunk == bytes([k + 1]) * value_len, "key %d corrupted" % k


def test_multiget_gather_is_absorbed():
    """Each gathered value short-circuits value-buffer → skb (§4.4)."""
    system = _mk("copier")
    server, mean, _elapsed = run_memcached(system, "copier",
                                           value_len=16 * 1024, n_keys=4,
                                           n_requests=3, n_workers=1)
    total_absorbed = sum(c.stats.bytes_absorbed
                         for c in system.copier.clients)
    assert total_absorbed > 3 * 4 * 8 * 1024  # most of the gathers


@pytest.mark.faultfree
def test_copier_beats_sync_on_multiget():
    results = {}
    for mode in ("sync", "copier"):
        system = _mk(mode)
        _server, mean, _elapsed = run_memcached(
            system, mode, value_len=16 * 1024, n_keys=4, n_requests=6,
            n_workers=2)
        results[mode] = mean
    assert results["copier"] < results["sync"], results


def test_workers_have_isolated_queue_domains():
    system = _mk("copier")
    server, _mean, _elapsed = run_memcached(system, "copier",
                                            value_len=8 * 1024, n_keys=2,
                                            n_requests=2, n_workers=3)
    worker_clients = [c for c in system.copier.clients
                      if "-q" in c.name]
    assert len(worker_clients) == 3
    assert all(c.stats.submitted > 0 for c in worker_clients)
