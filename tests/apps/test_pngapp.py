"""PNG-style file decode tests (the Fig. 2/3 libpng scenario)."""

import pytest

from repro.apps.pngapp import PNGDecoder, encode_image
from repro.kernel import System
from repro.kernel.fileio import FileObject


def _decode(mode, image_bytes):
    system = System(n_cores=3, copier=(mode == "copier"),
                    phys_frames=131072)
    raw = bytes([(i * 11) % 253 for i in range(image_bytes)])
    fobj = FileObject(system, encode_image(raw))
    decoder = PNGDecoder(system, mode=mode)
    p = decoder.proc.spawn(decoder.decode_file(fobj), affinity=0)
    system.env.run_until(p.terminated, limit=200_000_000_000)
    latency, decoded = p.result
    return latency, decoded, raw


@pytest.mark.parametrize("mode", ["sync", "copier"])
def test_decode_produces_original_pixels(mode):
    latency, decoded, raw = _decode(mode, 48 * 1024)
    assert decoded == raw
    assert latency > 0


def test_copier_overlaps_read_with_inflate():
    sync_lat, _d1, _r1 = _decode("sync", 128 * 1024)
    cop_lat, _d2, _r2 = _decode("copier", 128 * 1024)
    assert cop_lat < sync_lat
    # The gain is bounded by the copy share of decode time.
    assert 1 - cop_lat / sync_lat < 0.35


def test_tiny_image_falls_back_to_sync_path():
    latency, decoded, raw = _decode("copier", 256)
    assert decoded == raw
