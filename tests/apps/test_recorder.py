"""Camera-recording pipeline tests (Fig. 2-b's recording scenario)."""

import pytest

from repro.apps.avcodec import VideoRecorder
from repro.hw.params import phone_params
from repro.kernel import System


def _run(mode, n_frames=5):
    system = System(n_cores=3, params=phone_params(),
                    copier=(mode == "copier"),
                    copier_kwargs={"polling": "scenario"},
                    phys_frames=131072)
    recorder = VideoRecorder(system, mode=mode, frame_bytes=1 << 20)
    p = recorder.proc.spawn(recorder.record(n_frames), affinity=0)
    system.env.run_until(p.terminated, limit=2_000_000_000_000)
    return system, recorder


def test_records_all_frames():
    _system, recorder = _run("sync")
    assert len(recorder.latencies) == 5


@pytest.mark.parametrize("mode", ["sync", "copier"])
def test_pipeline_moves_frame_data(mode):
    system, recorder = _run(mode, n_frames=2)
    # The last frame's capture marker propagated into the encoder input,
    # and the bitstream marker into the mux buffer.
    assert recorder.proc.read(recorder.enc_in, 1) == bytes([1 % 251])
    assert recorder.proc.read(recorder.mux_buf, 1) == bytes([1 % 199])


def test_copier_cuts_recording_latency():
    """Fig. 2-b motivation: recording is copy-heavy; Copier overlaps the
    capture and mux copies with ISP/mux work."""
    _s1, sync_rec = _run("sync")
    _s2, cop_rec = _run("copier")
    gain = 1 - cop_rec.mean_latency / sync_rec.mean_latency
    assert 0.0 < gain < 0.3, gain


def test_scenario_ends_after_recording():
    system, _recorder = _run("copier")
    assert system.copier.scenario_active is False
