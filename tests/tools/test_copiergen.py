"""CopierGen tests: the csync-insertion pass and its validation (§5.1.3)."""

import pytest

from repro.kernel import System
from repro.tools.copiergen import Interpreter, Program, port_program
from repro.tools.copiergen.ir import op, validate


class TestPass:
    def test_memcpy_becomes_amemcpy(self):
        prog = Program([op("memcpy", ("B", 0), ("A", 0), 128)])
        ported = port_program(prog)
        assert ported.ops[0][0] == "amemcpy"

    def test_csync_inserted_before_load_of_dst(self):
        prog = Program([
            op("memcpy", ("B", 0), ("A", 0), 128),
            op("load", "x", ("B", 0), 8),
        ])
        ported = port_program(prog)
        kinds = [o[0] for o in ported]
        assert kinds == ["amemcpy", "csync", "load"]
        _k, addr, n = ported.ops[1]
        assert addr == ("B", 0) and n == 8

    def test_csync_narrowed_to_touched_range(self):
        prog = Program([
            op("memcpy", ("B", 0), ("A", 0), 4096),
            op("load", "x", ("B", 1024), 64),
        ])
        ported = port_program(prog)
        _k, addr, n = ported.ops[1]
        assert addr == ("B", 1024)
        assert n == 64

    def test_no_csync_for_unrelated_access(self):
        prog = Program([
            op("memcpy", ("B", 0), ("A", 0), 128),
            op("load", "x", ("C", 0), 8),
        ])
        ported = port_program(prog)
        assert [o[0] for o in ported] == ["amemcpy", "load"]

    def test_csync_before_store_to_src(self):
        """Guideline 1: sync before writing sources — via the dst address."""
        prog = Program([
            op("memcpy", ("B", 0), ("A", 0), 128),
            op("store", ("A", 32), 8),
        ])
        ported = port_program(prog)
        kinds = [o[0] for o in ported]
        assert kinds == ["amemcpy", "csync", "store"]
        _k, addr, n = ported.ops[1]
        assert addr == ("B", 32)  # synced through the destination
        assert n == 8

    def test_csync_before_free_and_external_call(self):
        prog = Program([
            op("memcpy", ("B", 0), ("A", 0), 64),
            op("call_ext", ("B", 0), 64),
            op("memcpy", ("D", 0), ("C", 0), 64),
            op("free", ("C", 0), 64),
        ])
        ported = port_program(prog)
        kinds = [o[0] for o in ported]
        assert kinds == ["amemcpy", "csync", "call_ext",
                         "amemcpy", "csync", "free"]

    def test_csync_before_publish(self):
        prog = Program([
            op("memcpy", ("B", 0), ("A", 0), 64),
            op("publish", ("B", 0), 64),
        ])
        ported = port_program(prog)
        assert [o[0] for o in ported] == ["amemcpy", "csync", "publish"]

    def test_chained_copies_no_intermediate_csync(self):
        """amemcpy is not an access: chains rely on dependency tracking."""
        prog = Program([
            op("memcpy", ("B", 0), ("A", 0), 64),
            op("memcpy", ("C", 0), ("B", 0), 64),
            op("load", "x", ("C", 0), 64),
        ])
        ported = port_program(prog)
        assert [o[0] for o in ported] == ["amemcpy", "amemcpy", "csync",
                                          "load"]

    def test_compute_ops_untouched(self):
        prog = Program([op("compute", 1000)])
        assert port_program(prog).ops == prog.ops

    def test_validate_rejects_unknown(self):
        with pytest.raises(ValueError):
            validate(Program([op("jump", 3)]))


class TestValidation:
    """Execute original vs ported programs and compare final buffers —
    CopierGen's correctness criterion on 'basic cases like arrays'."""

    def _run(self, program, mode):
        system = System(n_cores=3, copier=(mode == "async"),
                        phys_frames=16384)
        proc = system.create_process("ir-app")
        buffers = {}
        for base in ("A", "B", "C", "D"):
            va = proc.mmap(8192, populate=True)
            buffers[base] = (va, 8192)
        proc.write(buffers["A"][0], bytes(range(256)) * 32)
        interp = Interpreter(system, proc, buffers)

        def gen():
            yield from interp.run(program)
            if mode == "async":
                yield from proc.client.csync_all()

        p = proc.spawn(gen(), affinity=0)
        system.env.run_until(p.terminated, limit=5_000_000_000)
        final = {base: proc.read(va, ln)
                 for base, (va, ln) in buffers.items()}
        return interp, final

    def test_ported_program_equivalent(self):
        prog = Program([
            op("memcpy", ("B", 0), ("A", 0), 4096),
            op("compute", 2000),
            op("load", "x", ("B", 100), 16),
            op("memcpy", ("C", 0), ("B", 0), 4096),
            op("load", "y", ("C", 4000), 8),
        ])
        sync_interp, sync_final = self._run(prog, "sync")
        async_interp, async_final = self._run(port_program(prog), "async")
        assert sync_final == async_final
        assert sync_interp.loads == async_interp.loads

    def test_ported_store_then_copy_equivalent(self):
        prog = Program([
            op("memcpy", ("B", 0), ("A", 0), 2048),
            op("store", ("A", 10), 64),
            op("memcpy", ("C", 0), ("A", 0), 2048),
            op("load", "z", ("C", 10), 4),
        ])
        _si, sync_final = self._run(prog, "sync")
        _ai, async_final = self._run(port_program(prog), "async")
        assert sync_final == async_final
