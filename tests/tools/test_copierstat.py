"""CopierStat introspection tests."""

import pytest

from repro.tools.copierstat import report, snapshot
from tests.copier.conftest import Setup


def _run_some_work(setup):
    aspace, client = setup.aspace, setup.client
    src = aspace.mmap(16 * 1024, populate=True)
    dst = aspace.mmap(16 * 1024, populate=True)

    def gen():
        for _ in range(3):
            yield from client.amemcpy(dst, src, 16 * 1024)
            yield from client.csync(dst, 16 * 1024)

    setup.run_process(gen())
    return src, dst


def test_snapshot_counts_match_client_stats():
    setup = Setup()
    _run_some_work(setup)
    snap = snapshot(setup.service)
    client_snap = snap["clients"]["app"]
    assert client_snap["submitted"] == 3
    assert client_snap["completed"] == 3
    assert client_snap["bytes_copied"] == 3 * 16 * 1024
    assert client_snap["pending_tasks"] == 0
    assert snap["now"] == setup.env.now


def test_snapshot_reflects_dispatcher_and_dma():
    setup = Setup(n_frames=8192)
    aspace, client = setup.aspace, setup.client
    n = 256 * 1024
    src = aspace.mmap(n, populate=True, contiguous=True)
    dst = aspace.mmap(n, populate=True, contiguous=True)

    def gen():
        yield from client.amemcpy(dst, src, n)
        yield from client.csync(dst, n)

    setup.run_process(gen())
    snap = snapshot(setup.service)
    assert snap["dma"]["bytes_copied"] > 0
    assert snap["dispatcher"]["bytes_to_avx"] > 0
    assert snap["atcache"]["hits"] + snap["atcache"]["misses"] > 0


def test_report_renders_key_lines():
    setup = Setup()
    _run_some_work(setup)
    text = report(setup.service)
    assert "CopierStat @ cycle" in text
    assert "dispatcher:" in text
    assert "atcache:" in text
    assert "client app" in text
    assert "cgroup root" in text


def test_snapshot_shows_queue_backlog():
    setup = Setup()
    # Stall the service, then submit without letting it drain.
    setup.service.polling = "scenario"
    setup.service.scenario_active = False
    aspace, client = setup.aspace, setup.client
    src = aspace.mmap(4096, populate=True)
    dst = aspace.mmap(4096, populate=True)

    def gen():
        for _ in range(4):
            yield from client.amemcpy(dst, src, 512)

    setup.run_process(gen())
    snap = snapshot(setup.service)
    assert snap["clients"]["app"]["queues"]["u_copy"] == 4
    assert "uC=4" in report(setup.service)
