"""CopierStat introspection tests."""

from repro.tools.copierstat import render_stages, report, snapshot
from tests.copier.conftest import Setup


def _run_some_work(setup):
    aspace, client = setup.aspace, setup.client
    src = aspace.mmap(16 * 1024, populate=True)
    dst = aspace.mmap(16 * 1024, populate=True)

    def gen():
        for _ in range(3):
            yield from client.amemcpy(dst, src, 16 * 1024)
            yield from client.csync(dst, 16 * 1024)

    setup.run_process(gen())
    return src, dst


def test_snapshot_counts_match_client_stats():
    setup = Setup()
    _run_some_work(setup)
    snap = snapshot(setup.service)
    client_snap = snap["clients"]["app"]
    assert client_snap["submitted"] == 3
    assert client_snap["completed"] == 3
    assert client_snap["bytes_copied"] == 3 * 16 * 1024
    assert client_snap["pending_tasks"] == 0
    assert snap["now"] == setup.env.now


def test_snapshot_reflects_dispatcher_and_dma():
    setup = Setup(n_frames=8192)
    aspace, client = setup.aspace, setup.client
    n = 256 * 1024
    src = aspace.mmap(n, populate=True, contiguous=True)
    dst = aspace.mmap(n, populate=True, contiguous=True)

    def gen():
        yield from client.amemcpy(dst, src, n)
        yield from client.csync(dst, n)

    setup.run_process(gen())
    snap = snapshot(setup.service)
    assert snap["dma"]["bytes_copied"] > 0
    assert snap["dispatcher"]["bytes_to_avx"] > 0
    assert snap["atcache"]["hits"] + snap["atcache"]["misses"] > 0


def test_report_renders_key_lines():
    setup = Setup()
    _run_some_work(setup)
    text = report(setup.service)
    assert "CopierStat @ cycle" in text
    assert "dispatcher:" in text
    assert "atcache:" in text
    assert "client app" in text
    assert "cgroup root" in text


def test_snapshot_is_plain_data():
    """The snapshot is JSON-ready: service-side delegation returns dicts,
    lists and scalars all the way down (no live objects leak out)."""
    import json

    setup = Setup()
    _run_some_work(setup)
    snap = setup.service.stats_snapshot()
    json.dumps(snap)  # raises on any non-plain value
    assert snap is not setup.service.stats_snapshot()  # fresh each call
    client_snap = snap["clients"]["app"]
    assert client_snap == dict(client_snap)
    # ClientStats.as_dict covers every counter slot.
    stats_dict = setup.client.stats.as_dict()
    assert set(stats_dict) == set(setup.client.stats.__slots__)
    for name, value in stats_dict.items():
        assert client_snap[name] == value


def test_report_includes_stage_breakdown():
    setup = Setup()
    _run_some_work(setup)
    text = report(setup.service)
    assert "stage latency (cycles, from the trace bus):" in text
    for label in ("submit→ingest", "ingest→execute", "execute→complete",
                  "submit→complete"):
        assert label in text
    assert "3 done / 0 aborted / 0 dropped" in text


def test_render_stages_tolerates_missing_section():
    # Old snapshots (or foreign dicts) without a "stages" entry still render.
    assert render_stages(None) == []
    assert render_stages({}) == []


def test_snapshot_shows_queue_backlog():
    setup = Setup()
    # Stall the service, then submit without letting it drain.
    setup.service.polling = "scenario"
    setup.service.scenario_active = False
    aspace, client = setup.aspace, setup.client
    src = aspace.mmap(4096, populate=True)
    dst = aspace.mmap(4096, populate=True)

    def gen():
        for _ in range(4):
            yield from client.amemcpy(dst, src, 512)

    setup.run_process(gen())
    snap = snapshot(setup.service)
    assert snap["clients"]["app"]["queues"]["u_copy"] == 4
    assert "uC=4" in report(setup.service)


def test_render_lifecycle_section():
    from repro.tools.copierstat import render_lifecycle

    # Absent or all-quiet sections render nothing (old snapshots intact).
    assert render_lifecycle(None) == []
    assert render_lifecycle({"exit_reaped": 0, "efault_tasks": 0,
                             "deferred_unmaps": 0, "processes_reaped": 0,
                             "drains": 0, "pins_outstanding": 0,
                             "draining": False}) == []

    setup = Setup()
    _run_some_work(setup)
    setup.service.reap_client(setup.client)
    text = report(setup.service)
    assert "lifecycle: 1 procs reaped" in text
    snap = snapshot(setup.service)
    assert snap["lifecycle"]["processes_reaped"] == 1
    assert snap["lifecycle"]["pins_outstanding"] == 0
