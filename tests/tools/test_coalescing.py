"""CsyncCoalescingPass tests: dropping and merging redundant csyncs."""

import pytest

from repro.tools.copiergen import (
    CsyncCoalescingPass,
    Program,
    port_program,
)
from repro.tools.copiergen.ir import op


def _coalesce(ops):
    return CsyncCoalescingPass().run(Program(ops)).ops


class TestDropRedundant:
    def test_second_identical_csync_dropped(self):
        ops = _coalesce([
            op("csync", ("B", 0), 128),
            op("load", "x", ("B", 0), 8),
            op("csync", ("B", 0), 128),
            op("load", "y", ("B", 8), 8),
        ])
        assert [o[0] for o in ops] == ["csync", "load", "load"]

    def test_subrange_csync_dropped(self):
        ops = _coalesce([
            op("csync", ("B", 0), 4096),
            op("csync", ("B", 1024), 512),
        ])
        assert len(ops) == 1

    def test_new_amemcpy_invalidates_coverage(self):
        ops = _coalesce([
            op("csync", ("B", 0), 128),
            op("amemcpy", ("B", 0), ("A", 0), 128),
            op("csync", ("B", 0), 128),
        ])
        # The second csync is needed again after the new copy.
        assert [o[0] for o in ops] == ["csync", "amemcpy", "csync"]

    def test_unrelated_buffer_untouched(self):
        ops = _coalesce([
            op("csync", ("B", 0), 128),
            op("csync", ("C", 0), 128),
        ])
        assert len(ops) == 2


class TestMergeAdjacent:
    def test_forward_adjacent_merge(self):
        ops = _coalesce([
            op("csync", ("B", 0), 1024),
            op("csync", ("B", 1024), 1024),
        ])
        assert ops == [("csync", ("B", 0), 2048)]

    def test_backward_adjacent_merge(self):
        ops = _coalesce([
            op("csync", ("B", 1024), 1024),
            op("csync", ("B", 0), 1024),
        ])
        assert ops == [("csync", ("B", 0), 2048)]

    def test_non_adjacent_not_merged(self):
        ops = _coalesce([
            op("csync", ("B", 0), 512),
            op("csync", ("B", 1024), 512),
        ])
        assert len(ops) == 2

    def test_merge_chain(self):
        ops = _coalesce([
            op("csync", ("B", 0), 256),
            op("csync", ("B", 256), 256),
            op("csync", ("B", 512), 256),
        ])
        assert ops == [("csync", ("B", 0), 768)]


class TestEndToEnd:
    def test_port_program_drops_repeated_syncs(self):
        """Re-reading an already-synced range inserts no second csync,
        while progressive reads keep their per-chunk csyncs (the pipeline
        is preserved — earlier merging would reduce copy-use overlap)."""
        prog = Program([
            op("memcpy", ("B", 0), ("A", 0), 4096),
            op("load", "a", ("B", 0), 1024),
            op("load", "a2", ("B", 0), 1024),      # same range again
            op("load", "b", ("B", 1024), 1024),
            op("load", "b2", ("B", 512), 1024),    # straddles synced data
        ])
        ported = port_program(prog)
        csyncs = [o for o in ported if o[0] == "csync"]
        # One csync per newly-needed range: (0,1024) and (1024,1024); the
        # repeat and the straddle are fully covered.
        assert len(csyncs) == 2

    def test_coalescing_optional(self):
        prog = Program([
            op("memcpy", ("B", 0), ("A", 0), 2048),
            op("load", "a", ("B", 0), 1024),
            op("load", "b", ("B", 1024), 1024),
        ])
        raw = port_program(prog, coalesce=False)
        assert len([o for o in raw if o[0] == "csync"]) == 2
