"""CopierSanitizer against the live service: reported bugs are real.

The sanitizer's reports must correspond to actually-observable stale
reads on the simulator (and its silence to correct data), tying the
shadow-memory tool to ground truth.
"""

import pytest

from repro.tools.sanitizer import CopierSanitizer
from repro.mem.phys import PAGE_SIZE
from tests.copier.conftest import Setup


def test_reported_premature_read_is_actually_stale():
    setup = Setup()
    aspace, client = setup.aspace, setup.client
    san = CopierSanitizer()
    n = 64 * 1024
    src = aspace.mmap(n, populate=True)
    dst = aspace.mmap(n, populate=True)
    aspace.write(src, b"\x7e" * n)
    observations = {}

    def gen():
        yield from client.amemcpy(dst, src, n)
        san.on_amemcpy(dst, src, n)
        # BUG: read the tail immediately, no csync.
        san.read(dst + n - 64, 64)
        observations["premature"] = aspace.read(dst + n - 64, 64)
        yield from client.csync(dst, n)
        san.on_csync(dst, n)
        san.read(dst + n - 64, 64)
        observations["synced"] = aspace.read(dst + n - 64, 64)

    setup.run_process(gen())
    # The sanitizer flagged exactly the premature read...
    assert len(san.reports) == 1
    assert san.reports[0].kind == "read"
    # ...and that read really observed stale bytes, while the post-csync
    # read observed the copied data.
    assert observations["premature"] == b"\x00" * 64
    assert observations["synced"] == b"\x7e" * 64


def test_clean_pipeline_produces_no_reports():
    setup = Setup()
    aspace, client = setup.aspace, setup.client
    san = CopierSanitizer(strict=True)  # raise on any violation
    n = 16 * 1024
    src = aspace.mmap(n, populate=True)
    dst = aspace.mmap(n, populate=True)

    def gen():
        yield from client.amemcpy(dst, src, n)
        san.on_amemcpy(dst, src, n)
        pos = 0
        while pos < n:
            yield from client.csync(dst + pos, 1024)
            san.on_csync(dst + pos, 1024)
            san.read(dst + pos, 1024)
            aspace.read(dst + pos, 1024)
            pos += 1024

    setup.run_process(gen())
    assert not san.reports


def test_write_to_inflight_source_flagged_and_racy():
    setup = Setup()
    aspace, client = setup.aspace, setup.client
    san = CopierSanitizer()
    n = 128 * 1024
    src = aspace.mmap(n, populate=True)
    dst = aspace.mmap(n, populate=True)

    def gen():
        yield from client.amemcpy(dst, src, n)
        san.on_amemcpy(dst, src, n)
        # BUG: overwrite the source while the copy is (likely) in flight.
        san.write(src + n - 8, 8)
        aspace.write(src + n - 8, b"RACYDATA")
        yield from client.csync(dst, n)

    setup.run_process(gen())
    assert any(r.kind == "write" for r in san.reports)
