"""CopierSanitizer tests (§5.1.2)."""

import pytest

from repro.tools.sanitizer import CopierSanitizer, SanitizerViolation


@pytest.fixture
def san():
    return CopierSanitizer()


class TestShadowRules:
    def test_read_of_unsynced_dst_reported(self, san):
        san.on_amemcpy(dst=0x1000, src=0x2000, length=256)
        san.read(0x1000, 8)
        assert len(san.reports) == 1
        assert san.reports[0].kind == "read"

    def test_read_after_csync_is_clean(self, san):
        san.on_amemcpy(0x1000, 0x2000, 256)
        san.on_csync(0x1000, 256)
        san.read(0x1000, 256)
        assert not san.reports

    def test_partial_csync_partial_legal(self, san):
        san.on_amemcpy(0x1000, 0x2000, 256)
        san.on_csync(0x1000, 128)
        san.read(0x1000, 128)       # fine
        san.read(0x1080, 1)         # still poisoned
        assert len(san.reports) == 1

    def test_read_of_source_is_legal(self, san):
        """Sources may be read before csync — only writes race the copy."""
        san.on_amemcpy(0x1000, 0x2000, 256)
        san.read(0x2000, 256)
        assert not san.reports

    def test_write_to_source_reported(self, san):
        san.on_amemcpy(0x1000, 0x2000, 256)
        san.write(0x2000, 4)
        assert len(san.reports) == 1
        assert san.reports[0].kind == "write"

    def test_free_of_source_reported(self, san):
        """The Fig. 4 copyUse() bug: free(src) without csync."""
        san.on_amemcpy(0x1000, 0x2000, 256)
        san.free(0x2000, 256)
        assert len(san.reports) == 1
        assert san.reports[0].kind == "free"

    def test_free_after_csync_is_clean(self, san):
        san.on_amemcpy(0x1000, 0x2000, 256)
        san.on_csync(0x1000, 256)
        san.release_source(0x2000, 256)
        san.free(0x2000, 256)
        assert not san.reports

    def test_strict_mode_raises(self):
        san = CopierSanitizer(strict=True)
        san.on_amemcpy(0x1000, 0x2000, 64)
        with pytest.raises(SanitizerViolation, match="missing csync"):
            san.read(0x1000, 1)

    def test_csync_all_clears_everything(self, san):
        san.on_amemcpy(0x1000, 0x2000, 64)
        san.on_amemcpy(0x5000, 0x6000, 64)
        san.on_csync_all()
        san.read(0x1000, 64)
        san.write(0x6000, 64)
        assert not san.reports

    def test_unrelated_access_clean(self, san):
        san.on_amemcpy(0x1000, 0x2000, 64)
        san.read(0x9000, 128)
        san.write(0x9000, 128)
        assert not san.reports

    def test_overlapping_amemcpys_accumulate(self, san):
        san.on_amemcpy(0x1000, 0x2000, 64)
        san.on_amemcpy(0x1020, 0x3000, 64)
        san.on_csync(0x1000, 64)
        san.read(0x1050, 1)  # second copy's tail still poisoned
        assert len(san.reports) == 1

    def test_summary_strings(self, san):
        san.on_amemcpy(0x1000, 0x2000, 64)
        san.read(0x1000, 1)
        assert "missing csync" in san.summary()[0]


class TestShadowMapInternals:
    def test_poison_coalesces_adjacent(self):
        from repro.tools.sanitizer import _ShadowMap

        sm = _ShadowMap()
        sm.poison(0, 10)
        sm.poison(10, 10)
        assert sm.overlap(5, 10) is not None
        assert sm.poisoned_bytes == 20

    def test_unpoison_splits_range(self):
        from repro.tools.sanitizer import _ShadowMap

        sm = _ShadowMap()
        sm.poison(0, 100)
        sm.unpoison(40, 20)
        assert sm.overlap(40, 20) is None
        assert sm.overlap(0, 40) is not None
        assert sm.overlap(60, 40) is not None
        assert sm.poisoned_bytes == 80
