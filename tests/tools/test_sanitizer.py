"""CopierSanitizer tests (§5.1.2)."""

import pytest

from repro.tools.sanitizer import CopierSanitizer, SanitizerViolation


@pytest.fixture
def san():
    return CopierSanitizer()


class TestShadowRules:
    def test_read_of_unsynced_dst_reported(self, san):
        san.on_amemcpy(dst=0x1000, src=0x2000, length=256)
        san.read(0x1000, 8)
        assert len(san.reports) == 1
        assert san.reports[0].kind == "read"

    def test_read_after_csync_is_clean(self, san):
        san.on_amemcpy(0x1000, 0x2000, 256)
        san.on_csync(0x1000, 256)
        san.read(0x1000, 256)
        assert not san.reports

    def test_partial_csync_partial_legal(self, san):
        san.on_amemcpy(0x1000, 0x2000, 256)
        san.on_csync(0x1000, 128)
        san.read(0x1000, 128)       # fine
        san.read(0x1080, 1)         # still poisoned
        assert len(san.reports) == 1

    def test_read_of_source_is_legal(self, san):
        """Sources may be read before csync — only writes race the copy."""
        san.on_amemcpy(0x1000, 0x2000, 256)
        san.read(0x2000, 256)
        assert not san.reports

    def test_write_to_source_reported(self, san):
        san.on_amemcpy(0x1000, 0x2000, 256)
        san.write(0x2000, 4)
        assert len(san.reports) == 1
        assert san.reports[0].kind == "write"

    def test_free_of_source_reported(self, san):
        """The Fig. 4 copyUse() bug: free(src) without csync."""
        san.on_amemcpy(0x1000, 0x2000, 256)
        san.free(0x2000, 256)
        assert len(san.reports) == 1
        assert san.reports[0].kind == "free"

    def test_free_after_csync_is_clean(self, san):
        san.on_amemcpy(0x1000, 0x2000, 256)
        san.on_csync(0x1000, 256)
        san.release_source(0x2000, 256)
        san.free(0x2000, 256)
        assert not san.reports

    def test_strict_mode_raises(self):
        san = CopierSanitizer(strict=True)
        san.on_amemcpy(0x1000, 0x2000, 64)
        with pytest.raises(SanitizerViolation, match="missing csync"):
            san.read(0x1000, 1)

    def test_csync_all_clears_everything(self, san):
        san.on_amemcpy(0x1000, 0x2000, 64)
        san.on_amemcpy(0x5000, 0x6000, 64)
        san.on_csync_all()
        san.read(0x1000, 64)
        san.write(0x6000, 64)
        assert not san.reports

    def test_unrelated_access_clean(self, san):
        san.on_amemcpy(0x1000, 0x2000, 64)
        san.read(0x9000, 128)
        san.write(0x9000, 128)
        assert not san.reports

    def test_overlapping_amemcpys_accumulate(self, san):
        san.on_amemcpy(0x1000, 0x2000, 64)
        san.on_amemcpy(0x1020, 0x3000, 64)
        san.on_csync(0x1000, 64)
        san.read(0x1050, 1)  # second copy's tail still poisoned
        assert len(san.reports) == 1

    def test_summary_strings(self, san):
        san.on_amemcpy(0x1000, 0x2000, 64)
        san.read(0x1000, 1)
        assert "missing csync" in san.summary()[0]


class TestShadowMapInternals:
    def test_poison_coalesces_adjacent(self):
        from repro.tools.sanitizer import _ShadowMap

        sm = _ShadowMap()
        sm.poison(0, 10)
        sm.poison(10, 10)
        assert sm.overlap(5, 10) is not None
        assert sm.poisoned_bytes == 20

    def test_unpoison_splits_range(self):
        from repro.tools.sanitizer import _ShadowMap

        sm = _ShadowMap()
        sm.poison(0, 100)
        sm.unpoison(40, 20)
        assert sm.overlap(40, 20) is None
        assert sm.overlap(0, 40) is not None
        assert sm.overlap(60, 40) is not None
        assert sm.poisoned_bytes == 80


class TestShadowMapEdgeCases:
    """Interval-set corner cases: seams, re-poisoning, degenerate lengths."""

    def _map(self):
        from repro.tools.sanitizer import _ShadowMap
        return _ShadowMap()

    def test_adjacent_ranges_cover_their_seam(self):
        sm = self._map()
        sm.poison(0, 10)
        sm.poison(10, 10)
        # A one-byte access on each side of the seam hits a range; an
        # access spanning it reports the first intersecting interval.
        assert sm.overlap(9, 1) == (0, 10)
        assert sm.overlap(10, 1) == (10, 10)
        assert sm.overlap(9, 2) == (0, 10)
        # Unpoisoning across the seam clears both sides.
        sm.unpoison(5, 10)
        assert sm.overlap(5, 10) is None
        assert sm.poisoned_bytes == 10

    def test_repoisoning_an_overlap_does_not_double_count(self):
        sm = self._map()
        sm.poison(0, 10)
        sm.poison(5, 10)  # overlaps [5, 10)
        assert sm.poisoned_bytes == 15
        sm.poison(0, 15)  # covers everything so far
        assert sm.poisoned_bytes == 15

    def test_unpoison_exact_range_empties_map(self):
        sm = self._map()
        sm.poison(100, 50)
        sm.unpoison(100, 50)
        assert sm.poisoned_bytes == 0
        assert sm.overlap(100, 50) is None

    def test_unpoison_spanning_multiple_ranges(self):
        sm = self._map()
        sm.poison(0, 10)
        sm.poison(20, 10)
        sm.poison(40, 10)
        sm.unpoison(5, 40)  # clips the first, swallows the second,
        assert sm.overlap(0, 5) == (0, 5)       # clips the third
        assert sm.overlap(5, 40) is None
        assert sm.overlap(45, 5) == (45, 5)
        assert sm.poisoned_bytes == 10

    def test_zero_and_negative_lengths_are_noops(self):
        sm = self._map()
        sm.poison(0, 0)
        sm.poison(0, -8)
        assert sm.poisoned_bytes == 0
        sm.poison(0, 10)
        sm.unpoison(0, 0)
        sm.unpoison(0, -8)
        assert sm.poisoned_bytes == 10
        # A zero-length access touches no bytes: never a violation.
        assert sm.overlap(5, 0) is None
        assert sm.overlap(5, -3) is None

    def test_overlap_reports_first_intersection_only(self):
        sm = self._map()
        sm.poison(10, 5)
        sm.poison(30, 5)
        assert sm.overlap(0, 100) == (10, 5)
        assert sm.overlap(20, 100) == (30, 5)
        assert sm.overlap(0, 10) is None


class TestStrictModeViolations:
    def test_strict_free_of_poisoned_range_reports_exact_overlap(self):
        """The Fig. 4 bug in strict mode: the exception names the exact
        unsynced interval the free touched, and is recorded too."""
        san = CopierSanitizer(strict=True)
        san.on_amemcpy(dst=0x1000, src=0x2000, length=256)
        with pytest.raises(SanitizerViolation) as info:
            san.free(0x2080, 64)
        exc = info.value
        assert exc.kind == "free"
        assert (exc.va, exc.length) == (0x2080, 64)
        assert exc.overlap == (0x2000, 256)
        assert san.reports == [exc]

    def test_strict_write_after_partial_csync_names_remainder(self):
        san = CopierSanitizer(strict=True)
        san.on_amemcpy(dst=0x1000, src=0x2000, length=256)
        san.on_csync(0x1000, 128)
        with pytest.raises(SanitizerViolation) as info:
            san.write(0x1000, 256)  # tail half is still unsynced
        assert info.value.overlap == (0x1080, 128)

    def test_zero_length_access_never_violates(self):
        san = CopierSanitizer(strict=True)
        san.on_amemcpy(dst=0x1000, src=0x2000, length=64)
        san.read(0x1000, 0)
        san.write(0x2000, 0)
        san.free(0x1000, 0)
        assert not san.reports
