"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import Compute, Environment, Timeout, WaitEvent
from repro.sim.events import all_of, any_of


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0


def test_schedule_orders_by_time():
    env = Environment()
    order = []
    env.schedule(10, lambda: order.append("b"))
    env.schedule(5, lambda: order.append("a"))
    env.schedule(20, lambda: order.append("c"))
    env.run()
    assert order == ["a", "b", "c"]
    assert env.now == 20


def test_schedule_same_time_fifo():
    env = Environment()
    order = []
    for i in range(5):
        env.schedule(7, lambda i=i: order.append(i))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_schedule_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.schedule(-1, lambda: None)


def test_run_until_time_limit():
    env = Environment()
    fired = []
    env.schedule(100, lambda: fired.append(1))
    env.run(until=50)
    assert env.now == 50
    assert not fired
    env.run(until=150)
    assert fired == [1]


def test_timeout_advances_clock():
    env = Environment()

    def proc():
        yield Timeout(42)
        return env.now

    p = env.spawn(proc())
    env.run()
    assert p.result == 42


def test_compute_consumes_core_time():
    env = Environment(n_cores=1)

    def proc():
        yield Compute(1000)

    env.spawn(proc())
    env.run()
    assert env.now == 1000
    assert env.cores.cores[0].busy_cycles == 1000


def test_compute_zero_cycles_is_scheduling_point():
    env = Environment(n_cores=1)

    def proc():
        yield Compute(0)
        return "done"

    p = env.spawn(proc())
    env.run()
    assert p.result == "done"
    assert env.now == 0


def test_two_processes_share_single_core():
    env = Environment(n_cores=1, timeslice=100)

    def proc():
        yield Compute(500)
        return env.now

    p1 = env.spawn(proc())
    p2 = env.spawn(proc())
    env.run()
    # Serialized on one core: combined work is 1000 cycles.
    assert env.now == 1000
    assert {p1.result, p2.result} == {900, 1000}


def test_two_processes_two_cores_parallel():
    env = Environment(n_cores=2)

    def proc():
        yield Compute(500)
        return env.now

    p1 = env.spawn(proc())
    p2 = env.spawn(proc())
    env.run()
    assert p1.result == 500
    assert p2.result == 500


def test_affinity_pins_process_to_core():
    env = Environment(n_cores=2)

    def proc():
        yield Compute(300)

    env.spawn(proc(), affinity=1)
    env.run()
    assert env.cores.cores[1].busy_cycles == 300
    assert env.cores.cores[0].busy_cycles == 0


def test_timeslicing_interleaves_fairly():
    env = Environment(n_cores=1, timeslice=10)
    finish = {}

    def proc(name, amount):
        yield Compute(amount)
        finish[name] = env.now

    env.spawn(proc("short", 20))
    env.spawn(proc("long", 200))
    env.run()
    # The short job must not wait for the whole long job.
    assert finish["short"] < 60
    assert finish["long"] == 220


def test_wait_event_delivers_value():
    env = Environment()
    ev = env.event()

    def waiter():
        value = yield WaitEvent(ev)
        return value

    def trigger():
        yield Timeout(30)
        ev.succeed("payload")

    p = env.spawn(waiter())
    env.spawn(trigger())
    env.run()
    assert p.result == "payload"


def test_yield_bare_event_works():
    env = Environment()
    ev = env.event()

    def waiter():
        value = yield ev
        return value

    p = env.spawn(waiter())
    env.schedule(5, lambda: ev.succeed(7))
    env.run()
    assert p.result == 7


def test_event_fail_raises_in_waiter():
    env = Environment()
    ev = env.event()
    caught = []

    def waiter():
        try:
            yield WaitEvent(ev)
        except ValueError as exc:
            caught.append(str(exc))

    env.spawn(waiter())
    env.schedule(1, lambda: ev.fail(ValueError("boom")))
    env.run()
    assert caught == ["boom"]


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)


def test_event_callback_after_trigger_still_fires():
    env = Environment()
    ev = env.event()
    ev.succeed("x")
    got = []
    ev.add_callback(lambda e: got.append(e.value))
    env.run()
    assert got == ["x"]


def test_all_of_collects_values():
    env = Environment()
    evs = [env.event() for _ in range(3)]
    combined = all_of(env, evs)
    for i, ev in enumerate(evs):
        env.schedule(i + 1, lambda ev=ev, i=i: ev.succeed(i))
    env.run()
    assert combined.triggered
    assert combined.value == [0, 1, 2]


def test_all_of_empty_triggers_immediately():
    env = Environment()
    combined = all_of(env, [])
    assert combined.triggered


def test_any_of_triggers_on_first():
    env = Environment()
    evs = [env.event() for _ in range(3)]
    combined = any_of(env, evs)
    env.schedule(5, lambda: evs[2].succeed("late"))
    env.schedule(1, lambda: evs[1].succeed("first"))
    env.run()
    assert combined.value is evs[1]


def test_run_until_event():
    env = Environment()
    ev = env.event()
    env.schedule(500, lambda: ev.succeed("done"))
    env.schedule(900, lambda: None)
    assert env.run_until(ev) == "done"
    assert env.now == 500


def test_run_until_drained_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(RuntimeError):
        env.run_until(ev)


def test_process_return_value():
    env = Environment()

    def proc():
        yield Timeout(1)
        return 99

    p = env.spawn(proc())
    env.run()
    assert p.result == 99
    assert p.terminated.value == 99


def test_process_wait_on_termination():
    env = Environment()

    def child():
        yield Compute(100)
        return "child-done"

    def parent():
        c = env.spawn(child())
        value = yield WaitEvent(c.terminated)
        return value

    p = env.spawn(parent())
    env.run()
    assert p.result == "child-done"


def test_kill_blocked_process():
    env = Environment()
    from repro.sim import ProcessKilled

    caught = []

    def victim():
        try:
            yield Timeout(10_000)
        except ProcessKilled:
            caught.append(True)

    p = env.spawn(victim())
    env.schedule(5, lambda: p.kill())
    env.run()
    assert caught == [True]
    assert not p.is_alive


def test_kill_mid_compute_aborts_remaining_work():
    env = Environment(n_cores=1, timeslice=10)

    def victim():
        yield Compute(10_000)

    p = env.spawn(victim())
    env.schedule(25, lambda: p.kill())
    env.run()
    assert not p.is_alive
    # The process must not have consumed anywhere near its full request.
    assert env.now < 200


def test_invalid_yield_raises_typeerror_into_process():
    env = Environment()
    caught = []

    def proc():
        try:
            yield "not-a-request"
        except TypeError:
            caught.append(True)

    env.spawn(proc())
    env.run()
    assert caught == [True]


def test_stats_tags_accumulate():
    env = Environment(n_cores=1)

    def proc():
        yield Compute(300, tag="copy")
        yield Compute(700, tag="app")

    p = env.spawn(proc())
    env.run()
    assert env.stats.total_cycles(pid=p.pid, tag="copy") == 300
    assert env.stats.total_cycles(pid=p.pid) == 1000
    assert env.stats.tag_share("copy", pid=p.pid) == pytest.approx(0.3)


def test_stats_cpi():
    env = Environment(n_cores=1)

    def proc():
        yield Compute(1000, tag="app", instructions=500)

    p = env.spawn(proc())
    env.run()
    assert env.stats.cpi(pid=p.pid) == pytest.approx(2.0)


def test_negative_compute_rejected():
    with pytest.raises(ValueError):
        Compute(-5)


def test_utilization_reflects_busy_fraction():
    env = Environment(n_cores=2)

    def proc():
        yield Compute(500)

    env.spawn(proc(), affinity=0)
    env.run(until=1000)
    util = env.cores.utilization()
    assert util[0] == pytest.approx(0.5)
    assert util[1] == 0.0
