"""Core-scheduler edge cases: mixed affinity, preemption, many processes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import Compute, Environment, Timeout


def test_pinned_takes_priority_over_shared_on_its_core():
    env = Environment(n_cores=1, timeslice=50)
    order = []

    def floating():
        yield Compute(100)
        order.append("floating")

    def pinned():
        yield Compute(100)
        order.append("pinned")

    env.spawn(floating())
    env.spawn(pinned(), affinity=0)
    env.run()
    # Both finish; total time is serialized.
    assert set(order) == {"floating", "pinned"}
    assert env.now == 200


def test_floating_process_uses_any_free_core():
    env = Environment(n_cores=3)
    done_at = {}

    def hog(core):
        yield Compute(1000)
        done_at["hog%d" % core] = env.now

    def floater():
        yield Compute(500)
        done_at["floater"] = env.now

    env.spawn(hog(0), affinity=0)
    env.spawn(hog(1), affinity=1)
    env.spawn(floater())
    env.run()
    assert done_at["floater"] == 500  # took core 2, no waiting


def test_many_processes_eventually_all_finish():
    env = Environment(n_cores=2, timeslice=100)
    finished = []

    def worker(i):
        yield Compute(250)
        finished.append(i)

    for i in range(20):
        env.spawn(worker(i))
    env.run()
    assert sorted(finished) == list(range(20))
    assert env.now == 20 * 250 // 2


def test_compute_interleaved_with_timeout():
    env = Environment(n_cores=1)
    trace = []

    def waiter():
        yield Timeout(50)
        trace.append(("woke", env.now))
        yield Compute(10)
        trace.append(("computed", env.now))

    def worker():
        yield Compute(200)
        trace.append(("worker", env.now))

    env.spawn(worker())
    env.spawn(waiter())
    env.run()
    # The waiter woke mid-worker-compute and queued behind it (timeslice
    # default is large, so the worker's single slice runs through).
    assert ("worker", 200) in trace
    assert trace[-1][0] == "computed"


@settings(max_examples=30, deadline=None)
@given(
    amounts=st.lists(st.integers(min_value=1, max_value=5000),
                     min_size=1, max_size=10),
    n_cores=st.integers(min_value=1, max_value=4),
    timeslice=st.sampled_from([10, 100, 10_000]),
)
def test_property_work_conservation(amounts, n_cores, timeslice):
    """Total busy cycles equals total requested work, and the makespan is
    at least work/cores (no cycles invented or lost)."""
    env = Environment(n_cores=n_cores, timeslice=timeslice)

    def worker(c):
        yield Compute(c)

    for c in amounts:
        env.spawn(worker(c))
    env.run()
    busy = sum(core.busy_cycles for core in env.cores.cores)
    assert busy == sum(amounts)
    assert env.now >= sum(amounts) / n_cores
    assert env.now >= max(amounts)
