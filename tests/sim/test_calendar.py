"""Calendar-queue vs heapq differential determinism.

The production event loop is a calendar/bucket queue; ``COPIER_SLOWHEAP=1``
selects the historic single-heapq loop, kept verbatim as the oracle.  The
two must be *bit-exact*: same event sequence, same ``env.now``, same
``events_executed``, same trace stream, same full ``stats_snapshot()`` —
across a raw-copy Copier workload (clean, ``COPIER_SLOWPATH=1`` and
``COPIER_FAULT_PLAN=mixed``), the overload scenario, the multi-node
fleet scenarios, and checkpoint/restore-driven recovery.

The knob is read once per :class:`Environment` construction, so one test
process can run both flavors back to back.
"""

import pytest

from repro.sim import Environment
from tests.sim.test_step import _drive_batch, _run_workload

# ----------------------------------------------------------- queue basics


def _flavors(monkeypatch):
    """Yield (name, activate) pairs for the two loop implementations."""
    def calendar():
        monkeypatch.delenv("COPIER_SLOWHEAP", raising=False)

    def slowheap():
        monkeypatch.setenv("COPIER_SLOWHEAP", "1")

    return [("calendar", calendar), ("slowheap", slowheap)]


def test_slowheap_flag_selects_historic_loop(monkeypatch):
    monkeypatch.delenv("COPIER_SLOWHEAP", raising=False)
    assert Environment().slowheap is False
    monkeypatch.setenv("COPIER_SLOWHEAP", "1")
    env = Environment()
    assert env.slowheap is True
    env.schedule(3, lambda: None)
    assert env._heap and not env._buckets  # events live in the heapq


def test_queue_introspection_agrees_across_flavors(monkeypatch):
    for _name, activate in _flavors(monkeypatch):
        activate()
        env = Environment()
        assert env.idle and env.next_event_time() is None
        assert env.pending_events() == 0
        for t in (30, 10, 10, 20):
            env.schedule(t, lambda: None)
        assert not env.idle
        assert env.next_event_time() == 10
        assert env.pending_events() == 4
        env.clear_pending()
        assert env.idle and env.pending_events() == 0
        env.run()  # an emptied loop runs (and stays) clean
        assert env.now == 0


def test_same_cycle_fifo_order_matches_heapq(monkeypatch):
    """Events in one cycle bucket fire in schedule (seq) order, including
    events appended to the bucket *while it is being drained*."""
    logs = {}
    for name, activate in _flavors(monkeypatch):
        activate()
        env = Environment()
        log = logs.setdefault(name, [])

        def tick(tag, log=log, env=env):
            log.append((env.now, tag))
            if tag == "b":
                # Lands in the bucket currently draining.
                env.schedule(0, lambda: log.append((env.now, "b-child")))

        env.schedule(5, lambda: tick("a"))
        env.schedule(5, lambda: tick("b"))
        env.schedule(0, lambda: tick("zero"))
        env.schedule(5, lambda: tick("c"))
        env.run()
    assert logs["calendar"] == logs["slowheap"]
    assert logs["calendar"] == [
        (0, "zero"), (5, "a"), (5, "b"), (5, "c"), (5, "b-child")]


def test_exception_preserves_pending_suffix(monkeypatch):
    """An event that raises must not drop the rest of its cycle bucket."""
    for _name, activate in _flavors(monkeypatch):
        activate()
        env = Environment()
        fired = []
        env.schedule(5, lambda: fired.append("pre"))

        def boom():
            raise RuntimeError("bang")

        env.schedule(5, boom)
        env.schedule(5, lambda: fired.append("post"))
        with pytest.raises(RuntimeError, match="bang"):
            env.run()
        assert fired == ["pre"]
        assert env.pending_events() == 1  # "post" survives for a retry
        env.run()
        assert fired == ["pre", "post"]


# ------------------------------------- differential oracle: full workloads

_KNOB_NAMES = ("COPIER_FAULT_PLAN", "COPIER_FAULT_SEED",
               "COPIER_SLOWPATH", "COPIER_SLOWHEAP")

_KNOBS = {
    "clean": {},
    "faults-mixed": {"COPIER_FAULT_PLAN": "mixed", "COPIER_FAULT_SEED": "7"},
    "slowpath": {"COPIER_SLOWPATH": "1"},
}


@pytest.mark.parametrize("knobs", sorted(_KNOBS), ids=sorted(_KNOBS))
def test_copier_workload_identical_across_queue_flavors(monkeypatch, knobs):
    """Raw-copy workload: every observable byte-identical between loops."""
    for name in _KNOB_NAMES:
        monkeypatch.delenv(name, raising=False)
    for name, value in _KNOBS[knobs].items():
        monkeypatch.setenv(name, value)

    ref = _run_workload(_drive_batch)  # calendar queue
    monkeypatch.setenv("COPIER_SLOWHEAP", "1")
    got = _run_workload(_drive_batch)  # historic heapq

    assert got["buffers"] == ref["buffers"]
    assert got["now"] == ref["now"]
    assert got["events_executed"] == ref["events_executed"]
    assert got["events"] == ref["events"]
    assert got["stats"] == ref["stats"]
    assert got["pins"] == ref["pins"] == 0


def _scenario_results(runner, monkeypatch):
    """Run a perfbaseline scenario under both flavors; returns the two
    recorder dicts with wall-clock noise stripped."""
    from repro.bench import perfbaseline

    perfbaseline._install_interposers()
    out = []
    for _name, activate in _flavors(monkeypatch):
        activate()
        events_before = perfbaseline._global_event_count()
        recorder = {}
        runner(recorder)
        recorder["events"] = perfbaseline._global_event_count() - events_before
        recorder["sim_cycles"] = perfbaseline._last_env_now()
        Environment._perf_last_now = 0
        recorder.pop("wall_s", None)
        out.append(recorder)
    return out


@pytest.mark.parametrize("scenario", [
    "overload",        # burst admission + shedding
    "fleet",           # multi-node failover (elections, replication)
    "ckpt-restore",    # node restart: checkpoint, wipe, rejoin
])
def test_scenarios_identical_across_queue_flavors(monkeypatch, scenario):
    from repro.bench import perfbaseline

    for name in _KNOB_NAMES:
        monkeypatch.delenv(name, raising=False)
    runner = {
        "overload": lambda: perfbaseline._scenario_overload(2.0),
        "fleet": lambda: perfbaseline._scenario_fleet_failover(),
        "ckpt-restore": lambda: perfbaseline._scenario_fleet_restart_recovery(),
    }[scenario]()
    calendar, slowheap = _scenario_results(runner, monkeypatch)
    assert calendar == slowheap
    assert calendar["sim_cycles"] > 0 and calendar["events"] > 0
