"""Trace bus and stage-aggregation tests."""

from repro.sim.trace import (STAGE_NAMES, DmaCompleted, RoundPlanned,
                             SegmentExecuted, StageAggregator, TaskFinished,
                             TaskIngested, TaskSubmitted, ThreadSleep,
                             ThreadWake, TraceBus)
from tests.copier.conftest import Setup


def test_bus_subscribe_emit_unsubscribe():
    bus = TraceBus()
    assert not bus.active
    seen = []
    fn = bus.subscribe(seen.append)
    assert bus.active
    event = TaskSubmitted(10, 1, "app", "u", 4096, False)
    bus.emit(event)
    assert seen == [event]
    bus.unsubscribe(fn)
    assert not bus.active
    bus.emit(TaskSubmitted(20, 2, "app", "u", 4096, False))
    assert len(seen) == 1
    bus.unsubscribe(fn)  # double-unsubscribe is harmless


def test_bus_delivers_in_order_to_all_subscribers():
    bus = TraceBus()
    a, b = [], []
    bus.subscribe(a.append)
    bus.subscribe(b.append)
    events = [ThreadSleep(5, 0), ThreadWake(15, 0, 10)]
    for event in events:
        bus.emit(event)
    assert a == events and b == events


def test_event_repr_names_kind_and_fields():
    text = repr(TaskFinished(99, 7, "app", "done", 4096))
    assert "task-finished" in text
    assert "task_id=7" in text
    assert "ts=99" in text


def test_aggregator_stage_latencies_from_synthetic_stream():
    agg = StageAggregator()
    agg(TaskSubmitted(100, 1, "app", "u", 8192, False))
    agg(TaskIngested(130, 1, "app"))
    agg(RoundPlanned(140, "app", "hybrid", 8192, 0, 1))
    agg(SegmentExecuted(150, 1, 0, 4096, "avx"))
    agg(SegmentExecuted(180, 1, 1, 4096, "avx"))  # only first exec counts
    agg(TaskFinished(200, 1, "app", "done", 8192))
    snap = agg.as_dict()
    assert snap["stages"]["submit_to_ingest"] == {
        "count": 1, "total": 30, "mean": 30.0, "max": 30}
    assert snap["stages"]["ingest_to_execute"]["total"] == 20
    assert snap["stages"]["execute_to_complete"]["total"] == 50
    assert snap["stages"]["submit_to_complete"]["total"] == 100
    assert snap["rounds"] == 1
    assert snap["outcomes"]["done"] == 1
    assert snap["in_flight"] == 0
    assert snap["events"] == 6


def test_aggregator_dma_completion_counts_as_first_execution():
    agg = StageAggregator()
    agg(TaskSubmitted(0, 4, "app", "u", 65536, False))
    agg(TaskIngested(10, 4, "app"))
    agg(DmaCompleted(60, 4, 65536, 16))
    agg(TaskFinished(80, 4, "app", "done", 65536))
    snap = agg.as_dict()
    assert snap["stages"]["ingest_to_execute"]["total"] == 50
    assert snap["stages"]["execute_to_complete"]["total"] == 20


def test_aggregator_excludes_non_done_tasks_from_latency():
    agg = StageAggregator()
    agg(TaskSubmitted(0, 1, "app", "u", 4096, False))
    agg(TaskIngested(5, 1, "app"))
    agg(TaskFinished(50, 1, "app", "aborted", 4096))
    agg(TaskSubmitted(0, 2, "app", "u", 4096, False))
    agg(TaskFinished(1, 2, "app", "dropped", 4096))
    snap = agg.as_dict()
    assert snap["outcomes"]["aborted"] == 1
    assert snap["outcomes"]["dropped"] == 1
    # Aborted/dropped tasks never contribute end-to-end samples.
    assert snap["stages"]["submit_to_complete"]["count"] == 0
    assert snap["stages"]["execute_to_complete"]["count"] == 0
    assert snap["in_flight"] == 0


def test_aggregator_tracks_thread_sleep_wake():
    agg = StageAggregator()
    agg(ThreadSleep(100, 0))
    agg(ThreadWake(400, 0, 300))
    snap = agg.as_dict()
    assert snap["threads"] == {"sleeps": 1, "wakes": 1, "slept_cycles": 300}


def test_service_feeds_aggregator_end_to_end():
    setup = Setup()
    aspace, client = setup.aspace, setup.client
    src = aspace.mmap(16 * 1024, populate=True)
    dst = aspace.mmap(16 * 1024, populate=True)

    def gen():
        for _ in range(3):
            yield from client.amemcpy(dst, src, 16 * 1024)
            yield from client.csync(dst, 16 * 1024)

    setup.run_process(gen())
    snap = setup.service.stage_stats.as_dict()
    assert snap["outcomes"]["done"] == 3
    assert snap["in_flight"] == 0
    for name in STAGE_NAMES:
        assert snap["stages"][name]["count"] == 3, name
        assert snap["stages"][name]["max"] >= 0
    # Submission precedes ingestion precedes completion on the sim clock.
    assert snap["stages"]["submit_to_complete"]["total"] >= \
        snap["stages"]["submit_to_ingest"]["total"]
    assert snap["rounds"] > 0
    assert snap["events"] > 9


def test_extra_subscriber_sees_raw_events():
    setup = Setup()
    kinds = []
    setup.env.trace.subscribe(lambda event: kinds.append(event.kind))
    aspace, client = setup.aspace, setup.client
    src = aspace.mmap(4096, populate=True)
    dst = aspace.mmap(4096, populate=True)

    def gen():
        yield from client.amemcpy(dst, src, 4096)
        yield from client.csync(dst, 4096)

    setup.run_process(gen())
    assert "task-submitted" in kinds
    assert "task-ingested" in kinds
    assert "segment-executed" in kinds
    assert "task-finished" in kinds
    # Pipeline order holds for the first occurrence of each stage.
    order = [kinds.index(k) for k in
             ("task-submitted", "task-ingested", "task-finished")]
    assert order == sorted(order)
