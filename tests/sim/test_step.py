"""Cooperative stepping: ``Environment.step`` shares the heap discipline
with ``run``/``run_until``, so any interleaving of bounded steps executes
the exact same event sequence — and lands on byte-identical counters —
as one batch run.  That equivalence is what lets an external driver
(:mod:`repro.serve.driver`) own the loop without perturbing the sim.

Covered here:

* event-budget and cycle-horizon semantics (``step(max_cycles=c)`` is
  exactly ``run(until=now+c)``; an event budget stops the clock on the
  last executed event and never skips to the horizon);
* idle/quiescence introspection (``idle``, ``next_event_time``);
* the non-reentrancy guard (``step``/``run``/``run_until`` from inside
  an executing event raise);
* the differential oracle: a full Copier workload driven by chaotic
  step/run interleavings matches a single batch run on buffers, trace
  sequence, clock, event count and service counters — on the fast path,
  under ``COPIER_SLOWPATH=1``, and with ``COPIER_FAULT_PLAN=mixed``
  armed.
"""

import re

import pytest

from repro.sim import Compute, Environment
from repro.sim.engine import DEFAULT_RUN_LIMIT, StepReport
from tests.copier.conftest import Setup

# ------------------------------------------------------------ step basics


def test_default_run_limit_is_exported():
    assert DEFAULT_RUN_LIMIT == 500_000_000_000


def test_step_event_budget():
    env = Environment()
    fired = []
    for i in range(5):
        env.schedule(10 * (i + 1), lambda i=i: fired.append(i))

    report = env.step(max_events=2)
    assert isinstance(report, StepReport)
    assert (report.executed, report.now, report.idle) == (2, 20, False)
    assert fired == [0, 1]
    # The clock stops on the last executed event: no horizon skip.
    assert env.now == 20
    assert env.next_event_time() == 30
    assert not env.idle

    report = env.step()  # no bounds: run to quiescence, like run()
    assert (report.executed, report.now, report.idle) == (3, 50, True)
    assert fired == [0, 1, 2, 3, 4]
    assert env.idle
    assert env.next_event_time() is None

    # Stepping an idle environment is a cheap no-op.
    report = env.step(max_events=100)
    assert (report.executed, report.now, report.idle) == (0, 50, True)


def test_step_cycle_horizon():
    env = Environment()
    env.schedule(50, lambda: None)

    # The clock advances *to* the horizon even when nothing executes...
    report = env.step(max_cycles=30)
    assert (report.executed, report.now, report.idle) == (0, 30, False)
    # ...an event exactly at the horizon still executes...
    report = env.step(max_cycles=20)
    assert (report.executed, report.now, report.idle) == (1, 50, True)
    # ...and an idle environment still burns the requested virtual time.
    report = env.step(max_cycles=25)
    assert (report.executed, report.now, report.idle) == (0, 75, True)


def test_step_event_budget_blocks_horizon_skip():
    env = Environment()
    for t in (10, 20, 30):
        env.schedule(t, lambda: None)

    # The event budget cuts the slice short: the clock must stay on the
    # last executed event, not jump to the untouched horizon.
    report = env.step(max_events=2, max_cycles=100)
    assert (report.executed, report.now) == (2, 20)
    assert env.next_event_time() == 30
    # With budget to spare the horizon semantics return.
    report = env.step(max_events=5, max_cycles=80)  # limit = 20 + 80 = 100
    assert (report.executed, report.now, report.idle) == (1, 100, True)


def _self_scheduling(env):
    """A little feedback workload: each tick reschedules at a data-
    dependent offset, so any clock divergence compounds visibly."""
    state = {"n": 0}

    def tick():
        state["n"] += 1
        if state["n"] < 40:
            env.schedule(7 + (state["n"] % 5), tick)

    env.schedule(0, tick)
    return state


def test_step_max_cycles_equals_run_until_horizon():
    """``step(max_cycles=c)`` is ``run(until=now+c)``, slice for slice."""
    a, b = Environment(), Environment()
    sa, sb = _self_scheduling(a), _self_scheduling(b)
    for c in (13, 1, 50, 7, 200, 1000):
        a.run(until=a.now + c)
        b.step(max_cycles=c)
        assert (a.now, a.events_executed) == (b.now, b.events_executed)
    assert a.idle and b.idle
    assert sa["n"] == sb["n"] == 40


# ------------------------------------------------- schedule delay typing


@pytest.mark.parametrize("slowheap", [False, True], ids=["calendar", "slowheap"])
def test_schedule_delay_validated_at_the_seam(monkeypatch, slowheap):
    """Delays are whole cycles: non-integral or non-numeric delays are a
    typed error, integral floats normalize to int, negatives stay a
    ValueError — identically in both queue flavors."""
    if slowheap:
        monkeypatch.setenv("COPIER_SLOWHEAP", "1")
    else:
        monkeypatch.delenv("COPIER_SLOWHEAP", raising=False)
    env = Environment()
    for bad in (1.5, float("nan"), float("inf"), "10", None, True, 10 + 0j):
        with pytest.raises(TypeError, match="delay"):
            env.schedule(bad, lambda: None)
    with pytest.raises(ValueError):
        env.schedule(-1, lambda: None)
    with pytest.raises(ValueError):
        env.schedule(-2.0, lambda: None)  # normalized first, then rejected
    assert env.idle  # nothing leaked into the queue

    fired = []
    env.schedule(5.0, lambda: fired.append(env.now))
    env.run()
    assert fired == [5] and env.now == 5  # float 5.0 became int cycle 5
    assert type(env.now) is int


# ------------------------------------------------------------- reentrancy


@pytest.mark.parametrize("outer", ["run", "step"])
def test_loop_reentry_from_event_raises(outer):
    env = Environment()
    seen = []

    def from_inside():
        for call in (lambda: env.step(max_events=1),
                     env.run,
                     lambda: env.run_until(env.event())):
            try:
                call()
            except RuntimeError as exc:
                seen.append(str(exc))

    env.schedule(0, from_inside)
    if outer == "run":
        env.run()
    else:
        env.step()
    assert len(seen) == 3
    assert all("re-entered" in msg for msg in seen)


def test_loop_usable_again_after_reentry_error():
    env = Environment()

    def from_inside():
        with pytest.raises(RuntimeError):
            env.step()

    env.schedule(0, from_inside)
    env.run()
    # The guard must reset: the loop keeps working afterwards.
    fired = []
    env.schedule(5, lambda: fired.append(True))
    report = env.step()
    assert fired == [True]
    assert report.idle


# --------------------------------------- differential oracle: step ≡ run


def _normalize(events):
    """Remap task_ids to first-seen order: the global task counter leaks
    across runs, but the id *sequence* must be isomorphic."""
    mapping = {}

    def sub(match):
        tid = match.group(1)
        if tid not in mapping:
            mapping[tid] = "T%d" % len(mapping)
        return "task_id=" + mapping[tid]

    return [re.sub(r"task_id=(\d+)", sub, e) for e in events]


def _payload(n, salt):
    return bytes((i * 31 + salt) % 251 for i in range(n))


def _run_workload(drive):
    """Run the fixed Copier workload under ``drive(env)``; returns every
    observable that must be interleaving-invariant."""
    setup = Setup(n_frames=8192)
    events = []
    setup.env.trace.subscribe(lambda e: events.append(repr(e)))
    aspace, client = setup.aspace, setup.client

    big = 48 * 1024
    small = 3 * 1024
    src_big = aspace.mmap(big, populate=True, contiguous=True)
    dst_big = aspace.mmap(big, populate=True, contiguous=True)
    src_small = [aspace.mmap(small, populate=True) for _ in range(3)]
    dst_small = [aspace.mmap(small) for _ in range(3)]  # demand-faulted
    aspace.write(src_big, _payload(big, 7))
    for i, va in enumerate(src_small):
        aspace.write(va, _payload(small, i))

    def app():
        yield from client.amemcpy(dst_big, src_big, big)
        yield Compute(20_000)
        yield from client.csync(dst_big, big)
        for s, d in zip(src_small, dst_small):
            yield from client.amemcpy(d, s, small)
        yield Compute(5_000)
        for d in dst_small:
            yield from client.csync(d, small)
        return True

    proc = setup.env.spawn(app(), name="app", affinity=0)
    drive(setup.env)

    assert proc.terminated.triggered and proc.result is True
    assert setup.env.idle
    buffers = [bytes(aspace.read(dst_big, big))]
    buffers += [bytes(aspace.read(d, small)) for d in dst_small]
    return {
        "buffers": buffers,
        "events": _normalize(events),
        "now": setup.env.now,
        "events_executed": setup.env.events_executed,
        "stats": setup.service.stats_snapshot(),
        "pins": aspace.pins_outstanding(),
    }


def _drive_batch(env):
    env.run()


def _drive_stepped(env):
    """Run to quiescence in chaotic bounded slices."""
    sizes = [1, 2, 3, 5, 8, 13, 121]
    i = 0
    while not env.idle:
        env.step(max_events=sizes[i % len(sizes)])
        i += 1


def _drive_mixed(env):
    """Interleave step(max_events), step(max_cycles) and run(until=...).

    Cycle-bounded slices target ``next_event_time()`` so the clock always
    lands on an executed event's timestamp, exactly like a pure run.
    """
    i = 0
    while not env.idle:
        mode = i % 4
        if mode == 0:
            env.step(max_events=4)
        elif mode == 1:
            env.step(max_cycles=env.next_event_time() - env.now)
        elif mode == 2:
            env.run(until=env.next_event_time())
        else:
            env.step(max_events=37)
        i += 1


_KNOB_NAMES = ("COPIER_FAULT_PLAN", "COPIER_FAULT_SEED", "COPIER_SLOWPATH")

_KNOBS = {
    "clean": {},
    "faults-mixed": {"COPIER_FAULT_PLAN": "mixed", "COPIER_FAULT_SEED": "7"},
    "slowpath": {"COPIER_SLOWPATH": "1"},
    "faults-slowpath": {"COPIER_FAULT_PLAN": "mixed",
                        "COPIER_FAULT_SEED": "7", "COPIER_SLOWPATH": "1"},
}


@pytest.mark.parametrize("knobs", sorted(_KNOBS), ids=sorted(_KNOBS))
@pytest.mark.parametrize("drive", [_drive_stepped, _drive_mixed],
                         ids=["stepped", "mixed"])
def test_interleaved_step_matches_batch_run(monkeypatch, knobs, drive):
    for name in _KNOB_NAMES:
        monkeypatch.delenv(name, raising=False)
    for name, value in _KNOBS[knobs].items():
        monkeypatch.setenv(name, value)

    ref = _run_workload(_drive_batch)
    got = _run_workload(drive)

    assert got["buffers"] == ref["buffers"]
    assert got["now"] == ref["now"]
    assert got["events_executed"] == ref["events_executed"]
    assert got["events"] == ref["events"]
    assert got["stats"] == ref["stats"]
    assert got["pins"] == ref["pins"] == 0
