"""The node-level chaos campaign: the zero-lost-acked-writes oracle.

Seeded kill/partition/slow storms against a live fleet, audited
against the shadow-model oracle: every acknowledged write must read
back at least as new after the storm heals, no GET may return a value
that was never issued, and no page pin may leak anywhere in the fleet.
The same seed must reproduce the campaign exactly.
"""

import pytest

from repro.chaos import fleet_determinism_fingerprint, run_fleet_campaign

SEEDS = [0, 1, 2]


@pytest.mark.parametrize("seed", SEEDS)
def test_storm_loses_no_acknowledged_writes(seed):
    result = run_fleet_campaign(seed=seed)
    assert result["failures"] == []
    assert result["lost_acked"] == []
    assert result["leaked_pins"] == 0
    assert len(result["events"]) > 0
    # The streams really ran: every op completed or was abandoned at a
    # dead gateway, and most were acknowledged.
    for stream in result["streams"].values():
        assert stream["ops_done"] == 12
    assert result["ops"]["acked"] > 0


def test_campaign_is_deterministic_for_a_seed():
    a = run_fleet_campaign(seed=0)
    b = run_fleet_campaign(seed=0)
    assert fleet_determinism_fingerprint(a) == fleet_determinism_fingerprint(b)


def test_campaign_with_kills_still_promotes_and_audits():
    # Seed 3 is known (and pinned by determinism) to fire a node kill.
    result = run_fleet_campaign(seed=3)
    assert result["failures"] == []
    assert result["kills"] >= 1
    assert len(result["promotions"]) >= result["kills"]
    dead = {node_id for _view, node_id in result["promotions"]}
    killed = [snap for snap in result["nodes"] if not snap["alive"]]
    assert {snap["node"] for snap in killed} <= dead
