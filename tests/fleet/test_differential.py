"""Differential suite: a single-node fleet IS the bare-System path.

The same op script runs twice — once through ``KVStore`` on a bare
:class:`~repro.kernel.system.System` stepped in fleet-sized quanta, and
once through a one-node :class:`~repro.fleet.fleet.Fleet` — and every
counter both sides share must be identical: virtual clock, events
executed, store content digest and counters, client copy bytes, and
the copier service's full ``stats_snapshot()`` (minus the volatile
clock keys).  This pins the fleet wrapping (gateway generators, ring
lookups, op settling) to zero simulated cost: sharding is pure
control-plane.
"""

from repro.fleet import Fleet, KVStore
from repro.kernel.system import System

QUANTUM = 20_000


def _script():
    ops = []
    for i in range(6):
        key = b"diff-k%d" % (i % 3)
        ops.append(("set", key, bytes([i + 1]) * (3000 + 512 * i)))
        ops.append(("get", key, None))
    ops.append(("get", b"missing", None))
    return ops


def _scrub(value):
    """Drop volatile wall/virtual-clock keys from a nested snapshot."""
    if isinstance(value, dict):
        return {k: _scrub(v) for k, v in value.items() if k != "now"}
    if isinstance(value, list):
        return [_scrub(v) for v in value]
    return value


def _run_fleet():
    fleet = Fleet(n_nodes=1, detectors=False)
    node = fleet.nodes[0]
    results = []
    for kind, key, value in _script():
        op = (fleet.set(key, value) if kind == "set"
              else fleet.get(key))
        fleet.run_ops([op])
        assert op.error is None
        results.append(op.result)
    return node.system, node.store, results


def _run_bare():
    system = System()
    store = KVStore(system, name="n0-store")
    env = system.env
    results = []
    horizon = 0
    for kind, key, value in _script():
        out = []

        def runner(kind=kind, key=key, value=value, out=out):
            if kind == "set":
                yield from store.set_op(key, value)
                out.append(True)
            else:
                out.append((yield from store.get_op(key)))

        env.spawn(runner(), name="bare-op")
        while not out:
            horizon += QUANTUM
            env.step(max_cycles=horizon - env.now)
        results.append(out[0])
    return system, store, results


def test_single_node_fleet_is_counter_identical_to_bare_system():
    f_system, f_store, f_results = _run_fleet()
    b_system, b_store, b_results = _run_bare()

    # Byte-identical data plane.
    assert f_results == b_results
    assert f_store.digest() == b_store.digest()
    assert f_store.snapshot() == b_store.snapshot()

    # Counter-identical simulation: the fleet wrapper added zero
    # simulated work.
    assert f_system.env.now == b_system.env.now
    assert f_system.env.events_executed == b_system.env.events_executed
    assert (f_store.client.stats.bytes_copied
            == b_store.client.stats.bytes_copied)
    assert (_scrub(f_system.copier.stats_snapshot())
            == _scrub(b_system.copier.stats_snapshot()))

    # Clean teardown on both sides.
    assert f_system.leaked_pins() == 0
    assert b_system.leaked_pins() == 0
    assert f_system.copier.shutdown()["drained"]
    assert b_system.copier.shutdown()["drained"]


def test_single_node_fleet_acks_and_misses():
    fleet = Fleet(n_nodes=1, detectors=False)
    set_op = fleet.set(b"k", b"v" * 4096)
    fleet.run_ops([set_op])
    get_hit = fleet.get(b"k")
    get_miss = fleet.get(b"other")
    fleet.run_ops([get_hit, get_miss])
    assert set_op.acked and set_op.result is True
    assert get_hit.result == b"v" * 4096
    assert get_miss.result is None and get_miss.error is None
    assert set_op.latency_cycles > 0
    assert fleet.leaked_pins() == 0
