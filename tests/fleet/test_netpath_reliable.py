"""The reliable exactly-once transport layered over lossy links.

These tests drive :class:`~repro.fleet.netpath.Channel`'s reliable
machinery directly — framing, retransmission, dedup, in-order delivery —
against a seeded :class:`~repro.fleet.interconnect.LinkFaultPlan`,
bypassing the syscall tx path so each invariant is isolated from RPC
behavior.  The fleet-level consequences (no lost acked writes under a
lossy wire) are covered by the chaos campaign tests.
"""

from repro.fleet.interconnect import Interconnect, LinkFaultPlan
from repro.fleet.netpath import _ACK, _DATA, _frame, _parse_frame, Channel
from repro.kernel.system import System

LATENCY = 1_000


class _Node:
    """The minimal node shape the channel needs: id, env, system, alive."""

    def __init__(self, node_id):
        self.node_id = node_id
        self.system = System(n_cores=1, phys_frames=512)
        self.env = self.system.env
        self.alive = True


class _CaptureChannel(Channel):
    """Reliable channel whose in-order deliveries land in a list."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.got = []

    def _deliver(self, payload):
        if not self.dst.alive:
            return
        self.got.append(payload)
        self.delivered += 1


def _make_channel(plan):
    net = Interconnect(latency_cycles=LATENCY, bytes_per_cycle=16.0,
                       fault_plan=plan)
    src, dst = _Node("a"), _Node("b")
    net.attach("a", src.env)
    net.attach("b", dst.env)
    return _CaptureChannel(net, src, dst, reliable=True), src, dst


def _pump(src, dst, rounds=600, quantum=LATENCY):
    """Round-robin the two machine clocks, FleetStepper style."""
    for _ in range(rounds):
        src.env.step(max_cycles=quantum)
        dst.env.step(max_cycles=quantum)


# ---------------------------------------------------------------- framing

def test_frame_roundtrip():
    frame = _frame(_DATA, 41, b"payload bytes")
    assert _parse_frame(frame) == (_DATA, 41, b"payload bytes")
    ack = _frame(_ACK, 7, b"")
    assert _parse_frame(ack) == (_ACK, 7, b"")


def test_any_single_bitflip_is_detected():
    frame = _frame(_DATA, 3, b"x" * 32)
    for pos in range(len(frame)):
        for bit in (0, 7):
            buf = bytearray(frame)
            buf[pos] ^= 1 << bit
            assert _parse_frame(bytes(buf)) is None, (pos, bit)


def test_runt_frame_is_rejected():
    assert _parse_frame(b"") is None
    assert _parse_frame(_frame(_DATA, 0, b"")[:-1]) is None


# ----------------------------------------------------- exactly-once stream

def test_exactly_once_in_order_over_mixed_lossy_link():
    plan = LinkFaultPlan("test", seed=7, drop_rate=0.15, dup_rate=0.15,
                         reorder_rate=0.20, reorder_window=4,
                         corrupt_rate=0.10)
    ch, src, dst = _make_channel(plan)
    sent = [b"msg-%03d" % i for i in range(60)]
    for payload in sent:
        ch._send_reliable(payload)
    _pump(src, dst)
    # Every payload delivered exactly once, in send order, despite the
    # wire dropping, duplicating, reordering and corrupting frames.
    assert ch.got == sent
    assert not ch._unacked
    stats = ch.transport_stats()
    assert stats["retransmits"] > 0
    assert stats["dups_deduped"] > 0
    link = ch.interconnect.link("a", "b")
    assert link.lossy_dropped > 0


def test_corrupted_frames_are_dropped_never_delivered():
    plan = LinkFaultPlan("test", seed=3, corrupt_rate=0.5)
    ch, src, dst = _make_channel(plan)
    sent = [b"payload-%02d" % i for i in range(30)]
    for payload in sent:
        ch._send_reliable(payload)
    _pump(src, dst)
    assert ch.got == sent          # intact copies only, via retransmit
    assert ch.crc_dropped > 0      # the corrupted ones were detected
    assert ch.interconnect.link("a", "b").corruptions > 0


def test_duplicates_never_double_apply():
    plan = LinkFaultPlan("test", seed=5, dup_rate=0.6)
    ch, src, dst = _make_channel(plan)
    sent = [b"dup-%02d" % i for i in range(30)]
    for payload in sent:
        ch._send_reliable(payload)
    _pump(src, dst)
    assert ch.got == sent
    assert ch.dups_deduped > 0


# ---------------------------------------------------------- never abandon

def test_frames_survive_a_dead_receiver():
    plan = LinkFaultPlan("test", seed=1, drop_rate=0.1)
    ch, src, dst = _make_channel(plan)
    dst.alive = False
    ch._send_reliable(b"hold me")
    _pump(src, dst, rounds=200)
    # Not delivered, not abandoned: the sender holds the frame and its
    # timer keeps probing (backoff-capped) until the receiver returns.
    assert ch.got == []
    assert set(ch._unacked) == {0}
    dst.alive = True
    _pump(src, dst, rounds=600)
    assert ch.got == [b"hold me"]
    assert not ch._unacked


def test_retransmit_pauses_wire_traffic_while_dst_down():
    plan = LinkFaultPlan("test", seed=1, drop_rate=0.0)
    ch, src, dst = _make_channel(plan)
    dst.alive = False
    ch._send_reliable(b"probe")
    frames_before = ch.interconnect.link("a", "b").messages
    _pump(src, dst, rounds=100)
    # Retransmit timers fire but do not touch the wire while the
    # destination is down (beyond the initial transmit).
    assert ch.interconnect.link("a", "b").messages == frames_before
    assert ch.retransmits == 0
