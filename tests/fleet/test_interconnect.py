"""The modeled interconnect: latency, bandwidth, queuing, faults."""

import pytest

from repro.fleet.interconnect import Interconnect, LinkFaultPlan
from repro.sim import Environment


def _pair(latency=1000, bpc=16.0):
    net = Interconnect(latency_cycles=latency, bytes_per_cycle=bpc)
    envs = {"a": Environment(), "b": Environment()}
    for node_id, env in envs.items():
        net.attach(node_id, env)
    return net, envs


def test_delivery_time_is_wire_plus_latency():
    net, envs = _pair(latency=1000, bpc=16.0)
    arrivals = []
    payload = b"x" * 1600  # wire time = 1600/16 = 100 cycles
    assert net.transmit("a", "b", payload,
                        lambda p: arrivals.append(envs["b"].now))
    envs["b"].step(max_cycles=10_000)
    assert arrivals == [1100]


def test_back_to_back_messages_queue_on_the_wire():
    net, envs = _pair(latency=1000, bpc=16.0)
    arrivals = []
    payload = b"x" * 1600  # 100 cycles of wire time each
    for _ in range(3):
        net.transmit("a", "b", payload, lambda p: arrivals.append(
            envs["b"].now))
    envs["b"].step(max_cycles=10_000)
    # Serialization: each message waits for the previous transfer, while
    # propagation latency pipelines.
    assert arrivals == [1100, 1200, 1300]
    lnk = net.link("a", "b")
    assert lnk.messages == 3
    assert lnk.bytes_sent == 4800
    assert lnk.queue_cycles == 100 + 200


def test_partition_drops_and_counts():
    net, envs = _pair()
    delivered = []
    net.partition("a", "b")
    assert net.is_partitioned("a", "b") and net.is_partitioned("b", "a")
    assert not net.transmit("a", "b", b"payload", delivered.append)
    assert not net.transmit("b", "a", b"payload", delivered.append)
    envs["a"].step(max_cycles=10_000)
    envs["b"].step(max_cycles=10_000)
    assert delivered == []
    assert net.link("a", "b").dropped == 1
    assert net.link("b", "a").dropped == 1
    net.heal("a", "b")
    assert net.transmit("a", "b", b"payload", delivered.append)
    envs["b"].step(max_cycles=10_000)
    assert delivered == [b"payload"]


def test_overlapping_partitions_nest_and_heals_are_floored():
    # Two overlapping partitions of the same pair need two heals: a
    # single heal must not reconnect a link someone else still holds
    # partitioned (the chaos controller schedules heals independently).
    net, envs = _pair()
    delivered = []
    net.partition("a", "b")
    net.partition("a", "b")
    net.heal("a", "b")
    assert net.is_partitioned("a", "b")
    assert not net.transmit("a", "b", b"payload", delivered.append)
    net.heal("a", "b")
    assert not net.is_partitioned("a", "b")
    # Extra heals are a no-op, never an "anti-partition" credit.
    net.heal("a", "b")
    net.heal("a", "b")
    assert net.link("a", "b").partition_depth == 0
    net.partition("a", "b")
    assert net.is_partitioned("a", "b")
    net.heal("a", "b")
    assert net.transmit("a", "b", b"payload", delivered.append)
    envs["b"].step(max_cycles=10_000)
    assert delivered == [b"payload"]


def test_heal_all_clears_nested_partitions_and_slowness():
    net, _envs = _pair()
    net.partition("a", "b")
    net.partition("a", "b")
    net.partition("b", "a")
    net.slow("a", "b", 8.0)
    net.heal_all()
    assert not net.is_partitioned("a", "b")
    assert not net.is_partitioned("b", "a")
    assert net.link("a", "b").partition_depth == 0
    assert net.link("a", "b").slow_factor == 1.0
    # heal_all is itself idempotent.
    net.heal_all()
    assert not net.is_partitioned("a", "b")


def test_slow_scales_latency_and_transfer():
    net, envs = _pair(latency=1000, bpc=16.0)
    net.slow("a", "b", 4.0)
    arrivals = []
    net.transmit("a", "b", b"x" * 1600, lambda p: arrivals.append(
        envs["b"].now))
    envs["b"].step(max_cycles=20_000)
    assert arrivals == [4 * 100 + 4 * 1000]
    net.heal_all()
    assert net.link("a", "b").slow_factor == 1.0


def test_parameter_validation():
    with pytest.raises(ValueError):
        Interconnect(latency_cycles=0)
    with pytest.raises(ValueError):
        Interconnect(bytes_per_cycle=0)
    net, _envs = _pair()
    with pytest.raises(ValueError):
        net.slow("a", "b", 0.5)


def test_snapshot_aggregates_links():
    net, envs = _pair()
    net.transmit("a", "b", b"x" * 64, lambda p: None)
    net.partition("a", "b")
    net.transmit("a", "b", b"x" * 64, lambda p: None)
    snap = net.snapshot()
    assert snap["messages"] == 1
    assert snap["bytes"] == 64
    assert snap["dropped"] == 1
    assert snap["links"]["a->b"]["partitioned"] is True


# ----------------------------------------------------- lossy-link faults

def _lossy_pair(seed=2, **rates):
    plan = LinkFaultPlan("test", seed=seed, **rates)
    net = Interconnect(latency_cycles=1000, bytes_per_cycle=16.0,
                       fault_plan=plan)
    envs = {"a": Environment(), "b": Environment()}
    for node_id, env in envs.items():
        net.attach(node_id, env)
    return net, envs


def test_stats_totals_match_per_link_counters():
    net, envs = _lossy_pair(drop_rate=0.2, dup_rate=0.2, reorder_rate=0.2,
                            reorder_window=3, corrupt_rate=0.2)
    for i in range(200):
        net.transmit("a", "b", b"x" * (64 + i), lambda p: None)
        net.transmit("b", "a", b"y" * (64 + i), lambda p: None)
    net.partition("a", "b")
    net.transmit("a", "b", b"blocked", lambda p: None)
    for env in envs.values():
        env.step(max_cycles=1_000_000)
    stats = net.stats()
    assert stats["fault_plan"]["name"] == "test"
    for field, total in stats["totals"].items():
        assert total == sum(link[field] for link in stats["links"].values()), \
            field
    totals = stats["totals"]
    assert totals["messages"] == 400
    assert totals["dropped"] == 1           # the partitioned transmit
    for field in ("lossy_dropped", "dups", "reorders", "corruptions"):
        assert totals[field] > 0, field
    # Silent losses are invisible to the sender: they are *not* in
    # ``dropped`` (the loud partition counter).
    assert totals["lossy_dropped"] != totals["dropped"]


def test_stats_available_and_quiet_without_a_plan():
    net, envs = _pair()
    net.transmit("a", "b", b"x" * 64, lambda p: None)
    envs["b"].step(max_cycles=10_000)
    stats = net.stats()
    assert stats["fault_plan"] is None
    assert stats["totals"]["messages"] == 1
    assert stats["totals"]["bytes_sent"] == 64
    for field in ("lossy_dropped", "dups", "reorders", "corruptions"):
        assert stats["totals"][field] == 0
    assert stats["links"]["a->b"]["queue_cycles"] == 0


def test_set_and_reset_link_faults_round_trip():
    net, _envs = _lossy_pair(drop_rate=0.05)
    net.set_link_faults("a", "b", drop_rate=0.5, corrupt_rate=0.25)
    for src, dst in (("a", "b"), ("b", "a")):
        lnk = net.link(src, dst)
        assert lnk.drop_rate == 0.5
        assert lnk.corrupt_rate == 0.25
    net.reset_link_faults("a", "b")
    for src, dst in (("a", "b"), ("b", "a")):
        lnk = net.link(src, dst)
        assert lnk.drop_rate == 0.05
        assert lnk.corrupt_rate == 0.0


def test_link_fault_overrides_need_an_armed_plan():
    net, _envs = _pair()
    with pytest.raises(ValueError):
        net.set_link_faults("a", "b", drop_rate=0.5)
    with pytest.raises(ValueError):
        net.reset_link_faults("a", "b")


def test_link_fault_plan_validation_and_env():
    with pytest.raises(ValueError):
        LinkFaultPlan("bad", drop_rate=1.5)
    with pytest.raises(ValueError):
        LinkFaultPlan("bad", reorder_rate=0.1, reorder_window=0)
    with pytest.raises(ValueError):
        LinkFaultPlan.named("no-such-plan")
    assert LinkFaultPlan.from_env({"COPIER_LINK_FAULT_PLAN": ""}) is None
    assert LinkFaultPlan.from_env({"COPIER_LINK_FAULT_PLAN": "off"}) is None
    plan = LinkFaultPlan.from_env({"COPIER_LINK_FAULT_PLAN": "mixed",
                                   "COPIER_LINK_FAULT_SEED": "9"})
    assert plan.name == "mixed" and plan.seed == 9
    assert plan.as_dict()["drop_rate"] > 0


def test_lossy_rolls_are_seeded_per_link():
    outcomes = []
    for _run in range(2):
        net, envs = _lossy_pair(seed=11, drop_rate=0.3, corrupt_rate=0.3)
        got = []
        for i in range(50):
            net.transmit("a", "b", b"m%02d" % i, got.append)
        envs["b"].step(max_cycles=1_000_000)
        lnk = net.link("a", "b")
        outcomes.append((got, lnk.lossy_dropped, lnk.corruptions))
    assert outcomes[0] == outcomes[1]
