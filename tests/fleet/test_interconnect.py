"""The modeled interconnect: latency, bandwidth, queuing, faults."""

import pytest

from repro.fleet.interconnect import Interconnect
from repro.sim import Environment


def _pair(latency=1000, bpc=16.0):
    net = Interconnect(latency_cycles=latency, bytes_per_cycle=bpc)
    envs = {"a": Environment(), "b": Environment()}
    for node_id, env in envs.items():
        net.attach(node_id, env)
    return net, envs


def test_delivery_time_is_wire_plus_latency():
    net, envs = _pair(latency=1000, bpc=16.0)
    arrivals = []
    payload = b"x" * 1600  # wire time = 1600/16 = 100 cycles
    assert net.transmit("a", "b", payload,
                        lambda p: arrivals.append(envs["b"].now))
    envs["b"].step(max_cycles=10_000)
    assert arrivals == [1100]


def test_back_to_back_messages_queue_on_the_wire():
    net, envs = _pair(latency=1000, bpc=16.0)
    arrivals = []
    payload = b"x" * 1600  # 100 cycles of wire time each
    for _ in range(3):
        net.transmit("a", "b", payload, lambda p: arrivals.append(
            envs["b"].now))
    envs["b"].step(max_cycles=10_000)
    # Serialization: each message waits for the previous transfer, while
    # propagation latency pipelines.
    assert arrivals == [1100, 1200, 1300]
    lnk = net.link("a", "b")
    assert lnk.messages == 3
    assert lnk.bytes_sent == 4800
    assert lnk.queue_cycles == 100 + 200


def test_partition_drops_and_counts():
    net, envs = _pair()
    delivered = []
    net.partition("a", "b")
    assert net.is_partitioned("a", "b") and net.is_partitioned("b", "a")
    assert not net.transmit("a", "b", b"payload", delivered.append)
    assert not net.transmit("b", "a", b"payload", delivered.append)
    envs["a"].step(max_cycles=10_000)
    envs["b"].step(max_cycles=10_000)
    assert delivered == []
    assert net.link("a", "b").dropped == 1
    assert net.link("b", "a").dropped == 1
    net.heal("a", "b")
    assert net.transmit("a", "b", b"payload", delivered.append)
    envs["b"].step(max_cycles=10_000)
    assert delivered == [b"payload"]


def test_overlapping_partitions_nest_and_heals_are_floored():
    # Two overlapping partitions of the same pair need two heals: a
    # single heal must not reconnect a link someone else still holds
    # partitioned (the chaos controller schedules heals independently).
    net, envs = _pair()
    delivered = []
    net.partition("a", "b")
    net.partition("a", "b")
    net.heal("a", "b")
    assert net.is_partitioned("a", "b")
    assert not net.transmit("a", "b", b"payload", delivered.append)
    net.heal("a", "b")
    assert not net.is_partitioned("a", "b")
    # Extra heals are a no-op, never an "anti-partition" credit.
    net.heal("a", "b")
    net.heal("a", "b")
    assert net.link("a", "b").partition_depth == 0
    net.partition("a", "b")
    assert net.is_partitioned("a", "b")
    net.heal("a", "b")
    assert net.transmit("a", "b", b"payload", delivered.append)
    envs["b"].step(max_cycles=10_000)
    assert delivered == [b"payload"]


def test_heal_all_clears_nested_partitions_and_slowness():
    net, _envs = _pair()
    net.partition("a", "b")
    net.partition("a", "b")
    net.partition("b", "a")
    net.slow("a", "b", 8.0)
    net.heal_all()
    assert not net.is_partitioned("a", "b")
    assert not net.is_partitioned("b", "a")
    assert net.link("a", "b").partition_depth == 0
    assert net.link("a", "b").slow_factor == 1.0
    # heal_all is itself idempotent.
    net.heal_all()
    assert not net.is_partitioned("a", "b")


def test_slow_scales_latency_and_transfer():
    net, envs = _pair(latency=1000, bpc=16.0)
    net.slow("a", "b", 4.0)
    arrivals = []
    net.transmit("a", "b", b"x" * 1600, lambda p: arrivals.append(
        envs["b"].now))
    envs["b"].step(max_cycles=20_000)
    assert arrivals == [4 * 100 + 4 * 1000]
    net.heal_all()
    assert net.link("a", "b").slow_factor == 1.0


def test_parameter_validation():
    with pytest.raises(ValueError):
        Interconnect(latency_cycles=0)
    with pytest.raises(ValueError):
        Interconnect(bytes_per_cycle=0)
    net, _envs = _pair()
    with pytest.raises(ValueError):
        net.slow("a", "b", 0.5)


def test_snapshot_aggregates_links():
    net, envs = _pair()
    net.transmit("a", "b", b"x" * 64, lambda p: None)
    net.partition("a", "b")
    net.transmit("a", "b", b"x" * 64, lambda p: None)
    snap = net.snapshot()
    assert snap["messages"] == 1
    assert snap["bytes"] == 64
    assert snap["dropped"] == 1
    assert snap["links"]["a->b"]["partitioned"] is True
