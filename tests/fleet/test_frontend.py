"""The fleet-aware socket frontend: real TCP, sharded sim backend.

A connection's bytes round-trip socket → gateway node → (possibly a
cross-node forward over the modeled interconnect) → KVStore copy path
→ back over the socket; killing a connection's home gateway re-homes
it transparently on the next request.
"""

import asyncio

from repro.apps.common import encode_get, encode_set
from repro.fleet import Fleet
from repro.serve import FleetDriver, FleetRedisServer, encode_hello

VALUE = 6000


async def _request(reader, writer, payload):
    writer.write(payload)
    await writer.drain()
    status = await reader.readexactly(1)
    length = int.from_bytes(await reader.readexactly(8), "little")
    data = await reader.readexactly(length) if length else b""
    return status, data


def test_fleet_redis_roundtrip_and_gateway_failover():
    async def go():
        fleet = Fleet(n_nodes=3)
        driver = FleetDriver(fleet)
        server = FleetRedisServer(fleet, driver, max_conns=4)
        async with driver:
            port = await server.start()
            conns = []
            for cid in range(3):
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port)
                writer.write(encode_hello(cid))
                conns.append((reader, writer))
            values = {}
            for cid, (reader, writer) in enumerate(conns):
                key = b"fr-k%d" % cid
                values[key] = bytes([cid + 1]) * VALUE
                status, _ = await _request(
                    reader, writer,
                    encode_set(key, VALUE) + values[key])
                assert status == b"+"
            # Reads through *other* connections (different gateways).
            for cid, (reader, writer) in enumerate(conns):
                key = b"fr-k%d" % ((cid + 1) % 3)
                status, data = await _request(reader, writer,
                                              encode_get(key))
                assert status == b"+" and data == values[key]
            status, data = await _request(*conns[0], encode_get(b"absent"))
            assert status == b"-" and data == b""

            # Kill connection 1's home gateway: the shard router
            # re-homes it and the acked data survives the promotion.
            fleet.kill_node(1)
            await driver.settle(600)
            status, data = await _request(*conns[1], encode_get(b"fr-k0"))
            assert status == b"+" and data == values[b"fr-k0"]
            assert server.failovers >= 1
            assert fleet.promotions

            for _reader, writer in conns:
                writer.close()
            await server.stop()
        assert server.requests_served == 8
        assert driver.parked_ops == 0
        assert driver.snapshot()["sessions_live"] == 0
        assert fleet.leaked_pins() == 0

    asyncio.run(go())


def test_fleet_driver_rejects_duplicate_sessions_and_bad_hello():
    async def go():
        fleet = Fleet(n_nodes=2)
        driver = FleetDriver(fleet)
        server = FleetRedisServer(fleet, driver, max_conns=2)
        async with driver:
            port = await server.start()
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(encode_hello(9))  # out of range
            assert await reader.read(1) == b""
            writer.close()
            await server.stop()
        assert server.rejected_conns == 1

    asyncio.run(go())
