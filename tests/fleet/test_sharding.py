"""Property tests for the consistent-hash shard router.

Randomized over seeded key sets and ring sizes: every key maps to
exactly one primary plus one *distinct* backup, owners are always ring
members, insertion order never matters, and removing a node only
remaps keys that node owned — the monotone consistent-hashing property
the fleet's promotion protocol depends on.
"""

import random

import pytest

from repro.fleet.sharding import HashRing, key_point

SEEDS = [0, 1, 2]


def _keys(rng, n=200):
    return [("key-%d-%d" % (rng.randrange(10**6), i)).encode()
            for i in range(n)]


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("n_nodes", [2, 3, 5, 8])
def test_every_key_has_one_primary_and_a_distinct_backup(seed, n_nodes):
    rng = random.Random(("shard-prop", seed, n_nodes).__repr__())
    ring = HashRing(range(n_nodes))
    for key in _keys(rng):
        owners = ring.owners(key)
        assert len(owners) == 2
        primary, backup = owners
        assert primary != backup
        assert primary in ring.nodes and backup in ring.nodes
        assert ring.primary(key) == primary
        assert ring.backup(key) == backup


@pytest.mark.parametrize("seed", SEEDS)
def test_removing_a_node_only_remaps_its_own_keys(seed):
    rng = random.Random(("shard-remove", seed).__repr__())
    n_nodes = rng.choice([3, 4, 6])
    ring = HashRing(range(n_nodes))
    keys = _keys(rng)
    before = ring.shard_map(keys)
    victim = rng.randrange(n_nodes)
    ring.remove_node(victim)
    after = ring.shard_map(keys)
    for key in keys:
        if victim not in before[key]:
            # Monotone: a key the victim never owned keeps its owners.
            assert after[key] == before[key], key
        else:
            assert victim not in after[key]
            # The survivor of the old pair is still an owner.
            survivors = [n for n in before[key] if n != victim]
            assert set(survivors) <= set(after[key])


def test_single_node_ring_has_no_backup():
    ring = HashRing([7])
    assert ring.owners(b"anything") == [7]
    assert ring.primary(b"anything") == 7
    assert ring.backup(b"anything") is None


def test_empty_ring_owns_nothing():
    ring = HashRing()
    assert ring.owners(b"k") == []
    assert ring.primary(b"k") is None


def test_insertion_order_does_not_matter():
    a = HashRing([0, 1, 2, 3])
    b = HashRing([3, 1, 0, 2])
    keys = [b"k%d" % i for i in range(100)]
    assert a.shard_map(keys) == b.shard_map(keys)


def test_duplicate_node_rejected():
    ring = HashRing([0, 1])
    with pytest.raises(ValueError):
        ring.add_node(1)


def test_remove_then_readd_restores_the_map():
    ring = HashRing(range(4))
    keys = [b"key-%d" % i for i in range(100)]
    before = ring.shard_map(keys)
    ring.remove_node(2)
    ring.add_node(2)
    assert ring.shard_map(keys) == before


def test_key_point_is_stable_and_type_tolerant():
    assert key_point("alpha") == key_point(b"alpha")
    assert key_point(b"alpha") != key_point(b"beta")
