"""Fleet behavior over lossy/corrupting links, and the lossy campaign.

With a :class:`~repro.fleet.interconnect.LinkFaultPlan` armed every
channel runs the reliable exactly-once transport, so the RPC layer's
contract is unchanged: every acked SET is durable and replicated, every
GET returns a value that was actually written.  These tests pin that,
the seeded backoff jitter, and the lossy chaos campaign's oracle plus
its two-run determinism.
"""

import pytest

from repro.fleet import Fleet
from repro.fleet.chaos import (fleet_determinism_fingerprint,
                               run_fleet_campaign)
from repro.fleet.interconnect import LinkFaultPlan

VALUE = 6000


def _lossy_fleet(seed=4, n_nodes=3):
    return Fleet(n_nodes=n_nodes,
                 link_fault_plan=LinkFaultPlan.named("mixed", seed),
                 backoff_jitter_seed=seed)


def _run_roundtrip(fleet):
    keys = [b"lossy-k%d" % i for i in range(8)]
    values = {key: bytes([i + 1]) * VALUE for i, key in enumerate(keys)}
    sets = [fleet.set(key, values[key], gateway=i % 3)
            for i, key in enumerate(keys)]
    fleet.run_ops(sets)
    gets = [fleet.get(key, gateway=(i + 1) % 3)
            for i, key in enumerate(keys)]
    fleet.run_ops(gets)
    return keys, values, sets, gets


def test_set_get_roundtrip_over_mixed_lossy_links():
    fleet = _lossy_fleet()
    keys, values, sets, gets = _run_roundtrip(fleet)
    assert all(op.acked for op in sets)
    for key, op in zip(keys, gets):
        assert op.result == values[key], key
    assert fleet.leaked_pins() == 0
    # The wire was genuinely hostile and the transport genuinely worked.
    totals = fleet.interconnect.stats()["totals"]
    assert totals["lossy_dropped"] + totals["corruptions"] > 0
    transport = fleet.netpath_stats()
    assert transport["frames_sent"] > 0
    assert transport["retransmits"] > 0


def test_lossy_roundtrip_is_deterministic():
    def fingerprint():
        fleet = _lossy_fleet()
        _keys, _values, sets, gets = _run_roundtrip(fleet)
        snap = fleet.snapshot()
        return {
            "acked": [op.acked for op in sets],
            "results": [op.result for op in gets],
            "nodes": snap["nodes"],
            "interconnect": fleet.interconnect.stats(),
            "netpath": fleet.netpath_stats(),
            "horizon": snap["horizon"],
        }

    assert fingerprint() == fingerprint()


def test_backoff_jitter_is_seeded_and_bounded():
    def delays(seed, n=12):
        fleet = Fleet(n_nodes=2, backoff_jitter_seed=seed)
        out = []
        for attempt in range(1, n + 1):
            timeout = next(fleet._backoff(attempt))
            base = min(25_000 * attempt, 150_000)
            assert base <= timeout.cycles < base + fleet.quantum
            out.append(timeout.cycles)
        return out

    # Same seed reproduces the exact jitter sequence; a different seed
    # desynchronizes it (the point: colliding retries must not re-collide
    # in lock-step forever).
    assert delays(0) == delays(0)
    assert delays(0) != delays(1)


@pytest.mark.parametrize("seed", [1, 2])
def test_lossy_campaign_loses_nothing_and_reproduces(seed):
    a = run_fleet_campaign(seed=seed, lossy=True)
    assert a["failures"] == []
    assert a["lost_acked"] == []
    assert a["leaked_pins"] == 0
    # The lossy machinery actually engaged.
    assert "link_faults" in a and "netpath" in a
    assert a["netpath"]["frames_sent"] > 0
    b = run_fleet_campaign(seed=seed, lossy=True)
    assert (fleet_determinism_fingerprint(a)
            == fleet_determinism_fingerprint(b))
