"""Node restart-and-rejoin: disk recovery, delta resync, chaos audit.

A killed node comes back from its WAL + checkpoint (or a peer's
shipped checkpoint after disk loss), rejoins the membership view with
a bumped view id, and the checkpoint-aware delta resync restores the
replication invariant — all audited by the same zero-lost-acked-writes
oracle as the kill-only storms, now with the nodes coming *back*.
"""

import pytest

from repro.chaos import fleet_determinism_fingerprint, run_restart_campaign
from repro.fleet.disk import NodeDisk
from repro.fleet.fleet import Fleet

SEEDS = [1, 2, 5]  # pinned by determinism: each fires kill+restart storms


class _FakeStore:
    """Just enough of KVStore for NodeDisk.take_checkpoint."""

    def __init__(self, entries):
        self.db = {k: None for k in entries}
        self._values = dict(entries)

    def value_bytes(self, key):
        return self._values[key]


def _build_fleet(**kwargs):
    kwargs.setdefault("n_nodes", 4)
    kwargs.setdefault("ckpt_period", 64)
    return Fleet(**kwargs)


def _run_all(fleet, ops):
    fleet.run_ops(ops)
    bad = [op.error for op in ops if op.error is not None]
    assert not bad, bad
    return ops


def _await_declared(fleet, node_id):
    fleet.stepper.run_until(
        lambda: any(n == node_id for _v, n in fleet.promotions))


def _await_recovered(fleet):
    fleet.stepper.run_until(lambda: not fleet.recovering_nodes
                            and not fleet.resyncs_active)


# ------------------------------------------------------------- disk unit


def test_disk_recovery_merges_checkpoint_and_wal_tail():
    disk = NodeDisk(0)
    disk.log(1, b"a", b"old-a")
    disk.log(2, b"b", b"old-b")
    disk.take_checkpoint(_FakeStore({b"a": b"old-a", b"b": b"old-b"}),
                         {b"a": 1, b"b": 2})
    assert disk.ckpt_lsn == 2 and disk.wal == []
    disk.log(3, b"a", b"new-a")   # WAL tail beats the checkpoint
    disk.log(4, b"c", b"new-c")
    entries = disk.recover()
    assert entries[b"a"] == (3, b"new-a")
    assert entries[b"b"] == (2, b"old-b")
    assert entries[b"c"] == (4, b"new-c")
    disk.wipe()
    assert disk.recover() == {}
    snap = disk.snapshot()
    assert snap["checkpoints"] == 1 and snap["recoveries"] == 2
    assert not snap["has_checkpoint"]


# -------------------------------------------------------- restart protocol


def test_restart_recovers_from_disk_and_bumps_view():
    fleet = _build_fleet()
    keys = [b"k%d" % i for i in range(12)]
    _run_all(fleet, [fleet.set(k, b"v0-" + k * 100) for k in keys])
    view_before = fleet.gfd.view_id

    fleet.kill_node(1)
    _await_declared(fleet, 1)
    # Writes landing while the node is down move their shards forward.
    _run_all(fleet, [fleet.set(k, b"v1-" + k * 120) for k in keys[:6]])
    fleet.stepper.run_until(lambda: not fleet.resyncs_active)

    node = fleet.restart_node(1)
    assert node.alive and node.recovering
    assert node.counters["recovered_keys"] > 0      # disk replay worked
    assert fleet.gfd.view_id > view_before + 1      # death + rebirth views
    assert fleet.gfd.rebirths and fleet.gfd.rebirths[-1][1] == 1
    assert fleet.restarts and fleet.restarts[-1][1] == 1
    _await_recovered(fleet)
    assert not node.recovering
    assert node.counters["recoveries"] == 1
    assert node.counters["recovery_cycles"] > 0

    expect = {k: b"v1-" + k * 120 for k in keys[:6]}
    expect.update({k: b"v0-" + k * 100 for k in keys[6:]})
    gets = _run_all(fleet, [fleet.get(k) for k in keys])
    assert all(op.result == expect[k] for k, op in zip(keys, gets))
    assert fleet.leaked_pins() == 0


def test_restart_peer_assist_after_disk_wipe():
    fleet = _build_fleet()
    keys = [b"k%d" % i for i in range(12)]
    _run_all(fleet, [fleet.set(k, b"v0-" + k * 100) for k in keys])

    fleet.kill_node(2)
    _await_declared(fleet, 2)
    fleet.stepper.run_until(lambda: not fleet.resyncs_active)

    node = fleet.nodes[2]
    node.disk.wipe()
    fleet.restart_node(2, peer_assist=True)
    assert len(node.store.db) == 0                  # booted empty
    _await_recovered(fleet)
    # The whole-store checkpoint shipped over the data plane in chunks.
    assert node.counters["ckpt_fetch_keys"] > 0
    assert node.counters["ckpt_fetch_bytes"] > 0
    assert sum(n.counters.get("ckpt_shipped", 0) for n in fleet.nodes) >= 1

    gets = _run_all(fleet, [fleet.get(k) for k in keys])
    assert all(op.result == b"v0-" + k * 100 for k, op in zip(keys, gets))
    assert fleet.leaked_pins() == 0


def test_recovering_primary_never_serves_stale_reads():
    fleet = _build_fleet()
    keys = [b"k%d" % i for i in range(12)]
    _run_all(fleet, [fleet.set(k, b"v0-" + k * 100) for k in keys])

    fleet.kill_node(0)
    _await_declared(fleet, 0)
    # Every key takes a newer acked write while node 0 is down.
    _run_all(fleet, [fleet.set(k, b"v1-" + k * 120) for k in keys])
    fleet.stepper.run_until(lambda: not fleet.resyncs_active)

    fleet.restart_node(0)
    # Read immediately through the recovering node: its disk holds v0
    # for its old shards, but the answer must always be v1.
    gets = _run_all(fleet, [fleet.get(k, gateway=0) for k in keys])
    assert all(op.result == b"v1-" + k * 120 for k, op in zip(keys, gets))
    _await_recovered(fleet)
    assert fleet.leaked_pins() == 0


def test_kill_is_idempotent_and_restart_cycle_repeats():
    fleet = _build_fleet()
    _run_all(fleet, [fleet.set(b"k", b"v" * 512)])
    fleet.kill_node(3)
    assert fleet.kills == [3]
    fleet.kill_node(3)                 # second kill: no-op, no re-append
    assert fleet.kills == [3]
    fleet.nodes[3].kill()              # node-level second kill: no-op too
    assert not fleet.nodes[3].alive

    _await_declared(fleet, 3)
    fleet.restart_node(3)
    assert fleet.nodes[3].alive
    fleet.restart_node(3)              # restart of a live node: no-op
    assert fleet.nodes[3].restarts == 1
    _await_recovered(fleet)

    fleet.kill_node(3)                 # kill → restart → kill is legal
    assert fleet.kills == [3, 3]
    _await_declared(fleet, 3)
    fleet.restart_node(3)
    _await_recovered(fleet)
    assert fleet.nodes[3].restarts == 2
    assert fleet.leaked_pins() == 0


def test_restart_requires_dead_node():
    fleet = _build_fleet(n_nodes=2)
    with pytest.raises(RuntimeError, match="alive"):
        fleet.nodes[0].restart()


# ---------------------------------------------------------- chaos campaign


@pytest.mark.parametrize("seed", SEEDS)
def test_restart_storm_loses_no_acknowledged_writes(seed):
    result = run_restart_campaign(seed=seed)
    assert result["failures"] == []
    assert result["lost_acked"] == []
    assert result["leaked_pins"] == 0
    # The storm really exercised the recovery path for this seed.
    assert result["kills"] >= 1
    assert len(result["restart_log"]) >= result["kills"]
    assert result["recoveries"] >= 1
    assert result["mttr_cycles"] > 0
    # Every node is back and the audit covered every key.
    assert all(snap["alive"] for snap in result["nodes"])
    for stream in result["streams"].values():
        assert stream["ops_done"] == 12


def test_restart_storm_includes_restart_during_resync():
    # Seed 1 (pinned by determinism) restarts a node while the death
    # resyncs from its own declaration are still in flight.
    result = run_restart_campaign(seed=1)
    assert any(during for _t, _n, during, _w in result["restart_log"])
    assert result["failures"] == []


def test_double_crash_of_primary_and_backup_recovers():
    result = run_restart_campaign(seed=1, double_crash=True)
    assert result["double_crashes"], "double crash never fired"
    _tick, _key, owners = result["double_crashes"][0]
    assert len(owners) == 2
    assert result["failures"] == []
    assert result["lost_acked"] == []
    assert result["leaked_pins"] == 0


def test_restart_campaign_is_deterministic_for_a_seed():
    a = run_restart_campaign(seed=2)
    b = run_restart_campaign(seed=2)
    assert fleet_determinism_fingerprint(a) == fleet_determinism_fingerprint(b)
    # Seed 2 wipes a disk, so the peer-shipped checkpoint path ran.
    assert any(wiped for _t, _n, _d, wiped in a["restart_log"])
