"""Fleet behavior: cross-node routing, replication, failover, and the
fixed-seed two-run determinism contract (identical promotion order,
shard maps and sim counters — including across a forced primary kill).
"""

from repro.fleet import Fleet

VALUE = 6000


def _fingerprint(fleet, keys):
    snap = fleet.snapshot()
    return {
        "promotions": snap["promotions"],
        "kills": snap["kills"],
        "shard_map": fleet.shard_map(keys),
        "nodes": snap["nodes"],
        "interconnect": snap["interconnect"],
        "gfd": snap["gfd"],
        "ops": snap["ops"],
        "horizon": snap["horizon"],
    }


def test_cross_node_set_get_roundtrip():
    fleet = Fleet(n_nodes=3)
    keys = [b"x-k%d" % i for i in range(6)]
    values = {key: bytes([i + 1]) * VALUE for i, key in enumerate(keys)}
    # Every op goes through a rotating gateway, so most are forwarded.
    sets = [fleet.set(key, values[key], gateway=i % 3)
            for i, key in enumerate(keys)]
    fleet.run_ops(sets)
    assert all(op.acked for op in sets)
    gets = [fleet.get(key, gateway=(i + 1) % 3)
            for i, key in enumerate(keys)]
    fleet.run_ops(gets)
    for key, op in zip(keys, gets):
        assert op.result == values[key], key
    # Cross-node traffic actually crossed the interconnect.
    assert fleet.interconnect.snapshot()["messages"] > 0
    assert fleet.leaked_pins() == 0


def test_writes_are_replicated_to_the_backup():
    fleet = Fleet(n_nodes=3)
    key = b"repl-key"
    op = fleet.set(key, b"r" * VALUE)
    fleet.run_ops([op])
    assert op.acked
    primary = fleet.ring.primary(key)
    backup = fleet.ring.backup(key)
    assert primary != backup
    for owner in (primary, backup):
        assert fleet.nodes[owner].store.db.get(key) is not None
    for node in fleet.nodes:
        if node.node_id not in (primary, backup):
            assert key not in node.store.db


def _failover_run():
    fleet = Fleet(n_nodes=3)
    keys = [b"f-k%d" % i for i in range(9)]
    values = {key: bytes([i + 17]) * VALUE for i, key in enumerate(keys)}
    sets = [fleet.set(key, values[key], gateway=i % 3)
            for i, key in enumerate(keys)]
    fleet.run_ops(sets)
    assert all(op.acked for op in sets)

    # Kill the primary of the first key; detection must be organic
    # (missed heartbeats), then the backup is promoted.
    victim = fleet.ring.primary(keys[0])
    old_backup = fleet.ring.backup(keys[0])
    fleet.kill_node(victim)
    fleet.stepper.run_until(lambda: fleet.promotions)
    assert fleet.promotions[0] == (1, victim)
    assert fleet.ring.primary(keys[0]) == old_backup
    fleet.stepper.settle(300)  # resync re-replicates to new backups

    # Every key (including the victim's) reads back through live
    # gateways with the acknowledged value.
    live = [node.node_id for node in fleet.live_nodes]
    gets = [fleet.get(key, gateway=live[i % len(live)])
            for i, key in enumerate(keys)]
    fleet.run_ops(gets)
    for key, op in zip(keys, gets):
        assert op.result == values[key], key
    assert fleet.leaked_pins() == 0
    return _fingerprint(fleet, keys)


def test_failover_is_deterministic_across_runs():
    a = _failover_run()
    b = _failover_run()
    assert a == b
    assert len(a["promotions"]) == 1


def test_gateway_death_leaves_op_unsettled_but_fleet_healthy():
    fleet = Fleet(n_nodes=3)
    warm = fleet.set(b"g-k", b"w" * VALUE, gateway=0)
    fleet.run_ops([warm])
    # Submit through gateway 2, then kill it before stepping: the
    # client never gets an ack (connection dropped), but the fleet
    # keeps serving through the survivors.
    orphan = fleet.set(b"g-k2", b"o" * VALUE, gateway=2)
    fleet.kill_node(2)
    fleet.stepper.run_until(lambda: fleet.promotions)
    fleet.stepper.settle(200)
    assert not orphan.done
    probe = fleet.get(b"g-k", gateway=fleet.live_nodes[0].node_id)
    fleet.run_ops([probe])
    assert probe.result == b"w" * VALUE
    assert fleet.leaked_pins() == 0


def test_fleet_validates_quantum_against_link_latency():
    import pytest

    with pytest.raises(ValueError):
        Fleet(n_nodes=2, link_latency_cycles=1_000, quantum=5_000)
    with pytest.raises(ValueError):
        Fleet(n_nodes=0)


def test_snapshot_shape():
    fleet = Fleet(n_nodes=2)
    op = fleet.set(b"s-k", b"s" * 2048)
    fleet.run_ops([op])
    snap = fleet.snapshot()
    assert len(snap["nodes"]) == 2
    assert snap["ops"]["submitted"] == 1
    assert snap["ops"]["acked"] == 1
    assert snap["gfd"]["view_id"] == 0
    assert snap["nodes"][0]["copier"]["rounds"] >= 0
