"""``CopierService.shutdown`` wedge detection inside a fleet node.

A node whose copier workers are wedged while a fleet peer holds the
link (partitioned interconnect, a forwarded request stuck in its
retry/timeout loop) must still shut down in bounded steps: the drain
loop detects that the environment stopped making progress, force-reaps
the stragglers, reports ``drained=False`` — and emits ``ServiceDrained``
exactly once, with zero leaked pins.
"""

from repro.fleet import Fleet
from repro.sim.trace import ServiceDrained

DEADLINE = 10**9


def test_shutdown_breaks_wedge_with_peer_holding_the_link():
    fleet = Fleet(n_nodes=2, detectors=False)
    node = fleet.nodes[0]
    service = node.system.copier

    # Healthy warm-up: one committed, replicated write.
    warm = fleet.set(b"wedge-warm", b"w" * 4096, gateway=0)
    fleet.run_ops([warm])
    assert warm.acked

    # The peer now "holds the link": both directions partition, and a
    # forwarded op wedges in its retry/timeout loop on node 0.
    fleet.interconnect.partition(0, 1)
    remote_key = next(k for k in (b"wk-%d" % i for i in range(256))
                      if fleet.ring.primary(k) == 1)
    stuck = fleet.set(remote_key, b"s" * 512, gateway=0)
    for _ in range(3):
        fleet.stepper.step_round()
    assert not stuck.done

    # The workers stop — the model of copier threads wedged on the
    # dead link — and then a local copy is queued behind them: it can
    # never drain on its own.
    service.stop()

    def local_copy():
        yield from node.store.client.amemcpy(node.store.arena,
                                             node.store.staging, 8192)

    node.env.spawn(local_copy(), name="wedge-local-copy")
    node.env.step(max_events=64)  # submission lands in the queue

    drained_events = []
    node.env.trace.subscribe(
        lambda ev: drained_events.append(ev)
        if isinstance(ev, ServiceDrained) else None)

    report = service.shutdown(deadline=DEADLINE)

    # Wedge break: bounded steps, nowhere near the deadline.
    assert report["cycles"] < DEADLINE // 10
    assert not report["drained"]
    assert report["force_reaped"] >= 1
    assert report["leaked_pins"] == 0
    assert len(drained_events) == 1
    event = drained_events[0]
    assert event.drained is False
    assert event.force_reaped == report["force_reaped"]

    # Idempotent: a second shutdown returns the same report and does
    # not emit a second ServiceDrained.
    assert service.shutdown(deadline=1) is report
    assert len(drained_events) == 1
    assert node.system.leaked_pins() == 0


def test_clean_fleet_shutdown_reports_drained():
    fleet = Fleet(n_nodes=2, detectors=False)
    op = fleet.set(b"clean-k", b"c" * 4096, gateway=0)
    fleet.run_ops([op])
    for node in fleet.nodes:
        report = node.system.copier.shutdown(deadline=DEADLINE)
        assert report["drained"]
        assert report["force_reaped"] == 0
        assert report["leaked_pins"] == 0
