"""Deeper refinement scenarios: three threads, chained copies, pipelines."""

import pytest

from repro.verify import AsyncMachine, SyncMachine, Thread, check_refinement


def _programs(sync_threads):
    async_threads = []
    for t in sync_threads:
        ops = []
        for ins in t.instructions:
            if ins[0] == "memcpy":
                ops.append(("amemcpy",) + ins[1:])
            else:
                ops.append(ins)
        async_threads.append(Thread(ops))
    return async_threads


def _check(memory, sync_threads, max_states=1_500_000):
    sync = SyncMachine(dict(memory), sync_threads)
    asyncm = AsyncMachine(dict(memory), _programs(sync_threads))
    return check_refinement(sync, asyncm, max_states)


def test_chained_copies_with_final_sync():
    """A -> B -> C chain, csync only at the end (dependency tracking
    carries the intermediate order)."""
    threads = [Thread([
        ("memcpy", 10, 0, 2),
        ("csync", 10, 2),        # guideline: sync B before it feeds C
        ("memcpy", 20, 10, 2),
        ("csync", 20, 2),
        ("read", 20, "r0"),
        ("read", 21, "r1"),
    ])]
    ok, _s, a_out, rogue = _check({0: 5, 1: 6}, threads)
    assert ok, rogue
    for outcome in a_out:
        regs = dict(outcome[1][0])
        assert (regs["r0"], regs["r1"]) == (5, 6)


def test_three_threads_pipeline():
    """Producer copies, relay copies onward, consumer reads — all three
    synchronize through csync + flag writes."""
    threads = [
        Thread([("memcpy", 10, 0, 1), ("csync", 10, 1),
                ("write", 100, 1)]),
        Thread([("read", 100, "f1"), ("csync", 10, 1),
                ("memcpy", 20, 10, 1), ("csync", 20, 1),
                ("write", 101, 1)]),
        Thread([("read", 101, "f2"), ("read", 20, "v")]),
    ]
    ok, _s, a_out, rogue = _check({0: 9, 10: 0, 20: 0, 100: 0, 101: 0},
                                  threads)
    assert ok, rogue
    # The model has no control flow, so a stage may run "too early" and
    # legitimately relay stale data (same as sync).  But when every stage
    # observed its predecessor's flag, the pipelined value must arrive.
    for outcome in a_out:
        relay_regs = dict(outcome[1][1])
        consumer_regs = dict(outcome[1][2])
        if relay_regs.get("f1") == 1 and consumer_regs.get("f2") == 1:
            assert consumer_regs.get("v") == 9


def test_partial_csync_read_of_unsynced_tail_is_rogue():
    """Syncing only the head but reading the tail is a bug the checker
    must flag (the CopierSanitizer counterpart in the model)."""
    buggy = [Thread([
        ("memcpy", 10, 0, 2),
        ("csync", 10, 1),        # only byte 0
        ("read", 11, "tail"),    # BUG: byte 1 unsynced
    ])]
    sync = SyncMachine({0: 3, 1: 4, 10: 0, 11: 0}, buggy)
    asyncm = AsyncMachine({0: 3, 1: 4, 10: 0, 11: 0}, _programs(buggy))
    ok, _s, _a, rogue = check_refinement(sync, asyncm)
    assert not ok
    assert any(dict(o[1][0]).get("tail") == 0 for o in rogue)


def test_interleaved_writers_to_distinct_cells():
    threads = [
        Thread([("memcpy", 10, 0, 1), ("csync", 10, 1),
                ("read", 10, "a")]),
        Thread([("write", 50, 7), ("read", 50, "b")]),
    ]
    ok, _s, _a, rogue = _check({0: 2, 10: 0, 50: 0}, threads)
    assert ok, rogue


def test_two_copies_same_destination_ordered():
    """WAW through the model: the later copy's data must win, in every
    interleaving, matching sync semantics."""
    threads = [Thread([
        ("memcpy", 10, 0, 1),
        ("memcpy", 10, 1, 1),
        ("csync", 10, 1),
        ("read", 10, "r"),
    ])]
    ok, _s, a_out, rogue = _check({0: 11, 1: 22, 10: 0}, threads)
    assert ok, rogue
    # The value-pair ids resolve the race: the later copy (larger id)
    # always wins after csync.
    for outcome in a_out:
        assert dict(outcome[1][0])["r"] == 22
