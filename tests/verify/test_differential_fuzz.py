"""Differential fuzzing of the Appendix A refinement theorem.

A seeded generator produces random small-step programs that follow the
§5.1.1 csync guidelines (sync before reading a pending destination,
before overwriting a pending source or destination, and before re-using
a pending destination as a copy source).  Each program runs through both
protocol machines (:mod:`repro.verify.model`) under *every* schedule via
:func:`repro.verify.checker.explore`, and the async outcome set must be
a subset of the sync one — the theorem's observable-behaviour half.

The generator is the test's value: hand-written refinement cases
(``test_refinement.py``) cover the patterns we thought of; this covers
the ones we didn't.  Tier-1 runs ~200 seeded cases; ``--slow`` opts into
a longer campaign with bigger programs.
"""

import random

import pytest

from repro.verify import AsyncMachine, SyncMachine, Thread, check_refinement

#: Per-thread layout: sources at base..base+5, destinations at
#: base+20..base+27 — far enough apart that copies never self-overlap.
N_SRC = 6
DST_BASE = 20
N_DST = 8
MAX_STATES = 400_000


class _ThreadGen:
    """Generates one guideline-compliant thread over its own region."""

    def __init__(self, rng, base, max_copy_len=3, allow_free=True):
        self.rng = rng
        self.base = base
        self.max_copy_len = max_copy_len
        self.allow_free = allow_free
        self.ops = []
        self.pending = []   # (dst, src, n) copies not yet csynced
        self.freed = set()  # addresses no longer usable as sources
        self.copies = 0

    # ------------------------------------------------------- guideline sync

    def _overlaps(self, lo, n, lo2, n2):
        return lo < lo2 + n2 and lo2 < lo + n

    def _sync_pending(self, addr, n, src_too):
        """Emit csyncs for pending copies conflicting with [addr, addr+n).

        ``src_too`` also syncs copies whose *source* overlaps — required
        before writes (WAR) but not before reads.
        """
        still = []
        for dst, src, length in self.pending:
            if (self._overlaps(addr, n, dst, length)
                    or (src_too and self._overlaps(addr, n, src, length))):
                self.ops.append(("csync", dst, length))
            else:
                still.append((dst, src, length))
        self.pending = still

    # -------------------------------------------------------------- op mix

    def emit(self):
        rng = self.rng
        roll = rng.random()
        if roll < 0.45 and self.copies < 5:
            self._emit_copy()
        elif roll < 0.60:
            self._emit_write()
        elif roll < 0.80:
            self._emit_read()
        elif roll < 0.90 and self.pending:
            dst, _src, length = rng.choice(self.pending)
            self._sync_pending(dst, length, src_too=False)
        else:
            self.ops.append(("csync_all",))
            self.pending = []

    def _emit_copy(self):
        rng = self.rng
        n = rng.randint(1, self.max_copy_len)
        src = self.base + rng.randint(0, N_SRC - n)
        if any(src + off in self.freed for off in range(n)):
            return
        dst = self.base + DST_BASE + rng.randint(0, N_DST - n)
        # RAW on a pending dst used as our src, WAR on a pending src we
        # are about to overwrite — both need a csync first (WAW on a
        # shared dst is fine: newest submission wins in both machines).
        self._sync_pending(src, n, src_too=False)
        still = []
        for pdst, psrc, plen in self.pending:
            if self._overlaps(dst, n, psrc, plen):
                self.ops.append(("csync", pdst, plen))
            else:
                still.append((pdst, psrc, plen))
        self.pending = still
        op = ("memcpy", dst, src, n)
        if self.allow_free and rng.random() < 0.15:
            op += (("free", src, n),)
            self.freed.update(src + off for off in range(n))
        self.ops.append(op)
        self.pending.append((dst, src, n))
        self.copies += 1

    def _emit_write(self):
        rng = self.rng
        addr = self.base + rng.choice(
            [rng.randint(0, N_SRC - 1), DST_BASE + rng.randint(0, N_DST - 1)])
        if addr in self.freed:
            return
        self._sync_pending(addr, 1, src_too=True)
        self.ops.append(("write", addr, rng.randint(1, 9)))

    def _emit_read(self):
        rng = self.rng
        addr = self.base + DST_BASE + rng.randint(0, N_DST - 1)
        self._sync_pending(addr, 1, src_too=False)
        self.ops.append(("read", addr, "r%d" % len(self.ops)))


def _make_case(seed, n_threads=1, n_ops=6, max_copy_len=3):
    """Deterministic (memory, sync_threads) pair for ``seed``."""
    rng = random.Random(("difffuzz", seed).__repr__())
    memory = {}
    threads = []
    for t in range(n_threads):
        base = t * 200
        for i in range(N_SRC):
            memory[base + i] = rng.randint(10, 99)
        gen = _ThreadGen(rng, base, max_copy_len=max_copy_len,
                         allow_free=(n_threads == 1))
        for _ in range(n_ops):
            gen.emit()
        threads.append(Thread(gen.ops))
    return memory, threads


def _to_async(sync_threads):
    out = []
    for t in sync_threads:
        out.append(Thread([("amemcpy",) + ins[1:] if ins[0] == "memcpy"
                           else ins for ins in t.instructions]))
    return out


def _assert_refines(memory, sync_threads, max_states=MAX_STATES):
    sync = SyncMachine(memory, sync_threads)
    asyncm = AsyncMachine(memory, _to_async(sync_threads))
    ok, s_out, a_out, rogue = check_refinement(sync, asyncm, max_states)
    assert a_out, "async machine produced no outcomes"
    assert ok, ("async execution reached outcomes the sync machine cannot: "
                "%r\nprogram: %r" % (sorted(rogue)[:3],
                                     [t.instructions for t in sync_threads]))


@pytest.mark.parametrize("seed", range(160))
def test_single_thread_random_programs_refine(seed):
    memory, threads = _make_case(seed, n_threads=1, n_ops=6)
    _assert_refines(memory, threads)


@pytest.mark.parametrize("seed", range(40))
def test_two_thread_random_programs_refine(seed):
    """Two threads over disjoint regions: every interleaving of their
    submissions and service steps must still refine."""
    memory, threads = _make_case(1000 + seed, n_threads=2, n_ops=3,
                                 max_copy_len=2)
    _assert_refines(memory, threads)


def test_generator_is_deterministic():
    """Same seed, same program — failures must be replayable."""
    assert _make_case(7)[1][0].instructions == \
        _make_case(7)[1][0].instructions
    a = [t.instructions for t in _make_case(11, n_threads=2, n_ops=3)[1]]
    b = [t.instructions for t in _make_case(11, n_threads=2, n_ops=3)[1]]
    assert a == b


def test_generator_violating_guidelines_is_caught():
    """Sanity-check the harness has teeth: an unsynced read of a pending
    destination must produce a rogue outcome."""
    memory = {0: 42, 120: 99}
    threads = [Thread([("memcpy", 120, 0, 1), ("read", 120, "r0")])]
    sync = SyncMachine(memory, threads)
    asyncm = AsyncMachine(memory, _to_async(threads))
    ok, _s, _a, rogue = check_refinement(sync, asyncm, MAX_STATES)
    assert not ok and rogue


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(200, 500))
def test_slow_single_thread_campaign(seed):
    memory, threads = _make_case(seed, n_threads=1, n_ops=9, max_copy_len=4)
    _assert_refines(memory, threads, max_states=1_500_000)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(1500, 1560))
def test_slow_two_thread_campaign(seed):
    memory, threads = _make_case(seed, n_threads=2, n_ops=4, max_copy_len=2)
    _assert_refines(memory, threads, max_states=1_500_000)
