"""Bounded model check of the Appendix A refinement theorem."""

import pytest

from repro.verify import AsyncMachine, SyncMachine, Thread, check_refinement
from repro.verify.checker import explore


def _mem(*cells):
    """cells: (addr, value) pairs."""
    return dict(cells)


def _programs(sync_threads):
    """Transform per Appendix A: amemcpy replaces memcpy; csync is already
    placed in the input (tests pass guideline-compliant programs)."""
    async_threads = []
    for t in sync_threads:
        ops = []
        for ins in t.instructions:
            if ins[0] == "memcpy":
                ops.append(("amemcpy",) + ins[1:])
            else:
                ops.append(ins)
        async_threads.append(Thread(ops))
    return async_threads


def _check(memory, sync_threads, max_states=500_000):
    sync = SyncMachine(memory, sync_threads)
    asyncm = AsyncMachine(memory, _programs(sync_threads))
    ok, s_out, a_out, rogue = check_refinement(sync, asyncm, max_states)
    return ok, s_out, a_out, rogue


class TestSingleThread:
    def test_copy_then_synced_read_refines(self):
        threads = [Thread([
            ("memcpy", 100, 0, 3),
            ("csync", 100, 3),
            ("read", 100, "r0"),
        ])]
        ok, s, a, rogue = _check(_mem((0, 7), (1, 8), (2, 9)), threads)
        assert ok, rogue
        # And the read observed the copied value in every async outcome.
        for outcome in a:
            regs = outcome[1]
            assert dict(regs[0])["r0"] == 7

    def test_copy_use_pipeline_prefix_sync(self):
        threads = [Thread([
            ("memcpy", 100, 0, 4),
            ("csync", 100, 2),      # only the prefix
            ("read", 100, "a"),
            ("read", 101, "b"),
            ("csync", 102, 2),
            ("read", 103, "c"),
        ])]
        ok, _s, _a, rogue = _check(
            _mem((0, 1), (1, 2), (2, 3), (3, 4)), threads)
        assert ok, rogue

    def test_handler_free_matches_sync_free(self):
        """The Fig. 4 copyUse pattern: free delegated to a handler."""
        threads = [Thread([
            ("memcpy", 100, 0, 2, ("free", 0, 2)),
            ("csync", 100, 2),
            ("read", 100, "v"),
        ])]
        sync_threads = [Thread([
            ("memcpy", 100, 0, 2),
            ("free", 0, 2),
            ("csync", 100, 2),
            ("read", 100, "v"),
        ])]
        sync = SyncMachine(_mem((0, 5), (1, 6)), sync_threads)
        asyncm = AsyncMachine(_mem((0, 5), (1, 6)), _programs(threads))
        ok, _s, _a, rogue = check_refinement(sync, asyncm)
        assert ok, rogue

    def test_missing_csync_is_caught(self):
        """Without csync the async program CAN read stale data — the
        refinement check must expose it (this is the bug CopierSanitizer
        exists to find)."""
        buggy = [Thread([
            ("memcpy", 100, 0, 1),
            ("read", 100, "r0"),      # no csync!
        ])]
        sync = SyncMachine(_mem((0, 42), (100, 99)), buggy)
        asyncm = AsyncMachine(_mem((0, 42), (100, 99)), _programs(buggy))
        ok, _s, a_out, rogue = check_refinement(sync, asyncm)
        assert not ok
        # The rogue outcome reads the stale 99.
        assert any(dict(o[1][0]).get("r0") == 99 for o in rogue)


class TestMultiThread:
    def test_two_threads_disjoint_copies_refine(self):
        threads = [
            Thread([("memcpy", 100, 0, 2), ("csync", 100, 2),
                    ("read", 100, "x")]),
            Thread([("memcpy", 200, 10, 2), ("csync", 200, 2),
                    ("read", 201, "y")]),
        ]
        ok, _s, _a, rogue = _check(
            _mem((0, 1), (1, 2), (10, 3), (11, 4)), threads)
        assert ok, rogue

    def test_visibility_via_csync_before_publish(self):
        """Guideline 4: csync before making the range visible to another
        thread (modeled: the observer reads after a flag write that the
        writer orders after csync)."""
        threads = [
            Thread([("memcpy", 100, 0, 1),
                    ("csync", 100, 1),
                    ("write", 500, 1)]),      # publish flag
            Thread([("read", 500, "flag"),
                    ("read", 100, "data")]),
        ]
        ok, s_out, a_out, rogue = _check(_mem((0, 77), (100, 0), (500, 0)),
                                         threads)
        assert ok, rogue
        # Whenever the flag was observed set, the data was the copied one.
        for outcome in a_out:
            regs = dict(outcome[1][1])
            if regs.get("flag") == 1:
                assert regs.get("data") == 77

    def test_overlapping_writer_with_guideline_sync(self):
        """A concurrent writer to the destination region syncs first."""
        threads = [
            Thread([("memcpy", 100, 0, 2), ("csync", 100, 2),
                    ("read", 100, "x")]),
            Thread([("csync", 100, 2), ("write", 100, 9)]),
        ]
        ok, _s, _a, rogue = _check(_mem((0, 1), (1, 2), (100, 0)), threads)
        assert ok, rogue


class TestExplorer:
    def test_sync_machine_explores_interleavings(self):
        threads = [
            Thread([("write", 0, 1)]),
            Thread([("read", 0, "r")]),
        ]
        outcomes = explore(SyncMachine(_mem((0, 0)), threads))
        reads = {dict(o[1][1]).get("r") for o in outcomes}
        assert reads == {0, 1}

    def test_budget_exceeded_raises(self):
        threads = [Thread([("memcpy", 100, 0, 4)]) for _ in range(3)]
        with pytest.raises(RuntimeError, match="budget"):
            explore(SyncMachine(_mem((0, 1)), threads), max_states=10)
