"""Differential determinism oracle: fast path ≡ COPIER_SLOWPATH=1.

The run-based translation path (run cache, bulk ``copy_range``, run-based
DMA discovery) is a pure wall-clock optimization — it must not change a
single observable of the simulation.  This test runs one fixed workload
twice, once on the fast path and once with ``COPIER_SLOWPATH=1`` forcing
the historic per-page walkers, and requires:

* byte-identical destination buffers,
* the identical trace-event sequence (every event, in order, with
  timestamps — any divergence in scheduling or engine choice shows here),
* identical ``stats_snapshot()`` counters (rounds, DMA/AVX byte split,
  ATCache hits/misses, thread wake/sleep),
* identical fault-resolution counts, and
* zero leaked pins on every page table.

The workload deliberately crosses the interesting boundaries: a task big
enough for i-piggyback + DMA runs, small fusable tasks, a fork mid-stream
(CoW downgrade invalidates run cache + ATCache), writes that break CoW,
and a munmap after completion.
"""

import re

from repro.mem import PAGE_SIZE
from repro.sim import Compute
from tests.copier.conftest import Setup


def _normalize(events):
    """Remap task_ids to first-seen order: the global task counter leaks
    across the two runs, but the *sequence* of ids must be isomorphic."""
    mapping = {}

    def sub(match):
        tid = match.group(1)
        if tid not in mapping:
            mapping[tid] = "T%d" % len(mapping)
        return "task_id=" + mapping[tid]

    return [re.sub(r"task_id=(\d+)", sub, e) for e in events]


def _payload(n, salt):
    return bytes((i * 31 + salt) % 251 for i in range(n))


def _run_workload(monkeypatch, slowpath):
    if slowpath:
        monkeypatch.setenv("COPIER_SLOWPATH", "1")
    else:
        monkeypatch.delenv("COPIER_SLOWPATH", raising=False)
    setup = Setup(n_frames=8192)
    events = []
    setup.env.trace.subscribe(lambda e: events.append(repr(e)))
    aspace, client = setup.aspace, setup.client

    big = 48 * 1024          # i-piggyback territory, multiple DMA runs
    small = 3 * 1024         # fusable e-piggyback tasks
    src_big = aspace.mmap(big, populate=True, contiguous=True)
    dst_big = aspace.mmap(big, populate=True, contiguous=True)
    src_small = [aspace.mmap(small, populate=True) for _ in range(3)]
    dst_small = [aspace.mmap(small) for _ in range(3)]  # demand-faulted
    scratch = aspace.mmap(PAGE_SIZE * 2, populate=True)

    aspace.write(src_big, _payload(big, 7))
    for i, va in enumerate(src_small):
        aspace.write(va, _payload(small, i))

    forked = []

    def app():
        yield from client.amemcpy(dst_big, src_big, big)
        yield Compute(20_000)
        yield from client.csync(dst_big, big)
        # Fork downgrades every mapped page to CoW: run cache and ATCache
        # entries for the whole space are invalidated mid-stream.
        forked.append(aspace.fork())
        aspace.write(src_big, _payload(big, 8))  # CoW breaks, page by page
        for s, d in zip(src_small, dst_small):
            yield from client.amemcpy(d, s, small)
        yield Compute(5_000)
        for d in dst_small:
            yield from client.csync(d, small)
        yield from client.amemcpy(dst_big, src_big, big)
        yield from client.csync(dst_big, big)
        aspace.munmap(scratch, PAGE_SIZE * 2)
        return True

    assert setup.run_process(app())
    buffers = [aspace.read(dst_big, big)]
    buffers += [aspace.read(d, small) for d in dst_small]
    pins = [
        (vpn, pte.pin_count)
        for space in [aspace] + forked
        for vpn, pte in sorted(space.page_table.items())
        if pte.pin_count
    ]
    return {
        "buffers": buffers,
        "events": _normalize(events),
        "stats": setup.service.stats_snapshot(),
        "faults": dict(aspace.fault_counts),
        "pins": pins,
        "now": setup.env.now,
    }


def test_fastpath_matches_slowpath(monkeypatch):
    fast = _run_workload(monkeypatch, slowpath=False)
    slow = _run_workload(monkeypatch, slowpath=True)

    assert fast["buffers"][0] == _payload(48 * 1024, 8)
    for i in range(3):
        assert fast["buffers"][1 + i] == _payload(3 * 1024, i)
    assert fast["buffers"] == slow["buffers"]

    assert fast["pins"] == [] and slow["pins"] == []
    assert fast["now"] == slow["now"]
    assert fast["faults"] == slow["faults"]
    assert fast["stats"] == slow["stats"]

    assert len(fast["events"]) == len(slow["events"])
    for a, b in zip(fast["events"], slow["events"]):
        assert a == b
