"""System bundle and OSProcess tests."""

import pytest

from repro.kernel import System
from repro.mem.phys import PAGE_SIZE
from repro.sim import Compute


class TestSystemConstruction:
    def test_copier_enabled_reserves_last_core(self):
        system = System(n_cores=4, copier=True)
        assert system.copier is not None
        assert system.copier.dedicated_cores == [3]

    def test_copier_disabled(self):
        system = System(n_cores=2, copier=False)
        assert system.copier is None
        proc = system.create_process("p")
        assert proc.client is None

    def test_create_process_registers_client(self):
        system = System(n_cores=2, copier=True)
        proc = system.create_process("p", cgroup="root")
        assert proc.client in system.copier.clients
        assert proc in system.processes


class TestTiming:
    def test_trap_and_sysret_charge_and_mark_barriers(self):
        system = System(n_cores=2, copier=True)
        proc = system.create_process("p")
        before = proc.client.barriers.barriers_recorded

        def gen():
            t0 = system.env.now
            yield from proc.trap()
            yield from proc.sysret()
            return system.env.now - t0

        p = proc.spawn(gen(), affinity=0)
        system.env.run_until(p.terminated, limit=10_000_000)
        assert p.result == (system.params.syscall_trap_cycles
                            + system.params.syscall_return_cycles)
        assert proc.client.barriers.barriers_recorded == before + 2

    def test_ub_trap_cost_override(self):
        system = System(n_cores=2, copier=False)
        proc = system.create_process("p")

        def gen():
            t0 = system.env.now
            yield from proc.trap(cost=120)
            return system.env.now - t0

        p = proc.spawn(gen(), affinity=0)
        system.env.run_until(p.terminated, limit=10_000_000)
        assert p.result == 120

    def test_app_compute_inflates_after_pollution(self):
        system = System(n_cores=2, copier=False)
        proc = system.create_process("p")
        clean = system.app_compute(proc, 10_000)
        system.cache.pollute(proc.cache_key, system.params.l1l2_bytes)
        dirty = system.app_compute(proc, 10_000)
        assert dirty.cycles > clean.cycles
        # Instructions stay at the base count: CPI rises.
        assert dirty.instructions == 10_000

    def test_sync_copy_charges_demand_faults(self):
        system = System(n_cores=2, copier=False)
        proc = system.create_process("p")
        src = proc.mmap(PAGE_SIZE, populate=True)
        dst_cold = proc.mmap(PAGE_SIZE)      # unpopulated: will fault
        dst_warm = proc.mmap(PAGE_SIZE, populate=True)

        def timed(dst):
            def gen():
                t0 = system.env.now
                yield from system.sync_copy(proc, proc.aspace, src,
                                            proc.aspace, dst, 512,
                                            engine="avx")
                return system.env.now - t0
            p = proc.spawn(gen(), affinity=0)
            system.env.run_until(p.terminated, limit=10_000_000)
            return p.result

        cold = timed(dst_cold)
        warm = timed(dst_warm)
        assert cold > warm  # the fault cost landed on the critical path


class TestKernelBuffers:
    def test_alloc_free_roundtrip(self):
        system = System(n_cores=1, copier=False, phys_frames=64)
        before = system.phys.frames_in_use
        va = system.alloc_kernel_buffer(PAGE_SIZE * 3)
        assert system.phys.frames_in_use == before + 3
        system.free_kernel_buffer(va, PAGE_SIZE * 3)
        assert system.phys.frames_in_use == before

    def test_falls_back_when_no_contiguous_run(self):
        system = System(n_cores=1, copier=False, phys_frames=16,
                        fragmented=True)
        # Fragmented allocator can't give a 4-frame run easily, but the
        # fallback still returns usable memory.
        va = system.alloc_kernel_buffer(PAGE_SIZE * 4)
        system.kernel_as.write(va, b"ok")
        assert system.kernel_as.read(va, 2) == b"ok"


class TestRunAll:
    def test_run_all_collects_results(self):
        system = System(n_cores=2, copier=False)
        p1 = system.create_process("a")
        p2 = system.create_process("b")

        def gen(val):
            yield Compute(100)
            return val

        procs = [p1.spawn(gen(1), affinity=0), p2.spawn(gen(2), affinity=1)]
        assert system.run_all(procs) == [1, 2]
