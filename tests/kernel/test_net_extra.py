"""Additional network-stack tests: wire model, io_uring recv, sockets."""

import pytest

from repro.kernel import System, socket_pair
from repro.kernel.net import iouring_submit, recv, recv_body, send
from repro.sim import WaitEvent


def _mk(copier=False, n_cores=3):
    return System(n_cores=n_cores, copier=copier, phys_frames=65536)


class TestWireModel:
    def test_transit_scales_with_size(self):
        """The wire has bandwidth, not just latency: a 256KB message
        arrives later than a 1KB one sent at the same instant."""
        system = _mk()
        a1, b1 = socket_pair(system)
        a2, b2 = socket_pair(system)
        sender = system.create_process("s")
        small = sender.mmap(1024, populate=True)
        big = sender.mmap(256 * 1024, populate=True)
        arrivals = {}

        def tx():
            yield from send(system, sender, a2, big, 256 * 1024)
            yield from send(system, sender, a1, small, 1024)

        def watch(sock, name):
            def gen():
                yield WaitEvent(sock.wait_data())
                arrivals[name] = system.env.now
            return gen()

        sender.spawn(tx(), affinity=0)
        system.env.spawn(watch(b1, "small"))
        system.env.spawn(watch(b2, "big"))
        system.env.run(until=1_000_000)
        # Sent second, the small message still lands first.
        assert arrivals["small"] < arrivals["big"]

    def test_messages_preserve_fifo_per_socket(self):
        system = _mk()
        a, b = socket_pair(system)
        sender = system.create_process("s")
        receiver = system.create_process("r")
        buf = sender.mmap(4096, populate=True)
        rx = receiver.mmap(4096, populate=True)

        def tx():
            for i in range(3):
                sender.write(buf, bytes([i]) * 100)
                yield from send(system, sender, a, buf, 100)

        def rxg():
            seen = []
            for _ in range(3):
                yield from recv(system, receiver, b, rx, 4096)
                seen.append(receiver.read(rx, 1))
            return seen

        sender.spawn(tx(), affinity=0)
        p = receiver.spawn(rxg(), affinity=1)
        system.env.run_until(p.terminated, limit=100_000_000)
        assert p.result == [b"\x00", b"\x01", b"\x02"]


class TestIouringRecv:
    def test_batched_recv_bodies(self):
        system = _mk()
        a, b = socket_pair(system)
        sender = system.create_process("s")
        receiver = system.create_process("r")
        sbuf = sender.mmap(4096, populate=True)
        rbuf = receiver.mmap(1 << 16, populate=True)

        def tx():
            for i in range(4):
                sender.write(sbuf, bytes([0x30 + i]) * 64)
                yield from send(system, sender, a, sbuf, 64)

        def rxg():
            from repro.sim import Timeout
            yield Timeout(500_000)  # let everything arrive
            bodies = [recv_body(system, receiver, b, rbuf + i * 64, 64)
                      for i in range(4)]
            results = yield from iouring_submit(system, receiver, bodies)
            return results, receiver.read(rbuf, 256)

        sender.spawn(tx(), affinity=0)
        p = receiver.spawn(rxg(), affinity=1)
        system.env.run_until(p.terminated, limit=100_000_000)
        results, data = p.result
        assert results == [64, 64, 64, 64]
        assert data == b"".join(bytes([0x30 + i]) * 64 for i in range(4))


class TestChacha:
    def test_chacha20_cipher_profile(self):
        """The slower cipher yields a longer latency but the same bytes."""
        from repro.apps.openssllib import SSLReader, encrypt

        results = {}
        for cipher in ("aes-gcm", "chacha20"):
            system = _mk()
            a, b = socket_pair(system)
            sender = system.create_process("s")
            plaintext = b"\x66" * 16384
            buf = sender.mmap(16384, populate=True)
            sender.write(buf, encrypt(plaintext))

            def tx():
                yield from send(system, sender, a, buf, 16384)

            sender.spawn(tx(), affinity=0)
            reader = SSLReader(system, mode="sync", cipher=cipher)
            p = reader.proc.spawn(reader.ssl_read(b, 16384), affinity=1)
            system.env.run_until(p.terminated, limit=500_000_000)
            latency, plain = p.result
            assert plain == plaintext
            results[cipher] = latency
        assert results["chacha20"] > results["aes-gcm"]
