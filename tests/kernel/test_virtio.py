"""Device-virtualization tests (§7's virtio case)."""

import pytest

from repro.kernel import System
from repro.kernel.virtio import VirtQueue, VirtioBackend, guest_io


def _mk(mode):
    system = System(n_cores=3, copier=(mode == "copier"),
                    phys_frames=65536)
    guest = system.create_process("guest")
    queue = VirtQueue(system, guest)
    backend = VirtioBackend(system, queue, mode=mode)
    return system, guest, queue, backend


@pytest.mark.parametrize("mode", ["sync", "copier"])
def test_write_then_read_roundtrip(mode):
    system, guest, queue, backend = _mk(mode)
    n = 32 * 1024
    wbuf = guest.mmap(n, populate=True)
    rbuf = guest.mmap(n, populate=True)
    payload = bytes([(i * 3) % 251 for i in range(n)])
    guest.write(wbuf, payload)

    backend.proc.spawn(backend.run(2), affinity=1)

    def guest_gen():
        yield from guest_io(system, guest, queue, 1, wbuf, n, write=True)
        yield from guest_io(system, guest, queue, 1, rbuf, n, write=False)
        return guest.read(rbuf, n)

    p = system.env.spawn(guest_gen(), name="vcpu", affinity=0)
    system.env.run_until(p.terminated, limit=100_000_000_000)
    assert p.result == payload
    assert backend.requests_served == 2


def test_copier_backend_reduces_write_latency():
    """The guest's write completes while the device model's bookkeeping
    overlaps the payload copy."""
    def run(mode):
        system, guest, queue, backend = _mk(mode)
        n = 64 * 1024
        wbuf = guest.mmap(n, populate=True)
        guest.write(wbuf, b"\x5d" * n)
        backend.proc.spawn(backend.run(4), affinity=1)

        def guest_gen():
            if mode == "copier":
                w = backend.proc.mmap(1024, populate=True)
                yield from backend.proc.client.amemcpy(w + 512, w, 256)
                yield from backend.proc.client.csync(w + 512, 256)
            total = 0
            for i in range(4):
                total += yield from guest_io(system, guest, queue, i,
                                             wbuf, n, write=True)
            return total / 4

        p = system.env.spawn(guest_gen(), name="vcpu", affinity=0)
        system.env.run_until(p.terminated, limit=200_000_000_000)
        return p.result

    sync_lat = run("sync")
    copier_lat = run("copier")
    assert copier_lat < sync_lat


def test_small_requests_fall_back():
    system, guest, queue, backend = _mk("copier")
    buf = guest.mmap(4096, populate=True)
    guest.write(buf, b"tiny")
    backend.proc.spawn(backend.run(1), affinity=1)

    def guest_gen():
        yield from guest_io(system, guest, queue, 1, buf, 128, write=True)

    p = system.env.spawn(guest_gen(), name="vcpu", affinity=0)
    system.env.run_until(p.terminated, limit=50_000_000_000)
    assert backend.stored[1] == b"tiny" + b"\x00" * 124


def test_backend_blocks_until_kick():
    system, guest, queue, backend = _mk("sync")
    bp = backend.proc.spawn(backend.run(1), affinity=1)
    buf = guest.mmap(4096, populate=True)

    def guest_gen():
        from repro.sim import Timeout
        yield Timeout(100_000)
        yield from guest_io(system, guest, queue, 1, buf, 512, write=True)

    p = system.env.spawn(guest_gen(), name="vcpu", affinity=0)
    system.env.run_until(p.terminated, limit=50_000_000_000)
    assert backend.requests_served == 1
    assert system.env.now > 100_000
