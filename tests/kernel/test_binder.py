"""Binder IPC tests (§5.2, §6.1.2)."""

import pytest

from repro.kernel import BinderNode, System
from repro.kernel.binder import parcel_read, reply, transact
from repro.sim import WaitEvent

STR_LEN = 1024


def _run_binder(copier, n_strings, warm=True):
    """The paper's benchmark: client sends n 1KB strings, server reads them
    one by one, replies.  Returns (end-to-end latency, strings read)."""
    system = System(n_cores=3, copier=copier, phys_frames=16384)
    mode = "copier" if copier else "sync"
    client = system.create_process("ipc-client")
    server = system.create_process("ipc-server")
    node = BinderNode(system, server, buffer_bytes=max(1 << 20, n_strings * STR_LEN))
    nbytes = n_strings * STR_LEN
    msg_va = client.mmap(nbytes, populate=True)
    message = b"".join(bytes([65 + (i % 26)]) * STR_LEN for i in range(n_strings))
    client.write(msg_va, message)
    read_back = []

    def server_loop():
        yield WaitEvent(node.wait_transaction())
        txn = node.queue.popleft()
        for i in range(n_strings):
            data = yield from parcel_read(system, server, node, txn,
                                          i * STR_LEN, STR_LEN)
            read_back.append(data)
        yield from reply(system, server, txn, b"OK")

    def client_loop():
        if copier and warm:
            w = client.mmap(1024, populate=True)
            yield from client.client.amemcpy(w + 512, w, 256)
            yield from client.client.csync(w + 512, 256)
        t0 = system.env.now
        result = yield from transact(system, client, node, msg_va, nbytes,
                                     mode=mode)
        return system.env.now - t0, result

    sp = server.spawn(server_loop(), affinity=1)
    cp = client.spawn(client_loop(), affinity=0)
    system.env.run_until(cp.terminated, limit=2_000_000_000)
    return cp.result[0], cp.result[1], read_back, message


def test_binder_roundtrip_sync():
    latency, result, read_back, message = _run_binder(False, 10)
    assert result == b"OK"
    assert b"".join(read_back) == message


def test_binder_roundtrip_copier():
    latency, result, read_back, message = _run_binder(True, 10)
    assert result == b"OK"
    assert b"".join(read_back) == message


def test_copier_reduces_binder_latency():
    """Copier hides the driver copy behind server wakeup + processing
    (−9.6 % to −35.5 % in the paper for n = 10–800)."""
    for n in (10, 100):
        base, _r, _rb, _m = _run_binder(False, n)
        cop, _r, _rb, _m = _run_binder(True, n)
        assert cop < base, (n, cop, base)


def test_binder_server_reads_prefix_before_copy_completes():
    """Parcel's _csync pipelines reads with the in-flight copy: the first
    string is readable while later ones are still being copied."""
    system = System(n_cores=3, copier=True, phys_frames=16384)
    client = system.create_process("c")
    server = system.create_process("s")
    n_strings = 64
    node = BinderNode(system, server, buffer_bytes=1 << 20)
    nbytes = n_strings * STR_LEN
    msg_va = client.mmap(nbytes, populate=True)
    client.write(msg_va, b"\x37" * nbytes)
    times = {}

    def server_loop():
        yield WaitEvent(node.wait_transaction())
        txn = node.queue.popleft()
        t0 = system.env.now
        yield from parcel_read(system, server, node, txn, 0, STR_LEN)
        times["first"] = system.env.now - t0
        yield from parcel_read(system, server, node, txn,
                               (n_strings - 1) * STR_LEN, STR_LEN)
        times["last"] = system.env.now - t0
        yield from reply(system, server, txn, b"OK")

    def client_loop():
        w = client.mmap(1024, populate=True)
        yield from client.client.amemcpy(w + 512, w, 256)
        yield from client.client.csync(w + 512, 256)
        yield from transact(system, client, node, msg_va, nbytes,
                            mode="copier")

    server.spawn(server_loop(), affinity=1)
    cp = client.spawn(client_loop(), affinity=0)
    system.env.run_until(cp.terminated, limit=2_000_000_000)
    assert times["first"] < times["last"]


def test_binder_buffer_wraps_for_many_transactions():
    system = System(n_cores=2, copier=False)
    client = system.create_process("c")
    server = system.create_process("s")
    node = BinderNode(system, server, buffer_bytes=8 * STR_LEN)

    def server_loop():
        for _ in range(4):
            yield WaitEvent(node.wait_transaction())
            txn = node.queue.popleft()
            data = yield from parcel_read(system, server, node, txn, 0, STR_LEN)
            yield from reply(system, server, txn, data[:2])

    def client_loop():
        va = client.mmap(STR_LEN * 4, populate=True)
        out = []
        for i in range(4):
            client.write(va, bytes([i + 48]) * STR_LEN)
            r = yield from transact(system, client, node, va, STR_LEN * 4)
            out.append(r)
        return out

    server.spawn(server_loop(), affinity=1)
    cp = client.spawn(client_loop(), affinity=0)
    system.env.run_until(cp.terminated, limit=1_000_000_000)
    assert cp.result == [b"00", b"11", b"22", b"33"]
