"""Tiered-memory migration tests (§7 applicability)."""

import pytest

from repro.kernel import System
from repro.kernel.tiermem import TieredMemoryManager
from repro.mem.phys import PAGE_SIZE

FAST = 256  # frames in the fast tier


def _mk(copier):
    system = System(n_cores=3, copier=copier, phys_frames=2048)
    manager = TieredMemoryManager(system, fast_frames=FAST)
    proc = system.create_process("tier-app")
    return system, manager, proc


def _populate_slow(system, proc, n_pages):
    """Map pages and force their frames into the slow tier."""
    va = proc.mmap(PAGE_SIZE * n_pages)
    for i in range(n_pages):
        page_va = va + i * PAGE_SIZE
        vpn = page_va // PAGE_SIZE
        frame = system.phys.alloc_frame_in(FAST, system.phys.n_frames)
        from repro.mem.addrspace import PTE
        proc.aspace.page_table[vpn] = PTE(frame, writable=True)
        proc.write(page_va, bytes([i + 1]) * 64)
    return va


def test_promotion_preserves_data_and_changes_tier():
    system, manager, proc = _mk(copier=False)
    n = 4
    va = _populate_slow(system, proc, n)
    for i in range(n):
        assert manager.tier_of(manager.frame_of(proc.aspace,
                                                va + i * PAGE_SIZE)) == "slow"

    def gen():
        vas = [va + i * PAGE_SIZE for i in range(n)]
        return (yield from manager.migrate_batch(proc, vas, to_fast=True))

    p = proc.spawn(gen(), affinity=0)
    system.env.run_until(p.terminated, limit=50_000_000_000)
    assert manager.promoted == n
    for i in range(n):
        page_va = va + i * PAGE_SIZE
        assert manager.tier_of(manager.frame_of(proc.aspace, page_va)) == "fast"
        assert proc.read(page_va, 64) == bytes([i + 1]) * 64


def test_demotion_roundtrip():
    system, manager, proc = _mk(copier=False)
    va = proc.mmap(PAGE_SIZE * 2, populate=True)  # fast by default
    proc.write(va, b"hot-then-cold")

    def gen():
        yield from manager.migrate_batch(proc, [va, va + PAGE_SIZE],
                                         to_fast=False)
        yield from manager.migrate_batch(proc, [va], to_fast=True)

    p = proc.spawn(gen(), affinity=0)
    system.env.run_until(p.terminated, limit=50_000_000_000)
    assert manager.demoted == 2
    assert manager.promoted == 1
    assert proc.read(va, 13) == b"hot-then-cold"


def test_already_in_tier_is_skipped():
    system, manager, proc = _mk(copier=False)
    va = proc.mmap(PAGE_SIZE, populate=True)  # already fast

    def gen():
        yield from manager.migrate_batch(proc, [va], to_fast=True)

    p = proc.spawn(gen(), affinity=0)
    system.env.run_until(p.terminated, limit=10_000_000_000)
    assert manager.promoted == 0


@pytest.mark.parametrize("copier", [False, True])
def test_copier_migration_correct(copier):
    system, manager, proc = _mk(copier=copier)
    n = 8
    va = _populate_slow(system, proc, n)

    def gen():
        if copier:
            w = proc.mmap(1024, populate=True)
            yield from proc.client.amemcpy(w + 512, w, 256)
            yield from proc.client.csync(w + 512, 256)
        vas = [va + i * PAGE_SIZE for i in range(n)]
        return (yield from manager.migrate_batch(
            proc, vas, to_fast=True, mode="copier" if copier else "sync"))

    p = proc.spawn(gen(), affinity=0)
    system.env.run_until(p.terminated, limit=100_000_000_000)
    for i in range(n):
        assert proc.read(va + i * PAGE_SIZE, 64) == bytes([i + 1]) * 64
    assert manager.promoted == n


def test_copier_pipelines_batch_migration():
    """The batch pipelines through the service: the manager's blocking
    time beats the all-synchronous baseline (§7's tiered-memory claim)."""
    def run(copier):
        system, manager, proc = _mk(copier=copier)
        n = 16
        va = _populate_slow(system, proc, n)

        def gen():
            if copier:
                w = proc.mmap(1024, populate=True)
                yield from proc.client.amemcpy(w + 512, w, 256)
                yield from proc.client.csync(w + 512, 256)
            vas = [va + i * PAGE_SIZE for i in range(n)]
            return (yield from manager.migrate_batch(
                proc, vas, to_fast=True,
                mode="copier" if copier else "sync"))

        p = proc.spawn(gen(), affinity=0)
        system.env.run_until(p.terminated, limit=200_000_000_000)
        return p.result

    sync_busy = run(False)
    copier_busy = run(True)
    assert copier_busy < sync_busy
