"""CoW fault-handling tests (§5.2, §6.1.2)."""

import pytest

from repro.kernel import System
from repro.kernel.cow import cow_write
from repro.mem.phys import PAGE_SIZE

HUGE = 2 * 1024 * 1024


def _forked_region(system, proc, length):
    """Map + populate a region and fork so it becomes CoW-shared."""
    va = proc.mmap(length, populate=True)
    proc.write(va, b"\xcd" * length)
    child_as = proc.aspace.fork()
    return va, child_as


def test_cow_write_copies_and_isolates():
    system = System(n_cores=2, copier=False)
    proc = system.create_process("app")
    va, child_as = _forked_region(system, proc, PAGE_SIZE)

    def app():
        blocked = yield from cow_write(system, proc, va, b"parent-new")
        return blocked

    p = proc.spawn(app(), affinity=0)
    system.env.run_until(p.terminated, limit=10_000_000)
    assert proc.read(va, 10) == b"parent-new"
    assert child_as.read(va, 10) == b"\xcd" * 10
    assert p.result > 0  # a real fault was taken


def test_no_fault_when_not_shared():
    system = System(n_cores=2, copier=False)
    proc = system.create_process("app")
    va = proc.mmap(PAGE_SIZE, populate=True)

    def app():
        blocked = yield from cow_write(system, proc, va, b"data")
        return blocked

    p = proc.spawn(app(), affinity=0)
    system.env.run_until(p.terminated, limit=10_000_000)
    assert p.result == 0


def test_sole_owner_reuses_frame():
    system = System(n_cores=2, copier=False)
    proc = system.create_process("app")
    va, child_as = _forked_region(system, proc, PAGE_SIZE)
    # Child breaks the share first.
    child_as.write(va, b"x")
    frames_before = system.phys.frames_in_use

    def app():
        yield from cow_write(system, proc, va, b"y")

    p = proc.spawn(app(), affinity=0)
    system.env.run_until(p.terminated, limit=10_000_000)
    assert system.phys.frames_in_use == frames_before
    assert proc.aspace.fault_counts["cow_reuse"] == 1


def _measure(copier, page_bytes, warm_service=True):
    system = System(n_cores=3, copier=copier, phys_frames=4 * 1024)
    proc = system.create_process("app")
    va, child_as = _forked_region(system, proc, page_bytes)
    mode = "copier" if copier else "sync"

    def app():
        if copier and warm_service:
            warm = proc.mmap(1024, populate=True)
            yield from proc.client.amemcpy(warm + 512, warm, 256)
            yield from proc.client.csync(warm + 512, 256)
        blocked = yield from cow_write(system, proc, va, b"w", mode=mode,
                                       page_bytes=page_bytes)
        return blocked

    p = proc.spawn(app(), affinity=0)
    system.env.run_until(p.terminated, limit=500_000_000)
    # Isolation still holds.
    assert child_as.read(va, 1) == b"\xcd"
    assert proc.read(va, 1) == b"w"
    return p.result


@pytest.mark.faultfree
def test_copier_cuts_huge_page_blocking_time():
    """2 MB CoW faults: the handler/Copier split cuts blocking sharply
    (the paper reports −71.8 %)."""
    baseline = _measure(copier=False, page_bytes=HUGE)
    with_copier = _measure(copier=True, page_bytes=HUGE)
    reduction = 1 - with_copier / baseline
    assert 0.4 < reduction < 0.9, reduction


def test_copier_4kb_benefit_is_small():
    """4 KB faults: submission overhead eats most of the gain (−8.0 %)."""
    baseline = _measure(copier=False, page_bytes=PAGE_SIZE)
    with_copier = _measure(copier=True, page_bytes=PAGE_SIZE)
    reduction = 1 - with_copier / baseline
    assert reduction < 0.3
    huge_baseline = _measure(copier=False, page_bytes=HUGE)
    huge_copier = _measure(copier=True, page_bytes=HUGE)
    assert (1 - huge_copier / huge_baseline) > reduction


def test_cow_write_spanning_multiple_base_pages():
    system = System(n_cores=2, copier=False)
    proc = system.create_process("app")
    va, child_as = _forked_region(system, proc, PAGE_SIZE * 4)

    def app():
        for i in range(4):
            yield from cow_write(system, proc, va + i * PAGE_SIZE, b"Z")

    p = proc.spawn(app(), affinity=0)
    system.env.run_until(p.terminated, limit=50_000_000)
    assert proc.aspace.fault_counts["cow_copy"] == 4
    assert child_as.read(va, PAGE_SIZE * 4) == b"\xcd" * (PAGE_SIZE * 4)
