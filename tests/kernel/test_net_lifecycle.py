"""Network teardown: zerocopy completions racing process exit, socket
close releasing in-flight skbs, and kill-mid-transfer leak freedom."""

from repro.kernel import System, socket_pair
from repro.kernel.net import recv, send, zerocopy_reap
from repro.mem.phys import PAGE_SIZE


def _mk(copier=True):
    return System(n_cores=3, copier=copier, phys_frames=16384)


def test_zerocopy_send_survives_sender_exit():
    """MSG_ZEROCOPY pins the pages; an exit before TX-drain must neither
    crash the NIC-side snapshot nor leak the pinned frames."""
    system = _mk()
    s_tx, s_rx = socket_pair(system)
    sender = system.create_process("sender")
    receiver = system.create_process("receiver")
    nbytes = PAGE_SIZE * 4
    payload = bytes([i % 251 for i in range(nbytes)])
    tx_buf = sender.mmap(nbytes, populate=True)
    rx_buf = receiver.mmap(nbytes, populate=True)
    sender.write(tx_buf, payload)
    baseline = system.phys.frames_in_use - 2 * (nbytes // PAGE_SIZE)

    def tx():
        completion = yield from send(system, sender, s_tx, tx_buf, nbytes,
                                     mode="zerocopy")
        return completion

    tp = sender.spawn(tx(), affinity=0)
    system.env.run_until(tp.terminated, limit=200_000_000)
    completion = tp.result
    # The sender dies before the TX ring drains: its pinned pages park on
    # the lazy-teardown list instead of vanishing under the NIC.
    assert not completion.triggered
    system.exit_process(sender)
    assert sender.aspace.pins_outstanding() > 0

    def reap():
        yield from zerocopy_reap(system, sender, completion)

    def rx():
        got = yield from recv(system, receiver, s_rx, rx_buf, nbytes,
                              mode="sync")
        return receiver.read(rx_buf, got)

    reaper = system.env.spawn(reap(), name="reaper", affinity=0)
    rp = receiver.spawn(rx(), affinity=1)
    system.env.run_until(reaper.terminated, limit=200_000_000)
    system.env.run_until(rp.terminated, limit=200_000_000)
    # The NIC snapshot went through the pinned frames, so the wire data
    # survived the exit byte-for-byte.
    assert rp.result == payload
    assert sender.aspace.pins_outstanding() == 0
    s_tx.close()
    s_rx.close()
    system.exit_process(receiver)
    assert system.leaked_pins() == 0
    assert system.phys.frames_in_use == baseline


def test_socket_close_releases_undelivered_skbs():
    system = _mk()
    s_tx, s_rx = socket_pair(system)
    sender = system.create_process("sender")
    nbytes = 8192
    tx_buf = sender.mmap(nbytes, populate=True)
    baseline = system.phys.frames_in_use

    def tx():
        for _ in range(3):
            yield from send(system, sender, s_tx, tx_buf, nbytes,
                            mode="sync")

    tp = sender.spawn(tx(), affinity=0)
    system.env.run_until(tp.terminated, limit=200_000_000)
    system.env.run(until=system.env.now + 10_000_000)  # let skbs arrive
    assert len(s_rx.rx) == 3
    # Nobody ever recvs: closing the receiver must free the queued skbs.
    s_rx.close()
    s_tx.close()
    system.exit_process(sender)
    assert system.phys.frames_in_use == baseline - nbytes // PAGE_SIZE
    assert system.leaked_pins() == 0


def test_deliver_to_closed_socket_frees_on_arrival():
    system = _mk()
    s_tx, s_rx = socket_pair(system)
    sender = system.create_process("sender")
    nbytes = 4096
    tx_buf = sender.mmap(nbytes, populate=True)

    def tx():
        yield from send(system, sender, s_tx, tx_buf, nbytes, mode="sync")

    tp = sender.spawn(tx(), affinity=0)
    system.env.run_until(tp.terminated, limit=200_000_000)
    # The skb is on the wire; the receiver closes before it lands.
    s_rx.close()
    frames_with_skb = system.phys.frames_in_use
    system.env.run(until=system.env.now + 10_000_000)
    assert system.phys.frames_in_use == frames_with_skb - 1
    assert not s_rx.rx


def test_kill_mid_copier_recv_leaks_nothing():
    """Kill the process between recv() submission and its csync: the
    exit reap cancels the skb→user copy and socket close reclaims the
    buffer, with no double-free from the KFUNC."""
    system = _mk()
    s_tx, s_rx = socket_pair(system)
    proc = system.create_process("loopback")
    nbytes = 32 * 1024
    tx_buf = proc.mmap(nbytes, populate=True)
    rx_buf = proc.mmap(nbytes, populate=True)
    proc.write(tx_buf, bytes([7]) * nbytes)
    baseline = system.phys.frames_in_use

    marks = {}

    def app():
        yield from send(system, proc, s_tx, tx_buf, nbytes, mode="copier")
        yield from recv(system, proc, s_rx, rx_buf, nbytes, mode="copier")
        marks["recv_done"] = True
        # Park forever with the skb→user copy possibly still in flight.
        while True:
            yield from proc.client.csync(rx_buf, nbytes)
            yield from proc.client.amemcpy(tx_buf, rx_buf, nbytes)

    proc.spawn(app(), affinity=0)
    system.env.run(until=system.env.now + 2_000_000)
    assert marks.get("recv_done")
    system.kill_process(proc)
    s_tx.close()
    s_rx.close()
    system.env.run(until=system.env.now + 10_000_000)
    assert system.leaked_pins() == 0
    assert system.phys.frames_in_use <= baseline
