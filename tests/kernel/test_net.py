"""Network stack tests: send/recv in every copy mode (§5.2, §6.1.2)."""

import pytest

from repro.kernel import System, socket_pair
from repro.kernel.net import (
    iouring_submit,
    recv,
    recv_body,
    send,
    send_body,
    zerocopy_reap,
)
from repro.mem.phys import PAGE_SIZE


def _mk(copier=True, n_cores=3):
    return System(n_cores=n_cores, copier=copier, phys_frames=16384)


def _echo_once(system, mode, nbytes, payload=None):
    """One message sender→receiver; returns (received_bytes, latency)."""
    payload = payload or bytes([i % 256 for i in range(nbytes)])
    s_tx, s_rx = socket_pair(system)
    sender = system.create_process("sender")
    receiver = system.create_process("receiver")
    tx_buf = sender.mmap(nbytes, populate=True)
    rx_buf = receiver.mmap(nbytes, populate=True)
    sender.write(tx_buf, payload)
    out = {}

    def tx():
        if mode == "copier":
            # Warm the service (one-time SIMD state save, cold ATCache).
            warm = sender.mmap(1024, populate=True)
            yield from sender.client.amemcpy(warm + 512, warm, 256)
            yield from sender.client.csync(warm + 512, 256)
        t0 = system.env.now
        result = yield from send(system, sender, s_tx, tx_buf, nbytes,
                                 mode=mode)
        out["send_latency"] = system.env.now - t0
        return result

    def rx():
        got = yield from recv(system, receiver, s_rx, rx_buf, nbytes,
                              mode=mode)
        if mode == "copier":
            yield from receiver.client.csync(rx_buf, got)
        return receiver.read(rx_buf, got)

    tp = sender.spawn(tx(), affinity=0)
    rp = receiver.spawn(rx(), affinity=1)
    system.env.run_until(tp.terminated, limit=200_000_000)
    system.env.run_until(rp.terminated, limit=200_000_000)
    out["data"] = rp.result
    return out


@pytest.mark.parametrize("mode", ["sync", "copier", "ub"])
@pytest.mark.parametrize("nbytes", [512, 4096, 65536])
def test_send_recv_roundtrip_all_modes(mode, nbytes):
    system = _mk(copier=(mode == "copier"))
    payload = bytes([i % 251 for i in range(nbytes)])
    out = _echo_once(system, mode, nbytes, payload)
    assert out["data"] == payload


@pytest.mark.faultfree
def test_copier_send_latency_beats_sync_for_large():
    sizes = [16 * 1024, 64 * 1024]
    for nbytes in sizes:
        sync_out = _echo_once(_mk(copier=False), "sync", nbytes)
        cop_out = _echo_once(_mk(copier=True), "copier", nbytes)
        assert cop_out["send_latency"] < sync_out["send_latency"], nbytes
        assert cop_out["data"] == sync_out["data"]


def test_zerocopy_requires_page_alignment():
    system = _mk(copier=False)
    s_tx, _s_rx = socket_pair(system)
    proc = system.create_process("p")
    buf = proc.mmap(PAGE_SIZE * 2, populate=True)

    def tx():
        yield from send(system, proc, s_tx, buf + 7, 4096, mode="zerocopy")

    p = proc.spawn(tx(), affinity=0)
    with pytest.raises(ValueError, match="page-aligned"):
        system.env.run_until(p.terminated, limit=10_000_000)


def test_zerocopy_roundtrip_and_completion():
    system = _mk(copier=False)
    nbytes = 64 * 1024
    payload = b"\xab" * nbytes
    s_tx, s_rx = socket_pair(system)
    sender = system.create_process("sender")
    receiver = system.create_process("receiver")
    tx_buf = sender.mmap(nbytes, populate=True)
    rx_buf = receiver.mmap(nbytes, populate=True)
    sender.write(tx_buf, payload)

    def tx():
        completion = yield from send(system, sender, s_tx, tx_buf, nbytes,
                                     mode="zerocopy")
        # The buffer must not be reused before reaping the completion.
        yield from zerocopy_reap(system, sender, completion)
        return True

    def rx():
        got = yield from recv(system, receiver, s_rx, rx_buf, nbytes)
        return receiver.read(rx_buf, got)

    tp = sender.spawn(tx(), affinity=0)
    rp = receiver.spawn(rx(), affinity=1)
    system.env.run_until(rp.terminated, limit=100_000_000)
    system.env.run_until(tp.terminated, limit=100_000_000)
    assert rp.result == payload
    assert tp.result is True


def test_recv_blocks_until_data_arrives():
    system = _mk(copier=False)
    s_tx, s_rx = socket_pair(system)
    sender = system.create_process("sender")
    receiver = system.create_process("receiver")
    rx_buf = receiver.mmap(1024, populate=True)
    tx_buf = sender.mmap(1024, populate=True)
    sender.write(tx_buf, b"late")

    def rx():
        got = yield from recv(system, receiver, s_rx, rx_buf, 1024)
        return system.env.now, got

    def tx():
        from repro.sim import Timeout
        yield Timeout(500_000)
        yield from send(system, sender, s_tx, tx_buf, 4)

    rp = receiver.spawn(rx(), affinity=0)
    sender.spawn(tx(), affinity=1)
    system.env.run_until(rp.terminated, limit=10_000_000)
    when, got = rp.result
    assert when > 500_000
    assert got == 4


def test_iouring_batch_amortizes_traps():
    """One trap for N bodies: cheaper than N separate syscalls (§6.1.2)."""
    n_msgs = 10
    nbytes = 1024

    def run(batched):
        system = _mk(copier=False)
        s_tx, s_rx = socket_pair(system)
        sender = system.create_process("sender")
        bufs = [sender.mmap(nbytes, populate=True) for _ in range(n_msgs)]

        def tx():
            t0 = system.env.now
            if batched:
                bodies = [send_body(system, sender, s_tx, b, nbytes)
                          for b in bufs]
                yield from iouring_submit(system, sender, bodies)
            else:
                for b in bufs:
                    yield from send(system, sender, s_tx, b, nbytes)
            return system.env.now - t0

        p = sender.spawn(tx(), affinity=0)
        system.env.run_until(p.terminated, limit=100_000_000)
        assert s_rx.delivered == 0 or True  # deliveries are in flight
        return p.result

    assert run(batched=True) < run(batched=False)


def test_kernel_buffer_reclaimed_after_copier_recv():
    """The KFUNC reclaims the skb once the async copy completes (§5.2)."""
    system = _mk(copier=True)
    nbytes = 8 * 1024
    out = _echo_once(system, "copier", nbytes)
    assert len(out["data"]) == nbytes
    # The KFUNC reclamation runs one service step after csync observes the
    # data; let the service settle before checking.
    system.env.run(until=system.env.now + 1_000_000)
    kernel_vmas = [v for v in system.kernel_as.vmas if v.name == "kbuf"]
    assert not kernel_vmas
