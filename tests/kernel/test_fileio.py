"""File I/O path tests: read(), sendfile(), splice (Table 1 rows)."""

import pytest

from repro.kernel import System
from repro.kernel.fileio import FileObject, file_read, sendfile, splice_pages
from repro.kernel.net import recv, socket_pair
from repro.mem.phys import PAGE_SIZE


def _mk(copier=False):
    return System(n_cores=3, copier=copier, phys_frames=32768)


def _run(system, proc, gen, limit=50_000_000_000):
    p = proc.spawn(gen, affinity=0)
    system.env.run_until(p.terminated, limit=limit)
    return p.result


class TestFileRead:
    @pytest.mark.parametrize("mode,copier", [("sync", False),
                                             ("copier", True)])
    def test_read_roundtrip(self, mode, copier):
        system = _mk(copier)
        proc = system.create_process("reader")
        data = bytes([i % 97 for i in range(20000)])
        fobj = FileObject(system, data)
        buf = proc.mmap(32768, populate=True)

        def gen():
            got = yield from file_read(system, proc, fobj, 0, buf, 20000,
                                       mode=mode)
            if mode == "copier":
                yield from proc.client.csync(buf, got)
            return proc.read(buf, got)

        assert _run(system, proc, gen()) == data

    def test_read_at_offset_and_eof(self):
        system = _mk()
        proc = system.create_process("reader")
        fobj = FileObject(system, b"0123456789")
        buf = proc.mmap(PAGE_SIZE, populate=True)

        def gen():
            got = yield from file_read(system, proc, fobj, 6, buf, 100)
            return got, proc.read(buf, got)

        got, data = _run(system, proc, gen())
        assert (got, data) == (4, b"6789")

    def test_copier_read_overlaps_decode(self):
        """The PNG-decode pattern: read() returns immediately; decoding
        the head overlaps the tail's copy."""
        from repro.sim import Compute

        results = {}
        for mode, copier in (("sync", False), ("copier", True)):
            system = _mk(copier)
            proc = system.create_process("decoder")
            n = 64 * 1024
            fobj = FileObject(system, b"\x89PNG" * (n // 4))
            buf = proc.mmap(n, populate=True)

            def gen():
                t0 = system.env.now
                yield from file_read(system, proc, fobj, 0, buf, n,
                                     mode=mode)
                pos = 0
                while pos < n:  # decode 4KB chunks at 1 cyc/B
                    if mode == "copier":
                        yield from proc.client.csync(buf + pos, 4096)
                    yield Compute(4096)
                    pos += 4096
                return system.env.now - t0

            results[mode] = _run(system, proc, gen())
        assert results["copier"] < results["sync"]


class TestSendfile:
    def test_sendfile_delivers_without_user_copy(self):
        system = _mk()
        sender = system.create_process("web")
        receiver = system.create_process("client")
        a, b = socket_pair(system)
        payload = b"static-asset" * 1000
        fobj = FileObject(system, payload)
        rx = receiver.mmap(1 << 20, populate=True)

        def tx():
            return (yield from sendfile(system, sender, fobj, 0, a,
                                        len(payload)))

        def rxg():
            got = yield from recv(system, receiver, b, rx, 1 << 20)
            return receiver.read(rx, got)

        tp = sender.spawn(tx(), affinity=0)
        rp = receiver.spawn(rxg(), affinity=1)
        system.env.run_until(rp.terminated, limit=50_000_000_000)
        assert rp.result == payload
        assert tp.result == len(payload)
        # No user-space copy happened: the sender never mapped the data.
        assert system.env.stats.total_cycles(pid=tp.pid, tag="copy") > 0

    def test_sendfile_cheaper_than_read_plus_send(self):
        from repro.kernel.net import send

        n = 64 * 1024

        def with_sendfile():
            system = _mk()
            proc = system.create_process("p")
            a, _b = socket_pair(system)
            fobj = FileObject(system, b"x" * n)

            def gen():
                t0 = system.env.now
                yield from sendfile(system, proc, fobj, 0, a, n)
                return system.env.now - t0

            return _run(system, proc, gen())

        def with_read_send():
            system = _mk()
            proc = system.create_process("p")
            a, _b = socket_pair(system)
            fobj = FileObject(system, b"x" * n)
            buf = proc.mmap(n, populate=True)

            def gen():
                t0 = system.env.now
                yield from file_read(system, proc, fobj, 0, buf, n)
                yield from send(system, proc, a, buf, n)
                return system.env.now - t0

            return _run(system, proc, gen())

        assert with_sendfile() < with_read_send()


class TestSplice:
    def test_splice_moves_pages_without_copy(self):
        system = _mk()
        sender = system.create_process("p")
        receiver = system.create_process("c")
        a, b = socket_pair(system)
        n = PAGE_SIZE * 16
        payload = bytes(range(256)) * (n // 256)
        fobj = FileObject(system, payload)
        rx = receiver.mmap(1 << 20, populate=True)

        def tx():
            t0 = system.env.now
            yield from splice_pages(system, sender, fobj, 0, a, n)
            return system.env.now - t0

        def rxg():
            got = yield from recv(system, receiver, b, rx, 1 << 20)
            return receiver.read(rx, got)

        tp = sender.spawn(tx(), affinity=0)
        rp = receiver.spawn(rxg(), affinity=1)
        system.env.run_until(rp.terminated, limit=50_000_000_000)
        assert rp.result == payload
        # Sender-side cost is page bookkeeping, not a data copy.
        assert tp.result < system.params.cpu_copy_cycles(n, engine="erms")

    def test_splice_requires_alignment(self):
        system = _mk()
        proc = system.create_process("p")
        a, _b = socket_pair(system)
        fobj = FileObject(system, b"y" * PAGE_SIZE * 2)

        def gen():
            yield from splice_pages(system, proc, fobj, 100, a, PAGE_SIZE)

        p = proc.spawn(gen(), affinity=0)
        with pytest.raises(ValueError, match="aligned"):
            system.env.run_until(p.terminated, limit=10_000_000_000)


class TestFastmove:
    def test_dma_copy_correct_and_blocking(self):
        from repro.baselines.fastmove import Fastmove

        system = _mk()
        proc = system.create_process("nvm")
        fm = Fastmove(system)
        n = 64 * 1024
        src = proc.mmap(n, populate=True, contiguous=True)
        dst = proc.mmap(n, populate=True, contiguous=True)
        proc.write(src, b"\xfa" * n)

        def gen():
            t0 = system.env.now
            yield from fm.copy(proc, proc.aspace, src, proc.aspace, dst, n)
            return system.env.now - t0

        blocked = _run(system, proc, gen())
        assert proc.read(dst, n) == b"\xfa" * n
        # Blocking: the caller waited at least the DMA transfer time.
        assert blocked >= system.params.dma_transfer_cycles(n)

    def test_fastmove_loses_to_cpu_for_small_copies(self):
        from repro.baselines.fastmove import Fastmove

        system = _mk()
        proc = system.create_process("p")
        fm = Fastmove(system)
        n = 1024
        src = proc.mmap(n, populate=True, contiguous=True)
        dst = proc.mmap(n, populate=True, contiguous=True)

        def gen():
            t0 = system.env.now
            yield from fm.copy(proc, proc.aspace, src, proc.aspace, dst, n)
            return system.env.now - t0

        dma_time = _run(system, proc, gen())
        assert dma_time > system.params.cpu_copy_cycles(n, engine="erms")
