"""Size-distribution sampler tests (§2.2 trace shapes)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.distributions import (
    ALICLOUD_BLOCK,
    TWITTER_CACHE,
    SizeDistribution,
)


class TestSampler:
    def test_sample_boundaries(self):
        d = SizeDistribution([(100, 1), (200, 1)])
        assert d.sample(0.0) == 100
        assert d.sample(0.49) == 100
        assert d.sample(0.51) == 200
        assert d.sample(0.999) == 200

    def test_sample_rejects_out_of_range(self):
        d = SizeDistribution([(100, 1)])
        with pytest.raises(ValueError):
            d.sample(1.0)
        with pytest.raises(ValueError):
            d.sample(-0.1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SizeDistribution([])

    def test_sequence_deterministic(self):
        seq1 = TWITTER_CACHE.sequence(50, seed=7)
        seq2 = TWITTER_CACHE.sequence(50, seed=7)
        assert seq1 == seq2
        assert TWITTER_CACHE.sequence(50, seed=8) != seq1

    @settings(max_examples=40, deadline=None)
    @given(u=st.floats(min_value=0.0, max_value=0.999999))
    def test_property_samples_are_valid_sizes(self, u):
        assert TWITTER_CACHE.sample(u) in TWITTER_CACHE.sizes
        assert ALICLOUD_BLOCK.sample(u) in ALICLOUD_BLOCK.sizes


class TestPaperShapes:
    def test_twitter_mix_small_dominated(self):
        """§2.2: 95.1 % of Twitter memcached requests are ≤10 KB."""
        frac = TWITTER_CACHE.fraction_leq(10 * 1024)
        assert frac == pytest.approx(0.951, abs=0.01)

    def test_alicloud_mix(self):
        """§2.2: 69.8 % of AliCloud block requests are ≤10 KB."""
        frac = ALICLOUD_BLOCK.fraction_leq(10 * 1024)
        assert frac == pytest.approx(0.698, abs=0.01)

    def test_empirical_sequence_matches_cdf(self):
        seq = TWITTER_CACHE.sequence(4000)
        small = sum(1 for s in seq if s <= 10 * 1024) / len(seq)
        assert 0.90 < small < 0.99
