"""Shared fixtures for Copier core tests."""

import pytest

from repro.copier import CopierService
from repro.hw import MachineParams
from repro.mem import AddressSpace, PhysicalMemory
from repro.sim import Environment


class Setup:
    """A small machine with the Copier service on its last core."""

    def __init__(self, n_cores=2, n_frames=4096, fragmented=False, **service_kwargs):
        self.env = Environment(n_cores=n_cores)
        self.params = service_kwargs.pop("params", MachineParams())
        self.phys = PhysicalMemory(n_frames, fragmented=fragmented)
        self.service = CopierService(self.env, self.params, **service_kwargs)
        self.aspace = AddressSpace(self.phys, name="app")
        self.client = self.service.create_client(self.aspace, name="app")

    def run_process(self, generator, limit=50_000_000):
        """Spawn an app process on core 0 and run until it finishes."""
        proc = self.env.spawn(generator, name="app", affinity=0)
        self.env.run_until(proc.terminated, limit=limit)
        return proc.result


@pytest.fixture
def setup():
    return Setup()
