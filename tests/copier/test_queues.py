"""Ring queue and descriptor unit tests (§4.1, §5.1.1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.copier.descriptor import Descriptor, DescriptorPool
from repro.copier.queues import ClientQueues, QueueFull, RingQueue
from repro.sim import Environment


class TestRingQueue:
    def test_fifo_order(self):
        ring = RingQueue(8)
        for i in range(5):
            ring.submit(i)
        assert ring.drain() == [0, 1, 2, 3, 4]

    def test_len_tracks_occupancy(self):
        ring = RingQueue(8)
        assert ring.is_empty
        ring.submit("a")
        ring.submit("b")
        assert len(ring) == 2
        ring.pop()
        assert len(ring) == 1

    def test_full_queue_raises(self):
        ring = RingQueue(2)
        ring.submit(1)
        ring.submit(2)
        with pytest.raises(QueueFull):
            ring.submit(3)

    def test_wraparound_reuses_slots(self):
        ring = RingQueue(4)
        for round_no in range(5):
            for i in range(4):
                ring.submit((round_no, i))
            assert ring.drain() == [(round_no, i) for i in range(4)]
        assert ring.epoch == 5

    def test_acquire_without_publish_blocks_consumer(self):
        """The valid-bit protocol: an acquired-but-unfilled slot stalls the
        tail (the consumer never skips unpublished slots)."""
        ring = RingQueue(8)
        idx_a = ring.acquire()
        idx_b = ring.acquire()
        ring.publish(idx_b, "second")  # published out of order
        assert ring.pop() is None       # head slot not yet valid
        ring.publish(idx_a, "first")
        assert ring.pop() == "first"
        assert ring.pop() == "second"

    def test_interleaved_producers_order_by_acquisition(self):
        """Order follows acquire order, not publish order (§5.1.1)."""
        ring = RingQueue(8)
        slots = [ring.acquire() for _ in range(3)]
        for idx in reversed(slots):
            ring.publish(idx, "task-%d" % idx)
        assert ring.drain() == ["task-0", "task-1", "task-2"]

    def test_capacity_one(self):
        ring = RingQueue(1)
        ring.submit("x")
        with pytest.raises(QueueFull):
            ring.submit("y")
        assert ring.pop() == "x"
        ring.submit("y")

    def test_epoch_is_derived_from_head(self):
        """Regression: epoch must equal ``head // capacity`` at every point,
        for every capacity — a stateful counter bumped at ``head % capacity
        == 0`` counts a capacity-1 ring's every acquire as a wrap and
        drifts on partial fills."""
        for capacity in (1, 2, 3, 8):
            ring = RingQueue(capacity)
            assert ring.epoch == 0
            for _ in range(4 * capacity + 1):
                ring.acquire()
                ring.tail = ring.head  # consume without touching head
                assert ring.epoch == ring.head // capacity
            assert ring.epoch == 4 + (1 if capacity == 1 else 0)

    def test_epoch_partial_fill_does_not_wrap(self):
        """Filling and draining below capacity never advances the epoch."""
        ring = RingQueue(8)
        for round_no in range(5):
            for i in range(3):
                ring.submit(i)
            ring.drain()
        # 15 acquires on a capacity-8 ring = 1 full wrap, not 5.
        assert ring.epoch == 1

    @settings(max_examples=30, deadline=None)
    @given(ops=st.lists(st.booleans(), min_size=1, max_size=200))
    def test_property_never_loses_or_duplicates(self, ops):
        """Any submit/pop interleaving preserves exactly-once FIFO delivery."""
        ring = RingQueue(16)
        submitted = []
        popped = []
        counter = [0]
        for is_submit in ops:
            if is_submit:
                if len(ring) < ring.capacity:
                    ring.submit(counter[0])
                    submitted.append(counter[0])
                    counter[0] += 1
            else:
                item = ring.pop()
                if item is not None:
                    popped.append(item)
        popped.extend(ring.drain())
        assert popped == submitted


class TestClientQueues:
    def test_triple_is_independent(self):
        q = ClientQueues(8, "test")
        q.copy.submit("c")
        q.sync.submit("s")
        assert q.handler.is_empty
        assert q.copy.pop() == "c"
        assert q.sync.pop() == "s"


class TestDescriptor:
    def test_segment_count(self):
        assert Descriptor(4096, 1024).n_segments == 4
        assert Descriptor(4097, 1024).n_segments == 5
        assert Descriptor(100, 1024).n_segments == 1

    def test_mark_and_range_ready(self):
        d = Descriptor(4096, 1024)
        d.mark(0)
        d.mark(1)
        assert d.range_ready(0, 2048)
        assert not d.range_ready(0, 2049)
        assert not d.all_ready
        d.mark(2)
        d.mark(3)
        assert d.all_ready

    def test_mark_is_idempotent(self):
        d = Descriptor(2048, 1024)
        d.mark(0)
        d.mark(0)
        assert d.ready_segments == 1

    def test_mark_out_of_range_rejected(self):
        d = Descriptor(2048, 1024)
        with pytest.raises(IndexError):
            d.mark(2)

    def test_range_outside_descriptor_rejected(self):
        d = Descriptor(2048, 1024)
        with pytest.raises(ValueError):
            d.range_ready(1024, 2048)

    def test_ready_bytes_handles_partial_tail(self):
        d = Descriptor(2500, 1024)  # segments: 1024, 1024, 452
        d.mark(2)
        assert d.ready_bytes() == 452

    def test_waiter_fires_when_range_completes(self):
        env = Environment()
        d = Descriptor(4096, 1024)
        ev = d.wait_range(env, 0, 2048)
        d.mark(0)
        assert not ev.triggered
        d.mark(1)
        assert ev.triggered

    def test_waiter_on_ready_range_fires_immediately(self):
        env = Environment()
        d = Descriptor(2048, 1024)
        d.mark(0)
        d.mark(1)
        assert d.wait_range(env, 0, 2048).triggered

    def test_abort_wakes_waiters(self):
        env = Environment()
        d = Descriptor(2048, 1024)
        ev = d.wait_range(env, 0, 2048)
        d.abort()
        assert ev.triggered
        assert d.aborted

    @settings(max_examples=50, deadline=None)
    @given(
        length=st.integers(min_value=1, max_value=1 << 20),
        seg=st.sampled_from([256, 512, 1024, 4096]),
    )
    def test_property_all_marks_means_all_ready(self, length, seg):
        d = Descriptor(length, seg)
        for i in range(d.n_segments):
            d.mark(i)
        assert d.all_ready
        assert d.ready_bytes() == length
        assert d.range_ready(0, length)


class TestDescriptorPool:
    def test_acquire_release_recycles(self):
        pool = DescriptorPool(1024, prealloc=2)
        d = pool.acquire(3000)
        assert pool.hits == 1
        d.mark(0)
        d.release()
        d2 = pool.acquire(2000)
        assert d2.ready_segments == 0  # reset on reuse
        assert pool.hits == 2

    def test_oversize_request_misses(self):
        pool = DescriptorPool(1024, classes=(1024, 4096), prealloc=1)
        pool.acquire(1 << 20)
        assert pool.misses == 1

    def test_custom_segment_size_bypasses_pool(self):
        pool = DescriptorPool(1024, prealloc=1)
        d = pool.acquire(4096, segment_bytes=256)
        assert d.segment_bytes == 256
        assert pool.misses == 1

    def test_exhausted_class_allocates_fresh(self):
        pool = DescriptorPool(1024, prealloc=1)
        d1 = pool.acquire(1024)
        d2 = pool.acquire(1024)
        assert d1 is not d2
        assert pool.misses == 1
