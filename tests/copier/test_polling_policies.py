"""Polling-policy tests: the strategy objects and the scenario mode's
sleep/wake behaviour (§4.5.1, §5.3)."""

import pytest

from repro.copier import (AdaptivePolicy, NapiPolicy, PollingPolicy,
                          ScenarioPolicy, make_policy)
from repro.copier.polling import NAPI_POLL_GAP
from repro.sim import Timeout
from tests.copier.conftest import Setup


# --------------------------------------------------------------- factory

def test_make_policy_by_name():
    assert isinstance(make_policy("napi"), NapiPolicy)
    assert isinstance(make_policy("scenario"), ScenarioPolicy)
    assert isinstance(make_policy("adaptive"), AdaptivePolicy)


def test_make_policy_passes_instances_through():
    policy = AdaptivePolicy(base_gap=100, max_gap=400)
    assert make_policy(policy) is policy


def test_make_policy_rejects_unknown_names():
    with pytest.raises(ValueError, match="unknown polling mode"):
        make_policy("bogus")


def test_service_polling_property_swaps_policy():
    setup = Setup()
    assert setup.service.polling == "napi"
    setup.service.polling = "adaptive"
    assert isinstance(setup.service.policy, AdaptivePolicy)
    assert setup.service.polling == "adaptive"
    with pytest.raises(ValueError):
        setup.service.polling = "nope"


# ---------------------------------------------------------------- shapes

def test_napi_gap_is_constant():
    policy = NapiPolicy()
    assert [policy.poll_gap(i) for i in (0, 1, 50)] == [NAPI_POLL_GAP] * 3
    assert not policy.should_block(policy.idle_threshold)
    assert policy.should_block(policy.idle_threshold + 1)


def test_adaptive_gap_widens_monotonically_and_caps():
    policy = AdaptivePolicy(base_gap=100, max_gap=1600)
    gaps = [policy.poll_gap(i) for i in range(8)]
    assert gaps[0] == 100
    assert all(b >= a for a, b in zip(gaps, gaps[1:]))
    assert gaps[4] == 1600  # 100 << 4
    assert gaps[-1] == 1600  # capped
    assert policy.poll_gap(10_000) == 1600  # huge streaks don't overflow
    assert policy.poll_gap(-3) == 100


def test_adaptive_blocks_later_than_napi():
    assert AdaptivePolicy().idle_threshold > NapiPolicy().idle_threshold


def test_adaptive_rejects_bad_gaps():
    with pytest.raises(ValueError):
        AdaptivePolicy(base_gap=0)
    with pytest.raises(ValueError):
        AdaptivePolicy(base_gap=400, max_gap=200)


def test_custom_policy_subclass_is_accepted():
    class Eager(PollingPolicy):
        name = "eager"

        def poll_gap(self, idle_streak):
            return 1

    setup = Setup(polling=Eager())
    assert setup.service.polling == "eager"
    _copy_roundtrip(setup)
    assert setup.client.stats.completed == 1


# ------------------------------------------------------------ end-to-end

def _copy_roundtrip(setup, nbytes=8192):
    client, aspace = setup.client, setup.aspace
    src = aspace.mmap(nbytes, populate=True)
    dst = aspace.mmap(nbytes, populate=True)
    aspace.write(src, bytes(range(256)) * (nbytes // 256))

    def gen():
        yield from client.amemcpy(dst, src, nbytes)
        yield from client.csync(dst, nbytes)

    setup.run_process(gen())
    assert aspace.read(dst, nbytes) == aspace.read(src, nbytes)


def test_adaptive_polling_copies_correctly():
    setup = Setup(polling="adaptive")
    _copy_roundtrip(setup)
    assert setup.client.stats.completed == 1


def test_adaptive_widened_gap_still_wakes_on_submission():
    """After a long idle stretch (gap at max), a new submission must still
    be picked up promptly via the doorbell path."""
    setup = Setup(polling="adaptive")
    client, aspace = setup.client, setup.aspace
    src = aspace.mmap(4096, populate=True)
    dst = aspace.mmap(4096, populate=True)

    def gen():
        yield Timeout(400_000)  # let the worker widen its gap and block
        yield from client.amemcpy(dst, src, 4096)
        yield from client.csync(dst, 4096)

    setup.run_process(gen())
    assert client.stats.completed == 1


# --------------------------------------------------- scenario mode (§5.3)

def test_scenario_no_progress_until_begin():
    setup = Setup(polling="scenario")
    service, client, aspace = setup.service, setup.client, setup.aspace
    src = aspace.mmap(8192, populate=True)
    dst = aspace.mmap(8192, populate=True)
    observed = {}

    def gen():
        yield from client.amemcpy(dst, src, 8192)
        yield Timeout(500_000)
        observed["completed_while_asleep"] = client.stats.completed
        observed["ring_backlog"] = len(client.u_queues.copy)
        observed["sleeping_tids"] = sorted(service._wake_events)
        service.scenario_begin()
        yield from client.csync(dst, 8192)

    setup.run_process(gen())
    # While the scenario was inactive the task sat in the ring untouched:
    # not ingested, not copied, and the worker slept the whole time.
    assert observed["completed_while_asleep"] == 0
    assert observed["ring_backlog"] == 1
    assert observed["sleeping_tids"] == [0]
    assert client.stats.completed == 1


def test_scenario_threads_resleep_when_queues_drain():
    setup = Setup(polling="scenario")
    service, client, aspace = setup.service, setup.client, setup.aspace
    src = aspace.mmap(4096, populate=True)
    dst = aspace.mmap(4096, populate=True)
    observed = {}

    def gen():
        service.scenario_begin()
        yield from client.amemcpy(dst, src, 4096)
        yield from client.csync(dst, 4096)
        # Queues are drained; the worker should busy-poll briefly, then
        # block on its doorbell again.
        yield Timeout(500_000)
        observed["sleeping_tids"] = sorted(service._wake_events)
        # A fresh submission rings the doorbell (scenario still active).
        yield from client.amemcpy(dst, src, 4096)
        yield from client.csync(dst, 4096)

    setup.run_process(gen())
    assert observed["sleeping_tids"] == [0]
    assert client.stats.completed == 2


def test_scenario_end_gates_work_again():
    setup = Setup(polling="scenario")
    service, client, aspace = setup.service, setup.client, setup.aspace
    src = aspace.mmap(4096, populate=True)
    dst = aspace.mmap(4096, populate=True)
    observed = {}

    def gen():
        service.scenario_begin()
        yield from client.amemcpy(dst, src, 4096)
        yield from client.csync(dst, 4096)
        service.scenario_end()
        yield from client.amemcpy(dst, src, 4096)
        yield Timeout(500_000)
        observed["completed_after_end"] = client.stats.completed
        service.scenario_begin()
        yield from client.csync(dst, 4096)

    setup.run_process(gen())
    assert observed["completed_after_end"] == 1
    assert client.stats.completed == 2


def test_awaken_wakes_blocked_threads():
    setup = Setup(polling="scenario")
    service, client, aspace = setup.service, setup.client, setup.aspace
    src = aspace.mmap(4096, populate=True)
    dst = aspace.mmap(4096, populate=True)
    observed = {}

    def gen():
        service.scenario_begin()
        yield from client.amemcpy(dst, src, 4096)
        yield from client.csync(dst, 4096)
        yield Timeout(500_000)  # worker has drained and blocked again
        observed["wakes_before"] = service.stage_stats.thread_wakes
        service.awaken()  # the copier_awaken syscall: force a sweep
        yield Timeout(100_000)
        observed["wakes_after"] = service.stage_stats.thread_wakes

    setup.run_process(gen())
    assert observed["wakes_after"] > observed["wakes_before"]
