"""Regression test: ``CopierClient.task_index`` stays bounded.

The index exists for csync address lookups, so a client that submits
forever without ever csyncing used to grow it without bound.  Submission
now force-prunes finished tasks once the index reaches
:attr:`CopierClient.INDEX_CAP`.
"""

import pytest

from repro.copier.client import CopierClient
from repro.sim import Timeout
from tests.copier.conftest import Setup

N_TASKS = 10_000


# The cap only bounds *finished* entries; under injected faults the
# service legitimately lags with more unfinished tasks in flight.
@pytest.mark.faultfree
def test_index_bounded_across_10k_submissions():
    setup = Setup()
    client, aspace = setup.client, setup.aspace
    src = aspace.mmap(4096, populate=True)
    dst = aspace.mmap(4096, populate=True)
    peak = 0

    def gen():
        nonlocal peak
        for i in range(N_TASKS):
            yield from client.amemcpy(dst, src, 256)
            peak = max(peak, len(client.task_index))
            if i % 512 == 511:
                # Never csync — just pause so the service drains the ring
                # (csync would prune the index itself and mask the leak).
                yield Timeout(50_000)

    setup.run_process(gen(), limit=500_000_000)
    assert client.stats.submitted == N_TASKS
    assert peak <= CopierClient.INDEX_CAP
    assert len(client.task_index) <= CopierClient.INDEX_CAP
    # The copies actually ran; pruning only sheds *finished* tasks.
    assert client.stats.completed > 0
    assert all(not t.is_finished or t.descriptor.all_ready
               for t in client.task_index)


def test_forced_prune_keeps_unfinished_tasks():
    setup = Setup()
    # Gate the service so nothing completes: every submitted task stays
    # unfinished and therefore survives the forced prune.
    setup.service.polling = "scenario"
    setup.service.scenario_active = False
    client, aspace = setup.client, setup.aspace
    src = aspace.mmap(4096, populate=True)
    dst = aspace.mmap(4096, populate=True)

    def gen():
        for _ in range(40):
            yield from client.amemcpy(dst, src, 256)

    setup.run_process(gen())
    before = list(client.task_index)
    client._prune_index(force=True)
    assert client.task_index == before
