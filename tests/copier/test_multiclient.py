"""Multi-client service behavior: cgroup isolation, auto-scaling,
queue-full handling, and cross-client independence (§4.5)."""

import pytest

from repro.copier import CopierService
from repro.copier.queues import QueueFull
from repro.hw import MachineParams
from repro.mem import AddressSpace, PhysicalMemory
from repro.sim import Compute, Environment, Timeout
from tests.copier.conftest import Setup


def _steady_copier(setup, aspace, client, n, rounds):
    """A client that keeps one copy in flight at all times."""
    src = aspace.mmap(n, populate=True)
    dst = aspace.mmap(n, populate=True)

    def gen():
        for _ in range(rounds):
            yield from client.amemcpy(dst, src, n)
            yield from client.csync(dst, n)

    return gen


class TestCgroupIsolation:
    def test_shares_skew_service_bandwidth(self):
        """Two saturating clients in cgroups with 4:1 shares: the gold
        client finishes its work substantially earlier (§4.5.2)."""
        env = Environment(n_cores=3)
        params = MachineParams()
        phys = PhysicalMemory(16384)
        service = CopierService(env, params, dedicated_cores=[2])
        service.scheduler.create_cgroup("gold", shares=400)
        service.scheduler.create_cgroup("bronze", shares=100)

        finish = {}
        procs = []
        for name, cgroup, core in (("gold", "gold", 0),
                                   ("bronze", "bronze", 1)):
            aspace = AddressSpace(phys, name=name)
            client = service.create_client(aspace, name=name, cgroup=cgroup)
            n = 32 * 1024
            src = aspace.mmap(n, populate=True)
            dst = aspace.mmap(n, populate=True)

            def gen(client=client, src=src, dst=dst, name=name, n=n):
                for _ in range(12):
                    yield from client.amemcpy(dst, src, n)
                    yield from client.csync(dst, n)
                finish[name] = env.now

            procs.append(env.spawn(gen(), name=name, affinity=core))
        for p in procs:
            env.run_until(p.terminated, limit=500_000_000_000)
        # Both make progress; the weighted scheduler favors gold.
        assert finish["gold"] < finish["bronze"]

    def test_equal_shares_equal_progress(self):
        env = Environment(n_cores=3)
        params = MachineParams()
        phys = PhysicalMemory(16384)
        service = CopierService(env, params, dedicated_cores=[2])
        finish = {}
        procs = []
        for name, core in (("a", 0), ("b", 1)):
            aspace = AddressSpace(phys, name=name)
            client = service.create_client(aspace, name=name)
            n = 16 * 1024
            src = aspace.mmap(n, populate=True)
            dst = aspace.mmap(n, populate=True)

            def gen(client=client, src=src, dst=dst, name=name, n=n):
                for _ in range(10):
                    yield from client.amemcpy(dst, src, n)
                    yield from client.csync(dst, n)
                finish[name] = env.now

            procs.append(env.spawn(gen(), name=name, affinity=core))
        for p in procs:
            env.run_until(p.terminated, limit=500_000_000_000)
        spread = abs(finish["a"] - finish["b"]) / max(finish.values())
        assert spread < 0.25, finish


class TestAutoScaling:
    def test_sustained_load_wakes_more_threads(self):
        """§4.5.1: high sustained load raises active_threads."""
        env = Environment(n_cores=6)
        params = MachineParams()
        phys = PhysicalMemory(65536)
        service = CopierService(env, params, n_threads=1, max_threads=3,
                                autoscale=True,
                                dedicated_cores=[5, 4, 3])
        assert service.active_threads == 1
        procs = []
        for i in range(3):
            aspace = AddressSpace(phys, name="load-%d" % i)
            client = service.create_client(aspace, name="load-%d" % i)
            gen = _steady_copier(None, aspace, client, 64 * 1024, 120)
            procs.append(env.spawn(gen(), name="load-%d" % i, affinity=i))
        for p in procs:
            env.run_until(p.terminated, limit=2_000_000_000_000)
        # The service scaled out during the bursts; once the workload
        # drained it is free to scale back (both are correct behaviour).
        assert service.peak_threads > 1
        assert any(l > service.params.high_load
                   for l in service._load_window)

    def test_idle_load_scales_back_down(self):
        env = Environment(n_cores=6)
        params = MachineParams()
        phys = PhysicalMemory(65536)
        service = CopierService(env, params, n_threads=2, max_threads=3,
                                autoscale=True, dedicated_cores=[5, 4, 3])
        service.active_threads = 3
        aspace = AddressSpace(phys)
        client = service.create_client(aspace)
        src = aspace.mmap(4096, populate=True)
        dst = aspace.mmap(4096, populate=True)

        def trickle():
            for _ in range(30):
                yield from client.amemcpy(dst, src, 512)
                yield from client.csync(dst, 512)
                yield Timeout(200_000)  # mostly idle

        p = env.spawn(trickle(), affinity=0)
        env.run_until(p.terminated, limit=2_000_000_000_000)
        assert service.active_threads < 3


class TestQueuePressure:
    def test_queue_full_surfaces_to_submitter(self):
        setup = Setup(n_frames=2048)
        # Tiny ring: the 5th un-served submission must fail loudly.
        small = setup.service.create_client(setup.aspace, name="small",
                                            queue_capacity=4)
        src = setup.aspace.mmap(4096, populate=True)
        dst = setup.aspace.mmap(4096, populate=True)
        caught = []

        def gen():
            # Stall the service so the ring cannot drain.
            setup.service.running = True
            setup.service.polling = "scenario"
            setup.service.scenario_active = False
            try:
                for _ in range(10):
                    yield from small.amemcpy(dst, src, 64)
            except QueueFull:
                caught.append(True)

        setup.run_process(gen())
        assert caught == [True]

    def test_many_small_tasks_all_complete(self):
        setup = Setup(n_frames=8192)
        aspace, client = setup.aspace, setup.client
        src = aspace.mmap(8192, populate=True)
        dst = aspace.mmap(8192, populate=True)
        aspace.write(src, bytes(range(256)) * 32)

        def gen():
            for i in range(200):
                off = (i * 31) % 4096
                yield from client.amemcpy(dst + off, src + off, 64)
            yield from client.csync_all()
            return aspace.read(dst, 8192) == aspace.read(src, 8192)

        # Not strictly equal everywhere (only copied offsets), so check
        # the service retired everything instead.
        setup.run_process(gen())
        assert client.stats.completed == 200
        assert len(client.pending) == 0


class TestFailureInjection:
    def test_oom_during_proactive_faulting_drops_task(self):
        """Exhausted physical memory while the service resolves a task's
        demand-paging faults must drop the task and keep serving others,
        not crash the Copier thread."""
        setup = Setup(n_frames=40)  # not enough for 2 x 30 pages below
        aspace, client = setup.aspace, setup.client
        client.sigsegv_handler = lambda task, exc: None
        src = aspace.mmap(4096, populate=True)
        ok_dst = aspace.mmap(4096, populate=True)
        # Source and destination whose demand paging cannot BOTH be
        # satisfied: 60 frames needed, ~38 available.
        huge_src = aspace.mmap(4096 * 30)
        huge_dst = aspace.mmap(4096 * 30)
        aspace.write(src, b"survivor")

        def gen():
            yield from client.amemcpy(huge_dst, huge_src, 4096 * 30)
            yield Timeout(200_000)
            # The service must still be alive and serving:
            yield from client.amemcpy(ok_dst, src, 8)
            yield from client.csync(ok_dst, 8)
            return aspace.read(ok_dst, 8)

        assert setup.run_process(gen()) == b"survivor"
        assert client.stats.dropped == 1


class TestCrossClientIndependence:
    def test_one_clients_segfault_does_not_disturb_others(self):
        setup = Setup(n_frames=4096)
        healthy_as = AddressSpace(setup.phys, name="healthy")
        healthy = setup.service.create_client(healthy_as, name="healthy")
        rogue_as = AddressSpace(setup.phys, name="rogue")
        rogue = setup.service.create_client(rogue_as, name="rogue")
        rogue.sigsegv_handler = lambda task, exc: None  # swallow signal

        h_src = healthy_as.mmap(4096, populate=True)
        h_dst = healthy_as.mmap(4096, populate=True)
        healthy_as.write(h_src, b"fine")

        def rogue_gen():
            yield from rogue.amemcpy(0xDEAD0000, 0xBEEF0000, 128)
            yield Timeout(100_000)

        def healthy_gen():
            yield from healthy.amemcpy(h_dst, h_src, 4)
            yield from healthy.csync(h_dst, 4)
            return healthy_as.read(h_dst, 4)

        setup.env.spawn(rogue_gen(), name="rogue", affinity=0)
        hp = setup.env.spawn(healthy_gen(), name="healthy", affinity=0)
        setup.env.run_until(hp.terminated, limit=50_000_000_000)
        assert hp.result == b"fine"
        assert rogue.stats.dropped == 1
