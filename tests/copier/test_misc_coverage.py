"""Coverage for remaining corners: handlers on abort, descriptor waiters,
segment options, barrier sequences, LibCopier aabort."""

import pytest

from repro.api import LibCopier
from repro.copier.deps import BarrierBookkeeping, u_order_key
from repro.copier.queues import RingQueue
from repro.kernel import System
from repro.mem.phys import PAGE_SIZE
from repro.sim import Timeout
from tests.copier.conftest import Setup


class TestAbortHandler:
    def test_aborted_task_still_runs_its_handler(self):
        """Aborting a copy frees its source via the handler: the skb
        reclamation contract must hold even for discarded copies."""
        setup = Setup()
        aspace, client = setup.aspace, setup.client
        src = aspace.mmap(PAGE_SIZE, populate=True)
        dst = aspace.mmap(PAGE_SIZE, populate=True)
        freed = []

        def gen():
            yield from client.amemcpy(dst, src, 2048, lazy=True,
                                      handler=("kfunc", freed.append,
                                               ("src",)))
            yield from client.abort(dst, 2048)
            yield Timeout(200_000)

        setup.run_process(gen())
        assert freed == ["src"]
        assert client.stats.aborted == 1


class TestSegmentOptions:
    def test_custom_segment_size_honored(self):
        setup = Setup()
        aspace, client = setup.aspace, setup.client
        src = aspace.mmap(PAGE_SIZE * 2, populate=True)
        dst = aspace.mmap(PAGE_SIZE * 2, populate=True)

        def gen():
            desc = yield from client.amemcpy(dst, src, 8192,
                                             segment_bytes=256)
            yield from client.csync(dst, 8192)
            return desc

        desc = setup.run_process(gen())
        assert desc.segment_bytes == 256
        assert desc.n_segments == 32
        assert desc.all_ready


class TestBarrierSequences:
    def test_nested_syscall_like_sequence(self):
        ring = RingQueue(32)
        barriers = BarrierBookkeeping(ring)
        # u-task, trap, k-task, return, u-task, trap, k-task.
        ring.submit("u0")
        barriers.on_trap()
        k1 = barriers.next_k_key()
        barriers.on_return()
        ring.submit("u1")
        barriers.on_trap()
        k2 = barriers.next_k_key()
        # Order: u0 < k1 < u1 < k2.
        assert u_order_key(0) < k1 < u_order_key(1) < k2

    def test_k_tasks_without_any_u_tasks(self):
        ring = RingQueue(8)
        barriers = BarrierBookkeeping(ring)
        barriers.on_trap()
        k1 = barriers.next_k_key()
        k2 = barriers.next_k_key()
        assert k1 < k2
        # A later u task follows both.
        ring.submit("u0")
        assert k2 < u_order_key(0)


class TestLibCopierAbort:
    def test_aabort_discards_via_fd(self):
        system = System(n_cores=3, copier=True, phys_frames=16384)
        proc = system.create_process("app")
        lib = LibCopier(proc)
        src = proc.mmap(PAGE_SIZE * 8, populate=True)
        dst = proc.mmap(PAGE_SIZE * 8, populate=True)

        def gen():
            fd = lib.copier_create_queue()
            yield from lib._amemcpy(dst, src, 16384, fd=fd, lazy=True)
            yield from lib.aabort(dst, 16384, fd=fd)
            yield Timeout(200_000)

        p = proc.spawn(gen(), affinity=0)
        system.env.run_until(p.terminated, limit=50_000_000_000)
        worker = lib._client_for(3)
        assert worker.stats.aborted == 1


class TestDescriptorWaiters:
    def test_wait_range_triggers_through_service(self):
        """Event-based waiting (used by Binder-style consumers) fires when
        the service lands the segments."""
        setup = Setup()
        aspace, client = setup.aspace, setup.client
        src = aspace.mmap(PAGE_SIZE * 16, populate=True)
        dst = aspace.mmap(PAGE_SIZE * 16, populate=True)
        aspace.write(src, b"\x3c" * 1024)

        def gen():
            desc = yield from client.amemcpy(dst, src, 64 * 1024)
            from repro.sim import WaitEvent
            yield WaitEvent(desc.wait_range(setup.env, 0, 1024))
            return aspace.read(dst, 1024)

        assert setup.run_process(gen()) == b"\x3c" * 1024


class TestRingEpoch:
    def test_epoch_counts_wraps(self):
        ring = RingQueue(4)
        for _ in range(3):
            for i in range(4):
                ring.submit(i)
            ring.drain()
        assert ring.epoch == 3
