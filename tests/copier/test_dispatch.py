"""Dispatcher tests: hybrid subtasks, i/e-piggyback, DMA balancing (§4.3)."""

import pytest

from repro.copier.deps import PendingTasks, u_order_key
from repro.copier.descriptor import Descriptor
from repro.copier.dispatch import Dispatcher
from repro.copier.task import CopyTask, Region
from repro.hw import MachineParams
from repro.mem import PAGE_SIZE, AddressSpace, PhysicalMemory
from repro.sim import WaitEvent
from tests.copier.conftest import Setup


def _pending_with(aspace, specs, seg=1024):
    """specs: list of (src, dst, n, lazy)."""
    from repro.copier import task as task_mod

    pending = PendingTasks()
    tasks = []
    for i, spec in enumerate(specs):
        src, dst, n = spec[:3]
        lazy = spec[3] if len(spec) > 3 else False
        t = CopyTask(None, "u", Region(aspace, src, n), Region(aspace, dst, n),
                     Descriptor(n, seg),
                     task_type=task_mod.TYPE_LAZY if lazy else task_mod.TYPE_NORMAL)
        t.order_key = u_order_key(i)
        pending.add(t)
        tasks.append(t)
    return pending, tasks


@pytest.fixture
def params():
    return MachineParams()


def _contig_aspace(n_pages=64):
    phys = PhysicalMemory(512)
    return AddressSpace(phys)


class TestPlanning:
    def test_large_task_uses_i_piggyback(self, params):
        aspace = _contig_aspace()
        n = 64 * 1024
        src = aspace.mmap(n, populate=True, contiguous=True)
        dst = aspace.mmap(n, populate=True, contiguous=True)
        pending, _ = _pending_with(aspace, [(src, dst, n)])
        plan = Dispatcher(params).build_round(pending, budget_bytes=n)
        assert plan.mode == "i-piggyback"
        assert plan.dma_runs, "large contiguous task should get DMA work"
        assert plan.avx_jobs, "CPU keeps the head of the task"

    def test_dma_picked_from_latter_part(self, params):
        """DMA segments have longer Copy-Use windows: they come from the tail."""
        aspace = _contig_aspace()
        n = 64 * 1024
        src = aspace.mmap(n, populate=True, contiguous=True)
        dst = aspace.mmap(n, populate=True, contiguous=True)
        pending, _ = _pending_with(aspace, [(src, dst, n)])
        plan = Dispatcher(params).build_round(pending, budget_bytes=n)
        max_avx_seg = max(j.seg_index for j in plan.avx_jobs)
        min_dma_seg = min(j.seg_index for r in plan.dma_runs for j in r.jobs)
        assert min_dma_seg > max_avx_seg

    def test_unit_times_balanced(self, params):
        aspace = _contig_aspace()
        n = 256 * 1024
        src = aspace.mmap(n, populate=True, contiguous=True)
        dst = aspace.mmap(n, populate=True, contiguous=True)
        pending, _ = _pending_with(aspace, [(src, dst, n)])
        plan = Dispatcher(params).build_round(pending, budget_bytes=n)
        avx_time = plan.avx_bytes / params.avx_bytes_per_cycle
        dma_time = params.dma_submit_cycles + plan.dma_bytes / params.dma_bytes_per_cycle
        # DMA never outlasts the AVX stream (piggyback invariant)…
        assert dma_time <= avx_time
        # …and the split is reasonably balanced (within one candidate run).
        assert dma_time > avx_time * 0.4

    def test_small_task_avx_only_when_alone(self, params):
        aspace = _contig_aspace()
        n = 2 * 1024  # below the 4 KB DMA candidate floor
        src = aspace.mmap(n, populate=True, contiguous=True)
        dst = aspace.mmap(n, populate=True, contiguous=True)
        pending, _ = _pending_with(aspace, [(src, dst, n)])
        plan = Dispatcher(params).build_round(pending, budget_bytes=n)
        assert plan.mode == "e-piggyback"
        assert not plan.dma_runs
        assert plan.avx_bytes == n

    def test_e_piggyback_fuses_independent_small_tasks(self, params):
        """Several adjacent small copies fuse into one round (§4.3).

        Recycled I/O buffers (warm ATCache) make the fused tasks' pieces
        cheap enough to piggyback on DMA — the small-copy benefit the
        paper claims over per-copy partitioning dispatchers."""
        from repro.copier.atcache import ATCache

        aspace = _contig_aspace()
        atcache = ATCache(params)
        specs = []
        for _ in range(3):
            n = 8 * 1024
            src = aspace.mmap(n, populate=True, contiguous=True)
            dst = aspace.mmap(n, populate=True, contiguous=True)
            specs.append((src, dst, n))
            # Buffers are recycled: pre-warm the translation cache.
            atcache.translation_cost(aspace, src, n)
            atcache.translation_cost(aspace, dst, n, write=True)
        pending, tasks = _pending_with(aspace, specs)
        plan = Dispatcher(params, atcache=atcache).build_round(
            pending, budget_bytes=64 * 1024)
        assert plan.mode == "e-piggyback"
        assert len(plan.tasks) == 3
        assert plan.dma_runs, "fused tasks provide DMA candidates"
        # DMA candidates come from the latter tasks.
        dma_task_ids = {r.task.task_id for r in plan.dma_runs}
        assert tasks[0].task_id not in dma_task_ids

    def test_e_piggyback_stops_at_dependency(self, params):
        aspace = _contig_aspace()
        n = 4 * 1024
        a = aspace.mmap(n, populate=True, contiguous=True)
        b = aspace.mmap(n, populate=True, contiguous=True)
        c = aspace.mmap(n, populate=True, contiguous=True)
        d = aspace.mmap(n, populate=True, contiguous=True)
        # Task 2 depends on task 1's destination: cannot fuse.
        pending, tasks = _pending_with(aspace, [(a, b, n), (b, c, n), (c, d, n)])
        plan = Dispatcher(params).build_round(pending, budget_bytes=64 * 1024)
        assert plan.tasks == [tasks[0]]

    def test_fragmented_memory_shrinks_dma_runs(self, params):
        """Non-contiguous physical pages (Fig. 7-b) break up DMA runs: each
        run collapses to a single page, and candidacy drops vs contiguous."""
        phys = PhysicalMemory(512, fragmented=True)
        aspace = AddressSpace(phys)
        n = 64 * 1024
        src = aspace.mmap(n, populate=True)  # fragmented frames
        dst = aspace.mmap(n, populate=True)
        pending, _ = _pending_with(aspace, [(src, dst, n)])
        plan = Dispatcher(params).build_round(pending, budget_bytes=n)
        assert all(r.nbytes <= PAGE_SIZE for r in plan.dma_runs)

        # Contiguous layout forms one big run instead.
        aspace2 = _contig_aspace()
        src2 = aspace2.mmap(n, populate=True, contiguous=True)
        dst2 = aspace2.mmap(n, populate=True, contiguous=True)
        pending2, _ = _pending_with(aspace2, [(src2, dst2, n)])
        plan2 = Dispatcher(params).build_round(pending2, budget_bytes=n)
        assert max(r.nbytes for r in plan2.dma_runs) > PAGE_SIZE

    def test_budget_limits_round(self, params):
        aspace = _contig_aspace()
        n = 256 * 1024
        src = aspace.mmap(n, populate=True, contiguous=True)
        dst = aspace.mmap(n, populate=True, contiguous=True)
        pending, _ = _pending_with(aspace, [(src, dst, n)])
        plan = Dispatcher(params).build_round(pending, budget_bytes=32 * 1024)
        assert plan.total_bytes <= 33 * 1024

    def test_dma_disabled_dispatcher(self, params):
        aspace = _contig_aspace()
        n = 64 * 1024
        src = aspace.mmap(n, populate=True, contiguous=True)
        dst = aspace.mmap(n, populate=True, contiguous=True)
        pending, _ = _pending_with(aspace, [(src, dst, n)])
        plan = Dispatcher(params, use_dma=False).build_round(pending, budget_bytes=n)
        assert not plan.dma_runs
        assert plan.avx_bytes == n

    def test_empty_pending_returns_none(self, params):
        assert Dispatcher(params).build_round(PendingTasks(), 1024) is None


class TestEndToEndDMA:
    def test_large_copy_engages_dma_and_is_correct(self):
        setup = Setup(n_frames=8192)
        aspace, client = setup.aspace, setup.client
        n = 256 * 1024
        src = aspace.mmap(n, populate=True, contiguous=True)
        dst = aspace.mmap(n, populate=True, contiguous=True)
        payload = bytes([i % 233 for i in range(n)])
        aspace.write(src, payload)

        def app():
            yield from client.amemcpy(dst, src, n)
            yield from client.csync(dst, n)
            return aspace.read(dst, n)

        assert setup.run_process(app()) == payload
        assert setup.service.dma.bytes_copied > 0
        assert setup.service.dispatcher.bytes_to_dma > 0
        assert setup.service.dispatcher.bytes_to_avx > 0

    def test_parallel_dma_avx_faster_than_avx_only(self):
        """Repeated-buffer copies (warm ATCache) beat AVX-only (Fig. 9)."""
        def run(use_dma, rounds=8):
            setup = Setup(n_frames=8192, use_dma=use_dma)
            aspace, client = setup.aspace, setup.client
            n = 512 * 1024
            src = aspace.mmap(n, populate=True, contiguous=True)
            dst = aspace.mmap(n, populate=True, contiguous=True)
            aspace.write(src, b"\x99" * n)

            def app():
                t0 = setup.env.now
                for _ in range(rounds):
                    yield from client.amemcpy(dst, src, n)
                    yield from client.csync(dst, n)
                return setup.env.now - t0

            return setup.run_process(app())

        with_dma = run(True)
        without_dma = run(False)
        assert with_dma < without_dma * 0.85
