"""Admission control, deadlines and cancellation tests (§4.5 overload).

Covers the overload valve end to end: token-bucket metering on the sim
clock, policy selection (argument > ``COPIER_ADMISSION`` > default),
shed legality (never reorder against in-flight work), the typed reject
path, deadline reaping, ``cancel()``/csync-deadline semantics, and the
acceptance-criteria determinism run — same seed, same shed/reject/miss
counters, zero leaked pins.
"""

import random

import pytest

from repro.copier.admission import (REJECT, SHED, AdmissionPolicy,
                                    DeadlineFeasiblePolicy, QueueDepthPolicy,
                                    TokenBucket, make_admission)
from repro.copier.errors import AdmissionReject, CopyAborted, DeadlineMissed
from repro.sim import Environment, Timeout
from tests.copier.conftest import Setup


def _leaked_pins(aspace):
    return sum(pte.pin_count for pte in aspace.page_table.values())


def _pattern(n, salt=0):
    return bytes((i * 7 + salt) % 251 for i in range(n))


class ShedEverything(AdmissionPolicy):
    """Test policy: shed whenever it is legal (controller may override)."""

    name = "shed-everything"

    def decide(self, controller, client, task):
        return SHED


class RejectEverything(AdmissionPolicy):
    name = "reject-everything"

    def decide(self, controller, client, task):
        return REJECT


# ------------------------------------------------------------ token bucket


class TestTokenBucket:
    def test_burst_then_refill_on_sim_clock(self):
        env = Environment()
        bucket = TokenBucket(env, 2.0, 100)
        assert bucket.consume(100)
        assert not bucket.consume(1)
        env.run(until=30)  # 30 cycles * 2 B/cycle
        assert bucket.peek() == 60
        assert bucket.consume(60)
        assert not bucket.consume(1)

    def test_refill_caps_at_burst(self):
        env = Environment()
        bucket = TokenBucket(env, 1.0, 50)
        env.run(until=10_000)
        assert bucket.peek() == 50

    def test_failed_consume_deducts_nothing(self):
        env = Environment()
        bucket = TokenBucket(env, 1.0, 10)
        assert not bucket.consume(11)
        assert bucket.consume(10)

    def test_invalid_parameters_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            TokenBucket(env, 0, 10)
        with pytest.raises(ValueError):
            TokenBucket(env, 1.0, 0)


# -------------------------------------------------------- policy selection


class TestPolicySelection:
    def test_default_is_always(self, monkeypatch):
        monkeypatch.delenv("COPIER_ADMISSION", raising=False)
        assert make_admission(None).name == "always"

    def test_env_var_selects_policy(self, monkeypatch):
        monkeypatch.setenv("COPIER_ADMISSION", "queue-depth")
        setup = Setup()
        assert setup.service.admission.policy.name == "queue-depth"

    def test_explicit_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("COPIER_ADMISSION", "queue-depth")
        setup = Setup(admission="deadline-feasible")
        assert setup.service.admission.policy.name == "deadline-feasible"

    def test_policy_instance_passes_through(self):
        policy = DeadlineFeasiblePolicy(headroom=2.0)
        assert make_admission(policy) is policy

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_admission("drop-randomly")

    def test_invalid_watermarks_rejected(self):
        with pytest.raises(ValueError):
            QueueDepthPolicy(shed_watermark=0.0)
        with pytest.raises(ValueError):
            QueueDepthPolicy(shed_watermark=0.5, reject_watermark=0.25)
        with pytest.raises(ValueError):
            DeadlineFeasiblePolicy(headroom=0)


# ------------------------------------------------------------------- shed


class TestShed:
    def test_infeasible_deadline_sheds_synchronously(self):
        """A task that can never make its deadline is executed in the
        submitter's context: bytes in place on return, no queueing."""
        setup = Setup(admission="deadline-feasible")
        aspace, client = setup.aspace, setup.client
        n = 64 * 1024
        src = aspace.mmap(n, populate=True, contiguous=True)
        dst = aspace.mmap(n, populate=True, contiguous=True)
        aspace.write(src, _pattern(n))
        events = []
        setup.env.trace.subscribe(events.append)
        state = {}

        def gen():
            d = yield from setup.client.amemcpy(dst, src, n,
                                                deadline=setup.env.now + 1)
            state["all_ready"] = d.all_ready
            state["data"] = aspace.read(dst, n)  # before any csync
            yield from client.csync(dst, n)  # fast path over the shed task

        setup.run_process(gen())
        assert state["data"] == _pattern(n)
        assert state["all_ready"] is True
        assert client.stats.shed_tasks == 1
        assert client.stats.shed_bytes == n
        assert client.outstanding_bytes == 0  # shed never charged async
        overload = setup.service.admission.stats
        assert overload.shed_tasks == 1 and overload.shed_bytes == n
        sheds = [e for e in events if e.kind == "task-shed"]
        assert len(sheds) == 1
        assert sheds[0].reason == "deadline-feasible"
        assert sheds[0].sync_cycles > 0
        assert _leaked_pins(aspace) == 0

    def test_shed_refused_when_dependency_in_flight(self):
        """Shedding must not reorder against unfinished work: a task
        reading an in-flight destination is admitted instead."""
        setup = Setup(admission=ShedEverything(), polling="scenario")
        aspace, client = setup.aspace, setup.client
        n = 8 * 1024
        src = aspace.mmap(n, populate=True)
        mid = aspace.mmap(n, populate=True)
        dst = aspace.mmap(n, populate=True)
        aspace.write(src, _pattern(n, salt=3))
        state = {}

        def gen():
            # Lazy tasks are never shed, so this one stays in flight...
            yield from client.amemcpy(mid, src, n, lazy=True)
            # ...and this one reads its destination: must queue behind it.
            yield from client.amemcpy(dst, mid, n)
            state["shed_after_submit"] = client.stats.shed_tasks
            setup.service.scenario_begin()
            yield from client.csync(dst, n)

        setup.run_process(gen())
        assert state["shed_after_submit"] == 0
        assert client.stats.shed_tasks == 0
        assert setup.service.admission.stats.admitted == 2
        assert aspace.read(dst, n) == _pattern(n, salt=3)  # order held

    def test_chained_sheds_preserve_data_flow(self):
        """Once the first shed lands its bytes, a dependent copy is free
        to shed too — synchronous execution keeps program order."""
        setup = Setup(admission=ShedEverything())
        aspace, client = setup.aspace, setup.client
        n = 4096
        src = aspace.mmap(n, populate=True)
        mid = aspace.mmap(n, populate=True)
        dst = aspace.mmap(n, populate=True)
        aspace.write(src, _pattern(n, salt=9))

        def gen():
            yield from client.amemcpy(mid, src, n)
            yield from client.amemcpy(dst, mid, n)

        setup.run_process(gen())
        assert client.stats.shed_tasks == 2
        assert aspace.read(dst, n) == _pattern(n, salt=9)


# ----------------------------------------------------------------- reject


class TestReject:
    def test_reject_raises_typed_error_and_counts(self):
        setup = Setup(admission=RejectEverything())
        aspace, client = setup.aspace, setup.client
        src = aspace.mmap(4096, populate=True)
        dst = aspace.mmap(4096, populate=True)
        events = []
        setup.env.trace.subscribe(events.append)

        def gen():
            with pytest.raises(AdmissionReject) as exc:
                yield from client.amemcpy(dst, src, 4096)
            assert exc.value.reason == "reject-everything"
            assert exc.value.nbytes == 4096

        setup.run_process(gen())
        assert client.stats.rejected_submits == 1
        assert client.stats.submitted == 0
        assert client.outstanding_bytes == 0
        assert client.task_index == []  # rejected work leaves no trace
        assert setup.service.admission.stats.rejected == 1
        rejects = [e for e in events if e.kind == "admission-reject"]
        assert len(rejects) == 1 and rejects[0].client_name == "app"

    def test_reject_releases_pooled_descriptor(self):
        setup = Setup(admission=RejectEverything())
        aspace, client = setup.aspace, setup.client
        src = aspace.mmap(4096, populate=True)
        dst = aspace.mmap(4096, populate=True)

        def gen():
            for _ in range(8):
                with pytest.raises(AdmissionReject):
                    yield from client.amemcpy(dst, src, 4096)

        setup.run_process(gen())
        # Every rejected submission returned its descriptor to the pool:
        # after the first miss-allocation, all acquires are pool hits.
        pool = client.desc_pool
        assert pool.hits + pool.misses == 8
        assert pool.hits >= 7

    def test_queue_depth_watermarks_shed_then_reject(self):
        """The real queue-depth policy: overlapping (unsheddable) tasks
        pile onto the sleeping service's ring until the backlog crosses
        the shed watermark (downgraded to admit — shed would reorder)
        and finally the reject watermark."""
        policy = QueueDepthPolicy(shed_watermark=0.25, reject_watermark=0.5)
        setup = Setup(admission=policy, polling="scenario")
        aspace = setup.aspace
        client = setup.service.create_client(aspace, name="tiny",
                                             queue_capacity=8)
        n = 4096
        src = aspace.mmap(n, populate=True)
        dst = aspace.mmap(n, populate=True)
        aspace.write(src, _pattern(n, salt=1))
        state = {}

        def gen():
            for i in range(4):  # depths 0..3: admit (shed is illegal)
                yield from client.amemcpy(dst, src, n)
            with pytest.raises(AdmissionReject) as exc:  # depth 4 >= 8*0.5
                yield from client.amemcpy(dst, src, n)
            state["reason"] = exc.value.reason
            setup.service.scenario_begin()
            yield from client.csync(dst, n)

        setup.run_process(gen())
        assert state["reason"] == "queue-depth"
        assert client.stats.submitted == 4
        assert client.stats.rejected_submits == 1
        assert client.stats.shed_tasks == 0
        assert aspace.read(dst, n) == _pattern(n, salt=1)
        assert _leaked_pins(aspace) == 0


# ------------------------------------------------- deadlines and cancellation


class TestDeadlinesAndCancellation:
    def test_expired_task_reaped_not_copied(self):
        """A task past its deadline at ingest retires as a deadline-miss:
        destination untouched, pins released, csync raises."""
        setup = Setup(admission="always")
        aspace, client = setup.aspace, setup.client
        n = 8 * 1024
        src = aspace.mmap(n, populate=True)
        dst = aspace.mmap(n, populate=True)
        aspace.write(src, _pattern(n))
        events = []
        setup.env.trace.subscribe(events.append)

        def gen():
            # Deadline already in the past once submission cycles accrue.
            yield from client.amemcpy(dst, src, n, deadline=setup.env.now)
            yield Timeout(300_000)
            with pytest.raises(CopyAborted):
                yield from client.csync(dst, n)

        setup.run_process(gen())
        assert aspace.read(dst, n) == b"\x00" * n
        assert client.stats.deadline_misses == 1
        assert setup.service.admission.stats.deadline_misses == 1
        assert client.outstanding_bytes == 0
        assert _leaked_pins(aspace) == 0
        finished = [e for e in events if e.kind == "task-finished"]
        assert [e.outcome for e in finished] == ["deadline-miss"]

    def test_cancel_marks_and_service_retires(self):
        setup = Setup(polling="scenario")
        aspace, client = setup.aspace, setup.client
        n = 8 * 1024
        src = aspace.mmap(n, populate=True)
        dst = aspace.mmap(n, populate=True)
        aspace.write(src, _pattern(n))
        state = {}

        def gen():
            yield from client.amemcpy(dst, src, n)
            state["count"] = yield from client.cancel(dst, n)
            state["again"] = yield from client.cancel(dst, n)  # idempotent
            setup.service.scenario_begin()
            yield Timeout(500_000)
            with pytest.raises(CopyAborted):
                yield from client.csync(dst, n)

        setup.run_process(gen())
        assert state["count"] == 1
        assert state["again"] == 0
        assert aspace.read(dst, n) == b"\x00" * n  # never copied
        assert client.stats.cancelled == 1
        assert setup.service.admission.stats.cancelled == 1
        assert client.outstanding_bytes == 0
        assert _leaked_pins(aspace) == 0

    def test_cancel_unpins_ingested_lazy_task(self):
        """Cancelling a task the worker already ingested (and pinned)
        releases its pins when the reaper retires it."""
        setup = Setup()
        aspace, client = setup.aspace, setup.client
        n = 16 * 1024
        src = aspace.mmap(n, populate=True)
        dst = aspace.mmap(n, populate=True)
        state = {}

        def gen():
            yield from client.amemcpy(dst, src, n, lazy=True)
            yield Timeout(200_000)  # ingested, pinned, deferred
            state["pins_mid"] = _leaked_pins(aspace)
            yield from client.cancel(dst, n)
            yield Timeout(200_000)  # reaper runs

        setup.run_process(gen())
        assert state["pins_mid"] > 0
        assert client.stats.cancelled == 1
        assert _leaked_pins(aspace) == 0

    def test_csync_deadline_raises_and_cancels_covering_tasks(self):
        setup = Setup(polling="scenario")  # service asleep: spin must bail
        aspace, client = setup.aspace, setup.client
        n = 8 * 1024
        src = aspace.mmap(n, populate=True)
        dst = aspace.mmap(n, populate=True)
        state = {}

        def gen():
            yield from client.amemcpy(dst, src, n)
            with pytest.raises(DeadlineMissed):
                yield from client.csync(dst, n,
                                        deadline=setup.env.now + 30_000)
            state["at_raise"] = setup.env.now
            setup.service.scenario_begin()
            yield Timeout(500_000)

        setup.run_process(gen())
        # The wait was bounded: the spin stopped within a backoff step of
        # the deadline, and the covering task was cancelled and retired.
        assert state["at_raise"] < 40_000
        assert client.stats.cancelled == 1
        assert _leaked_pins(aspace) == 0


# ------------------------------------------------------------ determinism


def _seeded_overload_run(seed):
    """The acceptance-criteria workload: mixed feasible/infeasible
    deadlines plus cancellations under deadline-feasible admission."""
    setup = Setup(n_frames=16384, admission="deadline-feasible",
                  watchdog_cycles=25_000, watchdog_starvation_cycles=200_000)
    aspace, client = setup.aspace, setup.client
    n = 32 * 1024
    src = aspace.mmap(n, populate=True, contiguous=True)
    dsts = [aspace.mmap(n, populate=True, contiguous=True)
            for _ in range(40)]
    rng = random.Random(("overload", seed).__repr__())

    def gen():
        for dst in dsts:
            roll = rng.random()
            deadline = None
            if roll < 0.5:
                # Budgets straddle the ~2K-cycle service time: some
                # infeasible (shed), some comfortable (admit).
                deadline = setup.env.now + rng.randrange(500, 50_000)
            try:
                yield from client.amemcpy(dst, src, n, deadline=deadline)
            except AdmissionReject:
                pass
            if roll > 0.8:
                yield from client.cancel(dst, n)
            yield Timeout(rng.randrange(0, 3_000))
        try:
            yield from client.csync_all()
        except CopyAborted:
            pass
        yield Timeout(2_000_000)  # drain: every task retires

    setup.run_process(gen(), limit=10_000_000_000)
    snap = setup.service.stats_snapshot()
    return (snap["overload"], snap["clients"]["app"],
            _leaked_pins(aspace), setup.env.now)


@pytest.mark.faultfree
def test_overload_counters_replay_deterministically():
    """Same seed, same shed/reject/deadline-miss counters, same clock,
    zero leaked pins — the PR's acceptance-criteria determinism run."""
    first = _seeded_overload_run(11)
    second = _seeded_overload_run(11)
    assert first == second
    overload, client_snap, pins, _now = first
    assert pins == 0
    assert overload["shed_tasks"] > 0
    assert overload["cancelled"] > 0
    assert overload["shed_tasks"] == client_snap["shed_tasks"]
    assert overload["cancelled"] == client_snap["cancelled"]
    other = _seeded_overload_run(12)
    assert other[3] != first[3]  # different seed, different trajectory
