"""Randomized whole-service stress: async execution == sync reference.

Hypothesis generates arbitrary programs of copies, writes and syncs over
a small set of buffers.  The program follows the §5.1.1 guidelines
(sync before reading a destination or overwriting a source), which per
the Appendix A theorem makes the async execution equivalent to the
synchronous one.  We execute it on the full Copier service (dependency
tracking, promotion, absorption, piggybacking all engaged) and compare
every buffer against a pure-Python reference — any divergence is a real
correctness bug in the service.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from tests.copier.conftest import Setup

N_BUFFERS = 4
BUF_BYTES = 8 * 1024

# An op is one of:
#   ("copy", src_idx, dst_idx, offset, length)   src_idx != dst_idx
#   ("write", idx, offset, length, fill_byte)
#   ("csync", idx, offset, length)
#   ("read", idx, offset, length)

_offsets = st.integers(min_value=0, max_value=BUF_BYTES - 1)


@st.composite
def _op(draw):
    kind = draw(st.sampled_from(["copy", "copy", "copy", "write", "csync",
                                 "read"]))
    offset = draw(st.integers(min_value=0, max_value=BUF_BYTES - 64))
    length = draw(st.integers(min_value=1,
                              max_value=BUF_BYTES - offset))
    if kind == "copy":
        src = draw(st.integers(min_value=0, max_value=N_BUFFERS - 1))
        dst = draw(st.integers(min_value=0, max_value=N_BUFFERS - 1)
                   .filter(lambda d: d != src))
        return ("copy", src, dst, offset, length)
    idx = draw(st.integers(min_value=0, max_value=N_BUFFERS - 1))
    if kind == "write":
        fill = draw(st.integers(min_value=1, max_value=255))
        return ("write", idx, offset, min(length, 512), fill)
    return (kind, idx, offset, length)


def _reference(ops):
    """Pure-Python sequential execution."""
    bufs = [bytearray(BUF_BYTES) for _ in range(N_BUFFERS)]
    for i, buf in enumerate(bufs):
        for j in range(0, BUF_BYTES, 256):
            buf[j] = (i * 37 + j // 256) % 251
    for op in ops:
        if op[0] == "copy":
            _k, src, dst, offset, length = op
            bufs[dst][offset:offset + length] = \
                bufs[src][offset:offset + length]
        elif op[0] == "write":
            _k, idx, offset, length, fill = op
            bufs[idx][offset:offset + length] = bytes([fill]) * length
    return [bytes(b) for b in bufs]


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(ops=st.lists(_op(), min_size=1, max_size=12))
def test_random_programs_match_reference(ops):
    setup = Setup(n_frames=4096)
    aspace, client = setup.aspace, setup.client
    bases = [aspace.mmap(BUF_BYTES, populate=True) for _ in range(N_BUFFERS)]
    for i, base in enumerate(bases):
        init = bytearray(BUF_BYTES)
        for j in range(0, BUF_BYTES, 256):
            init[j] = (i * 37 + j // 256) % 251
        aspace.write(base, bytes(init))

    def app():
        submitted = []  # (src_idx, dst_idx, offset, length)
        for op in ops:
            if op[0] == "copy":
                _k, src, dst, offset, length = op
                # Guideline: a copy whose src was an earlier copy's dst is
                # fine (dependency tracking / absorption handle it).
                yield from client.amemcpy(bases[dst] + offset,
                                          bases[src] + offset, length)
                submitted.append((src, dst, offset, length))
            elif op[0] == "write":
                _k, idx, offset, length, fill = op
                # Guidelines 1+4: sync copies whose dst or src overlaps
                # the range we are about to overwrite (via dst address).
                for s, d, o, ln in submitted:
                    if d == idx and o < offset + length and offset < o + ln:
                        yield from client.csync(bases[d] + o, ln)
                    if s == idx and o < offset + length and offset < o + ln:
                        yield from client.csync(bases[d] + o, ln)
                aspace.write(bases[idx] + offset, bytes([fill]) * length)
            elif op[0] == "csync":
                _k, idx, offset, length = op
                yield from client.csync(bases[idx] + offset, length)
            elif op[0] == "read":
                _k, idx, offset, length = op
                yield from client.csync(bases[idx] + offset, length)
                aspace.read(bases[idx] + offset, length)
        yield from client.csync_all()

    setup.run_process(app(), limit=200_000_000_000)
    expected = _reference(ops)
    for i, base in enumerate(bases):
        got = aspace.read(base, BUF_BYTES)
        assert got == expected[i], "buffer %d diverged (ops=%r)" % (i, ops)


def test_regression_transitive_lazy_war_chain():
    """Found by the property test below: head's lazy WAR prerequisite had
    its own WAR hazard on an even earlier lazy task, which the dispatcher
    skipped (prerequisites must close transitively)."""
    ops = [("copy", 1, 2, 0, 1), ("copy", 0, 1, 1, 1),
           ("copy", 0, 1, 0, 1), ("copy", 1, 0, 0, 1)]
    _run_lazy_variant(ops, seed=0)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(_op(), min_size=2, max_size=8),
       seed=st.integers(min_value=0, max_value=3))
def test_random_programs_with_lazy_tasks(ops, seed):
    _run_lazy_variant(ops, seed)


def _run_lazy_variant(ops, seed):
    """Same property with every (seed%2==0)-th copy marked lazy: lazy
    mediation + absorption must never change final contents."""
    setup = Setup(n_frames=4096)
    aspace, client = setup.aspace, setup.client
    bases = [aspace.mmap(BUF_BYTES, populate=True) for _ in range(N_BUFFERS)]
    for i, base in enumerate(bases):
        init = bytearray(BUF_BYTES)
        for j in range(0, BUF_BYTES, 256):
            init[j] = (i * 37 + j // 256) % 251
        aspace.write(base, bytes(init))

    def app():
        count = 0
        for op in ops:
            if op[0] == "copy":
                _k, src, dst, offset, length = op
                lazy = (count + seed) % 2 == 0
                count += 1
                yield from client.amemcpy(bases[dst] + offset,
                                          bases[src] + offset, length,
                                          lazy=lazy)
            elif op[0] == "write":
                # Writes interact with lazy tasks in subtle ways; keep
                # this variant write-free by syncing everything first.
                _k, idx, offset, length, fill = op
                yield from client.csync_all()
                aspace.write(bases[idx] + offset, bytes([fill]) * length)
            else:
                _k, idx, offset, length = op[:4]
                yield from client.csync(bases[idx] + offset, length)
        yield from client.csync_all()

    setup.run_process(app(), limit=200_000_000_000)
    expected = _reference(ops)
    for i, base in enumerate(bases):
        got = aspace.read(base, BUF_BYTES)
        assert got == expected[i], "buffer %d diverged (ops=%r)" % (i, ops)
