"""Copy absorption tests (§4.4): layered resolution, lazy tasks, proxies."""

import pytest

from repro.copier.absorption import absorbed_bytes, resolve_sources
from repro.copier.deps import PendingTasks, u_order_key
from repro.copier.descriptor import Descriptor
from repro.copier.task import CopyTask, Region
from repro.mem import PAGE_SIZE, AddressSpace, PhysicalMemory
from repro.sim import Timeout
from tests.copier.conftest import Setup


def _mk_task(aspace, src, dst, n, key, seg=1024):
    t = CopyTask(None, "u", Region(aspace, src, n), Region(aspace, dst, n),
                 Descriptor(n, seg))
    t.order_key = key
    return t


@pytest.fixture
def aspace():
    return AddressSpace(PhysicalMemory(256))


class TestResolver:
    def test_no_producer_returns_direct_span(self, aspace):
        pending = PendingTasks()
        t = _mk_task(aspace, 0x1000_0000, 0x1100_0000, 4096, u_order_key(0))
        pending.add(t)
        spans = resolve_sources(pending, t, t.src)
        assert len(spans) == 1
        assert spans[0].va == 0x1000_0000
        assert not spans[0].absorbed

    def test_unmarked_producer_fully_absorbed(self, aspace):
        """B untouched: all of B→C reads straight from A."""
        pending = PendingTasks()
        a, b = 0x1000_0000, 0x1100_0000
        a_to_b = _mk_task(aspace, a, b, 4096, u_order_key(0))
        b_to_c = _mk_task(aspace, b, 0x1200_0000, 4096, u_order_key(1))
        pending.add(a_to_b)
        pending.add(b_to_c)
        spans = resolve_sources(pending, b_to_c, b_to_c.src)
        assert absorbed_bytes(spans) == 4096
        assert spans[0].va == a

    def test_layered_split_marked_vs_unmarked(self, aspace):
        """Fig. 8-b: marked segments come from B, unmarked from A."""
        pending = PendingTasks()
        a, b = 0x1000_0000, 0x1100_0000
        a_to_b = _mk_task(aspace, a, b, 4096, u_order_key(0))
        b_to_c = _mk_task(aspace, b, 0x1200_0000, 4096, u_order_key(1))
        pending.add(a_to_b)
        pending.add(b_to_c)
        # First 3 of 4 segments of A→B already copied (client may have
        # modified them): those bytes must come from B.
        for seg in range(3):
            a_to_b.descriptor.mark(seg)
        spans = resolve_sources(pending, b_to_c, b_to_c.src)
        assert absorbed_bytes(spans) == 1024  # only the last segment
        assert spans[0].va == b and spans[0].nbytes == 3072
        assert spans[1].va == a + 3072 and spans[1].absorbed

    def test_chain_absorption_recurses(self, aspace):
        """A→B→C→D with nothing marked resolves D's source to A."""
        pending = PendingTasks()
        a, b, c, d = (0x1000_0000, 0x1100_0000, 0x1200_0000, 0x1300_0000)
        t1 = _mk_task(aspace, a, b, 2048, u_order_key(0))
        t2 = _mk_task(aspace, b, c, 2048, u_order_key(1))
        t3 = _mk_task(aspace, c, d, 2048, u_order_key(2))
        for t in (t1, t2, t3):
            pending.add(t)
        spans = resolve_sources(pending, t3, t3.src)
        assert len(spans) == 1
        assert spans[0].va == a
        assert spans[0].absorbed

    def test_partial_overlap_with_producer(self, aspace):
        """Reader range straddling the producer's dst boundary."""
        pending = PendingTasks()
        a, b = 0x1000_0000, 0x1100_0000
        a_to_b = _mk_task(aspace, a, b, 2048, u_order_key(0))
        # Reader reads 1 KB before B plus B's first 1 KB.
        reader = _mk_task(aspace, b - 1024, 0x1200_0000, 2048, u_order_key(1))
        pending.add(a_to_b)
        pending.add(reader)
        spans = resolve_sources(pending, reader, reader.src)
        assert spans[0].va == b - 1024 and not spans[0].absorbed
        assert spans[1].va == a and spans[1].absorbed

    def test_disabled_resolver_passthrough(self, aspace):
        pending = PendingTasks()
        a, b = 0x1000_0000, 0x1100_0000
        a_to_b = _mk_task(aspace, a, b, 2048, u_order_key(0))
        b_to_c = _mk_task(aspace, b, 0x1200_0000, 2048, u_order_key(1))
        pending.add(a_to_b)
        pending.add(b_to_c)
        spans = resolve_sources(pending, b_to_c, b_to_c.src, enabled=False)
        assert absorbed_bytes(spans) == 0

    def test_finished_producer_not_absorbed(self, aspace):
        from repro.copier import task as task_mod

        pending = PendingTasks()
        a, b = 0x1000_0000, 0x1100_0000
        a_to_b = _mk_task(aspace, a, b, 2048, u_order_key(0))
        a_to_b.state = task_mod.DONE
        b_to_c = _mk_task(aspace, b, 0x1200_0000, 2048, u_order_key(1))
        pending.add(a_to_b)
        pending.add(b_to_c)
        spans = resolve_sources(pending, b_to_c, b_to_c.src)
        assert absorbed_bytes(spans) == 0


# ---------------------------------------------------------------- end to end


def test_proxy_pattern_lazy_absorb_abort():
    """The §4.4 proxy scenario: read K1→U lazy, send U→K2, abort K1→U.

    The forwarded message must land in K2 with the correct bytes while the
    intermediate user buffer is never materialized.
    """
    setup = Setup()
    aspace, client = setup.aspace, setup.client
    kernel_as = AddressSpace(setup.phys, name="kernel")
    n = 32 * 1024
    k1 = kernel_as.mmap(n, populate=True)
    k2 = kernel_as.mmap(n, populate=True)
    u = aspace.mmap(n, populate=True)
    message = bytes([i % 199 for i in range(n)])
    kernel_as.write(k1, message)

    from repro.copier.task import Region

    def proxy():
        # recv: kernel submits K1→U as lazy (proxy only reads the header).
        client.on_trap()
        yield from client.k_amemcpy(Region(kernel_as, k1, n),
                                    Region(aspace, u, n), lazy=True)
        client.on_return()
        # Proxy reads the header only.
        yield from client.csync(u, 128)
        header = aspace.read(u, 128)
        # send: app submits U→K2.
        client.on_trap()
        yield from client.k_amemcpy(Region(aspace, u, n),
                                    Region(kernel_as, k2, n))
        client.on_return()
        yield from client.csync_region(Region(kernel_as, k2, n))
        # Discard the rest of the intermediate copy.
        yield from client.abort(u, n)
        yield Timeout(50_000)
        return header, kernel_as.read(k2, n)

    header, forwarded = setup.run_process(proxy())
    assert header == message[:128]
    assert forwarded == message
    # The bulk of the message was absorbed (short-circuited K1→K2).
    assert client.stats.bytes_absorbed >= n - 1024


def test_absorption_correct_after_client_modifies_intermediate():
    """Fig. 8-a's hazard: client modifies part of B between the two copies."""
    setup = Setup()
    aspace, client = setup.aspace, setup.client
    n = 4 * 1024
    a = aspace.mmap(n, populate=True)
    b = aspace.mmap(n, populate=True)
    c = aspace.mmap(n, populate=True)
    aspace.write(a, b"A" * n)

    def app():
        yield from client.amemcpy(b, a, n)
        # Client syncs then modifies the first KB of B (guideline-compliant).
        yield from client.csync(b, 1024)
        aspace.write(b, b"M" * 1024)
        yield from client.amemcpy(c, b, n)
        yield from client.csync(c, n)
        return aspace.read(c, n)

    result = setup.run_process(app())
    assert result == b"M" * 1024 + b"A" * (n - 1024)


def test_absorption_accounting_visible_in_stats():
    setup = Setup()
    aspace, client = setup.aspace, setup.client
    n = 16 * 1024
    a = aspace.mmap(n, populate=True)
    b = aspace.mmap(n, populate=True)
    c = aspace.mmap(n, populate=True)
    aspace.write(a, b"\x77" * n)

    def app():
        yield from client.amemcpy(b, a, n, lazy=True)
        yield from client.amemcpy(c, b, n)
        yield from client.csync(c, n)
        return aspace.read(c, n)

    assert setup.run_process(app()) == b"\x77" * n
    assert client.stats.bytes_absorbed > 0
    assert setup.service.bytes_absorbed == client.stats.bytes_absorbed


def test_ablation_no_absorption_still_correct():
    """With absorption disabled the chain still produces correct data
    (the lazy producer is force-executed instead)."""
    setup = Setup(use_absorption=False)
    aspace, client = setup.aspace, setup.client
    n = 8 * 1024
    a = aspace.mmap(n, populate=True)
    b = aspace.mmap(n, populate=True)
    c = aspace.mmap(n, populate=True)
    aspace.write(a, b"\x33" * n)

    def app():
        yield from client.amemcpy(b, a, n, lazy=True)
        yield from client.amemcpy(c, b, n)
        yield from client.csync(c, n)
        return aspace.read(c, n)

    assert setup.run_process(app()) == b"\x33" * n
    assert client.stats.bytes_absorbed == 0
