"""Hypothesis property tests on dispatcher plans and absorption spans."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.copier.absorption import resolve_sources
from repro.copier.deps import PendingTasks, u_order_key
from repro.copier.descriptor import Descriptor
from repro.copier.dispatch import Dispatcher
from repro.copier.task import CopyTask, Region
from repro.hw import MachineParams
from repro.mem import AddressSpace, PhysicalMemory


def _mk_pending(aspace, specs, seg=1024):
    from repro.copier import task as task_mod

    pending = PendingTasks()
    tasks = []
    for i, (src, dst, n, lazy) in enumerate(specs):
        t = CopyTask(None, "u", Region(aspace, src, n),
                     Region(aspace, dst, n), Descriptor(n, seg),
                     task_type=task_mod.TYPE_LAZY if lazy
                     else task_mod.TYPE_NORMAL)
        t.order_key = u_order_key(i)
        pending.add(t)
        tasks.append(t)
    return pending, tasks


@st.composite
def _task_specs(draw):
    """Random non-overlapping-buffer task sets over an 8-buffer arena."""
    n_tasks = draw(st.integers(min_value=1, max_value=5))
    specs = []
    for _ in range(n_tasks):
        src_buf = draw(st.integers(min_value=0, max_value=7))
        dst_buf = draw(st.integers(min_value=0, max_value=7)
                       .filter(lambda b: b != src_buf))
        length = draw(st.sampled_from([512, 1024, 4096, 16384, 65536]))
        lazy = draw(st.booleans())
        specs.append((src_buf, dst_buf, length, lazy))
    return specs


class TestPlanInvariants:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(specs=_task_specs(),
           budget=st.sampled_from([8 * 1024, 64 * 1024, 1 << 20]))
    def test_plan_partitions_segments(self, specs, budget):
        """Every plan: (1) no segment appears twice across AVX jobs and
        DMA runs; (2) total planned bytes ≤ budget + one segment of slack
        per task; (3) all jobs reference tasks in the plan."""
        phys = PhysicalMemory(1024)
        aspace = AddressSpace(phys)
        buffers = [aspace.mmap(65536, populate=True) for _ in range(8)]
        concrete = [(buffers[s], buffers[d], n, lazy)
                    for s, d, n, lazy in specs]
        pending, tasks = _mk_pending(aspace, concrete)
        plan = Dispatcher(MachineParams()).build_round(pending, budget)
        if plan is None:
            assert all(t.lazy for t in tasks)
            return
        seen = set()
        for job in plan.avx_jobs:
            key = (job.task.task_id, job.seg_index)
            assert key not in seen
            seen.add(key)
        for run in plan.dma_runs:
            for job in run.jobs:
                key = (job.task.task_id, job.seg_index)
                assert key not in seen
                seen.add(key)
        assert plan.total_bytes <= budget + 1024 * len(plan.tasks)
        plan_ids = {t.task_id for t in plan.tasks}
        for job in plan.avx_jobs:
            assert job.task.task_id in plan_ids

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(specs=_task_specs())
    def test_plan_respects_order_for_dependent_tasks(self, specs):
        """A plan never fuses a task that conflicts with an earlier
        unfinished task (the e-piggyback safety rule)."""
        phys = PhysicalMemory(1024)
        aspace = AddressSpace(phys)
        buffers = [aspace.mmap(65536, populate=True) for _ in range(8)]
        concrete = [(buffers[s], buffers[d], n, lazy)
                    for s, d, n, lazy in specs]
        pending, tasks = _mk_pending(aspace, concrete)
        plan = Dispatcher(MachineParams()).build_round(pending, 1 << 20)
        if plan is None:
            return
        for task in plan.tasks:
            if task.lazy:
                continue  # lazy prerequisites are ordered first by design
            for dep in pending.dependencies_of(task):
                if dep.is_finished:
                    continue
                # RAW on a pending producer is fine: absorption reads
                # through it.  WAR/WAW hazards require the predecessor to
                # run in this plan, before the dependent task.
                war_waw = (task.dst.overlaps(dep.src)
                           or task.dst.overlaps(dep.dst))
                if not war_waw:
                    continue
                assert dep in plan.tasks
                assert plan.tasks.index(dep) < plan.tasks.index(task)


class TestAbsorptionSpanLaws:
    @settings(max_examples=60, deadline=None)
    @given(
        chain_len=st.integers(min_value=1, max_value=4),
        length=st.sampled_from([1024, 4096, 10240]),
        marked_prefix=st.integers(min_value=0, max_value=10),
    )
    def test_spans_exactly_cover_the_request(self, chain_len, length,
                                             marked_prefix):
        """resolve_sources always returns spans totalling the requested
        byte count, regardless of chain depth or marking state."""
        phys = PhysicalMemory(512)
        aspace = AddressSpace(phys)
        bufs = [aspace.mmap(length, populate=True)
                for _ in range(chain_len + 1)]
        specs = [(bufs[i], bufs[i + 1], length, False)
                 for i in range(chain_len)]
        pending, tasks = _mk_pending(aspace, specs)
        # Mark a prefix of the first producer's segments.
        first = tasks[0]
        for seg in range(min(marked_prefix, first.descriptor.n_segments)):
            first.descriptor.mark(seg)
        reader = tasks[-1]
        spans = resolve_sources(pending, reader, reader.src)
        assert sum(s.nbytes for s in spans) == length
        # Spans are ordered and non-overlapping in the reader's frame:
        # their concatenated lengths march through the request linearly.
        assert all(s.nbytes > 0 for s in spans)

    @settings(max_examples=60, deadline=None)
    @given(offset=st.integers(min_value=0, max_value=4095),
           length=st.integers(min_value=1, max_value=4096))
    def test_disabled_resolver_is_identity(self, offset, length):
        phys = PhysicalMemory(256)
        aspace = AddressSpace(phys)
        a = aspace.mmap(8192, populate=True)
        b = aspace.mmap(8192, populate=True)
        c = aspace.mmap(8192, populate=True)
        pending, tasks = _mk_pending(
            aspace, [(a, b, 8192, False), (b, c, 8192, False)])
        reader = tasks[1]
        region = Region(aspace, b + offset, length)
        spans = resolve_sources(pending, reader, region, enabled=False)
        assert len(spans) == 1
        assert spans[0].va == b + offset
        assert spans[0].nbytes == length
        assert not spans[0].absorbed
