"""Run cache and ATCache stay coherent through one invalidation spine.

Both caches hang off ``AddressSpace._invalidate``: the per-aspace run
cache pops its vpn entry, then the registered hooks fire (ATCache).  A
CoW break mid-workload must therefore refresh *both* — a stale frame in
either would surface as corrupt destination bytes after recycling a
buffer through fork/write.  Runs with the mixed fault plan armed to make
sure injected engine faults do not reorder the invalidation spine.
"""

from repro.mem import PAGE_SIZE
from repro.sim import Compute
from tests.copier.conftest import Setup


def _copy(setup, client, dst, src, n):
    def app():
        yield from client.amemcpy(dst, src, n)
        yield Compute(2_000)
        yield from client.csync(dst, n)
        return True

    assert setup.run_process(app())


def test_cow_break_refreshes_run_cache_and_atcache(monkeypatch):
    monkeypatch.setenv("COPIER_FAULT_PLAN", "mixed")
    monkeypatch.setenv("COPIER_FAULT_SEED", "3")
    setup = Setup(n_frames=4096)
    aspace, client = setup.aspace, setup.client
    atcache = setup.service.atcache
    n = 32 * 1024
    src = aspace.mmap(n, populate=True, contiguous=True)
    dst = aspace.mmap(n, populate=True, contiguous=True)

    aspace.write(src, b"\x11" * n)
    _copy(setup, client, dst, src, n)
    assert aspace.read(dst, n) == b"\x11" * n
    assert atcache.hits + atcache.misses > 0  # DMA runs were translated

    # Fork downgrades every page to CoW — that downgrade itself fires the
    # shared invalidation spine (ATCache entries for the copied buffers
    # are dropped right there, before any stale DMA translation can
    # happen); the writes below then break CoW page by page.
    invalidations_before = atcache.invalidations
    child = aspace.fork()
    assert atcache.invalidations > invalidations_before
    aspace.write(src, b"\x22" * n)

    # Every surviving run-cache entry must agree with the page table —
    # a stale frame here is exactly the bug the shared spine prevents.
    for vpn, (frame, _writable) in aspace._run_cache.items():
        assert aspace.page_table[vpn].frame == frame

    _copy(setup, client, dst, src, n)
    assert aspace.read(dst, n) == b"\x22" * n
    assert child.read(src, n) == b"\x11" * n  # fork snapshot intact


def test_recycled_buffer_reuses_translations(monkeypatch):
    monkeypatch.delenv("COPIER_FAULT_PLAN", raising=False)
    setup = Setup(n_frames=4096)
    aspace, client = setup.aspace, setup.client
    atcache = setup.service.atcache
    n = 32 * 1024
    src = aspace.mmap(n, populate=True, contiguous=True)
    dst = aspace.mmap(n, populate=True, contiguous=True)
    aspace.write(src, b"\x33" * n)

    _copy(setup, client, dst, src, n)
    hits_before, misses_before = atcache.hits, atcache.misses
    _copy(setup, client, dst, src, n)
    # Same buffers, unchanged mappings: the second pass re-hits both the
    # ATCache (address recurrence, Fig. 9) and the run cache.
    assert atcache.misses == misses_before
    assert atcache.hits > hits_before
    assert aspace.read(dst, n) == b"\x33" * n
