"""End-to-end tests of the Copier service: submit, copy, csync, handlers."""

import pytest

from repro.copier.errors import CopyAborted
from repro.mem import PAGE_SIZE
from repro.sim import Compute, Timeout
from tests.copier.conftest import Setup


def test_amemcpy_csync_moves_data(setup):
    aspace, client = setup.aspace, setup.client
    src = aspace.mmap(PAGE_SIZE, populate=True)
    dst = aspace.mmap(PAGE_SIZE, populate=True)
    payload = b"copier!" * 100
    aspace.write(src, payload)

    def app():
        yield from client.amemcpy(dst, src, len(payload))
        yield from client.csync(dst, len(payload))
        return aspace.read(dst, len(payload))

    assert setup.run_process(app()) == payload


def test_async_copy_overlaps_with_compute(setup):
    """The Copy-Use window hides copy latency (Insight-2)."""
    aspace, client, params = setup.aspace, setup.client, setup.params
    n = 64 * 1024
    src = aspace.mmap(n, populate=True)
    dst = aspace.mmap(n, populate=True)
    aspace.write(src, b"\x5a" * n)
    work = params.cpu_copy_cycles(n, engine="avx") * 4  # ample window

    def app():
        yield from client.amemcpy(dst, src, n)
        yield Compute(work)  # app compute overlapping the copy
        before_sync = setup.env.now
        yield from client.csync(dst, n)
        return setup.env.now - before_sync

    sync_wait = setup.run_process(app())
    # The copy finished inside the window: csync is (nearly) free.
    assert sync_wait < params.cpu_copy_cycles(n, engine="avx") / 4
    assert aspace.read(dst, n) == b"\x5a" * n


def test_segment_pipeline_prefix_ready_early(setup):
    """Fine-grained updates let apps consume a prefix before the tail lands."""
    aspace, client, params = setup.aspace, setup.client, setup.params
    n = 128 * 1024
    src = aspace.mmap(n, populate=True)
    dst = aspace.mmap(n, populate=True)
    aspace.write(src, bytes([i % 251 for i in range(n)]))

    def app():
        yield from client.amemcpy(dst, src, n)
        t0 = setup.env.now
        yield from client.csync(dst, 1024)  # just the first segment
        prefix_wait = setup.env.now - t0
        first_kb = aspace.read(dst, 1024)
        yield from client.csync(dst, n)     # now the whole thing
        full_wait = setup.env.now - t0
        return prefix_wait, full_wait, first_kb

    prefix_wait, full_wait, first_kb = setup.run_process(app())
    assert first_kb == bytes([i % 251 for i in range(1024)])
    assert prefix_wait < full_wait  # prefix available strictly earlier


def test_csync_returns_fast_when_already_done(setup):
    aspace, client, params = setup.aspace, setup.client, setup.params
    src = aspace.mmap(PAGE_SIZE, populate=True)
    dst = aspace.mmap(PAGE_SIZE, populate=True)

    def app():
        yield from client.amemcpy(dst, src, 2048)
        yield Timeout(1_000_000)  # far beyond completion
        t0 = setup.env.now
        yield from client.csync(dst, 2048)
        return setup.env.now - t0

    wait = setup.run_process(app())
    assert wait == params.csync_check_cycles


def test_csync_all_waits_for_everything(setup):
    aspace, client = setup.aspace, setup.client
    bufs = [aspace.mmap(PAGE_SIZE, populate=True) for _ in range(6)]
    for i in range(3):
        aspace.write(bufs[i], bytes([i + 1]) * 512)

    def app():
        for i in range(3):
            yield from client.amemcpy(bufs[i + 3], bufs[i], 512)
        yield from client.csync_all()
        return [aspace.read(bufs[i + 3], 512) for i in range(3)]

    results = setup.run_process(app())
    assert results == [bytes([1]) * 512, bytes([2]) * 512, bytes([3]) * 512]


def test_ufunc_handler_delegated_to_handler_queue(setup):
    """UFUNCs run in the client via post_handlers, not in Copier (§4.1)."""
    aspace, client = setup.aspace, setup.client
    src = aspace.mmap(PAGE_SIZE, populate=True)
    dst = aspace.mmap(PAGE_SIZE, populate=True)
    freed = []

    def app():
        yield from client.amemcpy(
            dst, src, 1024, handler=("ufunc", freed.append, (src,)))
        yield from client.csync(dst, 1024)
        ran_before = list(freed)
        yield from client.post_handlers()
        return ran_before, list(freed)

    ran_before, ran_after = setup.run_process(app())
    assert ran_before == []       # not run inside Copier
    assert ran_after == [src]     # run by the client's post_handlers


def test_kfunc_handler_runs_in_copier(setup):
    aspace, client = setup.aspace, setup.client
    src = aspace.mmap(PAGE_SIZE, populate=True)
    dst = aspace.mmap(PAGE_SIZE, populate=True)
    reclaimed = []

    def app():
        yield from client.amemcpy(
            dst, src, 1024, handler=("kfunc", reclaimed.append, ("skb",)))
        yield from client.csync(dst, 1024)
        return list(reclaimed)

    assert setup.run_process(app()) == ["skb"]


def test_proactive_fault_handling_maps_unbacked_pages(setup):
    """Copier resolves demand-paging faults in its own context (§4.5.4)."""
    aspace, client = setup.aspace, setup.client
    src = aspace.mmap(PAGE_SIZE * 2)   # not populated
    dst = aspace.mmap(PAGE_SIZE * 2)   # not populated
    aspace.write(src, b"fault me" * 8)
    demand_before = aspace.fault_counts["demand_zero"]

    def app():
        yield from client.amemcpy(dst, src, 64)
        yield from client.csync(dst, 64)
        return aspace.read(dst, 64)

    assert setup.run_process(app()) == b"fault me" * 8
    # dst page got demand-faulted by the service, not the app.
    assert aspace.fault_counts["demand_zero"] > demand_before


def test_illegal_address_drops_task_and_signals(setup):
    """Security check failure → task dropped, process signaled (§4.5.4)."""
    from repro.copier.errors import CopierSecurityError

    aspace, client = setup.aspace, setup.client
    src = aspace.mmap(PAGE_SIZE, populate=True)
    caught = []

    def app():
        try:
            yield from client.amemcpy(0xBAD00000, src, 512)
            yield from client.csync(0xBAD00000, 512)
        except (CopierSecurityError, CopyAborted) as exc:
            caught.append(type(exc).__name__)

    proc = setup.env.spawn(app(), name="app", affinity=0)
    client.process = proc
    setup.env.run_until(proc.terminated, limit=50_000_000)
    assert caught  # either the signal or the aborted-descriptor csync fired
    assert client.stats.dropped == 1


def test_abort_discards_queued_copy(setup):
    aspace, client = setup.aspace, setup.client
    n = 32 * 1024
    src = aspace.mmap(n, populate=True)
    dst = aspace.mmap(n, populate=True)
    aspace.write(src, b"\x11" * n)

    def app():
        # Submit lazily so the task stays queued rather than executing.
        yield from client.amemcpy(dst, src, n, lazy=True)
        yield from client.abort(dst, n)
        # Give the service time to process the abort.
        yield Timeout(100_000)
        return None

    setup.run_process(app())
    assert client.stats.aborted == 1
    # The data never moved.
    assert aspace.read(dst, 16) == b"\x00" * 16


def test_csync_after_abort_raises(setup):
    aspace, client = setup.aspace, setup.client
    n = 16 * 1024
    src = aspace.mmap(n, populate=True)
    dst = aspace.mmap(n, populate=True)
    caught = []

    def app():
        yield from client.amemcpy(dst, src, n, lazy=True)
        yield from client.abort(dst, n)
        yield Timeout(100_000)
        try:
            yield from client.csync(dst, n)
        except CopyAborted:
            caught.append(True)

    setup.run_process(app())
    assert caught == [True]


def test_queue_submit_charges_cycles(setup):
    aspace, client, params = setup.aspace, setup.client, setup.params
    src = aspace.mmap(PAGE_SIZE, populate=True)
    dst = aspace.mmap(PAGE_SIZE, populate=True)

    def app():
        t0 = setup.env.now
        yield from client.amemcpy(dst, src, 1024)
        return setup.env.now - t0

    cost = setup.run_process(app())
    assert cost == params.queue_submit_cycles + params.descriptor_alloc_cycles


def test_lazy_task_executes_after_deadline(setup):
    aspace, client = setup.aspace, setup.client
    src = aspace.mmap(PAGE_SIZE, populate=True)
    dst = aspace.mmap(PAGE_SIZE, populate=True)
    aspace.write(src, b"deferred")

    def app():
        yield from client.amemcpy(dst, src, 8, lazy=True)
        yield Timeout(setup.service.lazy_period_cycles * 2)
        return aspace.read(dst, 8)

    assert setup.run_process(app()) == b"deferred"


def test_descriptor_pool_reuse(setup):
    aspace, client = setup.aspace, setup.client
    src = aspace.mmap(PAGE_SIZE, populate=True)
    dst = aspace.mmap(PAGE_SIZE, populate=True)

    def app():
        for _ in range(5):
            desc = yield from client.amemcpy(dst, src, 1024)
            yield from client.csync(dst, 1024)
            desc.release()

    setup.run_process(app())
    assert client.desc_pool.hits >= 4  # recycled after the first round trip
