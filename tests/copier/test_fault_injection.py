"""Fault-injection stress: the copy path must degrade, never corrupt.

Seeded random workloads run with every fault plan armed; afterwards the
final memory must equal the synchronous-baseline oracle
(:func:`repro.baselines.synccopy.user_memcpy` on a fault-free system)
byte for byte — no torn copies — and every page pin must have been
released.  The mixed plan additionally must show the acceptance-criteria
signals: at least one engine fallback and at least one successful retry
in ``stats_snapshot()``.

Also unit-tests the :mod:`repro.faultinject` primitives themselves:
plan parsing, per-kind seeded determinism, and the ``max_consecutive``
cap that keeps every retry loop in the copy path live.
"""

import random

import pytest

from repro.baselines.synccopy import user_memcpy
from repro.faultinject import (FAULT_KINDS, PLAN_NAMES, FaultInjector,
                               FaultPlan, FaultSpec)
from repro.kernel.system import System
from repro.sim import Timeout
from tests.copier.conftest import Setup

N_BUFFERS = 3
BUF_BYTES = 32 * 1024
RUN_LIMIT = 500_000_000_000


def _initial(i):
    buf = bytearray(BUF_BYTES)
    for j in range(0, BUF_BYTES, 128):
        buf[j] = (i * 43 + j // 128) % 251
    return bytes(buf)


def _make_ops(seed, n_ops):
    rng = random.Random(("faultstress", seed).__repr__())
    ops = []
    for _ in range(n_ops):
        offset = rng.randrange(0, BUF_BYTES - 4096, 64)
        length = rng.randrange(2048, min(12 * 1024, BUF_BYTES - offset))
        if rng.random() < 0.75:
            src = rng.randrange(N_BUFFERS)
            dst = rng.choice([i for i in range(N_BUFFERS) if i != src])
            ops.append(("copy", src, dst, offset, length))
        else:
            ops.append(("csync", rng.randrange(N_BUFFERS), offset, length))
    return ops


def _oracle(ops):
    """The same ops on a fault-free baseline system via sync user memcpy."""
    system = System(n_cores=2, copier=False, phys_frames=8192)
    proc = system.create_process("oracle")
    bases = [proc.mmap(BUF_BYTES, populate=True, contiguous=True)
             for _ in range(N_BUFFERS)]
    for i, base in enumerate(bases):
        proc.write(base, _initial(i))

    def app():
        for op in ops:
            if op[0] == "copy":
                _k, src, dst, offset, length = op
                yield from user_memcpy(system, proc, bases[dst] + offset,
                                       bases[src] + offset, length)

    sim = proc.spawn(app(), affinity=0)
    system.env.run_until(sim.terminated, limit=RUN_LIMIT)
    return [proc.read(base, BUF_BYTES) for base in bases]


#: Kinds that corrupt silently — the engines report success, so plain
#: recovery machinery cannot preserve correctness; only the opt-in
#: end-to-end CRC (or the typed poison abort) defends against them.
SILENT_KINDS = ("dma_bitflip", "engine_torn_write", "frame_poison")


def _run_faulted(plan, ops, **setup_kwargs):
    """Run ``ops`` on a Copier service with ``plan`` armed; returns
    ``(setup, final_buffers)``."""
    setup = Setup(n_frames=8192, fault_plan=plan, **setup_kwargs)
    aspace, client = setup.aspace, setup.client
    bases = [aspace.mmap(BUF_BYTES, populate=True, contiguous=True)
             for _ in range(N_BUFFERS)]
    for i, base in enumerate(bases):
        aspace.write(base, _initial(i))

    def app():
        for op in ops:
            if op[0] == "copy":
                _k, src, dst, offset, length = op
                # Bracket each submission like a syscall would, so the
                # trap/return barrier path (delayed_trap_return's site)
                # is exercised too.
                client.on_trap()
                yield from client.amemcpy(bases[dst] + offset,
                                          bases[src] + offset, length)
                client.on_return()
            else:
                _k, idx, offset, length = op
                yield from client.csync(bases[idx] + offset, length)
        yield from client.csync_all()

    setup.run_process(app(), limit=RUN_LIMIT)
    return setup, [aspace.read(base, BUF_BYTES) for base in bases]


def _leaked_pins(aspace):
    return sum(pte.pin_count for pte in aspace.page_table.values())


# ----------------------------------------------------------------- stress


class TestFaultedWorkloads:
    def test_mixed_plan_degrades_gracefully(self):
        """The acceptance run: mixed plan, oracle-equal memory, no leaked
        pins, and the recovery machinery demonstrably engaged."""
        ops = _make_ops(seed=1, n_ops=60)
        setup, bufs = _run_faulted(FaultPlan.mixed(1), ops)
        assert bufs == _oracle(ops)
        assert _leaked_pins(setup.aspace) == 0
        snap = setup.service.stats_snapshot()
        rec = snap["faults"]["recovery"]
        assert rec["engine_fallbacks"] >= 1
        assert rec["retries_ok"] >= 1
        assert sum(snap["faults"]["injected"].values()) >= 1
        assert snap["stages"]["engine_fallbacks"] == rec["engine_fallbacks"]

    @pytest.mark.parametrize("kind",
                             [k for k in FAULT_KINDS
                              if k not in SILENT_KINDS])
    def test_each_fault_kind_preserves_correctness(self, kind):
        ops = _make_ops(seed=3, n_ops=30)
        plan = FaultPlan.single(kind, seed=2, rate=0.3)
        setup, bufs = _run_faulted(plan, ops)
        assert bufs == _oracle(ops), "torn copy under %s" % kind
        assert _leaked_pins(setup.aspace) == 0, "leaked pins under %s" % kind
        assert setup.service.stats_snapshot()["faults"]["plan"] == kind

    @pytest.mark.parametrize("kind", ["dma_bitflip", "engine_torn_write"])
    def test_silent_corruption_caught_by_e2e_crc(self, kind):
        """The silent kinds lie about success; with the end-to-end CRC
        armed the mismatch is caught at retirement and repaired, so the
        final memory still equals the fault-free oracle."""
        ops = _make_ops(seed=3, n_ops=30)
        plan = FaultPlan.single(kind, seed=2, rate=0.3)
        setup, bufs = _run_faulted(plan, ops, e2e_crc=True)
        assert bufs == _oracle(ops), "corruption survived e2e crc (%s)" % kind
        assert _leaked_pins(setup.aspace) == 0, "leaked pins under %s" % kind
        integ = setup.service.stats_snapshot()["integrity"]
        assert integ["crc_checks"] >= 1
        assert integ["crc_mismatches"] >= 1, "fault never fired (%s)" % kind
        assert integ["reexec_tasks"] >= 1

    def test_persistent_submit_failure_quarantines_dma(self):
        ops = _make_ops(seed=5, n_ops=40)
        setup, bufs = _run_faulted(FaultPlan.dma_submit_persistent(0), ops)
        assert bufs == _oracle(ops)
        assert _leaked_pins(setup.aspace) == 0
        snap = setup.service.stats_snapshot()
        rec = snap["faults"]["recovery"]
        assert rec["dma_submit_exhausted"] >= 2
        assert rec["engine_fallbacks"] >= 1
        assert snap["faults"]["dma_quarantined"]
        assert snap["dma"]["submit_failures"] >= rec["dma_submit_failures"]

    def test_abort_racing_dma_abort_releases_pins_once(self):
        """A client ``abort()`` racing in-flight tasks whose DMA engine
        keeps aborting must release every pin exactly once: the run ends
        with no leaked pins and no pin count ever driven negative by a
        double unpin on the abort/fallback seam."""
        plan = FaultPlan.single("dma_abort", seed=4, rate=0.8)
        setup = Setup(n_frames=8192, fault_plan=plan)
        aspace, client = setup.aspace, setup.client
        src = aspace.mmap(BUF_BYTES, populate=True, contiguous=True)
        dst = aspace.mmap(BUF_BYTES, populate=True, contiguous=True)
        aspace.write(src, _initial(0))

        def app():
            for _ in range(8):
                yield from client.amemcpy(dst, src, BUF_BYTES)
                # Let the worker ingest, pin, and launch (and, per the
                # plan, abort) DMA before yanking the task out from under
                # it; vary nothing else so the race window is the plan's.
                yield Timeout(300)
                yield from client.abort(dst, BUF_BYTES)
                yield Timeout(50_000)
            yield from client.csync_all()

        setup.run_process(app(), limit=RUN_LIMIT)
        pin_counts = [pte.pin_count for pte in aspace.page_table.values()]
        assert min(pin_counts, default=0) >= 0
        assert _leaked_pins(setup.aspace) == 0
        snap = setup.service.stats_snapshot()
        assert snap["clients"]["app"]["aborted"] >= 1
        assert snap["faults"]["injected"].get("dma_abort", 0) >= 1

    @pytest.mark.faultfree  # must stay unarmed even under the CI soak env
    def test_unarmed_run_matches_oracle_and_records_nothing(self):
        ops = _make_ops(seed=7, n_ops=30)
        setup, bufs = _run_faulted(None, ops)
        assert bufs == _oracle(ops)
        assert _leaked_pins(setup.aspace) == 0
        faults = setup.service.stats_snapshot()["faults"]
        assert faults["armed"] is False and faults["plan"] is None
        assert not faults["injected"]
        assert all(v == 0 for v in faults["recovery"].values())

    def test_armed_runs_are_deterministic(self):
        """Same plan, same seed, same workload → identical final cycle
        count and identical fault counters (the determinism guarantee)."""
        ops = _make_ops(seed=9, n_ops=30)
        setup_a, bufs_a = _run_faulted(FaultPlan.mixed(4), ops)
        setup_b, bufs_b = _run_faulted(FaultPlan.mixed(4), ops)
        assert bufs_a == bufs_b
        assert setup_a.env.now == setup_b.env.now
        snap_a = setup_a.service.stats_snapshot()["faults"]
        snap_b = setup_b.service.stats_snapshot()["faults"]
        assert snap_a["injected"] == snap_b["injected"]
        assert snap_a["recovery"] == snap_b["recovery"]


# ------------------------------------------------------------- primitives


class TestFaultPlan:
    def test_named_covers_every_registered_plan(self):
        for name in PLAN_NAMES:
            plan = FaultPlan.named(name, seed=3)
            assert plan.name == name and plan.seed == 3

    def test_named_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown fault plan"):
            FaultPlan.named("cosmic_rays")

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("cosmic_rays", 0.5)
        with pytest.raises(ValueError, match="rate"):
            FaultSpec("dma_abort", 0.0)
        with pytest.raises(ValueError, match="rate"):
            FaultSpec("dma_abort", 1.5)
        with pytest.raises(ValueError, match="max_consecutive"):
            FaultSpec("dma_abort", 0.5, max_consecutive=0)

    def test_from_env_unset_or_off_is_none(self):
        for env in ({}, {"COPIER_FAULT_PLAN": ""},
                    {"COPIER_FAULT_PLAN": "none"},
                    {"COPIER_FAULT_PLAN": "off"},
                    {"COPIER_FAULT_PLAN": "0"}):
            assert FaultPlan.from_env(env) is None

    def test_from_env_parses_plan_and_seed(self):
        plan = FaultPlan.from_env({"COPIER_FAULT_PLAN": "mixed",
                                   "COPIER_FAULT_SEED": "17"})
        assert plan.name == "mixed" and plan.seed == 17
        plan = FaultPlan.from_env({"COPIER_FAULT_PLAN": "dma_abort"})
        assert plan.name == "dma_abort" and plan.seed == 0


class TestFaultInjector:
    def _sequence(self, plan, kind, n=300):
        inj = FaultInjector(plan)
        return [inj.fire(kind) for _ in range(n)]

    def test_same_seed_same_sequence(self):
        a = self._sequence(FaultPlan.mixed(11), "dma_submit_fail")
        b = self._sequence(FaultPlan.mixed(11), "dma_submit_fail")
        assert a == b and any(a)

    def test_different_seeds_diverge(self):
        a = self._sequence(FaultPlan.mixed(11), "dma_submit_fail")
        b = self._sequence(FaultPlan.mixed(12), "dma_submit_fail")
        assert a != b

    def test_kinds_draw_independently(self):
        """Interleaving calls for one kind must not perturb another —
        the per-kind RNG split that makes runs replayable."""
        inj = FaultInjector(FaultPlan.mixed(2))
        solo = self._sequence(FaultPlan.mixed(2), "pin_fail", 100)
        interleaved = []
        for _ in range(100):
            inj.fire("dma_submit_fail")
            interleaved.append(inj.fire("pin_fail"))
            inj.fire("engine_stall")
        assert interleaved == solo

    def test_max_consecutive_caps_runs(self):
        plan = FaultPlan("always", 0,
                         [FaultSpec("pin_fail", 1.0, max_consecutive=3)])
        fires = self._sequence(plan, "pin_fail", 12)
        # rate=1.0 fires until the cap forces a miss: 3 on, 1 off.
        assert fires == [True, True, True, False] * 3

    def test_stall_cycles_within_spec_bounds(self):
        plan = FaultPlan.single("engine_stall", seed=1, rate=1.0,
                                max_consecutive=2, min_cycles=100,
                                max_cycles=200)
        inj = FaultInjector(plan)
        stalls = [inj.stall_cycles() for _ in range(50)]
        fired = [s for s in stalls if s]
        assert fired and all(100 <= s <= 200 for s in fired)
        assert 0 in stalls  # the cap forces non-firing gaps

    def test_unarmed_injector_is_inert(self):
        inj = FaultInjector(None)
        assert inj.armed is False
        assert inj.fire("dma_abort") is False
        assert inj.stall_cycles() == 0
        assert inj.as_dict() == {"plan": None, "seed": None,
                                 "armed": False, "injected": {}}
