"""Static multi-thread Copier service: correctness with n_threads=2."""

import pytest

from repro.copier import CopierService
from repro.hw import MachineParams
from repro.mem import AddressSpace, PhysicalMemory
from repro.sim import Environment


def _machine(n_threads):
    env = Environment(n_cores=6)
    service = CopierService(env, MachineParams(), n_threads=n_threads,
                            dedicated_cores=[5, 4][:n_threads])
    phys = PhysicalMemory(65536)
    return env, service, phys


def test_two_threads_serve_disjoint_clients_correctly():
    env, service, phys = _machine(2)
    results = {}
    procs = []
    for i in range(4):
        aspace = AddressSpace(phys, name="c%d" % i)
        client = service.create_client(aspace, name="c%d" % i)
        n = 16 * 1024
        src = aspace.mmap(n, populate=True)
        dst = aspace.mmap(n, populate=True)
        payload = bytes([i + 1]) * n
        aspace.write(src, payload)

        def gen(client=client, aspace=aspace, src=src, dst=dst, i=i, n=n,
                payload=payload):
            for _ in range(6):
                yield from client.amemcpy(dst, src, n)
                yield from client.csync(dst, n)
            results[i] = aspace.read(dst, n) == payload

        procs.append(env.spawn(gen(), affinity=i % 3))
    for p in procs:
        env.run_until(p.terminated, limit=500_000_000_000)
    assert all(results[i] for i in range(4)), results


def test_two_threads_faster_than_one_under_parallel_load():
    def run(n_threads):
        env, service, phys = _machine(n_threads)
        procs = []
        for i in range(4):
            aspace = AddressSpace(phys, name="c%d" % i)
            client = service.create_client(aspace, name="c%d" % i)
            n = 128 * 1024
            src = aspace.mmap(n, populate=True)
            dst = aspace.mmap(n, populate=True)

            def gen(client=client, src=src, dst=dst, n=n):
                for _ in range(6):
                    yield from client.amemcpy(dst, src, n)
                    yield from client.csync(dst, n)

            procs.append(env.spawn(gen(), affinity=i % 3))
        for p in procs:
            env.run_until(p.terminated, limit=500_000_000_000)
        return env.now

    one = run(1)
    two = run(2)
    assert two < one * 0.85


def test_thread_client_partition_is_complete_and_disjoint():
    env, service, phys = _machine(2)
    clients = [service.create_client(AddressSpace(phys), name="c%d" % i)
               for i in range(5)]
    mine0 = service._my_clients(0)
    mine1 = service._my_clients(1)
    assert not (set(map(id, mine0)) & set(map(id, mine1)))
    assert len(mine0) + len(mine1) == len(clients)
