"""Order/data dependency and promotion tests (§4.2)."""

import pytest

from repro.copier.deps import (
    BarrierBookkeeping,
    PendingTasks,
    k_order_key,
    u_order_key,
)
from repro.copier.descriptor import Descriptor
from repro.copier.queues import RingQueue
from repro.copier.task import CopyTask, Region
from repro.mem import PAGE_SIZE, AddressSpace, PhysicalMemory
from repro.sim import Compute, Timeout
from tests.copier.conftest import Setup


# ---------------------------------------------------------------- unit level


def _mk_task(aspace, src, dst, n, key, kind="u", lazy=False):
    from repro.copier import task as task_mod

    t = CopyTask(
        None,
        kind,
        Region(aspace, src, n),
        Region(aspace, dst, n),
        Descriptor(n, 1024),
        task_type=task_mod.TYPE_LAZY if lazy else task_mod.TYPE_NORMAL,
    )
    t.order_key = key
    return t


@pytest.fixture
def aspace():
    return AddressSpace(PhysicalMemory(128))


class TestOrderKeys:
    def test_k_tasks_ordered_after_witnessed_u_tasks(self):
        """Fig. 6-a: K1-K4 land after U1-U2 and before U5."""
        u2 = u_order_key(1)   # second u task (position 1)
        k1 = k_order_key(2, 1)  # barrier saw 2 acquired u tasks
        u5 = u_order_key(4)
        assert u2 < k1 < u5

    def test_k_wins_the_concurrent_race(self):
        """U3/U4 submitted during the syscall: k-mode prioritized."""
        k = k_order_key(2, 1)
        u3 = u_order_key(2)  # acquired while kernel was in the syscall
        assert u3 < k or k < u3  # total order exists
        # u3's key is (3, 0, 2); k's is (2, 1, 1): k comes first.
        assert k < u3

    def test_barrier_bookkeeping_snapshots_queue_head(self):
        ring = RingQueue(16)
        barriers = BarrierBookkeeping(ring)
        ring.submit("u1")
        ring.submit("u2")
        barriers.on_trap()
        key_a = barriers.next_k_key()
        ring.submit("u3")  # concurrent thread during syscall
        key_b = barriers.next_k_key()
        barriers.on_return()
        ring.submit("u4")
        # Both k tasks witnessed exactly 2 u tasks.
        assert key_a[0] == 2 and key_b[0] == 2
        assert key_a < key_b  # k-mode FIFO among themselves
        # u4 (position 3 -> key (4,0,3)) comes after both k tasks.
        assert key_b < u_order_key(3)


class TestPendingTasks:
    def test_merged_order_iteration(self, aspace):
        pending = PendingTasks()
        t_u1 = _mk_task(aspace, 0x1000_0000, 0x1100_0000, 1024, u_order_key(0))
        t_k = _mk_task(aspace, 0x1200_0000, 0x1300_0000, 1024, k_order_key(1, 1), "k")
        t_u2 = _mk_task(aspace, 0x1400_0000, 0x1500_0000, 1024, u_order_key(1))
        for t in (t_u2, t_k, t_u1):  # insert out of order
            pending.add(t)
        assert [t.task_id for t in pending] == [
            t_u1.task_id, t_k.task_id, t_u2.task_id]

    def test_raw_dependency_detected(self, aspace):
        pending = PendingTasks()
        a_to_b = _mk_task(aspace, 0x1000_0000, 0x1100_0000, 4096, u_order_key(0))
        b_to_c = _mk_task(aspace, 0x1100_0000, 0x1200_0000, 4096, u_order_key(1))
        pending.add(a_to_b)
        pending.add(b_to_c)
        assert pending.dependencies_of(b_to_c) == [a_to_b]
        assert pending.raw_source_of(b_to_c) is a_to_b

    def test_war_dependency_detected(self, aspace):
        pending = PendingTasks()
        reader = _mk_task(aspace, 0x1100_0000, 0x1200_0000, 4096, u_order_key(0))
        writer = _mk_task(aspace, 0x1000_0000, 0x1100_0000, 4096, u_order_key(1))
        pending.add(reader)
        pending.add(writer)
        # writer's dst overlaps reader's src: WAR hazard.
        assert pending.dependencies_of(writer) == [reader]
        assert pending.raw_source_of(writer) is None

    def test_independent_tasks_have_no_deps(self, aspace):
        pending = PendingTasks()
        t1 = _mk_task(aspace, 0x1000_0000, 0x1100_0000, 1024, u_order_key(0))
        t2 = _mk_task(aspace, 0x1200_0000, 0x1300_0000, 1024, u_order_key(1))
        pending.add(t1)
        pending.add(t2)
        assert pending.dependencies_of(t2) == []

    def test_transitive_dependencies_topological(self, aspace):
        pending = PendingTasks()
        a = _mk_task(aspace, 0x1000_0000, 0x1100_0000, 4096, u_order_key(0))
        b = _mk_task(aspace, 0x1100_0000, 0x1200_0000, 4096, u_order_key(1))
        c = _mk_task(aspace, 0x1200_0000, 0x1300_0000, 4096, u_order_key(2))
        for t in (a, b, c):
            pending.add(t)
        deps = pending.transitive_dependencies(c)
        assert [d.task_id for d in deps] == [a.task_id, b.task_id]

    def test_runnable_head_skips_lazy(self, aspace):
        pending = PendingTasks()
        lazy = _mk_task(aspace, 0x1000_0000, 0x1100_0000, 1024, u_order_key(0),
                        lazy=True)
        normal = _mk_task(aspace, 0x1200_0000, 0x1300_0000, 1024, u_order_key(1))
        pending.add(lazy)
        pending.add(normal)
        assert pending.runnable_head() is normal


# ---------------------------------------------------------- integration level


def test_cross_privilege_order_respected():
    """A k-mode copy (A→B) followed by a u-mode copy (B→C) across a syscall
    return must observe A's data in C (the recv() pattern, §4.2.1)."""
    setup = Setup()
    aspace, client = setup.aspace, setup.client
    kernel_as = AddressSpace(setup.phys, name="kernel")
    a = kernel_as.mmap(PAGE_SIZE, populate=True)
    b = aspace.mmap(PAGE_SIZE, populate=True)
    c = aspace.mmap(PAGE_SIZE, populate=True)
    kernel_as.write(a, b"from-kernel!")

    from repro.copier.task import Region

    def app():
        # Kernel enters recv(): trap, k-mode submit A→B, return.
        client.on_trap()
        yield from client.k_amemcpy(
            Region(kernel_as, a, 12), Region(aspace, b, 12))
        client.on_return()
        # App immediately chains B→C (no csync in between!).
        yield from client.amemcpy(c, b, 12)
        yield from client.csync(c, 12)
        return aspace.read(c, 12)

    assert setup.run_process(app()) == b"from-kernel!"


def test_promotion_solves_head_of_line_blocking():
    """A Sync Task pulls a later small task ahead of a huge earlier one."""
    setup = Setup()
    aspace, client, params = setup.aspace, setup.client, setup.params
    big = 1 << 20  # 1 MB head-of-line blocker
    src_big = aspace.mmap(big, populate=True)
    dst_big = aspace.mmap(big, populate=True)
    src_small = aspace.mmap(PAGE_SIZE, populate=True)
    dst_small = aspace.mmap(PAGE_SIZE, populate=True)
    aspace.write(src_small, b"urgent")

    def app():
        yield from client.amemcpy(dst_big, src_big, big)
        yield from client.amemcpy(dst_small, src_small, 6)
        t0 = setup.env.now
        yield from client.csync(dst_small, 6)
        wait = setup.env.now - t0
        return wait, aspace.read(dst_small, 6)

    wait, data = setup.run_process(app())
    assert data == b"urgent"
    # Promotion made the small task jump the 1 MB queue: far faster than
    # copying the blocker first.
    assert wait < params.cpu_copy_cycles(big, engine="avx") / 2


def test_promotion_respects_raw_dependency():
    """Syncing C in A→B, B→C chains yields A's data even out of order."""
    setup = Setup()
    aspace, client = setup.aspace, setup.client
    n = 8 * 1024
    a = aspace.mmap(n, populate=True)
    b = aspace.mmap(n, populate=True)
    c = aspace.mmap(n, populate=True)
    aspace.write(a, b"\x42" * n)

    def app():
        yield from client.amemcpy(b, a, n)
        yield from client.amemcpy(c, b, n)
        yield from client.csync(c, n)
        return aspace.read(c, n)

    assert setup.run_process(app()) == b"\x42" * n


def test_promotion_respects_war_dependency():
    """Promoting a task whose dst overwrites an earlier task's src must let
    the earlier read happen first."""
    setup = Setup()
    aspace, client = setup.aspace, setup.client
    n = 4 * 1024
    a = aspace.mmap(n, populate=True)
    b = aspace.mmap(n, populate=True)
    c = aspace.mmap(n, populate=True)
    aspace.write(a, b"old-" * (n // 4))
    aspace.write(c, b"new-" * (n // 4))

    def app():
        yield from client.amemcpy(b, a, n)       # reads A
        yield from client.amemcpy(a, c, n)       # overwrites A
        yield from client.csync(a, n)            # promote the overwrite
        yield from client.csync(b, n)
        return aspace.read(b, n), aspace.read(a, n)

    b_data, a_data = setup.run_process(app())
    assert b_data == b"old-" * (n // 4)  # read happened before overwrite
    assert a_data == b"new-" * (n // 4)


def test_memmove_style_overlapping_via_two_tasks():
    """libCopier splits overlapping copies; here we verify WAW ordering of
    two overlapping destination writes lands the later task's data."""
    setup = Setup()
    aspace, client = setup.aspace, setup.client
    n = 2 * 1024
    s1 = aspace.mmap(n, populate=True)
    s2 = aspace.mmap(n, populate=True)
    d = aspace.mmap(n, populate=True)
    aspace.write(s1, b"\x01" * n)
    aspace.write(s2, b"\x02" * n)

    def app():
        yield from client.amemcpy(d, s1, n)
        yield from client.amemcpy(d, s2, n)
        yield from client.csync(d, n)
        return aspace.read(d, n)

    assert setup.run_process(app()) == b"\x02" * n
