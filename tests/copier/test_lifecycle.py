"""Lifecycle robustness: exit reaping, mid-flight munmap EFAULTs, and
service shutdown under load (the teardown half of §5.1)."""

import pytest

from repro.copier.errors import AdmissionReject, CopyAborted, TaskEFault

from .conftest import Setup

BUF = 64 * 1024


def drive(gen):
    """Run a submission generator without advancing the event loop: the
    tasks land in the queues but nothing ingests them yet."""
    try:
        while True:
            next(gen)
    except StopIteration as stop:
        return stop.value


def _buffers(setup, n=2, nbytes=BUF):
    bufs = [setup.aspace.mmap(nbytes, populate=True) for _ in range(n)]
    for i, buf in enumerate(bufs):
        setup.aspace.write(buf, bytes([i + 1]) * nbytes)
    return bufs


# ------------------------------------------------------------- exit reaping


def test_reap_client_aborts_inflight_and_unpins(setup):
    src, dst = _buffers(setup)
    for off in range(0, BUF, 16 * 1024):
        drive(setup.client.amemcpy(dst + off, src + off, 16 * 1024))
    assert any(not t.is_finished for t in setup.client.task_index)

    reaped = setup.service.reap_client(setup.client)
    assert reaped == 4
    assert all(t.is_finished for t in setup.client.task_index)
    assert setup.client not in setup.service.clients
    assert setup.aspace.pins_outstanding() == 0
    assert setup.client.stats.exit_reaped == 4
    assert setup.service.lifecycle.exit_reaped == 4
    assert setup.service.lifecycle.processes_reaped == 1


def test_reap_client_is_idempotent(setup):
    src, dst = _buffers(setup)
    drive(setup.client.amemcpy(dst, src, 4096))
    assert setup.service.reap_client(setup.client) == 1
    assert setup.service.reap_client(setup.client) == 0
    assert setup.service.lifecycle.processes_reaped == 1


def test_reaped_aspace_still_counted_for_leaks(setup):
    """A departed client's address space stays visible to leak accounting."""
    src, dst = _buffers(setup)
    drive(setup.client.amemcpy(dst, src, 4096))
    setup.service.reap_client(setup.client)
    assert setup.aspace in setup.service._all_aspaces()
    assert setup.service.leaked_pins() == 0


# ------------------------------------------------- munmap mid-flight: EFAULT


def test_munmap_midflight_delivers_efault(setup):
    src, dst = _buffers(setup)
    drive(setup.client.amemcpy(dst, src, BUF))
    # The copy is queued but not ingested; now the source vanishes.
    setup.aspace.munmap(src, BUF)

    outcome = {}

    def app():
        try:
            yield from setup.client.csync(dst, BUF)
            outcome["error"] = None
        except TaskEFault as exc:
            outcome["error"] = exc

    setup.run_process(app())
    err = outcome["error"]
    assert isinstance(err, TaskEFault)
    assert isinstance(err, CopyAborted)  # existing handlers keep working
    assert setup.client.stats.efault_tasks == 1
    assert setup.service.lifecycle.efault_tasks == 1
    assert setup.aspace.pins_outstanding() == 0
    snap = setup.service.stats_snapshot()
    assert snap["lifecycle"]["efault_tasks"] == 1
    agg = snap["stages"]["outcomes"]
    assert agg.get("efault", 0) == 1


def test_munmap_of_dst_midflight_delivers_efault(setup):
    src, dst = _buffers(setup)
    drive(setup.client.amemcpy(dst, src, BUF))
    setup.aspace.munmap(dst, BUF)

    outcome = {}

    def app():
        try:
            yield from setup.client.csync(dst, BUF)
            outcome["error"] = None
        except TaskEFault as exc:
            outcome["error"] = exc

    setup.run_process(app())
    assert isinstance(outcome["error"], TaskEFault)
    assert setup.aspace.pins_outstanding() == 0


def test_efault_does_not_disturb_unrelated_tasks(setup):
    src, dst, src2, dst2 = _buffers(setup, n=4)
    drive(setup.client.amemcpy(dst, src, BUF))
    drive(setup.client.amemcpy(dst2 + 100, src2 + 100, 8192))
    setup.aspace.munmap(src, BUF)

    outcome = {}

    def app():
        try:
            yield from setup.client.csync(dst, BUF)
            outcome["faulted"] = False
        except TaskEFault:
            outcome["faulted"] = True
        yield from setup.client.csync(dst2 + 100, 8192)

    setup.run_process(app())
    assert outcome["faulted"]
    assert setup.aspace.read(dst2 + 100, 8192) == \
        setup.aspace.read(src2 + 100, 8192)


# ------------------------------------------------------------------ shutdown


def test_shutdown_drains_pending_work():
    setup = Setup()
    src, dst = _buffers(setup)
    n = 4
    for off in range(0, n * 8192, 8192):
        drive(setup.client.amemcpy(dst + off, src + off, 8192))

    report = setup.service.shutdown(deadline=50_000_000)
    assert report["drained"]
    assert report["requeued"] == n
    assert report["force_reaped"] == 0
    assert report["leaked_pins"] == 0
    # The drain really executed the copies rather than dropping them.
    assert setup.aspace.read(dst, 8192) == setup.aspace.read(src, 8192)
    assert setup.service.lifecycle.drains == 1
    assert setup.service.lifecycle.drain_requeued == n


def test_shutdown_is_idempotent():
    setup = Setup()
    report = setup.service.shutdown(deadline=1_000_000)
    assert setup.service.shutdown(deadline=1) is report
    assert setup.service.lifecycle.drains == 1


def test_shutdown_rejects_new_submissions():
    setup = Setup()
    src, dst = _buffers(setup)
    setup.service.shutdown(deadline=1_000_000)
    with pytest.raises(AdmissionReject):
        drive(setup.client.amemcpy(dst, src, 4096))
    assert setup.client.stats.rejected_submits == 1


def test_shutdown_force_reaps_wedged_work():
    setup = Setup()
    src, dst = _buffers(setup)
    drive(setup.client.amemcpy(dst, src, 8192))
    # Stop the workers first: the backlog can no longer drain on its own.
    setup.service.stop()
    report = setup.service.shutdown(deadline=200_000)
    assert not report["drained"]
    assert report["force_reaped"] == 1
    assert report["leaked_pins"] == 0
    assert setup.aspace.pins_outstanding() == 0


def test_snapshot_carries_lifecycle_section(setup):
    snap = setup.service.stats_snapshot()
    lc = snap["lifecycle"]
    assert lc["exit_reaped"] == 0
    assert lc["efault_tasks"] == 0
    assert lc["drain_requeued"] == 0
    assert lc["pins_outstanding"] == 0
    assert lc["draining"] is False
