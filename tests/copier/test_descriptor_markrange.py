"""Descriptor.mark_range: one bitmap update, waiters fire exactly once."""

import pytest

from repro.copier.descriptor import Descriptor
from repro.sim import Environment


SEG = 1024


def test_mark_range_equivalent_to_repeated_mark():
    a = Descriptor(SEG * 10, SEG)
    b = Descriptor(SEG * 10, SEG)
    a.mark_range(2, 6)
    for i in range(2, 7):
        b.mark(i)
    assert a._bits == b._bits
    assert a.ready_segments == b.ready_segments == 5


def test_mark_range_counts_only_new_segments():
    d = Descriptor(SEG * 8, SEG)
    d.mark(3)
    d.mark(5)
    d.mark_range(2, 6)
    assert d.ready_segments == 5
    assert all(d.is_ready(i) for i in range(2, 7))
    # Fully-covered repeat is a no-op.
    d.mark_range(2, 6)
    assert d.ready_segments == 5


def test_mark_range_single_segment():
    d = Descriptor(SEG * 4, SEG)
    d.mark_range(1, 1)
    assert d.is_ready(1) and d.ready_segments == 1


def test_mark_range_out_of_range_raises():
    d = Descriptor(SEG * 4, SEG)
    with pytest.raises(IndexError):
        d.mark_range(-1, 2)
    with pytest.raises(IndexError):
        d.mark_range(0, 4)
    with pytest.raises(IndexError):
        d.mark_range(3, 2)


def test_mark_range_wakes_covered_waiter_once():
    env = Environment()
    d = Descriptor(SEG * 8, SEG)
    fired = []
    event = d.wait_range(env, 0, SEG * 4)  # segments 0..3
    event.add_callback(fired.append)
    d.mark_range(0, 3)
    env.run()
    assert event.triggered
    assert len(fired) == 1
    assert d._waiters == []  # waiter removed, cannot fire again
    # Events are one-shot: a retained waiter would make this raise.
    d.mark_range(0, 3)
    d.mark(0)


def test_mark_range_partial_cover_keeps_waiter():
    env = Environment()
    d = Descriptor(SEG * 8, SEG)
    event = d.wait_range(env, 0, SEG * 6)  # segments 0..5
    d.mark_range(0, 3)
    assert not event.triggered
    assert len(d._waiters) == 1
    d.mark_range(4, 5)
    assert event.triggered


def test_mark_range_vs_repeated_mark_waiter_wakeups():
    """Repeated mark re-scans waiters per segment; mark_range scans once.

    Both must deliver exactly one wakeup per satisfied waiter — the
    single-update path just avoids the redundant intermediate scans."""
    env = Environment()
    ranged = Descriptor(SEG * 6, SEG)
    stepped = Descriptor(SEG * 6, SEG)
    ev_r = ranged.wait_range(env, 0, SEG * 6)
    ev_s = stepped.wait_range(env, 0, SEG * 6)
    ranged.mark_range(0, 5)
    for i in range(6):
        stepped.mark(i)
    assert ev_r.triggered and ev_s.triggered
    assert ranged._bits == stepped._bits
