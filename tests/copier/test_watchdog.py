"""Liveness watchdog tests: stall/starvation detection, quiescence,
give-up/re-arm, and the ``COPIER_WATCHDOG_CYCLES`` knob.

The wedged-service scenario uses scenario-mode polling with the
scenario never begun: submissions land on the rings, workers sleep, and
the only thing left ticking is the watchdog.
"""

import pytest

from repro.copier.watchdog import DEFAULT_PERIOD_CYCLES, _period_from_env
from repro.tools.copierstat import report
from tests.copier.conftest import Setup

PERIOD = 2_000
STARVE = 30_000


def _wedged_setup():
    """A service that will never make progress, with one stuck task."""
    setup = Setup(polling="scenario", admission="always",
                  watchdog_cycles=PERIOD,
                  watchdog_starvation_cycles=STARVE)
    aspace, client = setup.aspace, setup.client
    src = aspace.mmap(8192, populate=True)
    dst = aspace.mmap(8192, populate=True)
    setup.buffers = (src, dst)
    setup.events = []
    setup.env.trace.subscribe(setup.events.append)

    def gen():
        yield from client.amemcpy(dst, src, 8192)

    proc = setup.env.spawn(gen(), name="app", affinity=0)
    setup.env.run_until(proc.terminated, limit=1_000_000)
    return setup


class TestStallAndStarvation:
    def test_stall_alert_fires_when_service_wedged(self):
        setup = _wedged_setup()
        setup.env.run(until=setup.env.now + 200_000)
        stats = setup.service.watchdog.stats
        assert stats.stall_alerts >= 1
        assert stats.checks >= setup.service.watchdog.stall_checks
        assert stats.last_progress_age > 0
        stalls = [e for e in setup.events if e.kind == "watchdog-stall"]
        assert stalls and stalls[0].backlog_tasks >= 1

    def test_starvation_names_the_client_once_per_episode(self):
        setup = _wedged_setup()
        setup.env.run(until=setup.env.now + 200_000)
        stats = setup.service.watchdog.stats
        assert stats.starved_clients == ["app"]
        assert stats.starvation_alerts == 1  # one alert, not one per check
        starved = [e for e in setup.events if e.kind == "watchdog-starved"]
        assert len(starved) == 1
        assert starved[0].client_name == "app"
        assert starved[0].oldest_age > STARVE

    def test_gives_up_on_a_dead_service_and_rearms_on_submit(self):
        """After GIVE_UP_CHECKS stalled windows the watchdog stops
        ticking (the heap drains); a fresh submission re-arms it."""
        setup = _wedged_setup()
        setup.env.run(until=setup.env.now + 500_000)
        checks_after_give_up = setup.service.watchdog.stats.checks
        setup.env.run(until=setup.env.now + 500_000)
        assert setup.service.watchdog.stats.checks == checks_after_give_up

        src, dst = setup.buffers

        def gen():
            yield from setup.client.amemcpy(dst, src, 128)

        proc = setup.env.spawn(gen(), name="app2", affinity=0)
        setup.env.run_until(proc.terminated, limit=10_000_000)
        setup.env.run(until=setup.env.now + 5 * PERIOD)
        assert setup.service.watchdog.stats.checks > checks_after_give_up

    @pytest.mark.faultfree  # injected engine stalls are real stalls
    def test_healthy_run_raises_no_alerts(self):
        setup = Setup(watchdog_cycles=5_000)
        aspace, client = setup.aspace, setup.client
        src = aspace.mmap(16 * 1024, populate=True)
        dst = aspace.mmap(16 * 1024, populate=True)

        def gen():
            for _ in range(4):
                yield from client.amemcpy(dst, src, 16 * 1024)
                yield from client.csync(dst, 16 * 1024)

        setup.run_process(gen())
        stats = setup.service.watchdog.stats
        assert stats.stall_alerts == 0
        assert stats.starvation_alerts == 0
        assert stats.starved_clients == []


class TestQuiescence:
    @pytest.mark.faultfree  # injected engine stalls are real stalls
    def test_watchdog_stops_ticking_when_drained(self):
        """With scenario threads asleep and no backlog, the watchdog must
        not keep the event heap alive: ``env.run()`` terminates."""
        setup = Setup(polling="scenario", watchdog_cycles=1_000)
        aspace, client = setup.aspace, setup.client
        src = aspace.mmap(4096, populate=True)
        dst = aspace.mmap(4096, populate=True)

        def gen():
            setup.service.scenario_begin()
            yield from client.amemcpy(dst, src, 4096)
            yield from client.csync(dst, 4096)

        setup.run_process(gen())
        setup.env.run()  # returns only if the watchdog goes quiescent
        assert setup.service.watchdog.stats.stall_alerts == 0

    def test_stop_disarms_for_good(self):
        setup = _wedged_setup()
        setup.service.watchdog.stop()
        checks = setup.service.watchdog.stats.checks
        assert setup.service.watchdog.enabled is False
        setup.env.run(until=setup.env.now + 100_000)
        assert setup.service.watchdog.stats.checks == checks


class TestEnvironmentKnob:
    def test_period_parsing(self):
        assert _period_from_env({}) == DEFAULT_PERIOD_CYCLES
        assert _period_from_env({"COPIER_WATCHDOG_CYCLES": "1234"}) == 1234
        for off in ("0", "off", "none", "OFF"):
            assert _period_from_env({"COPIER_WATCHDOG_CYCLES": off}) == 0

    def test_env_zero_disables_watchdog(self, monkeypatch):
        monkeypatch.setenv("COPIER_WATCHDOG_CYCLES", "0")
        setup = Setup(polling="scenario")
        aspace, client = setup.aspace, setup.client
        src = aspace.mmap(4096, populate=True)
        dst = aspace.mmap(4096, populate=True)
        assert setup.service.watchdog.enabled is False

        def gen():
            yield from client.amemcpy(dst, src, 4096)

        proc = setup.env.spawn(gen(), name="app", affinity=0)
        setup.env.run_until(proc.terminated, limit=1_000_000)
        setup.env.run(until=setup.env.now + 1_000_000)
        assert setup.service.watchdog.stats.checks == 0

    def test_explicit_period_overrides_env(self, monkeypatch):
        monkeypatch.setenv("COPIER_WATCHDOG_CYCLES", "0")
        setup = Setup(watchdog_cycles=777)
        assert setup.service.watchdog.enabled is True
        assert setup.service.watchdog.period_cycles == 777


class TestReporting:
    def test_snapshot_surfaces_watchdog_block(self):
        setup = _wedged_setup()
        setup.env.run(until=setup.env.now + 200_000)
        wd = setup.service.stats_snapshot()["overload"]["watchdog"]
        assert wd["enabled"] is True
        assert wd["period_cycles"] == PERIOD
        assert wd["stall_alerts"] >= 1
        assert wd["starved_clients"] == ["app"]
        assert wd["oldest_pending_age"] > STARVE

    def test_copierstat_renders_watchdog_line(self):
        setup = _wedged_setup()
        setup.env.run(until=setup.env.now + 200_000)
        text = report(setup.service)
        assert "overload: policy=always" in text
        assert "watchdog:" in text
        assert "starved: app" in text

    @pytest.mark.faultfree  # a fault-stalled run may legitimately alert
    def test_quiet_always_service_renders_no_overload_block(self):
        """Pre-overload reports stay byte-identical: an idle ``always``
        service with no alerts prints nothing new."""
        setup = Setup(admission="always")
        aspace, client = setup.aspace, setup.client
        src = aspace.mmap(4096, populate=True)
        dst = aspace.mmap(4096, populate=True)

        def gen():
            yield from client.amemcpy(dst, src, 4096)
            yield from client.csync(dst, 4096)

        setup.run_process(gen())
        assert "overload:" not in report(setup.service)
