"""Scheduler/cgroup and ATCache tests (§4.3, §4.5)."""

import pytest

from repro.copier.atcache import ATCache
from repro.copier.sched import CopierScheduler
from repro.hw import MachineParams
from repro.mem import PAGE_SIZE, AddressSpace, PhysicalMemory
from repro.sim import Timeout
from tests.copier.conftest import Setup


@pytest.fixture
def params():
    return MachineParams()


class TestScheduler:
    def test_picks_client_with_least_copy_length(self, params):
        sched = CopierScheduler(params)
        sched.register("a")
        sched.register("b")
        sched.charge("a", 10_000)
        assert sched.pick(["a", "b"]) == "b"
        sched.charge("b", 20_000)
        assert sched.pick(["a", "b"]) == "a"

    def test_pick_ignores_unready(self, params):
        sched = CopierScheduler(params)
        sched.register("a")
        sched.register("b")
        sched.charge("b", 5)
        assert sched.pick(["b"]) == "b"
        assert sched.pick([]) is None

    def test_cgroup_shares_weight_selection(self, params):
        """A cgroup with double shares gets served at double the length."""
        sched = CopierScheduler(params)
        sched.create_cgroup("gold", shares=200)
        sched.create_cgroup("bronze", shares=100)
        sched.register("g", "gold")
        sched.register("b", "bronze")
        sched.charge("g", 1500)
        sched.charge("b", 1000)
        # gold weighted: 1500/200 = 7.5 < bronze 1000/100 = 10.
        assert sched.pick(["g", "b"]) == "g"

    def test_invalid_shares_rejected(self, params):
        sched = CopierScheduler(params)
        with pytest.raises(ValueError):
            sched.create_cgroup("bad", shares=0)

    def test_duplicate_cgroup_rejected(self, params):
        sched = CopierScheduler(params)
        sched.create_cgroup("x")
        with pytest.raises(ValueError):
            sched.create_cgroup("x")

    def test_remove_cgroup_reassigns_clients_to_root(self, params):
        sched = CopierScheduler(params)
        sched.create_cgroup("doomed", shares=300)
        sched.register("a", "doomed")
        sched.register("b", "doomed")
        sched.charge("a", 700)
        removed = sched.remove_cgroup("doomed")
        assert removed.name == "doomed"
        assert "doomed" not in sched.cgroups
        assert sched.root_cgroup.clients == ["a", "b"]
        # The clients stay schedulable and keep their per-client totals.
        assert sched.pick(["a", "b"]) == "b"
        assert sched.client_total("a") == 700
        # The removed group's total does not fold into root's weighted
        # length; only new work under root accrues there.
        assert sched.root_cgroup.total_copy_length == 0
        sched.charge("b", 50)
        assert sched.root_cgroup.total_copy_length == 50

    def test_remove_root_cgroup_forbidden(self, params):
        sched = CopierScheduler(params)
        with pytest.raises(ValueError):
            sched.remove_cgroup("root")
        with pytest.raises(KeyError):
            sched.remove_cgroup("never-existed")

    def test_remove_cgroup_reweights_shares(self, params):
        """Removing a heavy-share group restores even competition: the
        survivor no longer needs 3x the copy length to outrank root."""
        sched = CopierScheduler(params)
        sched.create_cgroup("gold", shares=300)
        sched.register("g", "gold")
        sched.register("r")
        sched.charge("g", 1200)   # weighted 1200/300 = 4
        sched.charge("r", 1000)   # weighted 1000/100 = 10
        assert sched.pick(["g", "r"]) == "g"
        sched.remove_cgroup("gold")
        # Both now compete inside root on raw per-client totals.
        assert sched.pick(["g", "r"]) == "r"

    def test_move_between_cgroups(self, params):
        sched = CopierScheduler(params)
        sched.create_cgroup("g1")
        sched.create_cgroup("g2")
        sched.register("c", "g1")
        sched.charge("c", 100)
        sched.move("c", "g2")
        assert sched.pick(["c"]) == "c"
        sched.charge("c", 50)
        assert sched.cgroups["g2"].total_copy_length == 50

    def test_fairness_integration_two_clients(self):
        """Two clients submitting equal loads get served near-equally."""
        setup = Setup(n_cores=3, n_frames=8192)
        aspace2 = AddressSpace(setup.phys, name="app2")
        client2 = setup.service.create_client(aspace2, name="app2")
        n = 16 * 1024

        def workload(aspace, client, rounds):
            src = aspace.mmap(n, populate=True)
            dst = aspace.mmap(n, populate=True)
            for _ in range(rounds):
                yield from client.amemcpy(dst, src, n)
                yield from client.csync(dst, n)

        p1 = setup.env.spawn(workload(setup.aspace, setup.client, 20),
                             name="w1", affinity=0)
        p2 = setup.env.spawn(workload(aspace2, client2, 20), name="w2",
                             affinity=1)
        setup.env.run_until(p1.terminated, limit=500_000_000)
        setup.env.run_until(p2.terminated, limit=500_000_000)
        t1 = setup.service.scheduler.client_total(setup.client)
        t2 = setup.service.scheduler.client_total(client2)
        assert t1 == t2 == 20 * n


class TestATCache:
    def _aspace(self):
        return AddressSpace(PhysicalMemory(256))

    def test_miss_then_hit(self, params):
        cache = ATCache(params)
        aspace = self._aspace()
        va = aspace.mmap(PAGE_SIZE * 4, populate=True)
        c1, h1, m1 = cache.translation_cost(aspace, va, PAGE_SIZE * 4)
        assert (h1, m1) == (0, 4)
        assert c1 == 4 * params.page_translate_cycles
        c2, h2, m2 = cache.translation_cost(aspace, va, PAGE_SIZE * 4)
        assert (h2, m2) == (4, 0)
        assert c2 == 4 * params.atcache_hit_cycles

    def test_invalidation_on_mapping_change(self, params):
        """The memory subsystem notifies ATCache on remap (§4.3)."""
        cache = ATCache(params)
        aspace = self._aspace()
        va = aspace.mmap(PAGE_SIZE, populate=True)
        cache.translation_cost(aspace, va, PAGE_SIZE)
        # CoW break changes the frame: entry must be invalidated.
        aspace.write(va, b"x")
        child = aspace.fork()
        cache.translation_cost(aspace, va, 1)  # re-arm (hit)
        aspace.write(va, b"y")  # parent CoW-breaks -> invalidation hook
        assert cache.invalidations >= 1
        _c, h, m = cache.translation_cost(aspace, va, 1)
        assert m == 1  # stale entry was dropped

    def test_lru_eviction_at_capacity(self, params):
        small = MachineParams(atcache_capacity=2)
        cache = ATCache(small)
        aspace = self._aspace()
        va = aspace.mmap(PAGE_SIZE * 3, populate=True)
        cache.translation_cost(aspace, va, 1)
        cache.translation_cost(aspace, va + PAGE_SIZE, 1)
        cache.translation_cost(aspace, va + 2 * PAGE_SIZE, 1)  # evicts page 0
        _c, h, m = cache.translation_cost(aspace, va, 1)
        assert m == 1

    def test_hit_rate_accumulates(self, params):
        cache = ATCache(params)
        aspace = self._aspace()
        va = aspace.mmap(PAGE_SIZE, populate=True)
        cache.translation_cost(aspace, va, 1)
        for _ in range(9):
            cache.translation_cost(aspace, va, 1)
        assert cache.hit_rate == pytest.approx(0.9)


class TestPollingModes:
    def test_scenario_mode_sleeps_until_begin(self):
        """Scenario-driven threads stay asleep; submission alone does not
        wake them (§4.5.1, §5.3)."""
        setup = Setup(polling="scenario")
        aspace, client = setup.aspace, setup.client
        src = aspace.mmap(PAGE_SIZE, populate=True)
        dst = aspace.mmap(PAGE_SIZE, populate=True)
        aspace.write(src, b"phone")
        state = {}

        def app():
            yield from client.amemcpy(dst, src, 5)
            yield Timeout(2_000_000)
            state["before"] = aspace.read(dst, 5)
            setup.service.scenario_begin()
            yield from client.csync(dst, 5)
            state["after"] = aspace.read(dst, 5)

        setup.run_process(app())
        assert state["before"] == b"\x00" * 5  # slept: nothing copied
        assert state["after"] == b"phone"

    def test_scenario_mode_thread_sleeps_when_drained(self):
        setup = Setup(polling="scenario")
        aspace, client = setup.aspace, setup.client
        src = aspace.mmap(PAGE_SIZE, populate=True)
        dst = aspace.mmap(PAGE_SIZE, populate=True)

        def app():
            setup.service.scenario_begin()
            yield from client.amemcpy(dst, src, 128)
            yield from client.csync(dst, 128)
            yield Timeout(10_000_000)  # long idle: thread should sleep

        setup.run_process(app())
        # The thread is blocked on its wake event, burning no cycles;
        # the scenario stays active until scenario_end() (§5.3).
        assert setup.service._wake_events
        assert setup.service.scenario_active is True
        setup.service.scenario_end()
        assert setup.service.scenario_active is False

    def test_napi_mode_polls_and_copies_unprompted(self):
        setup = Setup(polling="napi")
        aspace, client = setup.aspace, setup.client
        src = aspace.mmap(PAGE_SIZE, populate=True)
        dst = aspace.mmap(PAGE_SIZE, populate=True)
        aspace.write(src, b"server")

        def app():
            yield from client.amemcpy(dst, src, 6)
            yield Timeout(1_000_000)
            return aspace.read(dst, 6)

        assert setup.run_process(app()) == b"server"

    def test_idle_napi_core_consumes_poll_cycles(self):
        """Polling burns cycles on the dedicated core — the §4.6 cost."""
        setup = Setup(polling="napi")

        def app():
            yield Timeout(1_000_000)

        setup.run_process(app())
        poll = setup.env.stats.total_cycles(tag="poll")
        assert poll > 0
