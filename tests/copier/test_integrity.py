"""End-to-end copy-path integrity: the CRC lifecycle and poison aborts.

The silent-corruption *repair* paths (dma_bitflip / engine_torn_write
under ``e2e_crc``) are stressed in :mod:`tests.copier.test_fault_injection`;
here we pin the rest of the contract: a poisoned frame surfaces as a
typed :class:`~repro.copier.errors.TaskPoisoned` at csync (never as
silent data), the ``"integrity"`` stats section has the documented shape
and stays *absent* on unarmed clean runs (byte-identity discipline), and
a clean run with the CRC armed counts checks but zero mismatches.
"""

import pytest

from repro.copier.errors import CopyAborted, TaskPoisoned
from repro.faultinject import FaultPlan, fold_segment_crc
from tests.copier.conftest import Setup

BUF_BYTES = 32 * 1024
RUN_LIMIT = 500_000_000_000


def _two_buffers(setup):
    aspace = setup.aspace
    src = aspace.mmap(BUF_BYTES, populate=True, contiguous=True)
    dst = aspace.mmap(BUF_BYTES, populate=True, contiguous=True)
    aspace.write(src, bytes((7 + i) % 251 for i in range(BUF_BYTES)))
    return src, dst


def test_frame_poison_delivers_typed_error_at_csync():
    plan = FaultPlan.single("frame_poison", seed=1, rate=1.0)
    setup = Setup(n_frames=8192, fault_plan=plan)
    src, dst = _two_buffers(setup)
    client = setup.client
    caught = []

    def app():
        yield from client.amemcpy(dst, src, BUF_BYTES)
        try:
            yield from client.csync(dst, BUF_BYTES)
        except TaskPoisoned as exc:
            caught.append(exc)

    setup.run_process(app(), limit=RUN_LIMIT)
    assert len(caught) == 1
    assert isinstance(caught[0], CopyAborted)  # poison is an abort subtype
    assert client.stats.poisoned_tasks == 1
    snap = setup.service.stats_snapshot()
    assert snap["integrity"]["poisoned_tasks"] == 1
    # Poison aborts the task; nothing pins, nothing leaks.
    leaked = sum(p.pin_count for p in setup.aspace.page_table.values())
    assert leaked == 0


def test_integrity_section_shape_and_clean_armed_run():
    setup = Setup(n_frames=8192, e2e_crc=True)
    src, dst = _two_buffers(setup)
    client = setup.client

    def app():
        yield from client.amemcpy(dst, src, BUF_BYTES)
        # csync_all (not a ranged csync) so the task actually *retires*
        # — the CRC verification runs at retirement, not at readiness.
        yield from client.csync_all()

    setup.run_process(app(), limit=RUN_LIMIT)
    assert setup.aspace.read(dst, BUF_BYTES) == \
        setup.aspace.read(src, BUF_BYTES)
    integ = setup.service.stats_snapshot()["integrity"]
    assert integ["e2e_crc"] is True
    assert integ["crc_checks"] >= 1
    assert integ["crc_mismatches"] == 0
    assert integ["reexec_tasks"] == 0
    assert integ["reexec_bytes"] == 0
    assert integ["poisoned_tasks"] == 0
    assert integ["quarantines"] == 0
    assert integ["overlap_skips"] == 0
    assert integ["dma_bitflips"] == 0


def test_unarmed_clean_run_has_no_integrity_section():
    # Explicit False: this must hold even when the suite runs under
    # COPIER_E2E_CRC=1 (the CI integrity-soak job).
    setup = Setup(n_frames=8192, e2e_crc=False)
    src, dst = _two_buffers(setup)
    client = setup.client

    def app():
        yield from client.amemcpy(dst, src, BUF_BYTES)
        yield from client.csync_all()

    setup.run_process(app(), limit=RUN_LIMIT)
    assert "integrity" not in setup.service.stats_snapshot()


def test_e2e_crc_env_knob(monkeypatch):
    monkeypatch.setenv("COPIER_E2E_CRC", "1")
    assert Setup(n_frames=4096).service.e2e_crc is True
    monkeypatch.setenv("COPIER_E2E_CRC", "0")
    assert Setup(n_frames=4096).service.e2e_crc is False


def test_fold_segment_crc_is_order_independent():
    parts = [(0, 0x1234), (1, 0xDEAD), (2, 0xBEEF)]
    a = 0
    for seg, crc in parts:
        a = fold_segment_crc(a, seg, crc)
    b = 0
    for seg, crc in reversed(parts):
        b = fold_segment_crc(b, seg, crc)
    assert a == b
    # ...but not segment-index independent: the same crc on a different
    # segment folds differently (a swap of two segments' bytes is not a
    # no-op).
    assert fold_segment_crc(0, 0, 0x1234) != fold_segment_crc(0, 1, 0x1234)


def test_poison_with_e2e_crc_still_aborts_loudly():
    # Poison wins over repair: a poisoned frame is not silently "fixed"
    # by the CRC machinery — it is an abort, surfaced as such.
    plan = FaultPlan.single("frame_poison", seed=2, rate=1.0)
    setup = Setup(n_frames=8192, fault_plan=plan, e2e_crc=True)
    src, dst = _two_buffers(setup)
    client = setup.client

    def app():
        yield from client.amemcpy(dst, src, BUF_BYTES)
        with pytest.raises(TaskPoisoned):
            yield from client.csync(dst, BUF_BYTES)

    setup.run_process(app(), limit=RUN_LIMIT)
    assert setup.service.integrity.poisoned_tasks == 1
