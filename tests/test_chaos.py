"""Chaos campaign: seeded kills and unmaps against live copy traffic
must leave zero leaks, oracle-identical survivors, and be reproducible."""

import pytest

from repro.chaos import determinism_fingerprint, run_campaign
from repro.faultinject import FaultPlan


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_campaign_teardown_is_leak_free(seed):
    result = run_campaign(seed=seed)
    assert result["failures"] == []
    # The ISSUE's floor: a real campaign, not a token one.
    assert result["events_fired"] >= 50
    assert result["kills"] >= 1
    assert result["unmaps"] >= 1
    assert len(result["apps"]) >= 3
    # Surviving untainted buffers matched the no-chaos oracle.
    assert result["verified_buffers"] > 0
    assert result["mismatches"] == []
    # Teardown invariants.
    assert result["leaked_pins"] == 0
    assert result["frames_now"] == result["baseline_frames"]
    assert result["shutdown"]["drained"]
    lc = result["lifecycle"]
    assert lc["processes_reaped"] == len(result["apps"])
    assert lc["deferred_unmaps"] == lc["deferred_reclaimed"]
    assert lc["pins_outstanding"] == 0


def test_campaign_is_deterministic_per_seed():
    first = run_campaign(seed=11)
    again = run_campaign(seed=11)
    assert determinism_fingerprint(first) == determinism_fingerprint(again)


def test_campaign_seeds_differ():
    assert (determinism_fingerprint(run_campaign(seed=11))
            != determinism_fingerprint(run_campaign(seed=12)))


@pytest.mark.slow
def test_campaign_survives_fault_injection():
    """Chaos on top of an armed fault plan: the engines misbehave while
    processes die — teardown must still be leak-free."""
    plan = FaultPlan.named("mixed", 1)
    result = run_campaign(seed=1, fault_plan=plan)
    assert result["failures"] == []
    assert result["leaked_pins"] == 0
    assert result["frames_now"] == result["baseline_frames"]
