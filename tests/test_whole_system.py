"""Whole-system integration: heterogeneous apps share one Copier.

The paper's core claim is *holistic* management: one service with a
global view serving many clients.  This test runs a Redis instance and a
TinyProxy pipeline simultaneously on one machine, in two cgroups, and
checks (a) both workloads complete with correct data, (b) the cgroup
accounting saw both, and (c) the service's global counters are the sum
of its clients'.
"""

import pytest

from repro.apps.rediskv import RedisClient, RedisServer
from repro.apps.tinyproxy import TinyProxy
from repro.kernel import System
from repro.kernel.net import recv, send, socket_pair
from repro.tools.copierstat import snapshot


def test_redis_and_proxy_share_the_service():
    system = System(n_cores=6, copier=True, phys_frames=262144)
    system.copier.scheduler.create_cgroup("kv", shares=150)
    system.copier.scheduler.create_cgroup("net", shares=100)

    # --- Redis side (cgroup kv) -----------------------------------------
    redis = RedisServer(system, mode="copier")
    system.copier.scheduler.move(redis.proc.client, "kv")
    listen_rx, listen_tx = socket_pair(system)
    reply_a, reply_b = socket_pair(system)
    kv_client = RedisClient(system, 0, listen_tx, reply_b)
    value_len = 16 * 1024
    kv_client.proc.write(kv_client.tx + 80, b"\xc4" * value_len)
    redis.proc.spawn(redis.serve(listen_rx, {0: reply_a}, 8), affinity=0)
    kv_ops = [("SET", b"shared", value_len)] * 4 + \
        [("GET", b"shared", value_len)] * 4
    kv_proc = kv_client.proc.spawn(kv_client.run(kv_ops), affinity=1)

    # --- Proxy side (cgroup net) ----------------------------------------
    proxy = TinyProxy(system, mode="copier")
    system.copier.scheduler.move(proxy.proc.client, "net")
    down_tx, down_rx = socket_pair(system)
    up_tx, up_rx = socket_pair(system)
    feeder = system.create_process("feeder")
    sink = system.create_process("sink")
    msg = 32 * 1024
    fbuf = feeder.mmap(msg, populate=True)
    feeder.write(fbuf, b"\x9b" * msg)
    sbuf = sink.mmap(1 << 20, populate=True)

    def feed():
        for _ in range(6):
            yield from send(system, feeder, down_tx, fbuf, msg)

    def drain():
        for _ in range(6):
            yield from recv(system, sink, up_rx, sbuf, 1 << 20)
        return sink.read(sbuf, msg)

    feeder.spawn(feed(), affinity=2)
    sink_proc = sink.spawn(drain(), affinity=3)
    proxy.proc.spawn(proxy.run(down_rx, up_tx, 6, msg), affinity=4)

    # --- Run everything together ----------------------------------------
    system.env.run_until(kv_proc.terminated, limit=2_000_000_000_000)
    system.env.run_until(sink_proc.terminated, limit=2_000_000_000_000)

    # Correctness on both workloads.
    assert kv_client.proc.read(kv_client.rx + 64, value_len) \
        == b"\xc4" * value_len
    assert sink_proc.result == b"\x9b" * msg

    # Both cgroups were actually served.
    snap = snapshot(system.copier)
    assert snap["cgroups"]["kv"]["total_copy_length"] > 0
    assert snap["cgroups"]["net"]["total_copy_length"] > 0
    # Global counters are consistent with per-client sums.
    total = sum(c["bytes_copied"] for c in snap["clients"].values())
    assert total == system.copier.bytes_copied
    assert system.copier.bytes_absorbed > 0
