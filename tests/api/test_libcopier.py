"""libCopier API tests (Table 2, §5.1)."""

import pytest

from repro.api import LibCopier, ShmBinding
from repro.kernel import System
from repro.mem.phys import PAGE_SIZE


def _mk(n_cores=3):
    system = System(n_cores=n_cores, copier=True, phys_frames=16384)
    proc = system.create_process("app")
    return system, proc


def _run(system, proc, gen):
    p = proc.spawn(gen, affinity=0)
    system.env.run_until(p.terminated, limit=500_000_000)
    return p.result


class TestHighLevel:
    def test_amemcpy_csync(self):
        system, proc = _mk()
        lib = LibCopier(proc)
        src = proc.mmap(PAGE_SIZE, populate=True)
        dst = proc.mmap(PAGE_SIZE, populate=True)
        proc.write(src, b"hello-lib")

        def app():
            yield from lib.amemcpy(dst, src, 9)
            yield from lib.csync(dst, 9)
            return proc.read(dst, 9)

        assert _run(system, proc, app()) == b"hello-lib"

    def test_amemmove_non_overlapping(self):
        system, proc = _mk()
        lib = LibCopier(proc)
        buf = proc.mmap(PAGE_SIZE * 4, populate=True)
        proc.write(buf, b"abcd" * 256)

        def app():
            yield from lib.amemmove(buf + 2 * PAGE_SIZE, buf, 1024)
            yield from lib.csync(buf + 2 * PAGE_SIZE, 1024)
            return proc.read(buf + 2 * PAGE_SIZE, 1024)

        assert _run(system, proc, app()) == b"abcd" * 256

    @pytest.mark.parametrize("shift", [512, 1024, 3000])
    def test_amemmove_forward_overlap(self, shift):
        system, proc = _mk()
        lib = LibCopier(proc)
        n = 8 * 1024
        buf = proc.mmap(n * 2, populate=True)
        data = bytes([i % 253 for i in range(n)])
        proc.write(buf, data)

        def app():
            yield from lib.amemmove(buf + shift, buf, n)
            yield from lib.csync(buf + shift, n)
            return proc.read(buf + shift, n)

        assert _run(system, proc, app()) == data

    @pytest.mark.parametrize("shift", [512, 2048])
    def test_amemmove_backward_overlap(self, shift):
        system, proc = _mk()
        lib = LibCopier(proc)
        n = 8 * 1024
        buf = proc.mmap(n * 2, populate=True)
        data = bytes([(i * 7) % 251 for i in range(n)])
        proc.write(buf + shift, data)

        def app():
            yield from lib.amemmove(buf, buf + shift, n)
            yield from lib.csync(buf, n)
            return proc.read(buf, n)

        assert _run(system, proc, app()) == data

    def test_amemmove_zero_or_same_is_noop(self):
        system, proc = _mk()
        lib = LibCopier(proc)
        buf = proc.mmap(PAGE_SIZE, populate=True)

        def app():
            r1 = yield from lib.amemmove(buf, buf, 100)
            r2 = yield from lib.amemmove(buf + 1, buf, 0)
            return r1, r2

        assert _run(system, proc, app()) == (None, None)

    def test_csync_all_covers_every_fd(self):
        system, proc = _mk()
        lib = LibCopier(proc)
        src = proc.mmap(PAGE_SIZE, populate=True)
        dst = proc.mmap(PAGE_SIZE, populate=True)
        proc.write(src, b"multi")

        def app():
            fd = lib.copier_create_queue()
            yield from lib._amemcpy(dst, src, 5, fd=fd)
            yield from lib.csync_all()
            return proc.read(dst, 5)

        assert _run(system, proc, app()) == b"multi"


class TestLowLevel:
    def test_descriptor_reuse_skips_alloc(self):
        system, proc = _mk()
        lib = LibCopier(proc)
        src = proc.mmap(PAGE_SIZE, populate=True)
        dst = proc.mmap(PAGE_SIZE, populate=True)

        def app():
            desc = yield from lib._amemcpy(dst, src, 2048)
            yield from lib._csync(0, 2048, descriptor=desc)
            # Reuse the same descriptor for the recycled I/O buffer.
            desc2 = yield from lib._amemcpy(dst, src, 2048, desc=desc)
            yield from lib._csync(0, 2048, descriptor=desc2)
            return desc is desc2

        assert _run(system, proc, app()) is True

    def test_csync_with_descriptor_skips_lookup(self):
        system, proc = _mk()
        lib = LibCopier(proc)
        src = proc.mmap(PAGE_SIZE, populate=True)
        dst = proc.mmap(PAGE_SIZE, populate=True)
        proc.write(src, b"skip-lookup")

        def app():
            desc = yield from lib._amemcpy(dst, src, 11)
            yield from lib._csync(0, 11, descriptor=desc)
            return proc.read(dst, 11)

        assert _run(system, proc, app()) == b"skip-lookup"

    def test_per_thread_queues_are_independent_domains(self):
        """Tasks on different fds have no cross-fd order dependency."""
        system, proc = _mk()
        lib = LibCopier(proc)
        src = proc.mmap(PAGE_SIZE, populate=True)
        dst1 = proc.mmap(PAGE_SIZE, populate=True)
        dst2 = proc.mmap(PAGE_SIZE, populate=True)
        proc.write(src, b"AB")

        def app():
            fd1 = lib.copier_create_queue()
            fd2 = lib.copier_create_queue()
            d1 = yield from lib._amemcpy(dst1, src, 2, fd=fd1)
            d2 = yield from lib._amemcpy(dst2, src, 2, fd=fd2)
            yield from lib._csync(dst2, 2, fd=fd2)
            yield from lib._csync(dst1, 2, fd=fd1)
            return proc.read(dst1, 2), proc.read(dst2, 2)

        assert _run(system, proc, app()) == (b"AB", b"AB")

    def test_unknown_fd_rejected(self):
        system, proc = _mk()
        lib = LibCopier(proc)
        with pytest.raises(ValueError, match="unknown Copier queue fd"):
            list(lib._amemcpy(0, 0, 1, fd=77))

    def test_lazy_flag_via_low_level(self):
        system, proc = _mk()
        lib = LibCopier(proc)
        src = proc.mmap(PAGE_SIZE, populate=True)
        dst = proc.mmap(PAGE_SIZE, populate=True)

        def app():
            yield from lib._amemcpy(dst, src, 512, lazy=True)
            return lib.client.pending, None

        _run(system, proc, app())
        # Task submitted lazily (it may or may not have run by now —
        # stats prove it went through the queue).
        assert lib.client.stats.submitted == 1

    def test_mapped_queue_alias(self):
        system, proc = _mk()
        lib = LibCopier(proc)
        src = proc.mmap(PAGE_SIZE, populate=True)
        dst = proc.mmap(PAGE_SIZE, populate=True)
        proc.write(src, b"mapped")

        def app():
            fd = lib.copier_create_mapped_queue(256)
            yield from lib._amemcpy(dst, src, 6, fd=fd)
            yield from lib._csync(dst, 6, fd=fd)
            return proc.read(dst, 6)

        assert _run(system, proc, app()) == b"mapped"

    def test_copier_awaken_wakes_sleeping_service(self):
        from repro.sim import Timeout

        system, proc = _mk()
        system.copier.polling = "scenario"
        system.copier.scenario_active = False
        lib = LibCopier(proc)
        src = proc.mmap(PAGE_SIZE, populate=True)
        dst = proc.mmap(PAGE_SIZE, populate=True)
        proc.write(src, b"wake")

        def app():
            yield from lib.amemcpy(dst, src, 4)
            yield Timeout(1_000_000)
            before = proc.read(dst, 4)
            system.copier.scenario_active = True
            lib.copier_awaken()
            yield from lib.csync(dst, 4)
            return before, proc.read(dst, 4)

        before, after = _run(system, proc, app())
        assert before == b"\x00" * 4
        assert after == b"wake"

    def test_set_copier_opt(self):
        system, proc = _mk()
        lib = LibCopier(proc)
        lib.set_copier_opt(copy_slice_bytes=128 * 1024,
                           lazy_period_cycles=99)
        assert system.copier.scheduler.copy_slice_bytes == 128 * 1024
        assert system.copier.lazy_period_cycles == 99
        with pytest.raises(ValueError):
            lib.set_copier_opt(bogus=1)


class TestShmBinding:
    def test_consumer_csync_via_offset(self):
        """A consumer with no queues of its own syncs by segment offset."""
        from repro.copier.task import Region
        from repro.mem.shm import SharedSegment

        system, proc = _mk()
        consumer = system.create_process("consumer")
        segment = SharedSegment(system.phys, 64 * 1024, contiguous=True)
        kernel_view = system.kernel_as.map_frames(segment.frames)
        consumer_view = consumer.mmap(64 * 1024, shared_segment=segment)
        consumer.aspace.ensure_mapped(consumer_view, 64 * 1024)
        binding = ShmBinding(system.copier, segment)

        src = proc.mmap(32 * 1024, populate=True)
        proc.write(src, b"\x5c" * (32 * 1024))

        def producer():
            desc = yield from proc.client.k_amemcpy(
                Region(proc.aspace, src, 32 * 1024),
                Region(system.kernel_as, kernel_view + 4096, 32 * 1024))
            binding.record(4096, 32 * 1024, desc, proc.client,
                           Region(system.kernel_as, kernel_view + 4096,
                                  32 * 1024))

        def consume():
            from repro.sim import Timeout
            yield Timeout(1000)  # let the producer publish
            yield from binding.csync(4096, 1024)
            return consumer.read(consumer_view + 4096, 1024)

        proc.spawn(producer(), affinity=0)
        cp = consumer.spawn(consume(), affinity=1)
        system.env.run_until(cp.terminated, limit=500_000_000)
        assert cp.result == b"\x5c" * 1024
