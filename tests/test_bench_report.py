"""Tests for benchmark report utilities and app-protocol helpers."""

import pytest

from repro.apps.common import (
    HEADER_LEN,
    KEY_LEN,
    LatencyRecorder,
    decode_header,
    encode_get,
    encode_set,
    percentile,
)
from repro.bench.report import ResultTable, improvement, size_label, speedup


class TestImprovement:
    def test_lower_is_better(self):
        assert improvement(100, 50) == pytest.approx(0.5)
        assert improvement(100, 120) == pytest.approx(-0.2)
        assert improvement(0, 50) == 0.0

    def test_speedup(self):
        assert speedup(10, 15) == pytest.approx(1.5)
        assert speedup(0, 15) == 0.0


class TestResultTable:
    def test_renders_aligned_columns(self):
        t = ResultTable("cap", ["name", "value"])
        t.add("short", 1)
        t.add("a-much-longer-name", 123456.0)
        text = t.render()
        assert "== cap ==" in text
        lines = text.splitlines()
        # caption + header + rule + 2 rows (plus a leading blank line).
        assert len([l for l in lines if l.strip()]) == 5
        # Columns align: the rule row is as wide as the widest cells.
        header, rule = lines[2], lines[3]
        assert len(header) == len(rule)

    def test_row_width_mismatch_rejected(self):
        t = ResultTable("cap", ["a", "b"])
        with pytest.raises(ValueError):
            t.add(1)

    def test_float_formatting(self):
        t = ResultTable("cap", ["v"])
        t.add(1.23456)
        t.add(1234.5)
        assert "1.235" in t.render()
        assert "1234.5" in t.render()

    def test_size_label(self):
        assert size_label(512) == "512B"
        assert size_label(4096) == "4KB"
        assert size_label(2 << 20) == "2MB"


class TestLatencyRecorder:
    def test_mean_and_percentiles(self):
        r = LatencyRecorder()
        for v in range(1, 101):
            r.record(v)
        assert r.mean == pytest.approx(50.5)
        assert r.p(50) == pytest.approx(50.5)
        assert r.p99 == pytest.approx(99.01)

    def test_empty_recorder(self):
        r = LatencyRecorder()
        assert r.mean == 0.0
        assert r.p99 == 0.0
        assert r.throughput(1000) == 0.0

    def test_throughput(self):
        r = LatencyRecorder()
        r.record(1)
        r.record(2)
        # 2 requests in 2.9e9 cycles = 1 second -> 2 req/s.
        assert r.throughput(2.9e9) == pytest.approx(2.0)

    def test_percentile_single_sample(self):
        assert percentile([42], 99) == 42


class TestProtocol:
    def test_set_header_roundtrip(self):
        msg = encode_set(b"mykey", 12345)
        op, key, value_len = decode_header(msg)
        assert (op, key, value_len) == ("SET", b"mykey", 12345)
        assert len(msg) == HEADER_LEN + KEY_LEN

    def test_get_header_roundtrip(self):
        msg = encode_get(b"k2")
        op, key, value_len = decode_header(msg)
        assert (op, key, value_len) == ("GET", b"k2", 0)

    def test_key_padding_stripped(self):
        msg = encode_set(b"a", 1)
        _op, key, _n = decode_header(msg)
        assert key == b"a"


class TestEnergyModel:
    def test_energy_counts_busy_and_idle(self):
        from repro.sim import Compute, Environment
        from repro.sim.stats import EnergyModel

        env = Environment(n_cores=2)

        def proc():
            yield Compute(1000)

        env.spawn(proc(), affinity=0)
        env.run(until=2000)
        model = EnergyModel(active_power=1.0, idle_power=0.1)
        # Core 0: 1000 busy + 1000 idle; core 1: 2000 idle.
        assert model.energy(env.cores) == pytest.approx(
            1000 * 1.0 + 1000 * 0.1 + 2000 * 0.1)

    def test_all_idle_machine(self):
        from repro.sim import Environment
        from repro.sim.stats import EnergyModel

        env = Environment(n_cores=1)
        env.run(until=500)
        assert EnergyModel(idle_power=0.0).energy(env.cores) == 0.0
