"""Shared-memory descriptor binding (§5.1.1).

Processes exchanging data through shared memory establish a dedicated
descriptor region (*Dshm*) bound to the segment; a consumer csyncs by the
data's offset into the segment, locating the producer's descriptor without
any channel of its own.  Binder's Parcel is the flagship user (§5.2).
"""

from repro.copier.task import Region, SyncTask
from repro.sim import Compute

_MAX_SPIN = 800


class ShmBinding:
    """The Dshm: offset-indexed descriptors for copies into one segment."""

    def __init__(self, service, segment):
        self.service = service
        self.segment = segment
        # offset -> (length, descriptor, owner_client, dst_region)
        self._entries = {}

    def record(self, offset, length, descriptor, owner_client, dst_region):
        """Producer side: publish the descriptor for a copy into
        [offset, offset+length) of the segment."""
        self._entries[offset] = (length, descriptor, owner_client, dst_region)

    def entries_covering(self, offset, length):
        out = []
        end = offset + length
        for off, (ln, desc, owner, dst) in self._entries.items():
            if off < end and offset < off + ln:
                out.append((off, ln, desc, owner, dst))
        return out

    def csync(self, offset, length, env=None):
        """Consumer side: wait for [offset, offset+length) of the segment.

        Spins on the bound descriptors; submits Sync Tasks to the producer's
        k-mode queue to promote the needed segments.  Generator.
        """
        params = self.service.params
        yield Compute(params.csync_check_cycles, tag="csync")
        entries = self.entries_covering(offset, length)
        if self._ready(entries, offset, length):
            return
        for off, ln, desc, owner, dst in entries:
            lo = max(offset, off)
            hi = min(offset + length, off + ln)
            if desc.range_ready(lo - off, hi - lo):
                continue
            sync = SyncTask(owner, "k",
                            Region(dst.aspace, dst.start + (lo - off), hi - lo))
            sync.submitted_at = self.service.env.now
            owner.k_queues.sync.submit(sync)
            self.service.notify_submit(owner)
        spin = params.csync_spin_cycles
        while not self._ready(entries, offset, length):
            yield Compute(spin, tag="csync")
            spin = min(spin * 2, _MAX_SPIN)

    @staticmethod
    def _ready(entries, offset, length):
        for off, ln, desc, _owner, _dst in entries:
            lo = max(offset, off)
            hi = min(offset + length, off + ln)
            if hi > lo and not desc.range_ready(lo - off, hi - lo):
                return False
        return True


def shm_descr_bind(service, segment):
    """Create the binding for a segment (Table 2's shm_descr_bind)."""
    return ShmBinding(service, segment)
