"""libCopier: the developer-facing toolkit API (§5.1, Table 2)."""

from repro.api.libcopier import LibCopier
from repro.api.shm_bind import ShmBinding

__all__ = ["LibCopier", "ShmBinding"]
