"""libCopier: high-level and low-level developer APIs (Table 2).

High level — ``amemcpy``/``amemmove``/``csync``/``csync_all`` on the
process's default queues, with pooled descriptors managed internally.

Low level — ``_amemcpy``/``_csync`` for framework authors: custom
descriptor reuse, lazy tasks, post-copy FUNCs, and per-thread queues
(``copier_create_queue`` returns an fd naming an extra queue set whose
dependency domain is independent of the default one, §5.1.1).

All time-consuming methods are generators: invoke with ``yield from``
inside a simulator process.
"""

from repro.sim import Compute

_BOUNCE_BYTES = 256 * 1024


class LibCopier:
    """Per-process library state bound to one OS process."""

    def __init__(self, process):
        if process.client is None:
            raise ValueError("process has no Copier client (copier disabled?)")
        self.process = process
        self.service = process.client.service
        self._fd_clients = {-1: process.client}
        self._next_fd = 3
        self._bounce_va = None
        self._bounce_len = 0

    @property
    def client(self):
        return self._fd_clients[-1]

    def _client_for(self, fd):
        try:
            return self._fd_clients[fd]
        except KeyError:
            raise ValueError("unknown Copier queue fd %d" % fd) from None

    # ----------------------------------------------------------- high level

    def amemcpy(self, dst, src, size, deadline=None):
        """Async memcpy on the default queues; returns the descriptor.

        ``deadline`` (absolute cycles) marks the copy droppable: past it
        the service reaps the task instead of copying late, and the
        admission valve may shed or refuse it up front.
        """
        return (yield from self.client.amemcpy(dst, src, size,
                                               deadline=deadline))

    def amemmove(self, dst, src, size):
        """Async memmove: overlap-safe (§3 footnote).

        Non-overlapping ranges degrade to one task.  Overlapping ranges
        bounce through a recycled intermediate buffer as two chained tasks;
        WAR tracking orders them, and copy absorption keeps the bounce off
        the critical path.
        """
        if size == 0 or dst == src:
            return None
        if dst + size <= src or src + size <= dst:
            return (yield from self.client.amemcpy(dst, src, size))
        bounce = self._get_bounce(size)
        yield from self.client.amemcpy(bounce, src, size)
        return (yield from self.client.amemcpy(dst, bounce, size))

    def _get_bounce(self, size):
        if self._bounce_len < size:
            self._bounce_va = self.process.aspace.mmap(
                max(size, _BOUNCE_BYTES), name="libcopier-bounce")
            self._bounce_len = max(size, _BOUNCE_BYTES)
        return self._bounce_va

    def csync(self, addr, size, deadline=None):
        """Ensure prior async copies covering [addr, addr+size) landed.

        With a ``deadline``, a wait that reaches it cancels the covering
        copies and raises :class:`~repro.copier.errors.DeadlineMissed`.
        """
        yield from self.client.csync(addr, size, deadline=deadline)

    def csync_all(self):
        """Ensure all async copies and FUNCs of this process finished."""
        for client in self._fd_clients.values():
            yield from client.csync_all()

    def post_handlers(self):
        """Run queued UFUNC handlers (call periodically, Fig. 4)."""
        for client in self._fd_clients.values():
            yield from client.post_handlers()

    # ------------------------------------------------------------ low level

    def _amemcpy(self, dst, src, size, fd=-1, func=None, desc=None,
                 lazy=False, segment_bytes=None, deadline=None):
        """Expert amemcpy: custom queue (fd), descriptor reuse, FUNC, lazy.

        Reusing a descriptor for a recycled I/O buffer skips allocation
        and the csync table lookup (§5.1.1).
        """
        client = self._client_for(fd)
        if desc is not None:
            desc.reset()
        return (yield from client.amemcpy(
            dst, src, size, handler=func, descriptor=desc, lazy=lazy,
            segment_bytes=segment_bytes, deadline=deadline))

    def _csync(self, offset, size, fd=-1, descriptor=None):
        """Expert csync: with ``descriptor`` the bitmap is checked directly
        (no address-index lookup); otherwise falls back to address lookup
        on the fd's queues."""
        client = self._client_for(fd)
        if descriptor is None:
            yield from client.csync(offset, size)
            return
        params = self.service.params
        yield Compute(params.csync_check_cycles, tag="csync")
        if descriptor.range_ready(offset, size):
            return
        spin = params.csync_spin_cycles
        while not descriptor.range_ready(offset, size):
            if descriptor.aborted:
                from repro.copier.errors import CopyAborted
                raise CopyAborted("descriptor aborted during _csync")
            yield Compute(spin, tag="csync")
            spin = min(spin * 2, 800)

    def aabort(self, addr, size, fd=-1):
        """Submit an abort Sync Task discarding queued copies (§4.4)."""
        yield from self._client_for(fd).abort(addr, size)

    def acancel(self, addr, size, fd=-1):
        """Cancel unfinished copies targeting the range; returns the count.

        Unlike :meth:`aabort` (a queued Sync Task that discards *queued*
        copies), cancellation marks tasks wherever they are in the
        pipeline and the service retires them at its next sweep.
        """
        return (yield from self._client_for(fd).cancel(addr, size))

    # ----------------------------------------------------- queue management

    def copier_create_queue(self, capacity=1024):
        """Create an extra queue set (its own dependency domain); returns fd.

        Maps to the paper's per-thread queues: web-server-style apps whose
        threads have no cross-thread copy dependencies give each thread its
        own fd to avoid serializing through one ring (§5.1.1).
        """
        fd = self._next_fd
        self._next_fd += 1
        client = self.service.create_client(
            self.process.aspace,
            name="%s-q%d" % (self.process.name, fd),
            queue_capacity=capacity)
        client.process = self.process.sim_proc
        self._fd_clients[fd] = client
        return fd

    def copier_create_mapped_queue(self, capacity=1024):
        """Table 2's mapped-queue variant: create queues and map the
        u-mode set into the process.  In this substrate queues are plain
        objects, so creation and mapping coincide; the distinct entry
        point is kept for API parity."""
        return self.copier_create_queue(capacity)

    def set_copier_opt(self, **opts):
        """Global knobs (copy slice, lazy period)."""
        if "copy_slice_bytes" in opts:
            self.service.scheduler.copy_slice_bytes = opts.pop("copy_slice_bytes")
        if "lazy_period_cycles" in opts:
            self.service.lazy_period_cycles = opts.pop("lazy_period_cycles")
        if opts:
            raise ValueError("unknown Copier options: %s" % sorted(opts))

    def copier_awaken(self, fd=-1):
        """Wake a sleeping Copier thread (scenario mode)."""
        self.service.awaken()
