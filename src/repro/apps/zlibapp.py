"""zlib deflate_fast with a sliding window (§6.2.3).

deflate's pattern matcher searches a 32 KB sliding window; advancing the
window slides its contents down with a copy (fill_window's
``memcpy(window, window+wsize, wsize)``).  Copier turns the slide into an
async amemmove overlapped with pattern matching on the current block,
csynced only when the matcher next consults the slid region — up to 18.8 %
on ≤256 KB inputs in the paper.
"""

import zlib as _zlib


WINDOW_BYTES = 32 * 1024
BLOCK_BYTES = 16 * 1024
MATCH_CYCLES_PER_BYTE = 2.4   # hash-chain search in deflate_fast
BLOCK_SETUP_CYCLES = 500


class Deflater:
    """Compresses an input buffer block by block."""

    def __init__(self, system, mode="sync", name="zlib"):
        self.system = system
        self.mode = mode
        self.proc = system.create_process(name)
        self.window = self.proc.mmap(WINDOW_BYTES * 2, populate=True,
                                     name="zlib-window")
        self.input = self.proc.mmap(1 << 20, populate=True, name="zlib-in")

    def deflate(self, data):
        """Generator; returns (latency_cycles, compressed_bytes)."""
        system, proc = self.system, self.proc
        lib = proc.client if self.mode == "copier" else None
        proc.write(self.input, data)
        t0 = system.env.now
        pos = 0
        pending_slide = False
        while pos < len(data):
            block = min(BLOCK_BYTES, len(data) - pos)
            yield system.app_compute(proc, BLOCK_SETUP_CYCLES)
            if pending_slide:
                # The matcher consults the slid window: sync it first.
                if lib is not None:
                    yield from lib.csync(self.window, WINDOW_BYTES)
                pending_slide = False
            # Load the block into the upper window half, then match.
            if lib is not None and block >= system.params.copier_user_min_bytes:
                yield from lib.amemcpy(self.window + WINDOW_BYTES,
                                       self.input + pos, block)
                # Matching proceeds in chunks; each chunk csyncs its bytes
                # just before use (copy-use pipeline).
                done = 0
                while done < block:
                    chunk = min(4096, block - done)
                    yield from lib.csync(self.window + WINDOW_BYTES + done,
                                         chunk)
                    yield system.app_compute(
                        proc, int(chunk * MATCH_CYCLES_PER_BYTE))
                    done += chunk
            else:
                yield from system.sync_copy(
                    proc, proc.aspace, self.input + pos,
                    proc.aspace, self.window + WINDOW_BYTES, block,
                    engine="avx")
                yield system.app_compute(
                    proc, int(block * MATCH_CYCLES_PER_BYTE))
            # Slide the window: async under Copier, overlapping the next
            # block's matching.
            if lib is not None:
                yield from lib.amemcpy(self.window,
                                       self.window + WINDOW_BYTES,
                                       WINDOW_BYTES)
                pending_slide = True
            else:
                yield from system.sync_copy(
                    proc, proc.aspace, self.window + WINDOW_BYTES,
                    proc.aspace, self.window, WINDOW_BYTES, engine="avx")
            pos += block
        if lib is not None:
            yield from lib.csync_all()
        latency = system.env.now - t0
        return latency, _zlib.compress(data, 1)
