"""A gRPC-style RPC framework ported to Copier's low-level API (§5.1.1).

The paper positions the low-level APIs for "frameworks (e.g., Binder or
gRPC) which can benefit many high-level apps".  This framework is that
case study:

* messages are Protobuf-style length-delimited payloads;
* each worker thread owns a per-thread queue fd (``copier_create_queue``)
  so independent requests never serialize through one ring;
* the receive path reuses one descriptor per connection I/O buffer
  (``_amemcpy(..., desc=...)`` + ``_csync(..., descriptor=...)``) to skip
  pooled allocation and index lookups;
* deserialization pipelines with the in-flight recv copy, and responses
  ride the async send path.

Applications above :class:`RpcServer` register plain handlers and never
see a Copier API — the framework port benefits them transparently (the
paper's Binder/Parcel argument).
"""

from repro.api import LibCopier
from repro.apps.protobuf import deserialize_bytes, serialize
from repro.kernel.net import recv, send, socket_pair
from repro.sim import DEFAULT_RUN_LIMIT

HEADER = 16  # method id (4) + request id (4) + payload length (8)
DISPATCH_CYCLES = 400
MARSHAL_CYCLES_PER_BYTE = 0.3


def encode_request(method_id, request_id, payload):
    return (method_id.to_bytes(4, "little")
            + request_id.to_bytes(4, "little")
            + len(payload).to_bytes(8, "little")
            + payload)


def decode_header(data):
    method_id = int.from_bytes(data[0:4], "little")
    request_id = int.from_bytes(data[4:8], "little")
    length = int.from_bytes(data[8:16], "little")
    return method_id, request_id, length


class RpcServer:
    """A multi-worker RPC server; each worker serves one connection."""

    def __init__(self, system, mode="sync", name="rpc-server",
                 buf_bytes=1 << 20):
        self.system = system
        self.mode = mode
        self.proc = system.create_process(name)
        self.lib = LibCopier(self.proc) if mode == "copier" else None
        self.handlers = {}
        self.buf_bytes = buf_bytes
        self.served = 0

    def register(self, method_id, handler):
        """``handler(fields) -> reply_fields`` — plain Python, no Copier."""
        self.handlers[method_id] = handler

    def worker(self, sock, reply_sock, n_requests, affinity=None):
        """One worker loop bound to one connection (generator).

        In copier mode the worker creates its own queue fd and a reusable
        descriptor for its I/O buffer — the §5.1.1 expert optimizations.
        """
        system, proc = self.system, self.proc
        rx = proc.mmap(self.buf_bytes, populate=True)
        tx = proc.mmap(self.buf_bytes, populate=True)
        worker_client = None
        if self.lib is not None:
            # Per-thread queue: this worker's copies form their own
            # dependency domain, independent of sibling workers (§5.1.1).
            fd = self.lib.copier_create_queue()
            worker_client = self.lib._client_for(fd)
        for _ in range(n_requests):
            copier_recv = (self.mode == "copier")
            got = yield from recv(system, proc, sock, rx, self.buf_bytes,
                                  mode="copier" if copier_recv else "sync",
                                  client=worker_client)
            if copier_recv:
                yield from worker_client.csync(rx, HEADER)
            method_id, request_id, length = decode_header(
                proc.read(rx, HEADER))
            yield system.app_compute(proc, DISPATCH_CYCLES)
            if copier_recv and length:
                # Deserialize field-by-field, pipelined with the copy.
                pos = 0
                while pos < length:
                    chunk = min(1024, length - pos)
                    yield from worker_client.csync(rx + HEADER + pos, chunk)
                    yield system.app_compute(
                        proc, int(chunk * MARSHAL_CYCLES_PER_BYTE))
                    pos += chunk
            else:
                yield system.app_compute(
                    proc, int(length * MARSHAL_CYCLES_PER_BYTE))
            fields = deserialize_bytes(proc.read(rx + HEADER, length))
            handler = self.handlers[method_id]
            reply_fields = handler(fields)
            reply_payload = serialize(reply_fields)
            yield system.app_compute(
                proc, int(len(reply_payload) * MARSHAL_CYCLES_PER_BYTE))
            reply = encode_request(method_id, request_id, reply_payload)
            proc.write(tx, reply)
            yield from send(system, proc, reply_sock, tx, len(reply),
                            mode="copier" if self.mode == "copier"
                            else "sync", client=worker_client)
            self.served += 1


class RpcChannel:
    """Client-side stub channel over one connection pair."""

    def __init__(self, system, server_sock, reply_sock, name="rpc-client"):
        self.system = system
        self.server_sock = server_sock
        self.reply_sock = reply_sock
        self.proc = system.create_process(name)
        self.tx = self.proc.mmap(1 << 20, populate=True)
        self.rx = self.proc.mmap(1 << 20, populate=True)
        self._next_request = 1
        self.latencies = []

    def call(self, method_id, fields):
        """Unary RPC (generator); returns the reply fields."""
        system, proc = self.system, self.proc
        payload = serialize(fields)
        request_id = self._next_request
        self._next_request += 1
        message = encode_request(method_id, request_id, payload)
        proc.write(self.tx, message)
        t0 = system.env.now
        yield from send(system, proc, self.server_sock, self.tx,
                        len(message))
        got = yield from recv(system, proc, self.reply_sock, self.rx,
                              1 << 20)
        self.latencies.append(system.env.now - t0)
        r_method, r_request, r_length = decode_header(proc.read(self.rx,
                                                                HEADER))
        assert r_request == request_id, "reply matched to wrong call"
        return deserialize_bytes(proc.read(self.rx + HEADER, r_length))


def run_rpc_benchmark(system, mode, payload_bytes, n_requests,
                      n_connections=2, limit=DEFAULT_RUN_LIMIT):
    """n_connections client/worker pairs against one RpcServer.

    Returns (server, mean latency, elapsed cycles).
    """
    server = RpcServer(system, mode=mode)
    server.register(1, lambda fields: [f[:16] for f in fields])  # "index"
    server.register(2, lambda fields: fields)                    # "echo"
    channels = []
    client_procs = []
    n_app_cores = max(1, system.env.cores.n_cores - 1)
    for c in range(n_connections):
        c2s_tx, c2s_rx = socket_pair(system, "rpc-c2s-%d" % c)
        s2c_tx, s2c_rx = socket_pair(system, "rpc-s2c-%d" % c)
        channel = RpcChannel(system, c2s_tx, s2c_rx,
                             name="rpc-client-%d" % c)
        channels.append(channel)
        system.env.spawn(
            server.worker(c2s_rx, s2c_tx, n_requests),
            name="rpc-worker-%d" % c,
            affinity=c % n_app_cores)

        def client_gen(channel=channel):
            fields = [b"x" * 1000] * max(1, payload_bytes // 1000)
            for i in range(n_requests):
                yield from channel.call(2 if i % 2 else 1, fields)

        client_procs.append(channel.proc.spawn(
            client_gen(), affinity=(c + 1) % n_app_cores))
    t0 = system.env.now
    for p in client_procs:
        system.env.run_until(p.terminated, limit=limit)
    elapsed = system.env.now - t0
    lat = [l for ch in channels for l in ch.latencies]
    return server, sum(lat) / len(lat), elapsed
