"""Protobuf-style receive + deserialize pipeline (§6.2.3, Fig. 13-a).

An app receives a length-delimited serialized message and decodes it into
fields.  Deserialization walks the buffer sequentially, so with Copier the
recv copy streams in parallel with decoding: each field chunk is csynced
just before it is parsed (the copy-use pipeline of §4.1).
"""

from repro.kernel.net import recv

FIELD_BYTES = 1024
DECODE_CYCLES_PER_BYTE = 0.8  # varint+utf8 validation etc.
MSG_INIT_CYCLES = 900         # arena/message object setup


def serialize(fields):
    """Length-delimited encoding: [u32 len][bytes]..."""
    out = bytearray()
    for field in fields:
        out += len(field).to_bytes(4, "little")
        out += field
    return bytes(out)


def deserialize_bytes(data):
    fields = []
    pos = 0
    while pos + 4 <= len(data):
        ln = int.from_bytes(data[pos:pos + 4], "little")
        pos += 4
        if ln == 0 or pos + ln > len(data):
            break
        fields.append(data[pos:pos + ln])
        pos += ln
    return fields


class ProtobufReceiver:
    """Receives one serialized message and deserializes it."""

    def __init__(self, system, mode="sync", name="protobuf"):
        self.system = system
        self.mode = mode
        self.proc = system.create_process(name)
        self.buf = self.proc.mmap(1 << 20, populate=True, name="pb-buf")
        self.messages = []

    def recv_and_deserialize(self, sock, msg_bytes):
        """Generator; returns (latency_cycles, fields)."""
        system, proc = self.system, self.proc
        use_async = (self.mode == "copier"
                     and msg_bytes >= system.params.copier_kernel_min_bytes)
        t0 = system.env.now
        got = yield from recv(system, proc, sock, self.buf, 1 << 20,
                              mode="copier" if use_async else "sync")
        yield system.app_compute(proc, MSG_INIT_CYCLES)
        fields = []
        pos = 0
        while pos < got:
            chunk = min(FIELD_BYTES, got - pos)
            if use_async:
                yield from proc.client.csync(self.buf + pos, chunk)
            yield system.app_compute(
                proc, int(chunk * DECODE_CYCLES_PER_BYTE))
            pos += chunk
        data = proc.read(self.buf, got)
        fields = deserialize_bytes(data)
        latency = system.env.now - t0
        self.messages.append(fields)
        return latency, fields
