"""Redis-like KV server and closed-loop clients (§6.2.1, Fig. 11/14).

The server reproduces Redis's five Copier-relevant copies:

1. recv(): kernel skb → input I/O buffer;
2. SET: input buffer → the value's storage buffer (Redis re-buffers after
   parsing to avoid protocol-fragmenting the value);
3. GET: value buffer → output I/O buffer;
4. send(): output buffer → kernel skb;
5. an internal key/metadata copy during processing.

Copier mode follows the paper's port: recv is a Lazy Task (only header+key
are csynced for parsing), the value copy absorbs straight from the kernel
buffer, the GET reply chain absorbs value→skb, and leftover intermediate
copies are aborted — with proactive fault handling keeping page faults off
the critical path.
"""

from repro.apps.common import (
    HEADER_LEN,
    KEY_LEN,
    LatencyRecorder,
    decode_header,
    encode_get,
    encode_set,
)
from repro.baselines.ub import ub_compute
from repro.baselines.zio import ZIO
from repro.copier.errors import AdmissionReject, CopyAborted, DeadlineMissed
from repro.kernel.net import recv, send
from repro.sim import Compute

REQ_META = HEADER_LEN + KEY_LEN  # header + key prefix of every request

# Application compute costs (cycles), calibrated so the copy cycle share
# matches Fig. 2-a's Redis bars at 16 KB / 256 KB values.
PARSE_CYCLES = 500
SET_BOOKKEEPING_CYCLES = 900
GET_LOOKUP_CYCLES = 600
PER_REQUEST_CYCLES = 800


class RedisServer:
    """A single-threaded KV server in one of the evaluated modes.

    Modes: ``"sync"`` (baseline), ``"copier"``, ``"zio"``, ``"ub"``,
    ``"zerocopy"`` (MSG_ZEROCOPY replies for GETs).
    """

    def __init__(self, system, mode="sync", name="redis",
                 io_buf_bytes=1 << 20, arena_bytes=1 << 24,
                 request_timeout_cycles=None):
        self.system = system
        self.mode = mode
        # Copier mode: optional per-SET copy budget.  The value copy's
        # deadline is submit time + this; a SET whose copy misses it is
        # dropped (key removed, ``timeouts`` bumped) instead of blocking
        # the serve loop — the overload-protection story for Fig. 11.
        self.request_timeout_cycles = request_timeout_cycles
        self.timeouts = 0
        self.proc = system.create_process(name)
        self.io_in = self.proc.mmap(io_buf_bytes, populate=True,
                                    name="redis-io-in")
        self.io_out = self.proc.mmap(io_buf_bytes, populate=True,
                                     name="redis-io-out")
        self.arena = self.proc.mmap(arena_bytes, name="redis-arena")
        self._arena_cursor = 0
        self._arena_bytes = arena_bytes
        self.db = {}  # key -> (va, length)
        self.zio = ZIO(system, self.proc) if mode == "zio" else None
        self._pending_set = None  # (va, length) awaiting csync+abort
        self._get_was_lazy = False
        # MSG_ZEROCOPY ownership management (§2.2): a ring of reply
        # buffers, each unusable until its completion is reaped.
        if mode == "zerocopy":
            self._zc_ring = [self.io_out] + [
                self.proc.mmap(io_buf_bytes, populate=True,
                               name="redis-io-zc%d" % i) for i in range(3)]
        else:
            self._zc_ring = [self.io_out]
        self._zc_idx = 0
        self._zc_pending = {}
        # Adaptive recv: async recv only pays off when the payload is big
        # enough to absorb/overlap; track the last message size (§4.6).
        self._last_msg_len = 1 << 20
        self.requests_served = 0

    # -------------------------------------------------------------- helpers

    def _alloc_value(self, length):
        # Page-align allocations: real Redis uses jemalloc size classes;
        # alignment is also what gives zIO's steal path a chance.
        aligned = (length + 4095) & ~4095
        if self._arena_cursor + aligned > self._arena_bytes:
            self._arena_cursor = 0  # recycle (benchmarks overwrite keys)
        va = self.arena + self._arena_cursor
        self._arena_cursor += aligned
        return va

    def _compute(self, cycles):
        if self.mode == "ub":
            return ub_compute(self.system, self.proc, cycles)
        return self.system.app_compute(self.proc, cycles)

    # ------------------------------------------------------------ main loop

    def serve(self, sock, reply_socks, n_requests, affinity=None):
        """Generator: serve ``n_requests`` then return."""
        system, proc, mode = self.system, self.proc, self.mode
        syscall_mode = mode if mode in ("copier", "ub") else "sync"
        for _ in range(n_requests):
            if mode == "copier" and self._pending_set is not None:
                # Guideline: sync the value copy and retire the lazy recv
                # before the input buffer is reused by the next recv.
                (va, length, src_off, recv_was_async,
                 key, deadline) = self._pending_set
                try:
                    yield from proc.client.csync(va, length,
                                                 deadline=deadline)
                except (CopyAborted, DeadlineMissed):
                    # The value copy blew its budget: the entry is torn,
                    # so the whole SET is dropped (a request timeout).
                    self.db.pop(key, None)
                    self.timeouts += 1
                if recv_was_async:
                    yield from proc.client.abort(self.io_in + src_off, length)
                self._pending_set = None
            if mode == "zio":
                yield from self.zio.before_write(self.io_in, 1 << 20)
            if mode == "zerocopy":
                # Rotate reply buffers; reap the recycled slot's completion
                # before reuse (the §2.2 ownership-management burden).
                self._zc_idx = (self._zc_idx + 1) % len(self._zc_ring)
                self.io_out = self._zc_ring[self._zc_idx]
                completion = self._zc_pending.pop(self._zc_idx, None)
                if completion is not None:
                    from repro.kernel.net import zerocopy_reap
                    yield from zerocopy_reap(system, proc, completion)
            use_async_recv = (mode == "copier" and self._last_msg_len
                              >= system.params.copier_user_min_bytes)
            recv_mode = syscall_mode if (mode != "copier" or use_async_recv) \
                else "sync"
            got = yield from recv(system, proc, sock, self.io_in, 1 << 20,
                                  mode=recv_mode,
                                  lazy=(mode == "copier"))
            self._last_msg_len = got
            if mode == "copier" and use_async_recv:
                yield from proc.client.csync(self.io_in, REQ_META)
            yield self._compute(PARSE_CYCLES)
            header = proc.read(self.io_in, REQ_META)
            op, key, value_len = decode_header(header)
            client_id = header[4]
            yield self._compute(PER_REQUEST_CYCLES)
            if op == "SET":
                yield from self._handle_set(key, value_len, use_async_recv)
                reply_len = HEADER_LEN
                self._write_reply_header(client_id, 0, ok=True)
            else:
                reply_len = yield from self._handle_get(key, client_id)
            yield from self._send_reply(reply_socks[client_id], reply_len)
            self.requests_served += 1

    def _write_reply_header(self, client_id, value_len, ok=True):
        header = (b"+OK" if ok else b"-ER") + bytes([0, client_id])
        header = header.ljust(HEADER_LEN - 8, b"\x00")
        header += value_len.to_bytes(8, "little")
        self.proc.write(self.io_out, header)

    def _handle_set(self, key, value_len, recv_was_async=True):
        proc, system = self.proc, self.system
        # jemalloc-style reuse: overwriting a key with a same-size value
        # recycles its buffer (so steady-state SETs fault only once).
        existing = self.db.get(bytes(key))
        if existing is not None and existing[1] == value_len:
            va = existing[0]
        else:
            va = self._alloc_value(value_len)
        src = self.io_in + REQ_META
        # Copy 5: internal key/metadata copy (small: below break-even,
        # so even the Copier port keeps it synchronous, §4.6).
        yield Compute(system.params.cpu_copy_cycles(KEY_LEN, engine="avx"),
                      tag="copy")
        if (self.mode == "copier"
                and value_len >= system.params.copier_user_min_bytes):
            deadline = None
            if self.request_timeout_cycles is not None:
                deadline = system.env.now + self.request_timeout_cycles
            try:
                yield from proc.client.amemcpy(va, src, value_len,
                                               deadline=deadline)
            except AdmissionReject:
                # The overload valve refused the copy outright: the SET
                # times out now rather than queueing to miss later.
                self.timeouts += 1
                yield self._compute(SET_BOOKKEEPING_CYCLES)
                return
            self._pending_set = (va, value_len, REQ_META, recv_was_async,
                                 bytes(key), deadline)
        elif self.mode == "zio":
            yield from self.zio.copy(va, src, value_len)
        else:
            if self.mode == "copier":
                # Guideline (§5.1.1): sync the lazy recv's bytes before a
                # direct read of the input buffer.
                yield from proc.client.csync(src, value_len)
            yield from system.sync_copy(proc, proc.aspace, src,
                                        proc.aspace, va, value_len,
                                        engine="avx")
        yield self._compute(SET_BOOKKEEPING_CYCLES)
        self.db[bytes(key)] = (va, value_len)

    def _handle_get(self, key, client_id):
        proc, system = self.proc, self.system
        yield self._compute(GET_LOOKUP_CYCLES)
        entry = self.db.get(bytes(key))
        if entry is None:
            self._write_reply_header(client_id, 0, ok=False)
            return HEADER_LEN
        va, length = entry
        self._write_reply_header(client_id, length)
        out = self.io_out + HEADER_LEN
        if (self.mode == "copier"
                and length >= system.params.copier_user_min_bytes):
            # Lazy: the send chain absorbs value→skb; abort the leftover.
            yield from proc.client.amemcpy(out, va, length, lazy=True)
            self._get_was_lazy = True
        elif self.mode == "copier":
            # Below the §4.6 break-even: plain sync copy, async send still
            # applies downstream.
            yield from system.sync_copy(proc, proc.aspace, va,
                                        proc.aspace, out, length,
                                        engine="avx")
        elif self.mode == "zio":
            yield from self.zio.before_write(out, length)
            yield from self.zio.copy(out, va, length)
        else:
            yield from system.sync_copy(proc, proc.aspace, va,
                                        proc.aspace, out, length,
                                        engine="avx")
        return HEADER_LEN + length

    def _send_reply(self, sock, reply_len):
        proc, system = self.proc, self.system
        if self.mode == "copier" and reply_len > HEADER_LEN:
            yield from send(system, proc, sock, self.io_out, reply_len,
                            mode="copier")
            if self._get_was_lazy:
                yield from proc.client.abort(self.io_out + HEADER_LEN,
                                             reply_len - HEADER_LEN)
                self._get_was_lazy = False
        elif self.mode == "zio" and reply_len > HEADER_LEN:
            # zIO interposes send: transmit the value from its original
            # buffer (no materialization), kernel copy unchanged.
            src_va, ind = self.zio.send_source(self.io_out + HEADER_LEN,
                                               reply_len - HEADER_LEN)
            if ind is not None:
                value = proc.read(src_va, reply_len - HEADER_LEN)
                proc.write(self.io_out + HEADER_LEN, value)
                self.zio.drop(ind)
            yield from send(system, proc, sock, self.io_out, reply_len)
        elif self.mode == "zerocopy" and reply_len >= 10 * 1024:
            completion = yield from send(system, proc, sock, self.io_out,
                                         reply_len, mode="zerocopy")
            self._zc_pending[self._zc_idx] = completion
        else:
            mode = "ub" if self.mode == "ub" else "sync"
            yield from send(system, proc, sock, self.io_out, reply_len,
                            mode=mode)


class RedisClient:
    """A closed-loop redis-benchmark-style client."""

    def __init__(self, system, client_id, server_sock, reply_sock,
                 name="redis-client"):
        self.system = system
        self.client_id = client_id
        self.server_sock = server_sock
        self.reply_sock = reply_sock
        self.proc = system.create_process("%s-%d" % (name, client_id))
        self.tx = self.proc.mmap(1 << 20, populate=True)
        self.rx = self.proc.mmap(1 << 20, populate=True)
        self.latency = LatencyRecorder()

    def run(self, ops):
        """ops: iterable of ("SET"|"GET", key, value_len)."""
        system, proc = self.system, self.proc
        for op, key, value_len in ops:
            request = self._encode(op, key, value_len)
            total = len(request) + (value_len if op == "SET" else 0)
            proc.write(self.tx, request)
            t0 = system.env.now
            yield from send(system, proc, self.server_sock, self.tx, total)
            yield from recv(system, proc, self.reply_sock, self.rx, 1 << 20)
            self.latency.record(system.env.now - t0)

    def _encode(self, op, key, value_len):
        msg = encode_set(key, value_len) if op == "SET" else encode_get(key)
        msg = bytearray(msg)
        msg[4] = self.client_id
        return bytes(msg)


def run_benchmark(system, mode, op, value_len, n_requests, n_clients=8,
                  server_affinity=0, limit=20_000_000_000):
    """Spin up one server + n closed-loop clients; returns the recorders.

    Mirrors the paper's redis-benchmark setup (8 parallel closed-loop
    clients, §6.2.1).  SETs pre-populate implicitly; GETs pre-SET the key.
    """
    server = RedisServer(system, mode=mode)
    server_rx, server_tx_side = _server_socket(system)
    clients = []
    reply_socks = {}
    for cid in range(n_clients):
        from repro.kernel.net import socket_pair
        reply_a, reply_b = socket_pair(system, "reply-%d" % cid)
        client = RedisClient(system, cid, server_tx_side, reply_b)
        clients.append(client)
        reply_socks[cid] = reply_a

    total = n_requests * n_clients
    warm = 0
    ops_per_client = []
    for cid, client in enumerate(clients):
        key = b"key-%02d" % cid
        ops = []
        if op == "GET":
            ops.append(("SET", key, value_len))
            warm += 1
        ops.extend((op, key, value_len) for _ in range(n_requests))
        ops_per_client.append(ops)

    server_proc = server.proc.spawn(
        server.serve(server_rx, reply_socks, total + warm),
        affinity=server_affinity)
    client_procs = []
    for i, (client, ops) in enumerate(zip(clients, ops_per_client)):
        affinity = None if system.env.cores.n_cores <= 2 else \
            1 + (i % max(1, system.env.cores.n_cores - 2))
        client_procs.append(client.proc.spawn(client.run(ops),
                                              affinity=affinity))
    t0 = system.env.now
    for p in client_procs:
        system.env.run_until(p.terminated, limit=limit)
    elapsed = system.env.now - t0
    recorders = [c.latency for c in clients]
    merged = LatencyRecorder()
    for r in recorders:
        if op == "GET":
            merged.samples.extend(r.samples[1:])  # drop the warm-up SET
        else:
            merged.samples.extend(r.samples)
    return server, merged, elapsed


def _server_socket(system):
    from repro.kernel.net import socket_pair
    rx, tx = socket_pair(system, "redis-listen")
    return rx, tx
