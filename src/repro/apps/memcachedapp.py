"""memcached-style cache server with multi-get (§5.1.1's web-server case).

Differs from the Redis miniature in two paper-relevant ways:

* **worker threads** — memcached is threaded; each worker owns a
  per-thread queue fd so independent connections never share a ring
  (§5.1.1 multi-queue support);
* **multi-get** — one request fetches N keys and the reply concatenates
  N values: a scatter-gather of user copies into the output buffer that
  Copier's absorption collapses into N short-circuit copies straight to
  the socket buffer.

Protocol: requests are ``op(1) nkeys(1) key_ids(nkeys)``; SETs append
``value_len(4) + value``.  Key ids are single bytes (a 256-slot cache).
"""

from repro.api import LibCopier
from repro.kernel.net import recv, send, socket_pair
from repro.sim import DEFAULT_RUN_LIMIT

OP_SET = 1
OP_MGET = 2
PARSE_CYCLES = 350
HASH_CYCLES_PER_KEY = 250


def encode_set(key_id, value):
    return bytes([OP_SET, 1, key_id]) + len(value).to_bytes(4, "little") \
        + value


def encode_mget(key_ids):
    return bytes([OP_MGET, len(key_ids)]) + bytes(key_ids)


class MemcachedServer:
    """A threaded cache; workers share the value store."""

    def __init__(self, system, mode="sync", name="memcached",
                 arena_bytes=1 << 24):
        self.system = system
        self.mode = mode
        self.proc = system.create_process(name)
        self.lib = LibCopier(self.proc) if mode == "copier" else None
        self.arena = self.proc.mmap(arena_bytes, name="mc-arena")
        self._arena_cursor = 0
        self._arena_bytes = arena_bytes
        self.slots = {}  # key_id -> (va, length)
        self.requests = 0

    def _alloc(self, length):
        aligned = (length + 4095) & ~4095
        if self._arena_cursor + aligned > self._arena_bytes:
            self._arena_cursor = 0
        va = self.arena + self._arena_cursor
        self._arena_cursor += aligned
        return va

    def worker(self, sock, reply_sock, n_requests):
        """One worker loop (generator) with its own queue fd."""
        system, proc = self.system, self.proc
        params = system.params
        rx = proc.mmap(1 << 20, populate=True)
        tx = proc.mmap(1 << 20, populate=True)
        client = None
        if self.lib is not None:
            client = self.lib._client_for(self.lib.copier_create_queue())
        for _ in range(n_requests):
            use_async = client is not None
            got = yield from recv(system, proc, sock, rx, 1 << 20,
                                  mode="copier" if use_async else "sync",
                                  lazy=use_async, client=client)
            if use_async:
                yield from client.csync(rx, min(got, 64))
            yield system.app_compute(proc, PARSE_CYCLES)
            header = proc.read(rx, min(got, 64))
            op, nkeys = header[0], header[1]
            key_ids = list(header[2:2 + nkeys])
            yield system.app_compute(proc, nkeys * HASH_CYCLES_PER_KEY)
            if op == OP_SET:
                value_len = int.from_bytes(header[2 + nkeys:6 + nkeys],
                                           "little")
                src = rx + 2 + nkeys + 4
                va = self._alloc(value_len)
                if (use_async and value_len
                        >= params.copier_user_min_bytes):
                    yield from client.amemcpy(va, src, value_len)
                    yield from client.csync(va, value_len)
                    yield from client.abort(src, value_len)
                else:
                    if use_async:
                        yield from client.csync(src, value_len)
                    yield from system.sync_copy(proc, proc.aspace, src,
                                                proc.aspace, va, value_len,
                                                engine="avx")
                self.slots[key_ids[0]] = (va, value_len)
                proc.write(tx, b"OK")
                yield from send(system, proc, reply_sock, tx, 2,
                                client=client)
            else:
                # Multi-get: gather every value into the reply buffer.
                cursor = 8
                gathered = []
                for key_id in key_ids:
                    va, length = self.slots[key_id]
                    if (use_async and length
                            >= params.copier_user_min_bytes):
                        yield from client.amemcpy(tx + cursor, va, length,
                                                  lazy=True)
                        gathered.append((tx + cursor, length))
                    else:
                        yield from system.sync_copy(
                            proc, proc.aspace, va, proc.aspace,
                            tx + cursor, length, engine="avx")
                    cursor += length
                proc.write(tx, cursor.to_bytes(8, "little"))
                yield from send(system, proc, reply_sock, tx, cursor,
                                mode="copier" if use_async else "sync",
                                client=client)
                for dst, length in gathered:
                    yield from client.abort(dst, length)
            self.requests += 1


def run_memcached(system, mode, value_len, n_keys, n_requests,
                  n_workers=2, limit=DEFAULT_RUN_LIMIT):
    """Workers serve closed-loop clients doing multi-gets.

    Returns (server, mean latency, elapsed).
    """
    server = MemcachedServer(system, mode=mode)
    n_app_cores = max(1, system.env.cores.n_cores - 1)
    client_procs = []
    latencies = []
    for w in range(n_workers):
        c2s_tx, c2s_rx = socket_pair(system, "mc-c2s-%d" % w)
        s2c_tx, s2c_rx = socket_pair(system, "mc-s2c-%d" % w)
        system.env.spawn(
            server.worker(c2s_rx, s2c_tx, n_requests + n_keys),
            name="mc-worker-%d" % w, affinity=w % n_app_cores)
        client = system.create_process("mc-client-%d" % w)
        tx = client.mmap(1 << 20, populate=True)
        rx = client.mmap(1 << 20, populate=True)

        def client_gen(client=client, tx=tx, rx=rx, w=w,
                       to_srv=c2s_tx, from_srv=s2c_rx):
            key_base = w * n_keys
            # Populate this worker's keys.
            for k in range(n_keys):
                msg = encode_set(key_base + k, bytes([k + 1]) * value_len)
                client.write(tx, msg)
                yield from send(system, client, to_srv, tx, len(msg))
                yield from recv(system, client, from_srv, rx, 1 << 20)
            for _ in range(n_requests):
                msg = encode_mget([key_base + k for k in range(n_keys)])
                client.write(tx, msg)
                t0 = system.env.now
                yield from send(system, client, to_srv, tx, len(msg))
                yield from recv(system, client, from_srv, rx, 1 << 20)
                latencies.append(system.env.now - t0)

        client_procs.append(system.env.spawn(
            client_gen(), name="mc-client-%d" % w,
            affinity=(w + 1) % n_app_cores))
    t0 = system.env.now
    for p in client_procs:
        system.env.run_until(p.terminated, limit=limit)
    elapsed = system.env.now - t0
    return server, sum(latencies) / len(latencies), elapsed
