"""Workload-faithful miniature applications (§6.2).

Each app reproduces the copy sequence and compute interleaving of its
real-world counterpart so that Copy-Use windows — and hence Copier's
benefit — emerge from the same mechanics the paper measured.
"""

from repro.apps.common import LatencyRecorder, percentile

__all__ = ["LatencyRecorder", "percentile"]
