"""HarmonyOS Avcodec video decode pipeline on the phone profile (§6.2.4).

Per frame: decode into internal buffers, copy the decoded picture to the
frame buffer handed to rendering, then run post-processing/submission
logic before the renderer consumes the pixels.  Copier (scenario-driven —
the service sleeps between bursts, §5.3) overlaps the frame copy with the
post-decode logic; the renderer csyncs before reading.

Metrics: per-frame latency, dropped frames (deadline misses) and energy
(per-core power integration) — Fig. 13-c's axes.
"""

from repro.copier.errors import AdmissionReject, CopyAborted, DeadlineMissed
from repro.sim import Compute, Timeout
from repro.sim.stats import EnergyModel

#: 30 fps deadline at a notional 2.9 GHz.
FRAME_DEADLINE_CYCLES = int(2.9e9 / 30)

DECODE_CYCLES_PER_BYTE = 1.4   # entropy decode + reconstruction
POST_CYCLES_PER_BYTE = 0.35    # color conversion setup, fence plumbing
RENDER_SUBMIT_CYCLES = 20_000


class VideoDecoder:
    """Decodes ``n_frames`` of ``frame_bytes`` each."""

    def __init__(self, system, mode="sync", frame_bytes=1 << 20,
                 name="avcodec"):
        self.system = system
        self.mode = mode
        self.frame_bytes = frame_bytes
        self.proc = system.create_process(name)
        self.inner = self.proc.mmap(frame_bytes, populate=True,
                                    name="avc-inner")
        self.framebuf = self.proc.mmap(frame_bytes, populate=True,
                                       name="avc-fb")
        self.latencies = []
        self.dropped = 0

    def decode_stream(self, n_frames, deadline=FRAME_DEADLINE_CYCLES,
                      enforce_deadline=False):
        """Decode ``n_frames``, pacing to the display clock.

        With ``enforce_deadline`` (copier mode), the per-frame deadline
        is propagated into ``amemcpy``/``csync``: a frame whose copy
        cannot land in time is *dropped at the copy path* — shed,
        rejected, or cancelled — instead of being rendered late.  The
        default keeps the historical after-the-fact accounting.
        """
        system, proc = self.system, self.proc
        lib = proc.client if self.mode == "copier" else None
        if lib is not None and system.copier.polling == "scenario":
            system.copier.scenario_begin()
        for _frame in range(n_frames):
            t0 = system.env.now
            copy_deadline = (t0 + deadline) if (enforce_deadline
                                                and lib is not None) else None
            frame_lost = False
            # Decode into the internal buffer.
            yield system.app_compute(
                proc, int(self.frame_bytes * DECODE_CYCLES_PER_BYTE))
            # Copy decoded picture to the frame buffer...
            if lib is not None:
                try:
                    yield from lib.amemcpy(self.framebuf, self.inner,
                                           self.frame_bytes,
                                           deadline=copy_deadline)
                except AdmissionReject:
                    frame_lost = True  # overload valve refused the frame
            else:
                yield from system.sync_copy(
                    proc, proc.aspace, self.inner, proc.aspace,
                    self.framebuf, self.frame_bytes, engine="avx")
            # ...overlapped with post-decode logic under Copier.
            yield system.app_compute(
                proc, int(self.frame_bytes * POST_CYCLES_PER_BYTE))
            if lib is not None and not frame_lost:
                # Renderer consumes the pixels: sync before handing over.
                try:
                    yield from lib.csync(self.framebuf, self.frame_bytes,
                                         deadline=copy_deadline)
                except (DeadlineMissed, CopyAborted):
                    frame_lost = True  # late pixels: don't render them
            if frame_lost:
                self.dropped += 1
                latency = system.env.now - t0
                if latency < deadline:
                    yield Timeout(deadline - latency)
                continue
            yield Compute(RENDER_SUBMIT_CYCLES, tag="app")
            latency = system.env.now - t0
            self.latencies.append(latency)
            if latency > deadline:
                self.dropped += 1
            else:
                # Pace to the display clock.
                yield Timeout(deadline - latency)
        if lib is not None and system.copier.polling == "scenario":
            # Idle: the scenario ends and the Copier thread sleeps (§5.3).
            system.copier.scenario_end()

    @property
    def mean_latency(self):
        return sum(self.latencies) / len(self.latencies) if self.latencies else 0


def measure_energy(system):
    """Total energy (arbitrary units) consumed so far on all cores."""
    return EnergyModel().energy(system.env.cores)


CAPTURE_CYCLES_PER_BYTE = 0.15   # ISP post-processing per captured byte
ENCODE_CYCLES_PER_BYTE = 1.8     # H.265-class encoding
MUX_SUBMIT_CYCLES = 15_000       # container muxing + writeback submit


class VideoRecorder:
    """Camera-recording pipeline (Fig. 2-b's other copy-heavy scenario).

    Per frame: the camera ISP delivers a capture buffer, the frame is
    copied into the encoder's input ring, encoded, and the bitstream
    copied out to the muxer.  Copier overlaps the capture→encoder copy
    with ISP post-processing and the bitstream copy with muxing — the
    recording mirror of :class:`VideoDecoder`.
    """

    def __init__(self, system, mode="sync", frame_bytes=1 << 20,
                 name="camera"):
        self.system = system
        self.mode = mode
        self.frame_bytes = frame_bytes
        self.proc = system.create_process(name)
        self.capture = self.proc.mmap(frame_bytes, populate=True,
                                      name="cam-capture")
        self.enc_in = self.proc.mmap(frame_bytes, populate=True,
                                     name="cam-encin")
        self.bitstream = self.proc.mmap(frame_bytes // 4, populate=True,
                                        name="cam-bits")
        self.mux_buf = self.proc.mmap(frame_bytes // 4, populate=True,
                                      name="cam-mux")
        self.latencies = []

    def record(self, n_frames, deadline=FRAME_DEADLINE_CYCLES):
        system, proc = self.system, self.proc
        lib = proc.client if self.mode == "copier" else None
        if lib is not None and system.copier.polling == "scenario":
            system.copier.scenario_begin()
        bits = self.frame_bytes // 4
        for frame in range(n_frames):
            t0 = system.env.now
            proc.write(self.capture, bytes([frame % 251]) * 64)
            # Stage 1: capture buffer -> encoder input, overlapping the
            # ISP post-processing under Copier.
            if lib is not None:
                yield from lib.amemcpy(self.enc_in, self.capture,
                                       self.frame_bytes)
                yield system.app_compute(
                    proc, int(self.frame_bytes * CAPTURE_CYCLES_PER_BYTE))
                yield from lib.csync(self.enc_in, self.frame_bytes)
            else:
                yield from system.sync_copy(
                    proc, proc.aspace, self.capture, proc.aspace,
                    self.enc_in, self.frame_bytes, engine="avx")
                yield system.app_compute(
                    proc, int(self.frame_bytes * CAPTURE_CYCLES_PER_BYTE))
            # Stage 2: encode.
            yield system.app_compute(
                proc, int(self.frame_bytes * ENCODE_CYCLES_PER_BYTE))
            proc.write(self.bitstream, bytes([frame % 199]) * 32)
            # Stage 3: bitstream -> muxer, overlapping mux bookkeeping.
            if lib is not None:
                yield from lib.amemcpy(self.mux_buf, self.bitstream, bits)
                yield Compute(MUX_SUBMIT_CYCLES, tag="app")
                yield from lib.csync(self.mux_buf, bits)
            else:
                yield from system.sync_copy(
                    proc, proc.aspace, self.bitstream, proc.aspace,
                    self.mux_buf, bits, engine="avx")
                yield Compute(MUX_SUBMIT_CYCLES, tag="app")
            latency = system.env.now - t0
            self.latencies.append(latency)
            if latency < deadline:
                yield Timeout(deadline - latency)
        if lib is not None and system.copier.polling == "scenario":
            system.copier.scenario_end()

    @property
    def mean_latency(self):
        return sum(self.latencies) / len(self.latencies) if self.latencies else 0
