"""OpenSSL-style SSL_read: receive + decrypt (§6.2.3, Fig. 13-b).

TLS records arrive encrypted; SSL_read copies them to userspace and
decrypts.  Decryption consumes the buffer sequentially (and the plaintext
is one-time-use), so Copier overlaps the recv copy with decryption of the
preceding chunks.  TLS caps records at 16 KB, so the speedup flattens
beyond that (the paper's observation on Fig. 13-b).
"""

from repro.kernel.net import recv

TLS_RECORD_MAX = 16 * 1024
CHUNK = 1024
#: AES-GCM with AES-NI ≈ 1.2 cycles/byte; Chacha20 slightly higher.
DECRYPT_CYCLES_PER_BYTE = {"aes-gcm": 1.2, "chacha20": 1.6}
RECORD_SETUP_CYCLES = 600  # MAC/nonce bookkeeping per record


def _xor_decrypt(data, key=0x5A):
    return bytes(b ^ key for b in data)


def encrypt(plaintext, key=0x5A):
    return _xor_decrypt(plaintext, key)  # involutive stand-in cipher


class SSLReader:
    """Receives encrypted records and produces plaintext."""

    def __init__(self, system, mode="sync", cipher="aes-gcm", name="openssl"):
        self.system = system
        self.mode = mode
        self.cipher = cipher
        self.proc = system.create_process(name)
        self.rx = self.proc.mmap(1 << 20, populate=True, name="ssl-rx")
        self.plain = self.proc.mmap(1 << 20, populate=True, name="ssl-plain")

    def ssl_read(self, sock, msg_bytes):
        """Read one message (one or more TLS records); returns
        (latency_cycles, plaintext)."""
        system, proc = self.system, self.proc
        per_byte = DECRYPT_CYCLES_PER_BYTE[self.cipher]
        use_async = (self.mode == "copier"
                     and msg_bytes >= system.params.copier_kernel_min_bytes)
        t0 = system.env.now
        produced = 0
        while produced < msg_bytes:
            record = min(TLS_RECORD_MAX, msg_bytes - produced)
            got = yield from recv(system, proc, sock, self.rx + produced,
                                  record,
                                  mode="copier" if use_async else "sync")
            yield system.app_compute(proc, RECORD_SETUP_CYCLES)
            pos = 0
            while pos < got:
                chunk = min(CHUNK, got - pos)
                if use_async:
                    yield from proc.client.csync(
                        self.rx + produced + pos, chunk)
                yield system.app_compute(proc, int(chunk * per_byte))
                ciphertext = proc.read(self.rx + produced + pos, chunk)
                proc.write(self.plain + produced + pos,
                           _xor_decrypt(ciphertext))
                pos += chunk
            produced += got
        latency = system.env.now - t0
        return latency, proc.read(self.plain, msg_bytes)
