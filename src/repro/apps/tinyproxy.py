"""TinyProxy-like HTTP forwarding proxy (§6.2.2, Fig. 12).

The proxy reads a message, inspects only the request line + headers to
pick an upstream, "organizes" the message (an internal copy in TinyProxy),
and sends it on.  Copier collapses the three copies (kernel→in, in→out,
out→kernel) into one short-circuit copy via lazy tasks + absorption and
discards the leftovers with abort — the §4.4 proxy case, verbatim.
"""

from repro.baselines.zio import ZIO
from repro.kernel.net import recv, send, socket_pair

HEADER_BYTES = 128
ROUTE_CYCLES = 700       # parse request line + pick upstream
ORGANIZE_CYCLES = 350    # header rewrite bookkeeping


class TinyProxy:
    """One proxy worker forwarding from a downstream to an upstream."""

    def __init__(self, system, mode="sync", name="tinyproxy",
                 buf_bytes=1 << 20):
        self.system = system
        self.mode = mode
        self.proc = system.create_process(name)
        self.buf_in = self.proc.mmap(buf_bytes, populate=True,
                                     name="proxy-in")
        self.buf_out = self.proc.mmap(buf_bytes, populate=True,
                                      name="proxy-out")
        self.zio = ZIO(system, self.proc) if mode == "zio" else None
        self.forwarded = 0

    def run(self, downstream, upstream, n_messages, msg_bytes):
        system, proc, mode = self.system, self.proc, self.mode
        params = system.params
        use_async = (mode == "copier"
                     and msg_bytes >= params.copier_user_min_bytes)
        for _ in range(n_messages):
            if mode == "zio":
                yield from self.zio.before_write(self.buf_in, msg_bytes)
                yield from self.zio.before_write(self.buf_out, msg_bytes)
            got = yield from recv(system, proc, downstream, self.buf_in,
                                  1 << 20,
                                  mode="copier" if use_async else "sync",
                                  lazy=use_async)
            if use_async:
                # Only the request line + headers are examined.
                yield from proc.client.csync(self.buf_in, HEADER_BYTES)
            yield system.app_compute(proc, ROUTE_CYCLES)
            proc.read(self.buf_in, min(HEADER_BYTES, got))
            # "Organize the message": TinyProxy's internal copy.
            if use_async:
                yield from proc.client.amemcpy(self.buf_out, self.buf_in,
                                               got, lazy=True)
            elif mode == "zio":
                yield from self.zio.copy(self.buf_out, self.buf_in, got)
                yield from self.zio.touch_read(self.buf_out, HEADER_BYTES)
            else:
                yield from system.sync_copy(proc, proc.aspace, self.buf_in,
                                            proc.aspace, self.buf_out, got,
                                            engine="avx")
            yield system.app_compute(proc, ORGANIZE_CYCLES)
            if mode == "zio":
                # zIO interposes send: transmit from the original buffer.
                src_va, ind = self.zio.send_source(self.buf_out, got)
                if ind is not None:
                    proc.write(self.buf_out, proc.read(src_va, got))
                    self.zio.drop(ind)
                yield from send(system, proc, upstream, self.buf_out, got)
            else:
                yield from send(system, proc, upstream, self.buf_out, got,
                                mode="copier" if use_async else "sync")
            if use_async:
                # Retire the absorbed intermediates (§4.4).
                yield from proc.client.abort(self.buf_out, got)
                yield from proc.client.abort(self.buf_in, got)
            self.forwarded += 1


def run_forwarding(system, mode, msg_bytes, n_messages, n_workers=1,
                   limit=50_000_000_000):
    """Echo client → proxy → echo server pipeline; returns MPS stats.

    Returns ``(throughput_mps_proxy_cycles, elapsed_cycles, proxies)``.
    With ``n_workers > 1`` each worker gets its own connection pair and
    (in copier mode) its own per-process default queues — the Fig. 12-b
    scalability setup.
    """
    proxies = []
    worker_procs = []
    payload = bytes([0x42]) * msg_bytes
    for w in range(n_workers):
        down_tx, down_rx = socket_pair(system, "down-%d" % w)
        up_tx, up_rx = socket_pair(system, "up-%d" % w)
        proxy = TinyProxy(system, mode=mode, name="proxy-%d" % w)
        proxies.append(proxy)

        def feeder(tx=down_tx, w=w):
            feeder_proc = system.create_process("feeder-%d" % w)
            buf = feeder_proc.mmap(msg_bytes, populate=True)
            feeder_proc.write(buf, payload)

            def gen():
                for _ in range(n_messages):
                    yield from send(system, feeder_proc, tx, buf, msg_bytes)
            return feeder_proc.spawn(gen(), affinity=None)

        def sink(rx=up_rx, w=w):
            sink_proc = system.create_process("sink-%d" % w)
            buf = sink_proc.mmap(1 << 20, populate=True)

            def gen():
                for _ in range(n_messages):
                    yield from recv(system, sink_proc, rx, buf, 1 << 20)
                return sink_proc.read(buf, msg_bytes)
            return sink_proc.spawn(gen(), affinity=None)

        feeder()
        sink_p = sink()
        n_app_cores = max(1, system.env.cores.n_cores - 1)
        wp = proxy.proc.spawn(
            proxy.run(down_rx, up_tx, n_messages, msg_bytes),
            affinity=w % n_app_cores)
        worker_procs.append((wp, sink_p))

    t0 = system.env.now
    for wp, sink_p in worker_procs:
        system.env.run_until(sink_p.terminated, limit=limit)
    elapsed = system.env.now - t0
    total = n_messages * n_workers
    return total, elapsed, proxies, worker_procs
