"""Shared plumbing for the miniature applications."""


class LatencyRecorder:
    """Collects per-request latencies (cycles) and summarizes them."""

    def __init__(self):
        self.samples = []

    def record(self, latency):
        self.samples.append(latency)

    @property
    def count(self):
        return len(self.samples)

    @property
    def mean(self):
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    def p(self, q):
        return percentile(self.samples, q)

    @property
    def p99(self):
        return self.p(99)

    def throughput(self, elapsed_cycles, hz=2.9e9):
        """Requests per second given total elapsed virtual cycles."""
        if elapsed_cycles <= 0:
            return 0.0
        return self.count / (elapsed_cycles / hz)


def percentile(samples, q):
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


# Request framing used by the Redis-like protocol.
HEADER_LEN = 64
KEY_LEN = 16


def encode_set(key, value_len):
    header = b"SET" + b"\x00" * (HEADER_LEN - 3 - 8)
    header += value_len.to_bytes(8, "little")
    return header + key.ljust(KEY_LEN, b"\x00")


def encode_get(key):
    header = b"GET" + b"\x00" * (HEADER_LEN - 3 - 8) + (0).to_bytes(8, "little")
    return header + key.ljust(KEY_LEN, b"\x00")


def decode_header(data):
    op = data[:3].decode("ascii")
    value_len = int.from_bytes(data[HEADER_LEN - 8:HEADER_LEN], "little")
    key = data[HEADER_LEN:HEADER_LEN + KEY_LEN].rstrip(b"\x00")
    return op, key, value_len
