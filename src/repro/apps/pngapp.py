"""libpng-style image decode from a file (§2, Fig. 2/3's PNG rows).

The decoder read()s the compressed image from the page cache and
decompresses it row by row — a sequential, one-time-use access pattern
with a Copy-Use window between read() returning and each row being
inflated (the file-I/O sibling of the recv() pipeline).
"""

from repro.kernel.fileio import file_read

ROW_BYTES = 2048
INFLATE_CYCLES_PER_BYTE = 1.0   # zlib inflate + defilter per row
IMAGE_SETUP_CYCLES = 1200       # header parse, palette, buffers


class PNGDecoder:
    """Reads and decodes one image per call."""

    def __init__(self, system, mode="sync", name="libpng"):
        self.system = system
        self.mode = mode
        self.proc = system.create_process(name)
        self.io_buf = self.proc.mmap(1 << 20, populate=True, name="png-io")
        self.decoded = self.proc.mmap(1 << 20, populate=True,
                                      name="png-out")

    def decode_file(self, fobj):
        """Generator; returns (latency_cycles, decoded_bytes)."""
        system, proc = self.system, self.proc
        n = fobj.length
        use_async = (self.mode == "copier"
                     and n >= system.params.copier_kernel_min_bytes)
        t0 = system.env.now
        got = yield from file_read(system, proc, fobj, 0, self.io_buf, n,
                                   mode="copier" if use_async else "sync")
        yield system.app_compute(proc, IMAGE_SETUP_CYCLES)
        pos = 0
        while pos < got:
            row = min(ROW_BYTES, got - pos)
            if use_async:
                # Inflate consumes rows in order: sync just this row.
                yield from proc.client.csync(self.io_buf + pos, row)
            yield system.app_compute(proc,
                                     int(row * INFLATE_CYCLES_PER_BYTE))
            # "Decode" = involutive transform so tests can verify content.
            data = proc.read(self.io_buf + pos, row)
            proc.write(self.decoded + pos, bytes(b ^ 0xFF for b in data))
            pos += row
        return system.env.now - t0, proc.read(self.decoded, got)


def encode_image(raw):
    """The inverse of the decoder's transform (for test fixtures)."""
    return bytes(b ^ 0xFF for b in raw)
