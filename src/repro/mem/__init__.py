"""Simulated memory subsystem.

Pure data structures (no simulated time): physical frames backed by real
``bytearray`` storage, per-process address spaces with page tables, VMAs,
demand paging, copy-on-write and page pinning.  All *timing* for memory
operations (page-walk cycles, fault costs) is charged explicitly by the
execution contexts in :mod:`repro.kernel` and :mod:`repro.copier`, keeping
this package deterministic and directly unit-testable.

Because frames hold real bytes, every copy the simulated system performs
actually moves data — correctness properties (csync semantics, absorption,
CoW isolation) are checked on genuine contents, not on bookkeeping.
"""

from repro.mem.phys import PAGE_SIZE, PhysicalMemory
from repro.mem.faults import (
    MemoryFault,
    NotPresentFault,
    ProtectionFault,
    SegmentationFault,
)
from repro.mem.errors import (
    MemoryLifecycleError,
    PinnedPageError,
    UnpinMismatchError,
)
from repro.mem.addrspace import AddressSpace
from repro.mem.vma import VMA
from repro.mem.shm import SharedSegment

__all__ = [
    "PAGE_SIZE",
    "PhysicalMemory",
    "AddressSpace",
    "VMA",
    "SharedSegment",
    "MemoryFault",
    "NotPresentFault",
    "ProtectionFault",
    "SegmentationFault",
    "MemoryLifecycleError",
    "PinnedPageError",
    "UnpinMismatchError",
]
