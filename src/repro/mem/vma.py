"""Virtual memory areas."""

from repro.mem.phys import PAGE_SIZE


class VMA:
    """A contiguous virtual region with uniform protections.

    Copier's proactive fault handler walks VMAs to validate task addresses
    before touching page tables (§4.5.4); an address outside every VMA is a
    security violation and the task is dropped with a SIGSEGV.
    """

    __slots__ = ("start", "end", "readable", "writable", "shared_segment", "name")

    def __init__(self, start, end, prot="rw", shared_segment=None, name=""):
        if start % PAGE_SIZE or end % PAGE_SIZE:
            raise ValueError("VMA bounds must be page aligned")
        if end <= start:
            raise ValueError("empty VMA")
        self.start = start
        self.end = end
        self.readable = "r" in prot
        self.writable = "w" in prot
        self.shared_segment = shared_segment
        self.name = name

    def __contains__(self, va):
        return self.start <= va < self.end

    def covers(self, va, length):
        return self.start <= va and va + length <= self.end

    def __repr__(self):
        prot = ("r" if self.readable else "-") + ("w" if self.writable else "-")
        return "<VMA 0x%x-0x%x %s %s>" % (self.start, self.end, prot, self.name)
