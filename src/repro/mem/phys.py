"""Physical memory: frames of real bytes with reference counting.

Frame numbers double as physical addresses (``paddr = frame * PAGE_SIZE``),
which is what the DMA engine's physical-contiguity requirement (§4.3) is
checked against when Copier splits tasks into subtasks.

Storage layout (flat backing)
-----------------------------

All frames live in **one contiguous bytearray**, at byte offset
``frame * PAGE_SIZE``.  The historic layout kept a separate bytearray per
frame, which forced every bulk primitive to loop page-by-page even when
the physical run was contiguous; with the flat backing,
``read_run``/``write_run``/``copy_run`` are each a *single* slice copy
regardless of how many frames the run spans, and
:func:`repro.mem.addrspace.copy_range` collapses adjacent physical runs
into one move.  The backing grows geometrically and only as far as the
highest frame ever claimed, so a sparsely-used pool (e.g. 262144 frames
with a few thousand touched) costs memory proportional to use, not to
``n_frames``.

Free-list discipline (sorted prefix)
------------------------------------

``_free`` is kept in descending order so ``alloc_frame`` pops the lowest
frame in O(1).  Frees append; ``_sorted_len`` tracks the length of the
prefix that is still descending-sorted.  A burst of frees costs O(1)
each — once the first out-of-order free lands, subsequent frees don't
even compare (the prefix check short-circuits).  Contiguous allocation
restores full order only when the discipline shows the list is actually
dirty, and then with one timsort pass whose run detection consumes the
sorted prefix as a single run — O(n + k log k) for k frees since the
last sort, in C; ``sort_work`` accumulates dirty-tail sizes so tests
can pin the discipline without wall-clock flakiness.  The result is
element-for-element identical to a full descending sort, so allocation
semantics are unchanged.
"""

PAGE_SIZE = 4096

_ZERO_PAGE = bytes(PAGE_SIZE)


class OutOfMemory(Exception):
    pass


class PhysicalMemory:
    """A pool of ``n_frames`` page frames in one flat backing buffer.

    ``fragmented=True`` makes the allocator hand out alternating frames so
    that multi-page buffers are physically non-contiguous — the worst case
    for DMA subtask formation (Fig. 7-b assumes all pages non-contiguous).
    ``fragmented=False`` allocates the lowest free frame, so consecutive
    allocations tend to be contiguous.
    """

    def __init__(self, n_frames=65536, fragmented=False):
        self.n_frames = n_frames
        self.fragmented = fragmented
        self._backing = bytearray()
        self._refcount = {}
        self._free = list(range(n_frames - 1, -1, -1))  # pop() yields frame 0 first
        self._sorted_len = n_frames  # descending-sorted prefix of _free
        self._alloc_parity = 0
        self.sort_work = 0  # elements sorted by contiguous allocs (perf counter)

    @property
    def frames_in_use(self):
        return len(self._refcount)

    @property
    def frames_free(self):
        return len(self._free)

    @property
    def _free_sorted(self):
        """Back-compat view of the sorted-prefix state (ckpt payload key)."""
        return self._sorted_len == len(self._free)

    @_free_sorted.setter
    def _free_sorted(self, value):
        self._sorted_len = len(self._free) if value else 0

    # ------------------------------------------------------------ backing

    def _claim(self, frame):
        """Zero ``frame``'s page and mark it allocated (refcount 1)."""
        end = (frame + 1) * PAGE_SIZE
        backing = self._backing
        if end > len(backing):
            # Geometric growth, zero-filled; capped at the pool size.
            grow = max(end, 2 * len(backing), 1 << 20)
            cap = self.n_frames * PAGE_SIZE
            if grow > cap:
                grow = cap
            backing.extend(bytes(grow - len(backing)))
        else:
            # Reclaimed page: scrub whatever the previous owner left.
            backing[end - PAGE_SIZE : end] = _ZERO_PAGE
        self._refcount[frame] = 1

    # --------------------------------------------------------- allocation

    def alloc_frame(self):
        """Allocate one zeroed frame; returns the frame number."""
        if not self._free:
            raise OutOfMemory("no free frames")
        if self.fragmented and len(self._free) > 1:
            # Alternate between the two ends of the free list to break up
            # physically-contiguous runs.
            self._alloc_parity ^= 1
            if self._alloc_parity:
                frame = self._free.pop()
            else:
                frame = self._free.pop(0)
                if self._sorted_len:
                    self._sorted_len -= 1
        else:
            frame = self._free.pop()
        if self._sorted_len > len(self._free):
            self._sorted_len = len(self._free)
        self._claim(frame)
        return frame

    def alloc_frame_in(self, lo, hi):
        """Allocate a zeroed frame with ``lo <= frame < hi``.

        Tiered-memory managers use frame-number bands as tiers (low band =
        fast DRAM, high band = slow CXL/NVM).
        """
        for i in range(len(self._free) - 1, -1, -1):
            frame = self._free[i]
            if lo <= frame < hi:
                self._free.pop(i)
                if self._sorted_len > i:
                    self._sorted_len -= 1
                self._claim(frame)
                return frame
        raise OutOfMemory("no free frames in [%d, %d)" % (lo, hi))

    def _resort_free(self):
        """Restore the full descending order of ``_free``.

        No-op when the sorted-prefix discipline shows the list is still
        fully ordered (the common case under LIFO churn).  When dirty,
        one timsort pass: its run detection picks up the sorted prefix
        as a single run, so the cost is O(n + k log k) for a k-element
        dirty tail, done entirely in C.  ``sort_work`` accumulates the
        dirty-tail sizes so tests can pin the discipline without
        wall-clock flakiness.
        """
        free = self._free
        n = len(free)
        if self._sorted_len == n:
            return
        self.sort_work += n - self._sorted_len
        free.sort(reverse=True)
        self._sorted_len = n

    def alloc_frames(self, n, contiguous=False):
        """Allocate ``n`` frames; with ``contiguous=True`` they are adjacent.

        A contiguous allocation picks the *lowest* free run of ``n`` frames
        and leaves the free list sorted descending (so subsequent single
        allocations pop the lowest frame) — the historic behaviour, now
        restored with a tail-sort + merge instead of a full re-sort, and
        the chosen run removed with one slice deletion (it occupies
        adjacent positions in the sorted list).
        """
        if contiguous:
            self._resort_free()
            free = self._free
            # Scan from the end (ascending frame numbers) for the lowest
            # run of ``n`` consecutive frames.
            start_idx = None  # index of the run's lowest frame (highest idx)
            run_len = 0
            prev = None
            idx = len(free) - 1
            low_idx = None
            while idx >= 0:
                frame = free[idx]
                if run_len and frame == prev + 1:
                    run_len += 1
                else:
                    low_idx = idx
                    run_len = 1
                prev = frame
                if run_len == n:
                    start_idx = low_idx
                    break
                idx -= 1
            if start_idx is None:
                raise OutOfMemory("no contiguous run of %d frames" % n)
            start = free[start_idx]
            frames = list(range(start, start + n))
            # Consecutive frames occupy adjacent positions in the
            # descending-sorted list: one slice removes them all.
            del free[idx : start_idx + 1]
            self._sorted_len = len(free)
            for frame in frames:
                self._claim(frame)
            return frames
        if n > len(self._free):
            # All-or-nothing: never leave a half-allocated batch behind
            # (a failed mmap must not leak frames).
            raise OutOfMemory("need %d frames, %d free" % (n, len(self._free)))
        return [self.alloc_frame() for _ in range(n)]

    def share_frame(self, frame):
        """Increment the reference count (CoW fork, shared memory)."""
        self._refcount[frame] += 1

    def refcount(self, frame):
        return self._refcount.get(frame, 0)

    def free_frame(self, frame):
        count = self._refcount.get(frame)
        if count is None:
            raise ValueError("double free of frame %d" % frame)
        if count == 1:
            del self._refcount[frame]
            free = self._free
            # Extend the sorted prefix only while the whole list is still
            # sorted AND the freed frame keeps it descending; once dirty,
            # a free burst appends without even comparing frames.
            if self._sorted_len == len(free) and (not free or frame < free[-1]):
                self._sorted_len += 1
            free.append(frame)
        else:
            self._refcount[frame] = count - 1

    # ------------------------------------------------------- byte movers

    def read(self, frame, offset, length):
        """Read ``length`` bytes from ``frame`` starting at ``offset``."""
        if offset < 0 or offset + length > PAGE_SIZE:
            raise ValueError("read outside frame: off=%d len=%d" % (offset, length))
        start = frame * PAGE_SIZE + offset
        return bytes(self._backing[start : start + length])

    def write(self, frame, offset, data):
        if offset < 0 or offset + len(data) > PAGE_SIZE:
            raise ValueError("write outside frame: off=%d len=%d" % (offset, len(data)))
        start = frame * PAGE_SIZE + offset
        self._backing[start : start + len(data)] = data

    def copy_frame(self, src_frame, dst_frame):
        """Copy a whole frame (the CoW handler's page copy)."""
        self.copy_run(src_frame, 0, dst_frame, 0, PAGE_SIZE)

    # ----------------------------------------------------- bulk run movers
    #
    # With the flat backing a physically-contiguous run is contiguous in
    # the buffer, so each mover is one slice copy no matter how many
    # frames it spans.  :func:`repro.mem.addrspace.copy_range` rides on
    # these.

    def read_run(self, frame, offset, out, pos, nbytes):
        """Copy ``nbytes`` starting at ``(frame, offset)`` into writable
        buffer ``out`` at ``pos``; the run may span multiple frames."""
        start = frame * PAGE_SIZE + offset
        out[pos : pos + nbytes] = memoryview(self._backing)[start : start + nbytes]

    def write_run(self, frame, offset, data_mv, pos, nbytes):
        """Copy ``nbytes`` from buffer ``data_mv`` at ``pos`` into the run
        starting at ``(frame, offset)``."""
        start = frame * PAGE_SIZE + offset
        self._backing[start : start + nbytes] = data_mv[pos : pos + nbytes]

    def copy_run(self, src_frame, src_off, dst_frame, dst_off, nbytes):
        """Frame-to-frame run copy (``memcpy`` between physical runs)."""
        backing = self._backing
        src = src_frame * PAGE_SIZE + src_off
        dst = dst_frame * PAGE_SIZE + dst_off
        if src == dst or nbytes <= 0:
            return
        if src < dst + nbytes and dst < src + nbytes:
            # Overlapping ranges: slicing the bytearray materializes a
            # temporary copy, making the assignment a memmove.
            backing[dst : dst + nbytes] = backing[src : src + nbytes]
        else:
            backing[dst : dst + nbytes] = memoryview(backing)[src : src + nbytes]

    def view(self, frame):
        """Mutable memoryview of a frame's bytes (engine fast path).

        Transient use only: a live view pins the backing buffer and
        blocks growth (``BufferError`` on the next first-touch alloc).
        """
        start = frame * PAGE_SIZE
        return memoryview(self._backing)[start : start + PAGE_SIZE]

    # -------------------------------------------------------- checkpointing

    def snapshot_frames(self):
        """Plain-data image of every allocated frame: ``{frame: bytes}``.

        The per-frame dict shape is the ckpt payload contract (stable
        across the flat-backing rewrite): restore into a pool of any
        layout via :meth:`load_frames`.
        """
        backing = self._backing
        out = {}
        for frame in self._refcount:
            start = frame * PAGE_SIZE
            out[frame] = bytes(backing[start : start + PAGE_SIZE])
        return out

    def load_frames(self, mapping):
        """Replace frame contents from a :meth:`snapshot_frames` image.

        Only touches the backing bytes; the caller restores refcounts and
        the free list separately (ckpt machine restore).
        """
        del self._backing[:]
        backing = self._backing
        for frame in sorted(mapping):
            end = (frame + 1) * PAGE_SIZE
            if end > len(backing):
                grow = max(end, 2 * len(backing), 1 << 20)
                cap = self.n_frames * PAGE_SIZE
                if grow > cap:
                    grow = cap
                backing.extend(bytes(grow - len(backing)))
            backing[end - PAGE_SIZE : end] = mapping[frame]

    def paddr(self, frame, offset=0):
        return frame * PAGE_SIZE + offset
