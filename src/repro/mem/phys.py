"""Physical memory: frames of real bytes with reference counting.

Frame numbers double as physical addresses (``paddr = frame * PAGE_SIZE``),
which is what the DMA engine's physical-contiguity requirement (§4.3) is
checked against when Copier splits tasks into subtasks.
"""

PAGE_SIZE = 4096


class OutOfMemory(Exception):
    pass


class PhysicalMemory:
    """A pool of ``n_frames`` page frames backed by bytearrays.

    ``fragmented=True`` makes the allocator hand out alternating frames so
    that multi-page buffers are physically non-contiguous — the worst case
    for DMA subtask formation (Fig. 7-b assumes all pages non-contiguous).
    ``fragmented=False`` allocates the lowest free frame, so consecutive
    allocations tend to be contiguous.
    """

    def __init__(self, n_frames=65536, fragmented=False):
        self.n_frames = n_frames
        self.fragmented = fragmented
        self._data = {}
        self._refcount = {}
        self._free = list(range(n_frames - 1, -1, -1))  # pop() yields frame 0 first
        self._free_sorted = True  # descending-order invariant of _free
        self._alloc_parity = 0

    @property
    def frames_in_use(self):
        return len(self._refcount)

    @property
    def frames_free(self):
        return len(self._free)

    def alloc_frame(self):
        """Allocate one zeroed frame; returns the frame number."""
        if not self._free:
            raise OutOfMemory("no free frames")
        if self.fragmented and len(self._free) > 1:
            # Alternate between the two ends of the free list to break up
            # physically-contiguous runs.
            self._alloc_parity ^= 1
            frame = self._free.pop() if self._alloc_parity else self._free.pop(0)
        else:
            frame = self._free.pop()
        self._data[frame] = bytearray(PAGE_SIZE)
        self._refcount[frame] = 1
        return frame

    def alloc_frame_in(self, lo, hi):
        """Allocate a zeroed frame with ``lo <= frame < hi``.

        Tiered-memory managers use frame-number bands as tiers (low band =
        fast DRAM, high band = slow CXL/NVM).
        """
        for i in range(len(self._free) - 1, -1, -1):
            frame = self._free[i]
            if lo <= frame < hi:
                self._free.pop(i)
                self._data[frame] = bytearray(PAGE_SIZE)
                self._refcount[frame] = 1
                return frame
        raise OutOfMemory("no free frames in [%d, %d)" % (lo, hi))

    def alloc_frames(self, n, contiguous=False):
        """Allocate ``n`` frames; with ``contiguous=True`` they are adjacent.

        A contiguous allocation picks the *lowest* free run of ``n`` frames
        and leaves the free list sorted descending (so subsequent single
        allocations pop the lowest frame) — the historic behaviour, now
        without re-sorting the whole list on every call: a dirty flag
        tracks whether frees broke the descending invariant, and the
        chosen run is removed with one slice deletion (it occupies
        adjacent positions in the sorted list).
        """
        if contiguous:
            free = self._free
            if not self._free_sorted:
                free.sort(reverse=True)
                self._free_sorted = True
            # Scan from the end (ascending frame numbers) for the lowest
            # run of ``n`` consecutive frames.
            start_idx = None  # index of the run's lowest frame (highest idx)
            run_len = 0
            prev = None
            idx = len(free) - 1
            low_idx = None
            while idx >= 0:
                frame = free[idx]
                if run_len and frame == prev + 1:
                    run_len += 1
                else:
                    low_idx = idx
                    run_len = 1
                prev = frame
                if run_len == n:
                    start_idx = low_idx
                    break
                idx -= 1
            if start_idx is None:
                raise OutOfMemory("no contiguous run of %d frames" % n)
            start = free[start_idx]
            frames = list(range(start, start + n))
            # Consecutive frames occupy adjacent positions in the
            # descending-sorted list: one slice removes them all.
            del free[idx : start_idx + 1]
            for frame in frames:
                self._data[frame] = bytearray(PAGE_SIZE)
                self._refcount[frame] = 1
            return frames
        if n > len(self._free):
            # All-or-nothing: never leave a half-allocated batch behind
            # (a failed mmap must not leak frames).
            raise OutOfMemory("need %d frames, %d free" % (n, len(self._free)))
        return [self.alloc_frame() for _ in range(n)]

    def share_frame(self, frame):
        """Increment the reference count (CoW fork, shared memory)."""
        self._refcount[frame] += 1

    def refcount(self, frame):
        return self._refcount.get(frame, 0)

    def free_frame(self, frame):
        count = self._refcount.get(frame)
        if count is None:
            raise ValueError("double free of frame %d" % frame)
        if count == 1:
            del self._refcount[frame]
            del self._data[frame]
            free = self._free
            if free and frame > free[-1]:
                self._free_sorted = False
            free.append(frame)
        else:
            self._refcount[frame] = count - 1

    def read(self, frame, offset, length):
        """Read ``length`` bytes from ``frame`` starting at ``offset``."""
        if offset < 0 or offset + length > PAGE_SIZE:
            raise ValueError("read outside frame: off=%d len=%d" % (offset, length))
        return bytes(self._data[frame][offset : offset + length])

    def write(self, frame, offset, data):
        if offset < 0 or offset + len(data) > PAGE_SIZE:
            raise ValueError("write outside frame: off=%d len=%d" % (offset, len(data)))
        self._data[frame][offset : offset + len(data)] = data

    def copy_frame(self, src_frame, dst_frame):
        """Copy a whole frame (the CoW handler's page copy)."""
        self._data[dst_frame][:] = self._data[src_frame]

    # ----------------------------------------------------- bulk run movers
    #
    # Frames are stored as separate per-frame bytearrays, so even a
    # physically-contiguous run crosses buffer boundaries — but these
    # primitives keep the page loop here, moving each page with a single
    # memoryview slice assignment (no temporary bytes objects), which is
    # what :func:`repro.mem.addrspace.copy_range` rides on.

    def read_run(self, frame, offset, out, pos, nbytes):
        """Copy ``nbytes`` starting at ``(frame, offset)`` into writable
        buffer ``out`` at ``pos``; the run may span multiple frames."""
        data = self._data
        while nbytes > 0:
            chunk = PAGE_SIZE - offset
            if chunk > nbytes:
                chunk = nbytes
            out[pos : pos + chunk] = memoryview(data[frame])[offset : offset + chunk]
            pos += chunk
            nbytes -= chunk
            frame += 1
            offset = 0

    def write_run(self, frame, offset, data_mv, pos, nbytes):
        """Copy ``nbytes`` from buffer ``data_mv`` at ``pos`` into the run
        starting at ``(frame, offset)``."""
        data = self._data
        while nbytes > 0:
            chunk = PAGE_SIZE - offset
            if chunk > nbytes:
                chunk = nbytes
            data[frame][offset : offset + chunk] = data_mv[pos : pos + chunk]
            pos += chunk
            nbytes -= chunk
            frame += 1
            offset = 0

    def copy_run(self, src_frame, src_off, dst_frame, dst_off, nbytes):
        """Frame-to-frame run copy (``memcpy`` between physical runs)."""
        data = self._data
        while nbytes > 0:
            chunk = PAGE_SIZE - src_off
            dst_room = PAGE_SIZE - dst_off
            if dst_room < chunk:
                chunk = dst_room
            if chunk > nbytes:
                chunk = nbytes
            data[dst_frame][dst_off : dst_off + chunk] = \
                memoryview(data[src_frame])[src_off : src_off + chunk]
            nbytes -= chunk
            src_off += chunk
            if src_off == PAGE_SIZE:
                src_frame += 1
                src_off = 0
            dst_off += chunk
            if dst_off == PAGE_SIZE:
                dst_frame += 1
                dst_off = 0

    def view(self, frame):
        """Mutable memoryview of a frame's bytes (engine fast path)."""
        return memoryview(self._data[frame])

    def paddr(self, frame, offset=0):
        return frame * PAGE_SIZE + offset
