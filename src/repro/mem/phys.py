"""Physical memory: frames of real bytes with reference counting.

Frame numbers double as physical addresses (``paddr = frame * PAGE_SIZE``),
which is what the DMA engine's physical-contiguity requirement (§4.3) is
checked against when Copier splits tasks into subtasks.
"""

PAGE_SIZE = 4096


class OutOfMemory(Exception):
    pass


class PhysicalMemory:
    """A pool of ``n_frames`` page frames backed by bytearrays.

    ``fragmented=True`` makes the allocator hand out alternating frames so
    that multi-page buffers are physically non-contiguous — the worst case
    for DMA subtask formation (Fig. 7-b assumes all pages non-contiguous).
    ``fragmented=False`` allocates the lowest free frame, so consecutive
    allocations tend to be contiguous.
    """

    def __init__(self, n_frames=65536, fragmented=False):
        self.n_frames = n_frames
        self.fragmented = fragmented
        self._data = {}
        self._refcount = {}
        self._free = list(range(n_frames - 1, -1, -1))  # pop() yields frame 0 first
        self._alloc_parity = 0

    @property
    def frames_in_use(self):
        return len(self._refcount)

    @property
    def frames_free(self):
        return len(self._free)

    def alloc_frame(self):
        """Allocate one zeroed frame; returns the frame number."""
        if not self._free:
            raise OutOfMemory("no free frames")
        if self.fragmented and len(self._free) > 1:
            # Alternate between the two ends of the free list to break up
            # physically-contiguous runs.
            self._alloc_parity ^= 1
            frame = self._free.pop() if self._alloc_parity else self._free.pop(0)
        else:
            frame = self._free.pop()
        self._data[frame] = bytearray(PAGE_SIZE)
        self._refcount[frame] = 1
        return frame

    def alloc_frame_in(self, lo, hi):
        """Allocate a zeroed frame with ``lo <= frame < hi``.

        Tiered-memory managers use frame-number bands as tiers (low band =
        fast DRAM, high band = slow CXL/NVM).
        """
        for i in range(len(self._free) - 1, -1, -1):
            frame = self._free[i]
            if lo <= frame < hi:
                self._free.pop(i)
                self._data[frame] = bytearray(PAGE_SIZE)
                self._refcount[frame] = 1
                return frame
        raise OutOfMemory("no free frames in [%d, %d)" % (lo, hi))

    def alloc_frames(self, n, contiguous=False):
        """Allocate ``n`` frames; with ``contiguous=True`` they are adjacent."""
        if contiguous:
            free = sorted(self._free)
            run_start = None
            run_len = 0
            start = None
            for frame in free:
                if run_start is not None and frame == run_start + run_len:
                    run_len += 1
                else:
                    run_start, run_len = frame, 1
                if run_len == n:
                    start = run_start
                    break
            if start is None:
                raise OutOfMemory("no contiguous run of %d frames" % n)
            frames = list(range(start, start + n))
            free_set = set(self._free)
            free_set.difference_update(frames)
            self._free = sorted(free_set, reverse=True)
            for frame in frames:
                self._data[frame] = bytearray(PAGE_SIZE)
                self._refcount[frame] = 1
            return frames
        return [self.alloc_frame() for _ in range(n)]

    def share_frame(self, frame):
        """Increment the reference count (CoW fork, shared memory)."""
        self._refcount[frame] += 1

    def refcount(self, frame):
        return self._refcount.get(frame, 0)

    def free_frame(self, frame):
        count = self._refcount.get(frame)
        if count is None:
            raise ValueError("double free of frame %d" % frame)
        if count == 1:
            del self._refcount[frame]
            del self._data[frame]
            self._free.append(frame)
        else:
            self._refcount[frame] = count - 1

    def read(self, frame, offset, length):
        """Read ``length`` bytes from ``frame`` starting at ``offset``."""
        if offset < 0 or offset + length > PAGE_SIZE:
            raise ValueError("read outside frame: off=%d len=%d" % (offset, length))
        return bytes(self._data[frame][offset : offset + length])

    def write(self, frame, offset, data):
        if offset < 0 or offset + len(data) > PAGE_SIZE:
            raise ValueError("write outside frame: off=%d len=%d" % (offset, len(data)))
        self._data[frame][offset : offset + len(data)] = data

    def copy_frame(self, src_frame, dst_frame):
        """Copy a whole frame (the CoW handler's page copy)."""
        self._data[dst_frame][:] = self._data[src_frame]

    def view(self, frame):
        """Mutable memoryview of a frame's bytes (engine fast path)."""
        return memoryview(self._data[frame])

    def paddr(self, frame, offset=0):
        return frame * PAGE_SIZE + offset
