"""Typed lifecycle errors for the memory layer.

Both subclass :class:`RuntimeError` so historic callers (and tests) that
caught the bare ``RuntimeError`` keep working, while lifecycle-aware
callers — the exit reaper, the chaos harness — can distinguish a
teardown race from a genuine bug.
"""


class MemoryLifecycleError(RuntimeError):
    """Base class for pin/unmap lifecycle violations."""


class PinnedPageError(MemoryLifecycleError):
    """An operation hit a page that is pinned by an in-flight copy.

    Raised only for operations that cannot be deferred (e.g. freeing a
    frame out from under a pin); plain ``munmap`` of a pinned page no
    longer raises — the page moves to the lazy-teardown list instead.
    """

    def __init__(self, vpn, message="operation on pinned page"):
        self.vpn = vpn
        super().__init__("%s vpn=%d" % (message, vpn))


class UnpinMismatchError(MemoryLifecycleError):
    """``unpin`` of a page that is not pinned — a bookkeeping bug."""

    def __init__(self, vpn):
        self.vpn = vpn
        super().__init__("unpin of unpinned page vpn=%d" % vpn)
