"""Memory fault taxonomy.

Faults matter to Copier in two ways: the CoW handler experiment (§5.2,
§6.1.2) measures fault latency directly, and Copier's *proactive fault
handling* (§4.5.4) resolves these faults in the service's own context
before they can trap.
"""


class MemoryFault(Exception):
    """Base class for translation failures."""

    def __init__(self, va, message=None):
        self.va = va
        super().__init__(message or "%s at va=0x%x" % (type(self).__name__, va))


class NotPresentFault(MemoryFault):
    """Page is mapped in a VMA but has no frame yet (demand paging)."""


class ProtectionFault(MemoryFault):
    """Write to a read-only mapping — the CoW trigger."""


class SegmentationFault(MemoryFault):
    """Access outside any VMA, or a permission the VMA never grants.

    Unresolvable: Copier drops the offending task and signals the client
    process (§4.5.4).
    """
