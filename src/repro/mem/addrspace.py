"""Per-process address spaces: page tables, demand paging, CoW, pinning."""

from repro.mem.faults import NotPresentFault, ProtectionFault, SegmentationFault
from repro.mem.phys import PAGE_SIZE
from repro.mem.vma import VMA

_DEFAULT_MMAP_BASE = 0x1000_0000


class PTE:
    """Page-table entry."""

    __slots__ = ("frame", "writable", "cow", "pin_count")

    def __init__(self, frame, writable, cow=False):
        self.frame = frame
        self.writable = writable
        self.cow = cow
        self.pin_count = 0

    def __repr__(self):
        return "<PTE frame=%d w=%s cow=%s pins=%d>" % (
            self.frame,
            self.writable,
            self.cow,
            self.pin_count,
        )


class AddressSpace:
    """A process's virtual address space.

    Translation is explicit: :meth:`translate` raises the fault a hardware
    walk would raise, and callers decide who pays for resolution — the
    in-context kernel fault handler, or Copier's proactive handler (§4.5.4).
    Convenience accessors :meth:`read`/:meth:`write` resolve legal faults
    inline (recording them in :attr:`fault_counts`) the way the combination
    of MMU + kernel does for ordinary application accesses.
    """

    _next_asid = [1]

    def __init__(self, phys, name=""):
        self.phys = phys
        self.asid = AddressSpace._next_asid[0]
        AddressSpace._next_asid[0] += 1
        self.name = name or ("as-%d" % self.asid)
        self.page_table = {}
        self.vmas = []
        self._mmap_cursor = _DEFAULT_MMAP_BASE
        self.fault_counts = {"demand_zero": 0, "cow_copy": 0, "cow_reuse": 0}
        self._invalidation_hooks = []

    # ------------------------------------------------------------------ VMAs

    def mmap(self, length, prot="rw", populate=False, shared_segment=None, name="", contiguous=False):
        """Map ``length`` bytes; returns the region's base virtual address.

        ``populate`` eagerly allocates frames (MAP_POPULATE); otherwise
        pages materialize on first touch (demand paging).  ``contiguous``
        requests physically-contiguous frames, for DMA-friendly buffers.
        """
        n_pages = pages_needed(length)
        base = self._mmap_cursor
        self._mmap_cursor += n_pages * PAGE_SIZE + PAGE_SIZE  # guard page gap
        vma = VMA(base, base + n_pages * PAGE_SIZE, prot=prot,
                  shared_segment=shared_segment, name=name)
        self.vmas.append(vma)
        if shared_segment is not None:
            shared_segment.attach(self, vma)
        elif populate:
            frames = self.phys.alloc_frames(n_pages, contiguous=contiguous)
            writable = vma.writable
            for i, frame in enumerate(frames):
                self.page_table[(base // PAGE_SIZE) + i] = PTE(frame, writable)
        return base

    def map_frames(self, frames, prot="rw", name=""):
        """Map existing frames into this space (kmap / shared skb view).

        Shares the frames (refcount++); :meth:`munmap` later drops the
        references.  Returns the base virtual address.
        """
        base = self._mmap_cursor
        self._mmap_cursor += len(frames) * PAGE_SIZE + PAGE_SIZE
        vma = VMA(base, base + len(frames) * PAGE_SIZE, prot=prot, name=name)
        self.vmas.append(vma)
        for i, frame in enumerate(frames):
            self.phys.share_frame(frame)
            self.page_table[(base // PAGE_SIZE) + i] = PTE(frame, vma.writable)
        return base

    def munmap(self, va, length):
        vma = self.find_vma(va)
        if vma is None or not vma.covers(va, length):
            raise SegmentationFault(va, "munmap outside VMA")
        for vpn in range(va // PAGE_SIZE, pages_end(va, length)):
            pte = self.page_table.get(vpn)
            if pte is not None:
                if pte.pin_count:
                    raise RuntimeError("munmap of pinned page vpn=%d" % vpn)
                self.phys.free_frame(pte.frame)
                del self.page_table[vpn]
                self._invalidate(vpn)
        if vma.start == va and vma.end == va + pages_needed(length) * PAGE_SIZE:
            self.vmas.remove(vma)

    def find_vma(self, va):
        for vma in self.vmas:
            if va in vma:
                return vma
        return None

    def check_range(self, va, length, write=False):
        """Validate [va, va+length) against VMAs (Copier security check)."""
        end = va + length
        cursor = va
        while cursor < end:
            vma = self.find_vma(cursor)
            if vma is None:
                raise SegmentationFault(cursor, "no VMA")
            if write and not vma.writable:
                raise SegmentationFault(cursor, "write to read-only VMA")
            if not write and not vma.readable:
                raise SegmentationFault(cursor, "read from unreadable VMA")
            cursor = min(end, vma.end)

    # ----------------------------------------------------------- translation

    def translate(self, va, write=False):
        """Hardware-style walk: returns ``(frame, offset)`` or raises."""
        vma = self.find_vma(va)
        if vma is None:
            raise SegmentationFault(va)
        if write and not vma.writable:
            raise SegmentationFault(va, "write to read-only VMA")
        pte = self.page_table.get(va // PAGE_SIZE)
        if pte is None:
            raise NotPresentFault(va)
        if write and not pte.writable:
            raise ProtectionFault(va)
        return pte.frame, va % PAGE_SIZE

    def resolve_fault(self, va, write=False):
        """Resolve one legal fault at ``va``; returns the resolution kind.

        Kinds: ``"demand_zero"`` (fresh zero frame), ``"cow_copy"`` (page
        was shared — allocate and copy), ``"cow_reuse"`` (sole owner — just
        re-enable write).  Raises :class:`SegmentationFault` for illegal
        accesses.  The *caller* charges simulated time for the resolution.
        """
        vma = self.find_vma(va)
        if vma is None:
            raise SegmentationFault(va)
        if write and not vma.writable:
            raise SegmentationFault(va, "write to read-only VMA")
        vpn = va // PAGE_SIZE
        pte = self.page_table.get(vpn)
        if pte is None:
            if vma.shared_segment is not None:
                frame = vma.shared_segment.frame_for(vma, va)
                self.phys.share_frame(frame)
                self.page_table[vpn] = PTE(frame, vma.writable)
            else:
                frame = self.phys.alloc_frame()
                self.page_table[vpn] = PTE(frame, vma.writable)
            self.fault_counts["demand_zero"] += 1
            return "demand_zero"
        if write and not pte.writable:
            if not pte.cow:
                raise ProtectionFault(va, "read-only page, not CoW")
            if self.phys.refcount(pte.frame) == 1:
                # Last reference: reuse the frame without copying.
                pte.writable = True
                pte.cow = False
                self.fault_counts["cow_reuse"] += 1
                self._invalidate(vpn)
                return "cow_reuse"
            new_frame = self.phys.alloc_frame()
            self.phys.copy_frame(pte.frame, new_frame)
            self.phys.free_frame(pte.frame)
            pte.frame = new_frame
            pte.writable = True
            pte.cow = False
            self.fault_counts["cow_copy"] += 1
            self._invalidate(vpn)
            return "cow_copy"
        raise RuntimeError("resolve_fault called with no fault at 0x%x" % va)

    def ensure_mapped(self, va, length, write=False):
        """Resolve every fault in [va, va+length); returns resolution kinds.

        This is the core of Copier's *proactive fault handling*: rather
        than letting the copy trap, the service walks the range up front.
        """
        resolutions = []
        for vpn in range(va // PAGE_SIZE, pages_end(va, length)):
            page_va = vpn * PAGE_SIZE
            probe = max(va, page_va)
            while True:
                try:
                    self.translate(probe, write=write)
                    break
                except (NotPresentFault, ProtectionFault):
                    resolutions.append(self.resolve_fault(probe, write=write))
        return resolutions

    # ------------------------------------------------------------- data path

    def frames_for(self, va, length, write=False):
        """Return ``[(frame, offset, chunk_len), ...]`` covering the range.

        Requires the range to be fully mapped (use :meth:`ensure_mapped`
        first); this is what the Copier dispatcher consumes to form
        physically-contiguous subtasks.
        """
        spans = []
        cursor = va
        end = va + length
        while cursor < end:
            frame, offset = self.translate(cursor, write=write)
            chunk = min(end - cursor, PAGE_SIZE - offset)
            spans.append((frame, offset, chunk))
            cursor += chunk
        return spans

    def read(self, va, length):
        """Read bytes, resolving legal faults inline (app direct access)."""
        out = bytearray()
        cursor = va
        end = va + length
        while cursor < end:
            try:
                frame, offset = self.translate(cursor, write=False)
            except (NotPresentFault, ProtectionFault):
                self.resolve_fault(cursor, write=False)
                continue
            chunk = min(end - cursor, PAGE_SIZE - offset)
            out += self.phys.read(frame, offset, chunk)
            cursor += chunk
        return bytes(out)

    def write(self, va, data):
        cursor = va
        pos = 0
        end = va + len(data)
        while cursor < end:
            try:
                frame, offset = self.translate(cursor, write=True)
            except (NotPresentFault, ProtectionFault):
                self.resolve_fault(cursor, write=True)
                continue
            chunk = min(end - cursor, PAGE_SIZE - offset)
            self.phys.write(frame, offset, data[pos : pos + chunk])
            cursor += chunk
            pos += chunk

    # ------------------------------------------------------------ pin / fork

    def pin(self, va, length, write=False):
        """Pin pages so their mapping cannot change during an async copy."""
        self.ensure_mapped(va, length, write=write)
        for vpn in range(va // PAGE_SIZE, pages_end(va, length)):
            self.page_table[vpn].pin_count += 1

    def unpin(self, va, length):
        for vpn in range(va // PAGE_SIZE, pages_end(va, length)):
            pte = self.page_table.get(vpn)
            if pte is None or pte.pin_count == 0:
                raise RuntimeError("unpin of unpinned page vpn=%d" % vpn)
            pte.pin_count -= 1

    def fork(self, name=""):
        """Create a child address space sharing pages copy-on-write."""
        child = AddressSpace(self.phys, name=name or (self.name + "-child"))
        child._mmap_cursor = self._mmap_cursor
        for vma in self.vmas:
            child_vma = VMA(
                vma.start,
                vma.end,
                prot=("r" if vma.readable else "") + ("w" if vma.writable else ""),
                shared_segment=vma.shared_segment,
                name=vma.name,
            )
            child.vmas.append(child_vma)
            if vma.shared_segment is not None:
                vma.shared_segment.attach(child, child_vma)
        for vpn, pte in self.page_table.items():
            vma = self.find_vma(vpn * PAGE_SIZE)
            if vma is not None and vma.shared_segment is not None:
                self.phys.share_frame(pte.frame)
                child.page_table[vpn] = PTE(pte.frame, pte.writable)
                continue
            self.phys.share_frame(pte.frame)
            child.page_table[vpn] = PTE(pte.frame, writable=False, cow=True)
            if pte.writable:
                pte.writable = False
                pte.cow = True
                self._invalidate(vpn)
        return child

    # -------------------------------------------------------- ATCache hooks

    def register_invalidation_hook(self, fn):
        """``fn(asid, vpn)`` fires whenever a mapping changes (§4.3)."""
        self._invalidation_hooks.append(fn)

    def _invalidate(self, vpn):
        for fn in self._invalidation_hooks:
            fn(self.asid, vpn)


def pages_needed(length):
    return max(1, (length + PAGE_SIZE - 1) // PAGE_SIZE)


def pages_end(va, length):
    """Exclusive vpn bound of the range [va, va+length)."""
    if length == 0:
        return va // PAGE_SIZE
    return (va + length - 1) // PAGE_SIZE + 1
