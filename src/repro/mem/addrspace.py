"""Per-process address spaces: page tables, demand paging, CoW, pinning."""

import os
from bisect import bisect_right
from collections import deque

from repro.mem.errors import UnpinMismatchError
from repro.mem.faults import NotPresentFault, ProtectionFault, SegmentationFault
from repro.mem.phys import PAGE_SIZE
from repro.mem.vma import VMA

#: How many recently-unmapped ranges to remember for :meth:`was_unmapped`.
_UNMAP_LOG_LIMIT = 64

_DEFAULT_MMAP_BASE = 0x1000_0000

#: Soft bound on the per-aspace run-cache size; crossing it clears the
#: cache wholesale (cheaper than LRU bookkeeping on the hot path, and the
#: simulations in this repo never come close).
_RUN_CACHE_LIMIT = 1 << 16


def slowpath_enabled():
    """True when ``COPIER_SLOWPATH=1`` forces the per-page walkers.

    Read once per :class:`AddressSpace` construction — the differential
    determinism tests build one system per setting.
    """
    return os.environ.get("COPIER_SLOWPATH") == "1"


class PTE:
    """Page-table entry."""

    __slots__ = ("frame", "writable", "cow", "pin_count")

    def __init__(self, frame, writable, cow=False):
        self.frame = frame
        self.writable = writable
        self.cow = cow
        self.pin_count = 0

    def __repr__(self):
        return "<PTE frame=%d w=%s cow=%s pins=%d>" % (
            self.frame,
            self.writable,
            self.cow,
            self.pin_count,
        )


class AddressSpace:
    """A process's virtual address space.

    Translation is explicit: :meth:`translate` raises the fault a hardware
    walk would raise, and callers decide who pays for resolution — the
    in-context kernel fault handler, or Copier's proactive handler (§4.5.4).
    Convenience accessors :meth:`read`/:meth:`write` resolve legal faults
    inline (recording them in :attr:`fault_counts`) the way the combination
    of MMU + kernel does for ordinary application accesses.

    The data path is *run-based*: :meth:`translate_run` returns maximal
    physically-contiguous frame runs backed by a per-aspace sequential-run
    cache (a software TLB keyed by vpn, invalidated through the same
    plumbing that feeds :meth:`register_invalidation_hook`), and the bulk
    primitives :meth:`read_into` / :meth:`write_from` /
    :func:`copy_range` move whole runs via ``memoryview`` slices instead
    of per-page chunk loops.  ``COPIER_SLOWPATH=1`` forces the historic
    per-page walkers for differential testing.
    """

    _next_asid = [1]

    def __init__(self, phys, name=""):
        self.phys = phys
        self.asid = AddressSpace._next_asid[0]
        AddressSpace._next_asid[0] += 1
        self.name = name or ("as-%d" % self.asid)
        self.page_table = {}
        # VMA index: ``_vmas`` is kept sorted by start address (VMAs never
        # overlap) with ``_vma_starts`` as the parallel bisect key, so
        # :meth:`find_vma` is O(log n) instead of a linear scan — the
        # historic scan was the single hottest call in whole-system
        # profiles (it sits under every translate/check_range).
        self._vmas = []
        self._vma_starts = []
        self._mmap_cursor = _DEFAULT_MMAP_BASE
        self.fault_counts = {"demand_zero": 0, "cow_copy": 0, "cow_reuse": 0}
        self._invalidation_hooks = []
        self._fastpath = not slowpath_enabled()
        self._run_cache = {}  # vpn -> (frame, writable); the software TLB
        # Lazy teardown: pinned pages survive their VMA as (vpn, pte)
        # entries here; the last unpin frees the frame (§4.3 lifecycle).
        self._lazy_teardown = []
        self.deferred_unmaps = 0     # pages deferred by munmap-while-pinned
        self.deferred_reclaimed = 0  # deferred pages whose last pin dropped
        self.pinned_fork_copies = 0  # pinned pages eagerly copied at fork
        self._unmap_log = deque(maxlen=_UNMAP_LOG_LIMIT)  # (start, end) ranges

    # ------------------------------------------------------------------ VMAs

    @property
    def vmas(self):
        """VMA list, sorted by start address.  Assigning replaces the
        whole list and rebuilds the bisect index (ckpt restore)."""
        return self._vmas

    @vmas.setter
    def vmas(self, value):
        self._vmas = list(value)
        self._vmas.sort(key=lambda v: v.start)
        self._vma_starts = [v.start for v in self._vmas]

    def _vma_add(self, vma):
        """Insert ``vma`` keeping the index sorted.  The mmap cursor is
        monotonic, so in practice this is an O(1) append."""
        starts = self._vma_starts
        if not starts or vma.start > starts[-1]:
            starts.append(vma.start)
            self._vmas.append(vma)
        else:
            i = bisect_right(starts, vma.start)
            starts.insert(i, vma.start)
            self._vmas.insert(i, vma)

    def _vma_remove(self, vma):
        i = bisect_right(self._vma_starts, vma.start) - 1
        if i < 0 or self._vmas[i] is not vma:
            raise ValueError("VMA not mapped: %r" % (vma,))
        del self._vmas[i]
        del self._vma_starts[i]

    def mmap(self, length, prot="rw", populate=False, shared_segment=None, name="", contiguous=False):
        """Map ``length`` bytes; returns the region's base virtual address.

        ``populate`` eagerly allocates frames (MAP_POPULATE); otherwise
        pages materialize on first touch (demand paging).  ``contiguous``
        requests physically-contiguous frames, for DMA-friendly buffers.

        Every operation that can fail (bad protection string, shared
        segment validation, frame exhaustion) runs *before* the mapping is
        installed: a failed mmap consumes no address space — the cursor
        does not advance past a guard-page gap that nothing occupies.
        """
        n_pages = pages_needed(length)
        base = self._mmap_cursor
        vma = VMA(base, base + n_pages * PAGE_SIZE, prot=prot,
                  shared_segment=shared_segment, name=name)
        frames = None
        if shared_segment is not None:
            shared_segment.attach(self, vma)
        elif populate:
            frames = self.phys.alloc_frames(n_pages, contiguous=contiguous)
        # Point of no return: nothing below raises.
        self._mmap_cursor = base + n_pages * PAGE_SIZE + PAGE_SIZE  # guard gap
        self._vma_add(vma)
        if frames is not None:
            writable = vma.writable
            for i, frame in enumerate(frames):
                self.page_table[(base // PAGE_SIZE) + i] = PTE(frame, writable)
        return base

    def map_frames(self, frames, prot="rw", name=""):
        """Map existing frames into this space (kmap / shared skb view).

        Shares the frames (refcount++); :meth:`munmap` later drops the
        references.  Returns the base virtual address.
        """
        base = self._mmap_cursor
        self._mmap_cursor += len(frames) * PAGE_SIZE + PAGE_SIZE
        vma = VMA(base, base + len(frames) * PAGE_SIZE, prot=prot, name=name)
        self._vma_add(vma)
        for i, frame in enumerate(frames):
            self.phys.share_frame(frame)
            self.page_table[(base // PAGE_SIZE) + i] = PTE(frame, vma.writable)
        return base

    def munmap(self, va, length):
        """Unmap [va, va+length); pinned pages are *deferred*, not an error.

        A pinned page (an async copy holds it — §4.3) moves to the
        lazy-teardown list: the translation disappears immediately (new
        accesses fault), but the frame stays alive until the last pin
        drops, at which point :meth:`unpin` reclaims it.  This is the
        FOLL_PIN / io_uring answer to munmap racing an in-flight DMA.
        """
        vma = self.find_vma(va)
        if vma is None or not vma.covers(va, length):
            raise SegmentationFault(va, "munmap outside VMA")
        for vpn in range(va // PAGE_SIZE, pages_end(va, length)):
            pte = self.page_table.get(vpn)
            if pte is not None:
                if pte.pin_count:
                    self._lazy_teardown.append((vpn, pte))
                    self.deferred_unmaps += 1
                else:
                    self.phys.free_frame(pte.frame)
                del self.page_table[vpn]
                self._invalidate(vpn)
        self._unmap_log.append((va, va + pages_needed(length) * PAGE_SIZE))
        if vma.start == va and vma.end == va + pages_needed(length) * PAGE_SIZE:
            self._vma_remove(vma)

    def was_unmapped(self, va, length):
        """True if [va, va+length) overlaps a recently-unmapped range.

        Lets the copy path distinguish an EFAULT-style lifecycle race
        (buffer unmapped under an in-flight task) from a never-mapped
        address (a bug, handled as SIGSEGV).  The log is bounded, so a
        very old unmap can be forgotten — the consequence is the harsher
        verdict, never a false EFAULT.
        """
        end = va + length
        for start, stop in self._unmap_log:
            if va < stop and start < end:
                return True
        return False

    def teardown(self):
        """Unmap every VMA (process exit).  Pinned pages defer as usual;
        returns the number of pages parked on the lazy-teardown list."""
        before = self.deferred_unmaps
        for vma in list(self.vmas):
            self.munmap(vma.start, vma.end - vma.start)
        return self.deferred_unmaps - before

    def pins_outstanding(self):
        """Total pin count across live and lazily-torn-down pages."""
        total = 0
        for pte in self.page_table.values():
            total += pte.pin_count
        for _vpn, pte in self._lazy_teardown:
            total += pte.pin_count
        return total

    def find_vma(self, va):
        """VMA containing ``va``, or None — O(log n) bisect over the
        sorted, non-overlapping VMA index."""
        i = bisect_right(self._vma_starts, va) - 1
        if i >= 0:
            vma = self._vmas[i]
            if va < vma.end:
                return vma
        return None

    def check_range(self, va, length, write=False):
        """Validate [va, va+length) against VMAs (Copier security check)."""
        end = va + length
        cursor = va
        vmas = self._vmas
        n_vmas = len(vmas)
        i = bisect_right(self._vma_starts, cursor) - 1
        while cursor < end:
            if i < 0 or i >= n_vmas:
                raise SegmentationFault(cursor, "no VMA")
            vma = vmas[i]
            if not (vma.start <= cursor < vma.end):
                raise SegmentationFault(cursor, "no VMA")
            if write and not vma.writable:
                raise SegmentationFault(cursor, "write to read-only VMA")
            if not write and not vma.readable:
                raise SegmentationFault(cursor, "read from unreadable VMA")
            cursor = vma.end
            i += 1

    # ----------------------------------------------------------- translation

    def translate(self, va, write=False):
        """Hardware-style walk: returns ``(frame, offset)`` or raises."""
        vma = self.find_vma(va)
        if vma is None:
            raise SegmentationFault(va)
        if write and not vma.writable:
            raise SegmentationFault(va, "write to read-only VMA")
        pte = self.page_table.get(va // PAGE_SIZE)
        if pte is None:
            raise NotPresentFault(va)
        if write and not pte.writable:
            raise ProtectionFault(va)
        return pte.frame, va % PAGE_SIZE

    def _translate_cached(self, va, write):
        """TLB-backed :meth:`translate`: hit skips the VMA scan and walk.

        A cached entry exists only for a page a full :meth:`translate`
        succeeded on, and every mapping change pops it (``_invalidate``),
        so a hit is always current.  A write request through a read-only
        entry falls back to the full walk so the correct fault is raised.
        """
        vpn = va // PAGE_SIZE
        entry = self._run_cache.get(vpn)
        if entry is not None and (entry[1] or not write):
            return entry[0]
        frame, _off = self.translate(va, write=write)
        if len(self._run_cache) >= _RUN_CACHE_LIMIT:
            self._run_cache.clear()
        self._run_cache[vpn] = (frame, self.page_table[vpn].writable)
        return frame

    def translate_run(self, va, length, write=False):
        """Translate [va, va+length) into maximal physically-contiguous runs.

        Returns ``[(frame, offset, nbytes), ...]`` where each entry covers
        as many pages as stay physically adjacent; raises the same faults
        :meth:`translate` would at the first untranslatable page.  The
        whole range must be mapped (use :meth:`ensure_mapped` first).
        """
        return self._walk_runs(va, length, write, resolve=False)

    def _walk_runs(self, va, length, write, resolve):
        """Core run walker behind :meth:`translate_run` and the bulk I/O.

        With ``resolve=True`` legal faults are resolved inline (counted in
        :attr:`fault_counts`, ascending-address order — byte-compatible
        with the historic per-page walkers).
        """
        runs = []
        if length <= 0:
            return runs
        cursor = va
        end = va + length
        fast = self._fastpath
        while cursor < end:
            while True:
                try:
                    if fast:
                        frame = self._translate_cached(cursor, write)
                    else:
                        frame, _off = self.translate(cursor, write=write)
                    break
                except (NotPresentFault, ProtectionFault):
                    if not resolve:
                        raise
                    self.resolve_fault(cursor, write=write)
            offset = cursor % PAGE_SIZE
            chunk = min(end - cursor, PAGE_SIZE - offset)
            run_frame = frame
            run_offset = offset
            run_len = chunk
            cursor += chunk
            next_frame = frame + 1
            while cursor < end:
                try:
                    if fast:
                        frame = self._translate_cached(cursor, write)
                    else:
                        frame, _off = self.translate(cursor, write=write)
                except (NotPresentFault, ProtectionFault):
                    break  # close the run; the outer loop resolves/raises
                if frame != next_frame:
                    break
                chunk = min(end - cursor, PAGE_SIZE)
                run_len += chunk
                cursor += chunk
                next_frame += 1
            runs.append((run_frame, run_offset, run_len))
        return runs

    def resolve_fault(self, va, write=False):
        """Resolve one legal fault at ``va``; returns the resolution kind.

        Kinds: ``"demand_zero"`` (fresh zero frame), ``"cow_copy"`` (page
        was shared — allocate and copy), ``"cow_reuse"`` (sole owner — just
        re-enable write).  Raises :class:`SegmentationFault` for illegal
        accesses.  The *caller* charges simulated time for the resolution.
        """
        vma = self.find_vma(va)
        if vma is None:
            raise SegmentationFault(va)
        if write and not vma.writable:
            raise SegmentationFault(va, "write to read-only VMA")
        vpn = va // PAGE_SIZE
        pte = self.page_table.get(vpn)
        if pte is None:
            if vma.shared_segment is not None:
                frame = vma.shared_segment.frame_for(vma, va)
                self.phys.share_frame(frame)
                self.page_table[vpn] = PTE(frame, vma.writable)
            else:
                frame = self.phys.alloc_frame()
                self.page_table[vpn] = PTE(frame, vma.writable)
            self.fault_counts["demand_zero"] += 1
            return "demand_zero"
        if write and not pte.writable:
            if not pte.cow:
                raise ProtectionFault(va, "read-only page, not CoW")
            if self.phys.refcount(pte.frame) == 1:
                # Last reference: reuse the frame without copying.
                pte.writable = True
                pte.cow = False
                self.fault_counts["cow_reuse"] += 1
                self._invalidate(vpn)
                return "cow_reuse"
            new_frame = self.phys.alloc_frame()
            self.phys.copy_frame(pte.frame, new_frame)
            self.phys.free_frame(pte.frame)
            pte.frame = new_frame
            pte.writable = True
            pte.cow = False
            self.fault_counts["cow_copy"] += 1
            self._invalidate(vpn)
            return "cow_copy"
        raise RuntimeError("resolve_fault called with no fault at 0x%x" % va)

    def ensure_mapped(self, va, length, write=False):
        """Resolve every fault in [va, va+length); returns resolution kinds.

        This is the core of Copier's *proactive fault handling*: rather
        than letting the copy trap, the service walks the range up front.
        """
        if not self._fastpath:
            return self._ensure_mapped_slow(va, length, write)
        resolutions = []
        cursor = va
        end = va + length
        if length == 0:
            return resolutions
        while cursor < end:
            while True:
                try:
                    self._translate_cached(cursor, write)
                    break
                except (NotPresentFault, ProtectionFault):
                    resolutions.append(self.resolve_fault(cursor, write=write))
            cursor = (cursor // PAGE_SIZE + 1) * PAGE_SIZE
        return resolutions

    def _ensure_mapped_slow(self, va, length, write=False):
        """Historic per-page walker (COPIER_SLOWPATH=1)."""
        resolutions = []
        for vpn in range(va // PAGE_SIZE, pages_end(va, length)):
            page_va = vpn * PAGE_SIZE
            probe = max(va, page_va)
            while True:
                try:
                    self.translate(probe, write=write)
                    break
                except (NotPresentFault, ProtectionFault):
                    resolutions.append(self.resolve_fault(probe, write=write))
        return resolutions

    # ------------------------------------------------------------- data path

    def frames_for(self, va, length, write=False):
        """Return ``[(frame, offset, chunk_len), ...]`` covering the range.

        Requires the range to be fully mapped (use :meth:`ensure_mapped`
        first); per-page spans for compatibility — contiguity-sensitive
        callers should use :meth:`translate_run` directly.
        """
        if not self._fastpath:
            return self._frames_for_slow(va, length, write)
        spans = []
        for frame, offset, nbytes in self._walk_runs(va, length, write,
                                                     resolve=False):
            while nbytes > 0:
                chunk = min(nbytes, PAGE_SIZE - offset)
                spans.append((frame, offset, chunk))
                nbytes -= chunk
                frame += 1
                offset = 0
        return spans

    def _frames_for_slow(self, va, length, write=False):
        spans = []
        cursor = va
        end = va + length
        while cursor < end:
            frame, offset = self.translate(cursor, write=write)
            chunk = min(end - cursor, PAGE_SIZE - offset)
            spans.append((frame, offset, chunk))
            cursor += chunk
        return spans

    def read(self, va, length):
        """Read bytes, resolving legal faults inline (app direct access)."""
        if not self._fastpath:
            return self._read_slow(va, length)
        out = bytearray(length)
        if length:
            self.read_into(va, out)
        return bytes(out)

    def _read_slow(self, va, length):
        out = bytearray()
        cursor = va
        end = va + length
        while cursor < end:
            try:
                frame, offset = self.translate(cursor, write=False)
            except (NotPresentFault, ProtectionFault):
                self.resolve_fault(cursor, write=False)
                continue
            chunk = min(end - cursor, PAGE_SIZE - offset)
            out += self.phys.read(frame, offset, chunk)
            cursor += chunk
        return bytes(out)

    def read_into(self, va, buf):
        """Fill writable buffer ``buf`` from [va, va+len(buf)) in bulk.

        Resolves legal faults inline like :meth:`read`; moves whole
        physically-contiguous runs per iteration.
        """
        mv = memoryview(buf)
        pos = 0
        read_run = self.phys.read_run
        for frame, offset, nbytes in self._walk_runs(va, len(mv), False,
                                                     resolve=True):
            read_run(frame, offset, mv, pos, nbytes)
            pos += nbytes

    def write(self, va, data):
        if not self._fastpath:
            return self._write_slow(va, data)
        if len(data):
            self.write_from(va, data)

    def _write_slow(self, va, data):
        cursor = va
        pos = 0
        end = va + len(data)
        while cursor < end:
            try:
                frame, offset = self.translate(cursor, write=True)
            except (NotPresentFault, ProtectionFault):
                self.resolve_fault(cursor, write=True)
                continue
            chunk = min(end - cursor, PAGE_SIZE - offset)
            self.phys.write(frame, offset, data[pos : pos + chunk])
            cursor += chunk
            pos += chunk

    def write_from(self, va, data):
        """Write buffer ``data`` to [va, va+len(data)) in bulk.

        Resolves legal faults inline like :meth:`write`; moves whole
        physically-contiguous runs per iteration.
        """
        mv = memoryview(data)
        pos = 0
        write_run = self.phys.write_run
        for frame, offset, nbytes in self._walk_runs(va, len(mv), True,
                                                     resolve=True):
            write_run(frame, offset, mv, pos, nbytes)
            pos += nbytes

    # ------------------------------------------------------------ pin / fork

    def pin(self, va, length, write=False):
        """Pin pages so their mapping cannot change during an async copy."""
        self.ensure_mapped(va, length, write=write)
        page_table = self.page_table
        for vpn in range(va // PAGE_SIZE, pages_end(va, length)):
            page_table[vpn].pin_count += 1

    def unpin(self, va, length):
        page_table = self.page_table
        for vpn in range(va // PAGE_SIZE, pages_end(va, length)):
            pte = page_table.get(vpn)
            if pte is None or pte.pin_count == 0:
                if self._unpin_deferred(vpn):
                    continue
                raise UnpinMismatchError(vpn)
            pte.pin_count -= 1

    def _unpin_deferred(self, vpn):
        """Drop one pin on a lazily-torn-down page; free on the last one."""
        for i, (t_vpn, pte) in enumerate(self._lazy_teardown):
            if t_vpn == vpn and pte.pin_count > 0:
                pte.pin_count -= 1
                if pte.pin_count == 0:
                    self.phys.free_frame(pte.frame)
                    del self._lazy_teardown[i]
                    self.deferred_reclaimed += 1
                return True
        return False

    def fork(self, name=""):
        """Create a child address space sharing pages copy-on-write."""
        child = AddressSpace(self.phys, name=name or (self.name + "-child"))
        child._mmap_cursor = self._mmap_cursor
        for vma in self.vmas:
            child_vma = VMA(
                vma.start,
                vma.end,
                prot=("r" if vma.readable else "") + ("w" if vma.writable else ""),
                shared_segment=vma.shared_segment,
                name=vma.name,
            )
            child._vma_add(child_vma)
            if vma.shared_segment is not None:
                vma.shared_segment.attach(child, child_vma)
        for vpn, pte in self.page_table.items():
            vma = self.find_vma(vpn * PAGE_SIZE)
            if vma is not None and vma.shared_segment is not None:
                self.phys.share_frame(pte.frame)
                child.page_table[vpn] = PTE(pte.frame, pte.writable)
                continue
            if pte.pin_count:
                # FOLL_PIN semantics: a pinned page is never CoW-shared.
                # The child gets an eager copy (a consistent snapshot at
                # fork time) and the parent's frame stays writable in
                # place, so the in-flight DMA it is pinned for keeps
                # landing in the frame the pin promised.
                new_frame = self.phys.alloc_frame()
                self.phys.copy_frame(pte.frame, new_frame)
                child.page_table[vpn] = PTE(new_frame, pte.writable)
                self.pinned_fork_copies += 1
                continue
            self.phys.share_frame(pte.frame)
            child.page_table[vpn] = PTE(pte.frame, writable=False, cow=True)
            if pte.writable:
                pte.writable = False
                pte.cow = True
                self._invalidate(vpn)
        return child

    # -------------------------------------------------------- ATCache hooks

    def register_invalidation_hook(self, fn):
        """``fn(asid, vpn)`` fires whenever a mapping changes (§4.3)."""
        self._invalidation_hooks.append(fn)

    def _invalidate(self, vpn):
        self._run_cache.pop(vpn, None)
        for fn in self._invalidation_hooks:
            fn(self.asid, vpn)


def copy_range(src_as, src_va, dst_as, dst_va, nbytes):
    """Move ``nbytes`` from ``(src_as, src_va)`` to ``(dst_as, dst_va)``.

    The bulk equivalent of ``dst_as.write(dst_va, src_as.read(src_va, n))``
    — same fault-resolution semantics (source faults resolved first, then
    destination, both in ascending address order; counted in each side's
    ``fault_counts``), same snapshot semantics (a destination write never
    feeds back into a later source read, even for aliasing ranges), but
    the bytes move frame-run to frame-run through ``memoryview`` slices
    with no intermediate buffer in the common non-aliasing case.
    """
    if nbytes == 0:
        return
    if not (src_as._fastpath and dst_as._fastpath):
        data = src_as.read(src_va, nbytes)
        dst_as.write(dst_va, data)
        return
    # Resolve faults up front, source first — the same order the
    # read-then-write slow path produces, so frame allocation sequences
    # (and with them DMA candidacy) are identical.
    src_runs = src_as._walk_runs(src_va, nbytes, False, resolve=True)
    dst_runs = dst_as._walk_runs(dst_va, nbytes, True, resolve=True)
    if src_as.phys is dst_as.phys and _runs_alias(src_runs, dst_runs):
        buf = bytearray(nbytes)
        src_as.read_into(src_va, buf)
        dst_as.write_from(dst_va, buf)
        return
    phys = dst_as.phys
    copy_run = phys.copy_run
    read_run = src_as.phys.read_run
    si = di = 0
    s_frame, s_off, s_left = src_runs[0]
    d_frame, d_off, d_left = dst_runs[0]
    same_phys = src_as.phys is phys
    while True:
        chunk = s_left if s_left < d_left else d_left
        if same_phys:
            copy_run(s_frame, s_off, d_frame, d_off, chunk)
        else:
            tmp = bytearray(chunk)
            read_run(s_frame, s_off, memoryview(tmp), 0, chunk)
            phys.write_run(d_frame, d_off, memoryview(tmp), 0, chunk)
        s_left -= chunk
        d_left -= chunk
        if s_left == 0:
            si += 1
            if si == len(src_runs):
                break
            s_frame, s_off, s_left = src_runs[si]
        else:
            s_off += chunk
            s_frame += s_off // PAGE_SIZE
            s_off %= PAGE_SIZE
        if d_left == 0:
            di += 1
            d_frame, d_off, d_left = dst_runs[di]
        else:
            d_off += chunk
            d_frame += d_off // PAGE_SIZE
            d_off %= PAGE_SIZE


def _runs_alias(src_runs, dst_runs):
    """True if any source frame interval intersects a destination one."""
    for s_frame, s_off, s_len in src_runs:
        s_last = s_frame + (s_off + s_len - 1) // PAGE_SIZE
        for d_frame, d_off, d_len in dst_runs:
            d_last = d_frame + (d_off + d_len - 1) // PAGE_SIZE
            if s_frame <= d_last and d_frame <= s_last:
                return True
    return False


def pages_needed(length):
    return max(1, (length + PAGE_SIZE - 1) // PAGE_SIZE)


def pages_end(va, length):
    """Exclusive vpn bound of the range [va, va+length)."""
    if length == 0:
        return va // PAGE_SIZE
    return (va + length - 1) // PAGE_SIZE + 1
