"""Shared memory segments.

Used by the Binder IPC path (§5.2): the Binder driver copies a client's
message into a kernel buffer, and the server maps that buffer — a shared
segment — into its own address space.  libCopier's ``shm_descr_bind``
(§5.1.1) associates a descriptor region with a segment so csync can find
progress bitmaps by offset.
"""

from repro.mem.phys import PAGE_SIZE
from repro.mem.addrspace import pages_needed


class SharedSegment:
    """A run of frames mappable into several address spaces."""

    _next_id = [1]

    def __init__(self, phys, length, name="", contiguous=False):
        self.phys = phys
        self.segment_id = SharedSegment._next_id[0]
        SharedSegment._next_id[0] += 1
        self.length = length
        self.name = name or ("shm-%d" % self.segment_id)
        self.frames = phys.alloc_frames(pages_needed(length), contiguous=contiguous)
        self._attachments = []  # (addrspace, vma)

    def attach(self, addrspace, vma):
        self._attachments.append((addrspace, vma))

    def frame_for(self, vma, va):
        index = (va - vma.start) // PAGE_SIZE
        return self.frames[index]

    def write(self, offset, data):
        """Write directly into the segment (kernel-side producer)."""
        if offset + len(data) > len(self.frames) * PAGE_SIZE:
            raise ValueError("write beyond segment")
        pos = 0
        while pos < len(data):
            frame = self.frames[(offset + pos) // PAGE_SIZE]
            in_page = (offset + pos) % PAGE_SIZE
            chunk = min(len(data) - pos, PAGE_SIZE - in_page)
            self.phys.write(frame, in_page, data[pos : pos + chunk])
            pos += chunk

    def read(self, offset, length):
        if offset + length > len(self.frames) * PAGE_SIZE:
            raise ValueError("read beyond segment")
        out = bytearray()
        pos = 0
        while pos < length:
            frame = self.frames[(offset + pos) // PAGE_SIZE]
            in_page = (offset + pos) % PAGE_SIZE
            chunk = min(length - pos, PAGE_SIZE - in_page)
            out += self.phys.read(frame, in_page, chunk)
            pos += chunk
        return bytes(out)

    def release(self):
        for frame in self.frames:
            self.phys.free_frame(frame)
        self.frames = []
