"""Copier: coordinated asynchronous memory copy as a first-class OS service.

A complete executable reproduction of He et al., SOSP 2025, on a
discrete-event machine simulator.  The three objects most users need:

>>> from repro import System, LibCopier, Compute
>>> system = System(n_cores=4, copier=True)
>>> proc = system.create_process("app")
>>> lib = LibCopier(proc)

then write application logic as a generator using ``lib.amemcpy`` /
``lib.csync`` and run it with ``proc.spawn`` + ``system.env.run_until``.
See README.md for the full tour and DESIGN.md for how the simulated
substrate maps onto the paper's systems.
"""

from repro.api import LibCopier
from repro.kernel import System
from repro.sim import Compute, Timeout, WaitEvent

__version__ = "1.0.0"

__all__ = ["System", "LibCopier", "Compute", "Timeout", "WaitEvent",
           "__version__"]
