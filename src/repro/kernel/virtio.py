"""Virtio-style device virtualization with Copier-assisted copies (§7).

The last of §7's named OS services: a host-side device model (think
virtio-blk/net backend) moves request/response payloads between guest
buffers and host device buffers.  Baseline backends copy synchronously in
the vCPU's exit path; with Copier the backend submits the copy at kick
time and the device thread csyncs right before touching the payload —
the guest resumes while the payload streams.

The "guest" is simply another address space; the shared ring is a
:class:`~repro.mem.shm.SharedSegment`, faithful to virtqueues living in
guest memory that the host maps.
"""

from collections import deque

from repro.copier.task import Region
from repro.sim import Compute, WaitEvent

VMEXIT_CYCLES = 1800       # kick: guest -> host transition
VMENTER_CYCLES = 1500      # resume the vCPU
RING_OP_CYCLES = 120       # descriptor ring bookkeeping
DEVICE_CYCLES_PER_KB = 90  # device-model processing per KB of payload


class VirtQueue:
    """A minimal split-ring: guests post buffers, the backend consumes."""

    def __init__(self, system, guest_proc, name="virtq"):
        self.system = system
        self.guest_proc = guest_proc
        self.name = name
        self._pending = deque()
        self._waiters = []
        self.completions = {}

    def kick(self, req_id, guest_va, nbytes, write):
        """Guest posts a request (host side is notified)."""
        self._pending.append((req_id, guest_va, nbytes, write))
        event = self.system.env.event()
        self.completions[req_id] = event
        waiters, self._waiters = self._waiters, []
        for w in waiters:
            w.succeed()
        return event

    def wait_request(self):
        event = self.system.env.event()
        if self._pending:
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def pop(self):
        return self._pending.popleft() if self._pending else None


class VirtioBackend:
    """Host device model servicing one virtqueue."""

    def __init__(self, system, queue, mode="sync", name="virtio-backend"):
        self.system = system
        self.queue = queue
        self.mode = mode
        self.proc = system.create_process(name)
        self.device_buf = self.proc.mmap(1 << 20, populate=True,
                                         name="virtio-devbuf")
        self.requests_served = 0
        self.stored = {}

    def run(self, n_requests):
        """Backend loop (generator): serve ``n_requests`` then return."""
        system, proc = self.system, self.proc
        guest_as = self.queue.guest_proc.aspace
        for _ in range(n_requests):
            if not self.queue._pending:
                yield WaitEvent(self.queue.wait_request())
            req_id, guest_va, nbytes, write = self.queue.pop()
            yield Compute(RING_OP_CYCLES, tag="syscall")
            use_async = (self.mode == "copier" and proc.client is not None
                         and nbytes
                         >= system.params.copier_kernel_min_bytes)
            if write:
                # Guest -> device (a block write / net TX).
                if use_async:
                    yield from proc.client.k_amemcpy(
                        Region(guest_as, guest_va, nbytes),
                        Region(proc.aspace, self.device_buf, nbytes))
                    # Device-model bookkeeping overlaps the copy...
                    yield system.app_compute(
                        proc, (nbytes // 1024 + 1) * DEVICE_CYCLES_PER_KB)
                    # ...and the payload syncs right before the device
                    # "commits" it.
                    yield from proc.client.csync(self.device_buf, nbytes)
                else:
                    yield from system.sync_copy(
                        proc, guest_as, guest_va, proc.aspace,
                        self.device_buf, nbytes, engine="erms")
                    yield system.app_compute(
                        proc, (nbytes // 1024 + 1) * DEVICE_CYCLES_PER_KB)
                self.stored[req_id] = proc.read(self.device_buf, nbytes)
            else:
                # Device -> guest (a block read / net RX).
                payload = self.stored.get(req_id, b"\x00" * nbytes)
                proc.write(self.device_buf, payload[:nbytes])
                yield system.app_compute(
                    proc, (nbytes // 1024 + 1) * DEVICE_CYCLES_PER_KB)
                if use_async:
                    yield from proc.client.k_amemcpy(
                        Region(proc.aspace, self.device_buf, nbytes),
                        Region(guest_as, guest_va, nbytes))
                else:
                    yield from system.sync_copy(
                        proc, proc.aspace, self.device_buf, guest_as,
                        guest_va, nbytes, engine="erms")
            yield Compute(RING_OP_CYCLES, tag="syscall")
            # The completion carries the copy's owner client so the guest
            # can csync the in-flight payload (the Binder-descriptor idea
            # applied to virtqueue used-ring entries).
            owner = proc.client if (use_async and not write) else None
            self.queue.completions.pop(req_id).succeed(owner)
            self.requests_served += 1


def guest_io(system, guest_proc, queue, req_id, guest_va, nbytes, write):
    """Guest-side I/O: kick, vmexit/vmenter costs, wait for completion.

    For reads in copier mode the completion carries the copy's owner
    client; the guest csyncs its buffer through it before use (the
    descriptor rides the used-ring entry, like Binder's Parcel).
    Generator; returns elapsed cycles.
    """
    t0 = system.env.now
    yield Compute(VMEXIT_CYCLES, tag="syscall")
    completion = queue.kick(req_id, guest_va, nbytes, write)
    yield Compute(VMENTER_CYCLES, tag="syscall")
    owner = yield WaitEvent(completion)
    if not write and owner is not None:
        yield from owner.csync_region(
            Region(guest_proc.aspace, guest_va, nbytes), queue_kind="k")
    return system.env.now - t0
