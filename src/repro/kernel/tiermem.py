"""Tiered-memory management with Copier-assisted page migration (§7).

The paper's discussion names tiered memory management among the OS
services Copier generalizes to: page migration between a fast tier (DRAM)
and a slow tier (CXL/NVM) is exactly a copy + page-table flip, and the
manager's scan/bookkeeping between migrations is a natural Copy-Use
window.

Tiers are frame-number bands of the simulated physical memory: frames
below ``fast_frames`` are the fast tier, the rest the slow tier.  The
baseline manager copies each page synchronously (ERMS, in its own
context); the Copier manager submits the page copies as k-mode tasks and
only csyncs each page right before flipping its PTE — pipelining a batch
of migrations through the service.
"""

from repro.copier.task import Region
from repro.mem.phys import PAGE_SIZE
from repro.sim import Compute

SCAN_CYCLES_PER_PAGE = 350       # hotness bookkeeping per migrated page
PTE_FLIP_CYCLES = 180            # page-table update + TLB shootdown share


class TieredMemoryManager:
    """Migrates pages between tiers on behalf of processes."""

    def __init__(self, system, fast_frames):
        self.system = system
        self.fast_frames = fast_frames
        self.promoted = 0
        self.demoted = 0

    def tier_of(self, frame):
        return "fast" if frame < self.fast_frames else "slow"

    def frame_of(self, aspace, va):
        frame, _off = aspace.translate(va)
        return frame

    def _target_band(self, to_fast):
        if to_fast:
            return 0, self.fast_frames
        return self.fast_frames, self.system.phys.n_frames

    def migrate_batch(self, proc, vas, to_fast, mode="sync"):
        """Migrate whole pages at ``vas`` of ``proc`` to the target tier.

        Generator; returns the manager's total busy cycles.  Data is
        preserved; PTEs are flipped only after each page's copy lands
        (the CoW-handler discipline of §5.2 applied to migration).
        """
        system = self.system
        aspace = proc.aspace
        kernel_as = system.kernel_as
        t0 = system.env.now
        lo, hi = self._target_band(to_fast)
        staged = []
        for va in vas:
            page_va = va - va % PAGE_SIZE
            aspace.ensure_mapped(page_va, PAGE_SIZE)
            old_frame, _ = aspace.translate(page_va)
            if (old_frame < self.fast_frames) == to_fast:
                continue  # already in the target tier
            new_frame = system.phys.alloc_frame_in(lo, hi)
            src_va = kernel_as.map_frames([old_frame], prot="r",
                                          name="tier-src")
            dst_va = kernel_as.map_frames([new_frame], prot="rw",
                                          name="tier-dst")
            yield Compute(SCAN_CYCLES_PER_PAGE, tag="app")
            if mode == "copier" and proc.client is not None:
                yield from proc.client.k_amemcpy(
                    Region(kernel_as, src_va, PAGE_SIZE),
                    Region(kernel_as, dst_va, PAGE_SIZE))
            else:
                yield from system.sync_copy(
                    proc, kernel_as, src_va, kernel_as, dst_va, PAGE_SIZE,
                    engine="erms")
            staged.append((page_va, old_frame, new_frame, src_va, dst_va))
        # Flip PTEs in submission order, syncing each page just in time.
        for page_va, old_frame, new_frame, src_va, dst_va in staged:
            if mode == "copier" and proc.client is not None:
                yield from proc.client.csync_region(
                    Region(kernel_as, dst_va, PAGE_SIZE), queue_kind="k")
                while _pinned(kernel_as, src_va) or _pinned(kernel_as,
                                                            dst_va):
                    yield Compute(system.params.csync_spin_cycles,
                                  tag="csync")
            yield Compute(PTE_FLIP_CYCLES, tag="app")
            vpn = page_va // PAGE_SIZE
            pte = aspace.page_table[vpn]
            system.phys.free_frame(pte.frame)
            pte.frame = new_frame
            system.phys.share_frame(new_frame)
            aspace._invalidate(vpn)
            kernel_as.munmap(src_va, PAGE_SIZE)
            kernel_as.munmap(dst_va, PAGE_SIZE)
            if to_fast:
                self.promoted += 1
            else:
                self.demoted += 1
        return system.env.now - t0


def _pinned(aspace, va):
    pte = aspace.page_table.get(va // PAGE_SIZE)
    return pte is not None and pte.pin_count > 0
