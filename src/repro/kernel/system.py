"""The machine + kernel bundle shared by every experiment."""

from repro.copier.service import CopierService
from repro.hw.cache import CacheModel
from repro.hw.params import MachineParams
from repro.kernel.process import OSProcess
from repro.mem.addrspace import AddressSpace, copy_range
from repro.mem.phys import PhysicalMemory
from repro.sim import Compute, Environment


class System:
    """One simulated machine: cores, memory, kernel, optional Copier.

    ``copier=True`` reserves the machine's last core(s) for the Copier
    service ("Copier uses one dedicated core to copy", §6); with
    ``copier=False`` the system is the paper's baseline Linux and every
    copy is synchronous.
    """

    def __init__(self, n_cores=4, params=None, phys_frames=65536,
                 fragmented=False, copier=True, timeslice=100_000,
                 copier_kwargs=None):
        self.params = params if params is not None else MachineParams()
        # Construction recipe, kept so repro.ckpt can rebuild an identical
        # shell before overlaying the serialized machine state.
        self._init_kwargs = dict(n_cores=n_cores, phys_frames=phys_frames,
                                 fragmented=fragmented, copier=bool(copier),
                                 timeslice=timeslice)
        self.env = Environment(n_cores=n_cores, timeslice=timeslice)
        self.phys = PhysicalMemory(phys_frames, fragmented=fragmented)
        self.kernel_as = AddressSpace(self.phys, name="kernel")
        self.cache = CacheModel(self.params)
        self.processes = []
        self.copier = None
        if copier:
            kwargs = dict(copier_kwargs or {})
            kwargs.setdefault("dedicated_cores", [n_cores - 1])
            self.copier = CopierService(self.env, self.params, **kwargs)

    # ------------------------------------------------------------ processes

    def create_process(self, name, cgroup="root", queue_capacity=1024):
        aspace = AddressSpace(self.phys, name=name)
        client = None
        if self.copier is not None:
            client = self.copier.create_client(
                aspace, name=name, cgroup=cgroup,
                queue_capacity=queue_capacity)
        proc = OSProcess(self, aspace, client, name=name)
        self.processes.append(proc)
        return proc

    def exit_process(self, proc):
        """Cleanly exit ``proc`` (see :meth:`OSProcess.exit`)."""
        return proc.exit()

    def kill_process(self, proc, exc=None):
        """Kill ``proc`` and reap its in-flight copies (chaos harness,
        OOM-killer-style teardown)."""
        return proc.kill(exc)

    def leaked_pins(self):
        """Outstanding pins across the kernel and every process aspace
        (live and departed), deduplicated by asid."""
        seen = {self.kernel_as.asid: self.kernel_as}
        for proc in self.processes:
            seen[proc.aspace.asid] = proc.aspace
        if self.copier is not None:
            for aspace in self.copier._all_aspaces():
                seen[aspace.asid] = aspace
        return sum(a.pins_outstanding() for a in seen.values())

    # ------------------------------------------------------- timing helpers

    def app_compute(self, proc, cycles, tag="app", instructions=None):
        """App computation with cache-pollution CPI inflation (§6.3.5)."""
        inflated = self.cache.charge(proc.cache_key, cycles)
        return Compute(inflated, tag=tag,
                       instructions=cycles if instructions is None else instructions)

    def sync_copy(self, proc, src_as, src_va, dst_as, dst_va, nbytes,
                  engine="erms", warm=False, tag="copy"):
        """Synchronous in-context copy: charges the caller and pollutes its
        cache — the baseline path Copier replaces.

        Page faults taken by the copy (demand-zero on fresh buffers, CoW)
        land on the caller's critical path, unlike Copier's proactive
        handling which resolves them in the service's context (§4.5.4).
        """
        if nbytes:
            p = self.params
            fault_cycles = 0
            resolutions = src_as.ensure_mapped(src_va, nbytes, write=False)
            resolutions += dst_as.ensure_mapped(dst_va, nbytes, write=True)
            for kind in resolutions:
                fault_cycles += (p.fault_entry_cycles + p.page_alloc_cycles
                                 + p.fault_exit_cycles)
                if kind == "cow_copy":
                    fault_cycles += p.cpu_copy_cycles(4096, engine="erms")
            if fault_cycles:
                yield Compute(fault_cycles, tag="fault")
            cycles = p.cpu_copy_cycles(nbytes, engine=engine, warm=warm)
            yield Compute(cycles, tag=tag)
            copy_range(src_as, src_va, dst_as, dst_va, nbytes)
            self.cache.pollute(proc.cache_key, nbytes)

    # ----------------------------------------------------------- skb memory

    def alloc_kernel_buffer(self, nbytes, contiguous=True):
        """Allocate a kernel buffer (socket buffer, binder buffer...)."""
        from repro.mem.phys import OutOfMemory

        try:
            return self.kernel_as.mmap(nbytes, populate=True,
                                       contiguous=contiguous,
                                       name="kbuf")
        except OutOfMemory:
            # No contiguous run left: fall back to scattered frames (the
            # buffer just stops being a DMA candidate).  Anything else is
            # a real bug and must propagate.
            return self.kernel_as.mmap(nbytes, populate=True, name="kbuf")

    def free_kernel_buffer(self, va, nbytes):
        self.kernel_as.munmap(va, nbytes)

    def run_all(self, procs, limit=None):
        """Run the event loop until every process in ``procs`` terminates."""
        for proc in procs:
            self.env.run_until(proc.terminated, limit=limit)
        return [p.result for p in procs]
