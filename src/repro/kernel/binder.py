"""Android Binder IPC with Parcel, baseline and Copier-optimized (§5.2).

Binder's two-step transfer: the driver copies the client's message into a
kernel binder buffer which is mapped (shared) into the server's address
space; the server's Parcel reads typed entries out of the mapping.

Copier-Linux places the copy's descriptor at the front of the message
(shared memory): the binder buffer carries a ``ShmBinding`` (the Dshm of
§5.1.1) binding descriptors to segment offsets, and Parcel ``_csync``-s
through it before each read — so the copy overlaps the driver's server
wakeup and the server's own processing.  Apps above Parcel need no
changes.
"""

from collections import deque

from repro.copier.task import Region
from repro.sim import Compute, WaitEvent


class Transaction:
    __slots__ = ("offset", "length", "has_descriptor", "reply_event",
                 "reply_data")

    def __init__(self, offset, length, has_descriptor):
        self.offset = offset
        self.length = length
        self.has_descriptor = has_descriptor
        self.reply_event = None
        self.reply_data = None


class BinderNode:
    """A server-side binder endpoint with its mapped transaction buffer."""

    def __init__(self, system, server_proc, buffer_bytes=1 << 20):
        from repro.api.shm_bind import ShmBinding
        from repro.mem.shm import SharedSegment

        self.system = system
        self.server_proc = server_proc
        self.segment = SharedSegment(system.phys, buffer_bytes,
                                     name="binder-buf", contiguous=True)
        # Kernel view (the driver's copy destination)...
        self.kernel_va = system.kernel_as.map_frames(self.segment.frames,
                                                     name="binder-k")
        # ...and the server's read-only mapping of the same frames.
        self.server_va = server_proc.aspace.mmap(
            buffer_bytes, shared_segment=self.segment, name="binder-map")
        server_proc.aspace.ensure_mapped(self.server_va, buffer_bytes)
        self.buffer_bytes = buffer_bytes
        # The Dshm: descriptors indexed by offset into the binder buffer.
        self.binding = None
        if system.copier is not None:
            self.binding = ShmBinding(system.copier, self.segment)
        self._cursor = 0
        self.queue = deque()
        self._waiters = []

    def _alloc(self, nbytes):
        if self._cursor + nbytes > self.buffer_bytes:
            self._cursor = 0  # simple ring reuse
        offset = self._cursor
        self._cursor += nbytes
        return offset

    def _post(self, txn):
        self.queue.append(txn)
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            event.succeed()

    def wait_transaction(self):
        event = self.system.env.event()
        if self.queue:
            event.succeed()
        else:
            self._waiters.append(event)
        return event


def transact(system, client_proc, node, data_va, nbytes, mode="sync"):
    """Client side: send ``nbytes`` at ``data_va`` and wait for the reply.

    Returns the reply bytes.  Generator.
    """
    params = system.params
    yield from client_proc.trap()
    yield Compute(params.binder_txn_cycles, tag="syscall")
    offset = node._alloc(nbytes)
    dst = Region(system.kernel_as, node.kernel_va + offset, nbytes)
    has_descriptor = False
    if (mode == "copier" and client_proc.client is not None
            and node.binding is not None):
        descriptor = yield from client_proc.client.k_amemcpy(
            Region(client_proc.aspace, data_va, nbytes), dst)
        # Bind the descriptor at the message's offset (shm_descr_bind).
        node.binding.record(offset, nbytes, descriptor,
                            client_proc.client, dst)
        has_descriptor = True
    else:
        yield from system.sync_copy(
            client_proc, client_proc.aspace, data_va,
            system.kernel_as, node.kernel_va + offset, nbytes, engine="erms")
    txn = Transaction(offset, nbytes, has_descriptor)
    txn.reply_event = system.env.event()
    # Wake the server thread: the scheduling delay is part of the window
    # that hides the async copy.
    yield Compute(params.context_switch_cycles, tag="syscall")
    node._post(txn)
    yield from client_proc.sysret()
    yield WaitEvent(txn.reply_event)
    return txn.reply_data


def parcel_read(system, server_proc, node, txn, offset, length):
    """Server side: Parcel typed read; ``_csync`` before touching data.

    ``offset`` is relative to the transaction payload.  The sync goes
    through the binder buffer's ShmBinding, locating the producer's
    descriptor by the data's offset into the segment (§5.1.1).  Returns
    the bytes.
    """
    params = system.params
    yield Compute(params.parcel_read_cycles, tag="app")
    if txn.has_descriptor:
        yield from node.binding.csync(txn.offset + offset, length)
    return server_proc.aspace.read(node.server_va + txn.offset + offset,
                                   length)


def reply(system, server_proc, txn, data):
    """Server side: finish the transaction with a (small, sync) reply."""
    yield from server_proc.trap()
    yield Compute(system.params.binder_txn_cycles // 2, tag="syscall")
    yield Compute(system.params.cpu_copy_cycles(len(data), engine="erms"),
                  tag="copy")
    yield Compute(system.params.context_switch_cycles, tag="syscall")
    yield from server_proc.sysret()
    txn.reply_data = data
    txn.reply_event.succeed()
