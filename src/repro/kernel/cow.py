"""Copy-on-write fault handling, baseline and Copier-assisted (§5.2).

Baseline Linux: the faulting thread blocks for the whole page copy (ERMS,
since the kernel cannot afford SIMD state saves).  Copier-Linux splits the
page between the CoW handler and Copier: the handler copies the head with
ERMS while Copier copies the tail with AVX(+DMA) in parallel, and the
handler csyncs before publishing the new page table entry — cutting the
thread-blocking time by ~72 % for 2 MB pages (§6.1.2).
"""

from repro.copier.task import Region
from repro.mem.phys import PAGE_SIZE, OutOfMemory
from repro.sim import Compute


def cow_write(system, proc, va, data, mode="sync", page_bytes=PAGE_SIZE):
    """Handle a write of ``data`` at ``va`` that hits CoW-shared pages.

    ``page_bytes`` selects the fault granularity (4 KB base pages or 2 MB
    huge pages).  Returns the cycles the thread spent blocked in fault
    handling (the §6.1.2 metric).  Generator.
    """
    params = system.params
    aspace = proc.aspace
    blocked = 0
    page_va = va - (va % page_bytes)
    n_small = page_bytes // PAGE_SIZE

    shared_vpns = []
    for i in range(n_small):
        vpn = page_va // PAGE_SIZE + i
        pte = aspace.page_table.get(vpn)
        if pte is None:
            aspace.resolve_fault(vpn * PAGE_SIZE, write=True)
        elif not pte.writable and pte.cow:
            shared_vpns.append(vpn)

    if shared_vpns:
        t0 = system.env.now
        yield Compute(params.fault_entry_cycles, tag="fault")
        sole = [v for v in shared_vpns
                if system.phys.refcount(aspace.page_table[v].frame) == 1]
        to_copy = [v for v in shared_vpns if v not in set(sole)]
        for vpn in sole:
            pte = aspace.page_table[vpn]
            pte.writable = True
            pte.cow = False
            aspace.fault_counts["cow_reuse"] += 1
            aspace._invalidate(vpn)
        if to_copy:
            yield from _copy_pages(system, proc, aspace, to_copy, mode)
        yield Compute(params.fault_exit_cycles, tag="fault")
        blocked = system.env.now - t0

    aspace.write(va, data)
    return blocked


def _copy_pages(system, proc, aspace, vpns, mode):
    params = system.params
    total = len(vpns) * PAGE_SIZE
    order_cost = max(1, len(vpns) // 128)  # higher-order allocations
    yield Compute(params.page_alloc_cycles * order_cost, tag="fault")
    try:
        new_frames = system.phys.alloc_frames(len(vpns), contiguous=True)
    except OutOfMemory:
        # No contiguous run: scattered frames still satisfy the fault,
        # the split-copy just loses DMA candidacy.  A genuinely full
        # allocator (or any other error) propagates from the retry.
        new_frames = system.phys.alloc_frames(len(vpns))
    old_frames = [aspace.page_table[v].frame for v in vpns]

    if mode == "copier" and proc.client is not None and total >= 2 * PAGE_SIZE:
        yield from _split_copy(system, proc, old_frames, new_frames, total)
    else:
        yield Compute(params.cpu_copy_cycles(total, engine="erms"),
                      tag="copy")
        for old, new in zip(old_frames, new_frames):
            system.phys.copy_frame(old, new)
        system.cache.pollute(proc.cache_key, total)

    for vpn, new in zip(vpns, new_frames):
        pte = aspace.page_table[vpn]
        system.phys.free_frame(pte.frame)
        pte.frame = new
        pte.writable = True
        pte.cow = False
        aspace.fault_counts["cow_copy"] += 1
        aspace._invalidate(vpn)


def _split_copy(system, proc, old_frames, new_frames, total):
    """Divide the page between the handler (ERMS head) and Copier (tail).

    The split ratio matches the engines' relative rates so both finish
    together; the handler csyncs the tail before returning (§5.2).
    """
    params = system.params
    kernel_as = system.kernel_as
    src_va = kernel_as.map_frames(old_frames, prot="r", name="cow-src")
    dst_va = kernel_as.map_frames(new_frames, prot="rw", name="cow-dst")
    erms = params.erms_bytes_per_cycle
    avx = params.avx_bytes_per_cycle
    head = int(total * erms / (erms + avx))
    head -= head % 64  # keep the split cacheline-aligned
    tail = total - head
    # Tail goes to Copier first so it runs while the handler copies the head.
    yield from proc.client.k_amemcpy(
        Region(kernel_as, src_va + head, tail),
        Region(kernel_as, dst_va + head, tail))
    yield from system.sync_copy(proc, kernel_as, src_va, kernel_as, dst_va,
                                head, engine="erms")
    yield from proc.client.csync_region(
        Region(kernel_as, dst_va + head, tail), queue_kind="k")
    # The service releases its pins when it finalizes the task, which can
    # trail the last segment landing by one service step; wait it out.
    while _any_pinned(kernel_as, src_va, total) or \
            _any_pinned(kernel_as, dst_va, total):
        yield Compute(params.csync_spin_cycles, tag="fault")
    kernel_as.munmap(src_va, total)
    kernel_as.munmap(dst_va, total)


def _any_pinned(aspace, va, length):
    for vpn in range(va // PAGE_SIZE, (va + length - 1) // PAGE_SIZE + 1):
        pte = aspace.page_table.get(vpn)
        if pte is not None and pte.pin_count:
            return True
    return False
