"""Simulated OS kernel substrate.

Provides the pieces Copier-Linux plugs into (§5.2): a machine/kernel bundle
(:class:`System`), OS processes, the syscall layer with trap/return events,
an in-memory network stack with socket buffers, the Binder IPC framework,
and the CoW fault handler.
"""

from repro.kernel.system import System
from repro.kernel.process import OSProcess
from repro.kernel.net import Socket, socket_pair
from repro.kernel.binder import BinderNode
from repro.kernel.cow import cow_write
from repro.kernel.fileio import FileObject, file_read, sendfile, splice_pages
from repro.kernel.tiermem import TieredMemoryManager
from repro.kernel.virtio import VirtQueue, VirtioBackend

__all__ = [
    "System",
    "OSProcess",
    "Socket",
    "socket_pair",
    "BinderNode",
    "cow_write",
    "FileObject",
    "file_read",
    "sendfile",
    "splice_pages",
    "TieredMemoryManager",
    "VirtQueue",
    "VirtioBackend",
]
