"""In-memory network stack: sockets, skbs, send/recv paths (§5.2).

Each syscall is split into a *wrapper* (trap + body + return) and a *body*
so io_uring-style batched submission (§6.1.2) can amortize the privilege
crossings over many bodies.

Copy modes:

* ``"sync"`` — baseline Linux: in-context ERMS copies.
* ``"copier"`` — Copier-Linux: k-mode Copy Tasks; send syncs in the driver
  just before NIC TX enqueue, recv returns immediately and the app csyncs
  before use; a KFUNC reclaims the socket buffer (§5.2).
* ``"zerocopy"`` — MSG_ZEROCOPY model: page pinning + TLB flush instead of
  a copy, plus the completion-check syscall the app needs before reuse.
* ``"ub"`` — Userspace Bypass: cheap kernel entry, same copy work.
"""

from collections import deque

from repro.copier.task import Region
from repro.mem.phys import PAGE_SIZE
from repro.sim import Compute, WaitEvent


class SKB:
    """A socket buffer in flight."""

    __slots__ = ("kernel_va", "length", "zerocopy_src", "completion",
                 "payload")

    def __init__(self, kernel_va, length, zerocopy_src=None, completion=None):
        self.kernel_va = kernel_va
        self.length = length
        self.zerocopy_src = zerocopy_src  # (aspace, va) for MSG_ZEROCOPY
        self.completion = completion
        self.payload = None  # NIC-side snapshot for zerocopy sends


class Socket:
    """One endpoint of a connected pair.

    The socket owns every skb between allocation and release: queued in
    ``rx``, in transit on the wire, or popped-but-unfreed inside a recv
    (``inflight``).  :meth:`close` releases them all, which is what makes
    process teardown leak-free even when a kill lands mid-send/recv.
    """

    def __init__(self, system, name=""):
        self.system = system
        self.name = name
        self.peer = None
        self.rx = deque()
        # skb -> None, used as an insertion-ordered set: close() must
        # release buffers in ownership order, not id-hash order, so frame
        # reuse after a teardown is reproducible run to run.
        self.inflight = {}
        self.closed = False
        self._waiters = []
        self.delivered = 0

    def deliver(self, skb):
        if self.closed:
            # Arrived after teardown: free the buffer on the doorstep.
            _release_skb(self.system, None, skb)
            return
        self.rx.append(skb)
        self.delivered += 1
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            event.succeed()

    def wait_data(self):
        event = self.system.env.event()
        if self.rx:
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def close(self):
        """Release every skb this endpoint still owns (socket teardown)."""
        if self.closed:
            return
        self.closed = True
        while self.rx:
            _release_skb(self.system, None, self.rx.popleft())
        for skb in list(self.inflight):
            _release_skb(self.system, self, skb)


def _release_skb(system, sock, skb):
    """Idempotently free an skb's kernel buffer and drop its ownership.

    Pinned pages (an in-flight k-mode copy still holds the buffer) defer
    via the lazy-teardown list and reclaim when the copy retires — so
    releasing at socket close never races the copier.
    """
    if skb.kernel_va is not None:
        system.free_kernel_buffer(skb.kernel_va, skb.length)
        skb.kernel_va = None
    if sock is not None:
        sock.inflight.pop(skb, None)


def socket_pair(system, name=""):
    a = Socket(system, name + "-a")
    b = Socket(system, name + "-b")
    a.peer, b.peer = b, a
    return a, b


# ------------------------------------------------------------------ send

def send(system, proc, sock, va, nbytes, mode="sync", client=None):
    """The send() syscall; returns ``nbytes``.

    ``client`` overrides the process's default Copier queues — per-thread
    queue fds from ``copier_create_queue`` pass their client here
    (§5.1.1 multi-queue support).
    """
    trap_cost = system.params.ub_trap_cycles if mode == "ub" else None
    yield from proc.trap(cost=trap_cost, client=client)
    result = yield from send_body(system, proc, sock, va, nbytes, mode=mode,
                                  client=client)
    yield from proc.sysret(cost=trap_cost, client=client)
    return result


def send_body(system, proc, sock, va, nbytes, mode="sync", client=None):
    params = system.params
    client = client if client is not None else proc.client
    if mode == "zerocopy":
        return (yield from _send_zerocopy(system, proc, sock, va, nbytes))
    yield Compute(params.skb_alloc_cycles, tag="syscall")
    skb_va = system.alloc_kernel_buffer(nbytes)
    skb = SKB(skb_va, nbytes)
    # Owned by the sending socket until it lands on the peer — a kill
    # mid-send (copy submitted, not yet transmitted) frees it at close.
    sock.inflight[skb] = None
    if (mode == "copier" and client is not None
            and nbytes >= params.copier_kernel_min_bytes):
        # Submit the user→skb copy and overlap protocol processing with it;
        # the driver syncs just before handing packets to the NIC (§5.2).
        yield from client.k_amemcpy(
            Region(proc.aspace, va, nbytes),
            Region(system.kernel_as, skb_va, nbytes))
        yield Compute(params.proto_cycles, tag="syscall")
        yield from client.csync_region(
            Region(system.kernel_as, skb_va, nbytes), queue_kind="k")
    else:
        yield from system.sync_copy(
            proc, proc.aspace, va, system.kernel_as, skb_va, nbytes,
            engine="erms")
        yield Compute(params.proto_cycles, tag="syscall")
    _transmit(system, sock, skb)
    return nbytes


def _send_zerocopy(system, proc, sock, va, nbytes):
    """MSG_ZEROCOPY: pin user pages instead of copying (§2.2).

    Requires page alignment; the returned completion event stands in for
    the error-queue notification the app must reap before buffer reuse.
    """
    params = system.params
    if va % PAGE_SIZE != 0:
        raise ValueError("MSG_ZEROCOPY requires page-aligned buffers")
    n_pages = (nbytes + PAGE_SIZE - 1) // PAGE_SIZE
    yield Compute(
        n_pages * params.zc_pin_cycles_per_page + params.zc_tlb_flush_cycles,
        tag="syscall")
    yield Compute(params.proto_cycles, tag="syscall")
    completion = system.env.event()
    skb = SKB(None, nbytes, zerocopy_src=(proc.aspace, va),
              completion=completion)
    # The NIC DMAs straight from the pinned user pages; the error-queue
    # completion fires once the TX ring drains — NOT when the peer recvs.
    # Take a real pin and capture the physical spans now: the snapshot at
    # TX-drain goes through the frames, so an exit/munmap racing the drain
    # only defers the pages until unpin instead of faulting the NIC read.
    aspace = proc.aspace
    aspace.pin(va, nbytes)
    runs = aspace.translate_run(va, nbytes)
    phys = aspace.phys

    def on_tx_done():
        # Snapshot through the captured physical runs: one slice copy per
        # maximal physically-contiguous run on the flat frame backing.
        out = bytearray(nbytes)
        pos = 0
        for frame, offset, chunk in runs:
            phys.read_run(frame, offset, out, pos, chunk)
            pos += chunk
        skb.payload = bytes(out)
        aspace.unpin(va, nbytes)
        completion.succeed()

    tx_drain = int(nbytes / params.wire_bytes_per_cycle)
    system.env.schedule(tx_drain, on_tx_done)
    _transmit(system, sock, skb)
    return completion


def _transmit(system, sock, skb):
    sock.inflight[skb] = None
    transit = system.params.wire_latency_cycles + int(
        skb.length / system.params.wire_bytes_per_cycle)

    def arrive():
        sock.inflight.pop(skb, None)
        sock.peer.deliver(skb)

    system.env.schedule(transit, arrive)


def zerocopy_reap(system, proc, completion):
    """Reap a MSG_ZEROCOPY completion before reusing the buffer."""
    if proc.exited:
        # The owning process is gone: no context to trap into.  Just wait
        # for the TX ring to drain so the pin is dropped (the error-queue
        # notification dies with the socket).
        if not completion.triggered:
            yield WaitEvent(completion)
        return
    yield from proc.trap()
    yield Compute(system.params.zc_completion_check_cycles, tag="syscall")
    if not completion.triggered:
        yield WaitEvent(completion)
    yield from proc.sysret()


# ------------------------------------------------------------------ recv

def recv(system, proc, sock, va, nbytes, mode="sync", lazy=False,
         client=None):
    """The recv() syscall; returns the number of bytes received.

    In ``"copier"`` mode the copy lands asynchronously — the caller must
    csync before touching the data (libCopier's descriptor covers ``va``).
    ``lazy=True`` (copier mode only) marks the skb→user copy a Lazy Task:
    apps that only parse a header and forward/re-copy the payload let
    absorption short-circuit the bulk and abort the rest (§4.4).
    """
    trap_cost = system.params.ub_trap_cycles if mode == "ub" else None
    yield from proc.trap(cost=trap_cost, client=client)
    result = yield from recv_body(system, proc, sock, va, nbytes, mode=mode,
                                  lazy=lazy, client=client)
    yield from proc.sysret(cost=trap_cost, client=client)
    return result


def recv_body(system, proc, sock, va, nbytes, mode="sync", lazy=False,
              client=None):
    params = system.params
    client = client if client is not None else proc.client
    if not sock.rx:
        yield WaitEvent(sock.wait_data())
    skb = sock.rx.popleft()
    # Popped but not yet freed: if the receiver dies mid-recv the socket
    # close releases the buffer (idempotent vs. the KFUNC below).
    sock.inflight[skb] = None
    got = min(nbytes, skb.length)
    if skb.zerocopy_src is not None:
        # Receive a zerocopy-sent message: the bytes on the wire are the
        # NIC's snapshot (taken at TX-drain time).
        yield Compute(params.cpu_copy_cycles(got, engine="erms"),
                      tag="copy")
        proc.aspace.write(va, skb.payload[:got])
        sock.inflight.pop(skb, None)
    elif (mode == "copier" and client is not None
            and got >= params.copier_kernel_min_bytes):
        # Async skb→user copy; KFUNC reclaims the buffer afterwards (§5.2).
        yield from client.k_amemcpy(
            Region(system.kernel_as, skb.kernel_va, got),
            Region(proc.aspace, va, got),
            lazy=lazy,
            handler=("kfunc", _release_skb, (system, sock, skb)))
    else:
        yield from system.sync_copy(
            proc, system.kernel_as, skb.kernel_va, proc.aspace, va, got,
            engine="erms")
        _release_skb(system, sock, skb)
    yield Compute(params.sock_state_cycles, tag="syscall")
    return got


# ---------------------------------------------------------------- io_uring

def iouring_submit(system, proc, bodies):
    """Batched async syscalls: one trap covers the whole batch (§6.1.2).

    ``bodies`` are body generators (from ``send_body``/``recv_body``).
    Returns their results in order.
    """
    yield from proc.trap()
    yield Compute(len(bodies) * 30, tag="syscall")  # SQE processing
    results = []
    for body in bodies:
        results.append((yield from body))
    yield from proc.sysret()
    return results
