"""File I/O path: page cache, read(), and sendfile() (Table 1 rows).

``read()`` is the copy the paper's libpng/PNG-decode case rides on
(kernel page cache → user buffer, Copier-optimizable like recv).
``sendfile()`` is the Table 1 "address transfer in kernel" row: file
pages go straight to the socket without a user-space bounce, but the
caller still blocks for the kernel-side work and it only helps the
file→socket direction.
"""

from repro.copier.task import Region
from repro.kernel.net import SKB, _transmit
from repro.sim import Compute


class FileObject:
    """An open file whose contents sit in the (kernel) page cache."""

    def __init__(self, system, data, name="file"):
        self.system = system
        self.name = name
        self.length = len(data)
        self.cache_va = system.alloc_kernel_buffer(max(len(data), 1))
        system.kernel_as.write(self.cache_va, data)

    def release(self):
        self.system.free_kernel_buffer(self.cache_va, max(self.length, 1))


def file_read(system, proc, fobj, offset, va, nbytes, mode="sync"):
    """The read() syscall: page cache → user buffer.

    ``mode="copier"`` submits the copy as a k-mode task (the PNG-decode
    pattern: decode proceeds while the tail of the file streams in).
    """
    params = system.params
    got = max(0, min(nbytes, fobj.length - offset))
    yield from proc.trap()
    yield Compute(200, tag="syscall")  # vfs + page-cache lookup
    if got:
        if (mode == "copier" and proc.client is not None
                and got >= params.copier_kernel_min_bytes):
            yield from proc.client.k_amemcpy(
                Region(system.kernel_as, fobj.cache_va + offset, got),
                Region(proc.aspace, va, got))
        else:
            yield from system.sync_copy(
                proc, system.kernel_as, fobj.cache_va + offset,
                proc.aspace, va, got, engine="erms")
    yield from proc.sysret()
    return got


def sendfile(system, proc, fobj, offset, sock, nbytes):
    """sendfile(2): in-kernel address transfer, no user-space bounce.

    One kernel-side copy into the skb (page references in real kernels;
    the data still crosses the memory bus once), caller blocks for it —
    Table 1: avoids the user copy ("Partial" absorb) but is blocking and
    file→socket only.
    """
    params = system.params
    got = max(0, min(nbytes, fobj.length - offset))
    yield from proc.trap()
    yield Compute(300, tag="syscall")  # splice plumbing
    if got:
        skb_va = system.alloc_kernel_buffer(got)
        yield from system.sync_copy(
            proc, system.kernel_as, fobj.cache_va + offset,
            system.kernel_as, skb_va, got, engine="erms")
        yield Compute(params.proto_cycles, tag="syscall")
        _transmit(system, sock, SKB(skb_va, got))
    yield from proc.sysret()
    return got


def splice_pages(system, proc, fobj, offset, sock, nbytes):
    """splice/vmsplice model: *move* page references, no copy at all.

    Requires page-aligned, page-granular ranges (Table 1: alignment
    constraint) and gives the pages away (single instance — no replicas).
    """
    from repro.mem.phys import PAGE_SIZE

    if offset % PAGE_SIZE or nbytes % PAGE_SIZE:
        raise ValueError("splice requires page-aligned ranges")
    got = max(0, min(nbytes, fobj.length - offset))
    yield from proc.trap()
    n_pages = got // PAGE_SIZE
    yield Compute(300 + n_pages * 150, tag="syscall")  # pipe page moves
    if got:
        # Model: the skb aliases the cache pages (shared frames).
        spans = system.kernel_as.frames_for(fobj.cache_va + offset, got)
        frames = [f for f, _o, _l in spans]
        skb_va = system.kernel_as.map_frames(frames, name="kbuf")
        yield Compute(system.params.proto_cycles, tag="syscall")
        _transmit(system, sock, SKB(skb_va, got))
    yield from proc.sysret()
    return got
