"""OS-level processes: address space + Copier client + syscall context."""

from repro.sim import Compute


class OSProcess:
    """A simulated OS process.

    Wraps the address space and (when Copier is enabled) the process's
    CopierClient.  :meth:`trap` / :meth:`sysret` charge privilege-crossing
    costs *and* record the barrier events order-dependency tracking keys
    off (§4.2.1) — every syscall wrapper in :mod:`repro.kernel` brackets
    its kernel work with them.
    """

    _next_pid = [100]

    def __init__(self, system, aspace, client, name=""):
        self.system = system
        self.env = system.env
        self.aspace = aspace
        self.client = client
        self.pid = OSProcess._next_pid[0]
        OSProcess._next_pid[0] += 1
        self.name = name or ("os-proc-%d" % self.pid)
        self.sim_proc = None  # set by spawn()
        self.exited = False

    @property
    def cache_key(self):
        return ("proc", self.pid)

    @property
    def params(self):
        return self.system.params

    def spawn(self, generator, affinity=None, name=None):
        self.sim_proc = self.env.spawn(
            generator, name=name or self.name, affinity=affinity)
        if self.client is not None:
            self.client.process = self.sim_proc
        return self.sim_proc

    # --------------------------------------------------------- exit / kill

    def exit(self):
        """Clean process exit: reap in-flight copies, tear down the aspace.

        The lifecycle order matters: the copier reaps (and unpins) every
        in-flight task *first*, then the address space is torn down — any
        page still pinned at teardown (a DMA batch racing the exit) parks
        on the lazy-teardown list and is reclaimed when its last pin
        drops, so the aspace is truly gone only after pins reach zero.
        Returns the number of tasks reaped.
        """
        if self.exited:
            return 0
        self.exited = True
        reaped = 0
        if self.client is not None and self.system.copier is not None:
            reaped = self.system.copier.reap_client(self.client)
        self.aspace.teardown()
        if self in self.system.processes:
            self.system.processes.remove(self)
        return reaped

    def kill(self, exc=None):
        """Forceful kill: stop the simulated process, then exit-reap.

        The generator is interrupted at its next resumption; the copier
        reap happens immediately — exactly the IDXD cancel-on-exit
        ordering, where the driver quiesces descriptors before the mm
        goes away.  Returns the number of tasks reaped.
        """
        if self.sim_proc is not None and self.sim_proc.is_alive:
            self.sim_proc.kill(exc)
        return self.exit()

    # ------------------------------------------------------ syscall costs

    def trap(self, cost=None, client=None):
        """Enter the kernel: charge the trap and snapshot the barrier.

        ``client`` selects which queue pair's barrier records the event —
        syscalls issued against a per-thread queue fd pass that fd's
        client (the kernel pairs barriers with the queues it submits to,
        §4.2.1/§5.1.1)."""
        client = client if client is not None else self.client
        if client is not None:
            client.on_trap()
        yield Compute(self.params.syscall_trap_cycles if cost is None else cost,
                      tag="syscall")

    def sysret(self, cost=None, client=None):
        """Return to userspace: snapshot the barrier and charge the return."""
        client = client if client is not None else self.client
        if client is not None:
            client.on_return()
        yield Compute(self.params.syscall_return_cycles if cost is None else cost,
                      tag="syscall")

    # ------------------------------------------------------- memory helpers

    def mmap(self, length, **kwargs):
        return self.aspace.mmap(length, **kwargs)

    def write(self, va, data):
        self.aspace.write(va, data)

    def read(self, va, length):
        return self.aspace.read(va, length)

    def __repr__(self):
        return "<OSProcess %s pid=%d>" % (self.name, self.pid)
