"""Checkpoint/restore of a whole simulated machine.

Strategy: **quiesce to idle, serialize pure data**.  Event-heap entries
are Python closures and cannot be serialized faithfully, so
:func:`checkpoint` first drives the machine to a quiescent point —
:meth:`CopierService.quiesce` drains every in-flight task with
shutdown's wedge-aware bounded stepping, parks the worker loops, kills
the DMA device process and steps the heap to idle — and then captures
*state*, never *code*: physical frames, page tables and VMAs with pin
counts and deferred-unmap bookkeeping, ring positions, cgroup shares,
admission buckets, fault-injector RNG streams, every counter the stats
snapshots report, and the virtual clock.  The payload is plain data
(dicts/lists/tuples/bytes) framed by :mod:`repro.ckpt.format`.

:func:`restore` rebuilds a fresh :class:`~repro.kernel.system.System`
shell, overlays the saved state without executing a single event, pins
the global id counters (sim pids, OS pids, asids, task ids) to their
saved positions, and resumes.  Because a resumed machine and a restored
machine re-spawn workers/DMA through the *same* :meth:`resume` path,
their futures are event-for-event identical — the differential oracle
in ``tests/ckpt`` holds them to that.

Not serialized (and rejected with :class:`CheckpointStateError` when
present): live simulated processes other than the service's own, queued
FUNC handlers (closures — run ``post_handlers()`` first), custom
``sigsegv_handler`` callbacks, shared-segment VMAs, and an attached
async serve driver (detach it first).
"""

import random
from collections import OrderedDict, defaultdict, deque
from dataclasses import fields as dataclass_fields

from repro.ckpt import format as ckpt_format
from repro.ckpt.errors import CheckpointStateError
from repro.copier import task as task_mod
from repro.copier.admission import TokenBucket, make_admission
from repro.copier.polling import make_policy
from repro.copier.service import CopierService
from repro.faultinject import FaultInjector, FaultPlan, FaultSpec
from repro.hw.params import MachineParams
from repro.kernel.process import OSProcess
from repro.kernel.system import System
from repro.mem import addrspace as addrspace_mod
from repro.mem.addrspace import PTE, AddressSpace
from repro.mem.vma import VMA
from repro.sim.process import Process


def _slots_dict(obj):
    return {name: getattr(obj, name) for name in type(obj).__slots__}


def _set_slots(obj, data):
    for name, value in data.items():
        setattr(obj, name, value)


class Checkpoint:
    """A decoded checkpoint: the plain-data payload plus file helpers."""

    __slots__ = ("payload",)

    def __init__(self, payload):
        self.payload = payload

    def to_bytes(self):
        return ckpt_format.dump_bytes(self.payload)

    @classmethod
    def from_bytes(cls, data):
        return cls(ckpt_format.load_bytes(data))

    def save(self, path):
        """Write the envelope to ``path``; returns bytes written."""
        return ckpt_format.dump_file(self.payload, path)

    @classmethod
    def load(cls, path):
        return cls(ckpt_format.load_file(path))

    @property
    def meta(self):
        """Small summary dict for CLI listings."""
        p = self.payload
        return {
            "now": p["env"]["now"],
            "events_executed": p["env"]["events_executed"],
            "n_cores": p["system"]["n_cores"],
            "processes": len(p["processes"]),
            "clients": (len(p["copier"]["clients"])
                        if p["copier"] is not None else 0),
            "stores": len(p["stores"]),
        }


# --------------------------------------------------------------- serialize


def _serialize_aspace(aspace):
    for vma in aspace.vmas:
        if vma.shared_segment is not None:
            raise CheckpointStateError(
                "aspace %r has a shared-segment VMA %r; shared segments are"
                " not checkpointable" % (aspace.name, vma.name))
    return {
        "asid": aspace.asid,
        "name": aspace.name,
        "page_table": {
            vpn: (pte.frame, pte.writable, pte.cow, pte.pin_count)
            for vpn, pte in aspace.page_table.items()
        },
        "vmas": [(v.start, v.end, v.readable, v.writable, v.name)
                 for v in aspace.vmas],
        "mmap_cursor": aspace._mmap_cursor,
        "fault_counts": dict(aspace.fault_counts),
        "fastpath": aspace._fastpath,
        "lazy_teardown": [
            (vpn, pte.frame, pte.writable, pte.cow, pte.pin_count)
            for vpn, pte in aspace._lazy_teardown
        ],
        "deferred_unmaps": aspace.deferred_unmaps,
        "deferred_reclaimed": aspace.deferred_reclaimed,
        "pinned_fork_copies": aspace.pinned_fork_copies,
        "unmap_log": list(aspace._unmap_log),
    }


def _serialize_client(service, client):
    if client.sigsegv_handler is not None:
        raise CheckpointStateError(
            "client %r has a custom sigsegv handler (a callback); clear it"
            " before checkpointing" % client.name)
    for queues in (client.u_queues, client.k_queues):
        for kind in ("copy", "sync", "handler"):
            queue = getattr(queues, kind)
            if not queue.is_empty:
                raise CheckpointStateError(
                    "client %r ring %s not empty after quiesce"
                    % (client.name, queue.name))
    if client.outstanding_bytes:
        raise CheckpointStateError(
            "client %r still counts %d outstanding bytes after quiesce"
            % (client.name, client.outstanding_bytes))
    if client.task_index or len(client.pending):
        raise CheckpointStateError(
            "client %r still indexes tasks after quiesce" % client.name)
    barriers = client.barriers
    return {
        "name": client.name,
        "asid": client.aspace.asid,
        "cgroup": service.scheduler._client_group[client].name,
        "queue_capacity": client.u_queues.copy.capacity,
        "segment_bytes": client.segment_bytes,
        "rings": {
            "u_copy": client.u_queues.copy.head,
            "u_sync": client.u_queues.sync.head,
            "u_handler": client.u_queues.handler.head,
            "k_copy": client.k_queues.copy.head,
            "k_sync": client.k_queues.sync.head,
            "k_handler": client.k_queues.handler.head,
        },
        "barriers": (barriers._current_barrier_pos, barriers._barrier_epoch,
                     barriers._k_sequence, barriers.barriers_recorded),
        "desc_pool": {
            "hits": client.desc_pool.hits,
            "misses": client.desc_pool.misses,
            "free": {cls: len(lst)
                     for cls, lst in client.desc_pool._free.items()},
        },
        "stats": _slots_dict(client.stats),
        "scheduler_length": service.scheduler._client_length[client],
    }


def _serialize_copier(service):
    if service.serve_driver is not None:
        raise CheckpointStateError(
            "an async serve driver is attached; detach it before"
            " checkpointing")
    agg = service.stage_stats
    if agg._submitted or agg._ingested or agg._first_exec:
        raise CheckpointStateError(
            "stage aggregator still tracks in-flight tasks after quiesce")
    if service._wake_events:
        raise CheckpointStateError("parked workers left wake events")
    faults = service.faults
    plan = None
    if faults.plan is not None:
        plan = {
            "name": faults.plan.name,
            "seed": faults.plan.seed,
            "specs": [(s.kind, s.rate, s.max_consecutive,
                       s.min_cycles, s.max_cycles)
                      for s in faults.plan.specs.values()],
        }
    clients = [_serialize_client(service, c) for c in service.clients]
    client_order = {c: i for i, c in enumerate(service.clients)}
    wd = service.watchdog
    return {
        "polling": {"name": service.policy.name,
                    "attrs": dict(vars(service.policy))},
        "scenario_active": service.scenario_active,
        "n_workers": len(service.workers),
        "active_threads": service.active_threads,
        "peak_threads": service.peak_threads,
        "max_threads": service.max_threads,
        "autoscale": service.autoscale,
        "dedicated_cores": list(service.dedicated_cores),
        "lazy_period_cycles": service.lazy_period_cycles,
        "rounds_executed": service.rounds_executed,
        "tasks_dropped": service.tasks_dropped,
        "tasks_retired": service.tasks_retired,
        "autoscaler": {"window": list(service.autoscaler.window),
                       "low_streak": service.autoscaler._low_streak},
        "lifecycle": _slots_dict(service.lifecycle),
        "dispatcher": {
            "use_dma": service.dispatcher.use_dma,
            "use_absorption": service.dispatcher.use_absorption,
            "dma_quarantined": service.dispatcher.dma_quarantined,
            "rounds_planned": service.dispatcher.rounds_planned,
            "bytes_to_dma": service.dispatcher.bytes_to_dma,
            "bytes_to_avx": service.dispatcher.bytes_to_avx,
            "bytes_absorbed": service.dispatcher.bytes_absorbed,
        },
        "atcache": {
            "entries": [(key, frame)
                        for key, frame in service.atcache._entries.items()],
            "hits": service.atcache.hits,
            "misses": service.atcache.misses,
            "invalidations": service.atcache.invalidations,
            "hooked_asids": sorted(service.atcache._hooked_asids),
        },
        "scheduler": {
            "cgroups": [(g.name, g.shares, g.total_copy_length)
                        for g in service.scheduler.cgroups.values()],
        },
        "admission": {
            "policy": {"name": service.admission.policy.name,
                       "attrs": dict(vars(service.admission.policy))},
            "stats": _slots_dict(service.admission.stats),
            "cgroup_buckets": {
                name: (b.rate, b.burst, b.tokens, b.last_refill)
                for name, b in service.admission._cgroup_buckets.items()
            },
            "client_buckets": {
                client_order[c]: (b.rate, b.burst, b.tokens, b.last_refill)
                for c, b in service.admission._client_buckets.items()
                if c in client_order
            },
        },
        "watchdog": {
            "period_cycles": wd.period_cycles,
            "stall_checks": wd.stall_checks,
            "starvation_cycles": wd.starvation_cycles,
            "stats": _slots_dict(wd.stats),
            "last_retired": wd._last_retired,
            "last_progress_at": wd._last_progress_at,
            "stall_streak": wd._stall_streak,
            "flagged_starved": sorted(wd._flagged_starved),
        },
        "faults": {
            "plan": plan,
            "injected": dict(faults.injected),
            "consecutive": dict(faults._consecutive),
            "rng_state": {kind: rng.getstate()
                          for kind, rng in faults._rngs.items()},
        },
        "fault_stats": _slots_dict(service.fault_stats),
        "dma": None if service.dma is None else {
            "check_contiguity": service.dma.check_contiguity,
            "busy_cycles": service.dma.busy_cycles,
            "bytes_copied": service.dma.bytes_copied,
            "batches": service.dma.batches,
            "submit_failures": service.dma.submit_failures,
            "aborted_batches": service.dma.aborted_batches,
            "stall_cycles": service.dma.stall_cycles,
            "efaults": service.dma.efaults,
        },
        "clients": clients,
        "departed_asids": [a.asid for a in service._departed_aspaces],
    }


def _serialize_trace(service):
    agg = service.stage_stats
    return {
        "stages": {name: (lat.count, lat.total, lat.max)
                   for name, lat in agg.stages.items()},
        "outcomes": dict(agg.outcomes),
        "thread_sleeps": agg.thread_sleeps,
        "thread_wakes": agg.thread_wakes,
        "slept_cycles": agg.slept_cycles,
        "rounds": agg.rounds,
        "engine_fallbacks": agg.engine_fallbacks,
        "fallback_bytes": agg.fallback_bytes,
        "faults_injected": dict(agg.faults_injected),
        "shed_tasks": agg.shed_tasks,
        "shed_bytes": agg.shed_bytes,
        "admission_rejects": agg.admission_rejects,
        "watchdog_alerts": dict(agg.watchdog_alerts),
        "processes_reaped": agg.processes_reaped,
        "drains": agg.drains,
        "events_seen": agg.events_seen,
    }


def _serialize_store(system, store):
    return {
        "name": store.name,
        "pid": store.proc.pid,
        "staging": store.staging,
        "out": store.out,
        "staging_bytes": store.staging_bytes,
        "arena": store.arena,
        "arena_bytes": store.arena_bytes,
        "cursor": store._cursor,
        "db": {key: tuple(entry) for key, entry in store.db.items()},
        "sets": store.sets,
        "gets": store.gets,
        "misses": store.misses,
    }


def _check_quiescent(system):
    env = system.env
    if not env.idle:
        raise CheckpointStateError(
            "event heap is not idle; quiesce the machine first")
    for proc in env.processes:
        if proc.is_alive:
            raise CheckpointStateError(
                "simulated process %r is still alive; only a fully-settled"
                " machine can be checkpointed" % proc.name)
    for core in env.cores.cores:
        if core.current is not None or core.pinned_queue:
            raise CheckpointStateError(
                "core %d still has scheduled compute" % core.core_id)
    if env.cores.shared_queue:
        raise CheckpointStateError("shared run queue is not empty")
    svc = system.copier
    if svc is not None and not svc.quiesced:
        raise CheckpointStateError("copier service is not quiesced")


def checkpoint(system, stores=(), deadline=None):
    """Quiesce ``system`` and serialize it into a :class:`Checkpoint`.

    ``stores`` lists the :class:`~repro.fleet.store.KVStore` instances
    riding on this system, serialized alongside and rebuilt by
    :func:`restore`.  The service is left quiesced — call
    :meth:`CopierService.resume` (or :func:`resume`) to keep running the
    *same* machine after taking the snapshot.
    """
    svc = system.copier
    if svc is not None:
        svc.quiesce(deadline=deadline)
    _check_quiescent(system)
    env = system.env
    init = system._init_kwargs
    aspaces = {system.kernel_as.asid: system.kernel_as}
    for proc in system.processes:
        aspaces[proc.aspace.asid] = proc.aspace
    if svc is not None:
        for aspace in svc._all_aspaces():
            aspaces[aspace.asid] = aspace
    client_index = ({c: i for i, c in enumerate(svc.clients)}
                    if svc is not None else {})
    processes = []
    for proc in system.processes:
        idx = client_index.get(proc.client) if proc.client is not None else None
        if proc.client is not None and idx is None:
            raise CheckpointStateError(
                "process %r references an unregistered client" % proc.name)
        processes.append({"pid": proc.pid, "name": proc.name,
                          "asid": proc.aspace.asid, "exited": proc.exited,
                          "client": idx})
    payload = {
        "system": {
            "n_cores": init["n_cores"],
            "timeslice": init["timeslice"],
            "phys_frames": init["phys_frames"],
            "fragmented": init["fragmented"],
            "kernel_asid": system.kernel_as.asid,
            "params": {f.name: getattr(system.params, f.name)
                       for f in dataclass_fields(system.params)},
        },
        "env": {
            "now": env.now,
            "seq": env._seq,
            "events_executed": env.events_executed,
            "cycles": {pid: dict(tags)
                       for pid, tags in env.stats.cycles.items()},
            "instructions": {pid: dict(tags)
                             for pid, tags in env.stats.instructions.items()},
            "core_cycles": {cid: dict(tags)
                            for cid, tags in env.stats.core_cycles.items()},
            "core_busy": [core.busy_cycles for core in env.cores.cores],
        },
        "counters": {
            "sim_pid": Process._next_pid[0],
            "os_pid": OSProcess._next_pid[0],
            "asid": AddressSpace._next_asid[0],
            "task_id": task_mod._task_ids.next_value,
        },
        "phys": {
            "data": system.phys.snapshot_frames(),
            "refcount": dict(system.phys._refcount),
            "free": list(system.phys._free),
            "free_sorted": system.phys._free_sorted,
            "alloc_parity": system.phys._alloc_parity,
        },
        "cache": {"pollution": dict(system.cache._pollution)},
        "aspaces": [_serialize_aspace(aspaces[asid])
                    for asid in sorted(aspaces)],
        "copier": _serialize_copier(svc) if svc is not None else None,
        "trace": _serialize_trace(svc) if svc is not None else None,
        "processes": processes,
        "stores": [_serialize_store(system, s) for s in stores],
    }
    return Checkpoint(payload)


# ----------------------------------------------------------------- restore


def _restore_aspace(aspace, data):
    aspace.asid = data["asid"]
    aspace.name = data["name"]
    aspace.page_table = {}
    for vpn, (frame, writable, cow, pins) in data["page_table"].items():
        pte = PTE(frame, writable, cow=cow)
        pte.pin_count = pins
        aspace.page_table[vpn] = pte
    vmas = []
    for start, end, readable, writable, name in data["vmas"]:
        vma = VMA.__new__(VMA)
        vma.start = start
        vma.end = end
        vma.readable = readable
        vma.writable = writable
        vma.shared_segment = None
        vma.name = name
        vmas.append(vma)
    aspace.vmas = vmas
    aspace._mmap_cursor = data["mmap_cursor"]
    aspace.fault_counts = dict(data["fault_counts"])
    aspace._invalidation_hooks = []
    aspace._fastpath = data["fastpath"]
    aspace._run_cache = {}
    teardown = []
    for vpn, frame, writable, cow, pins in data["lazy_teardown"]:
        pte = PTE(frame, writable, cow=cow)
        pte.pin_count = pins
        teardown.append((vpn, pte))
    aspace._lazy_teardown = teardown
    aspace.deferred_unmaps = data["deferred_unmaps"]
    aspace.deferred_reclaimed = data["deferred_reclaimed"]
    aspace.pinned_fork_copies = data["pinned_fork_copies"]
    aspace._unmap_log = deque(data["unmap_log"],
                              maxlen=addrspace_mod._UNMAP_LOG_LIMIT)
    return aspace


def _rebuild_plan(data):
    if data is None:
        return None
    specs = [FaultSpec(kind, rate, max_consecutive=max_consecutive,
                       min_cycles=min_cycles, max_cycles=max_cycles)
             for kind, rate, max_consecutive, min_cycles, max_cycles
             in data["specs"]]
    return FaultPlan(data["name"], data["seed"], specs)


def _restore_copier(system, cp, trace_data, asid_map):
    env = system.env
    policy = make_policy(cp["polling"]["name"])
    vars(policy).update(cp["polling"]["attrs"])
    adm_policy = make_admission(cp["admission"]["policy"]["name"])
    vars(adm_policy).update(cp["admission"]["policy"]["attrs"])
    plan = _rebuild_plan(cp["faults"]["plan"])
    svc = CopierService(
        env, system.params,
        polling=policy,
        use_dma=cp["dma"] is not None,
        use_absorption=cp["dispatcher"]["use_absorption"],
        n_threads=cp["n_workers"],
        max_threads=cp["max_threads"],
        dedicated_cores=list(cp["dedicated_cores"]),
        lazy_period_cycles=cp["lazy_period_cycles"],
        autoscale=cp["autoscale"],
        fault_plan=plan,
        admission=adm_policy,
        watchdog_cycles=cp["watchdog"]["period_cycles"],
        watchdog_starvation_cycles=cp["watchdog"]["starvation_cycles"],
    )
    system.copier = svc
    # Discard the constructor's spawned workers/DMA and their start
    # events; resume() respawns them against the restored clock.
    env.clear_pending()
    env.processes.clear()
    svc.threads = []
    svc._wake_events = {}
    svc.running = False
    svc.draining = True
    svc.quiesced = True
    if plan is None and svc.faults.armed:
        # The saved machine ran fault-free; COPIER_FAULT_PLAN in the
        # restoring process's environment must not arm it retroactively.
        svc.faults = FaultInjector(None, env=env, trace=svc.trace)
        if svc.dma is not None:
            svc.dma.injector = None
    svc.scenario_active = cp["scenario_active"]
    svc.active_threads = cp["active_threads"]
    svc.peak_threads = cp["peak_threads"]
    svc.rounds_executed = cp["rounds_executed"]
    svc.tasks_dropped = cp["tasks_dropped"]
    svc.tasks_retired = cp["tasks_retired"]
    svc.autoscaler.window = list(cp["autoscaler"]["window"])
    svc.autoscaler._low_streak = cp["autoscaler"]["low_streak"]
    _set_slots(svc.lifecycle, cp["lifecycle"])
    disp = svc.dispatcher
    disp.dma_quarantined = cp["dispatcher"]["dma_quarantined"]
    disp.rounds_planned = cp["dispatcher"]["rounds_planned"]
    disp.bytes_to_dma = cp["dispatcher"]["bytes_to_dma"]
    disp.bytes_to_avx = cp["dispatcher"]["bytes_to_avx"]
    disp.bytes_absorbed = cp["dispatcher"]["bytes_absorbed"]
    wd = svc.watchdog
    wd.stall_checks = cp["watchdog"]["stall_checks"]
    _set_slots(wd.stats, cp["watchdog"]["stats"])
    wd._last_retired = cp["watchdog"]["last_retired"]
    wd._last_progress_at = cp["watchdog"]["last_progress_at"]
    wd._stall_streak = cp["watchdog"]["stall_streak"]
    wd._flagged_starved = set(cp["watchdog"]["flagged_starved"])
    wd._armed = False
    wd._stopped = True
    faults = svc.faults
    faults.injected = dict(cp["faults"]["injected"])
    faults._consecutive = dict(cp["faults"]["consecutive"])
    for kind, state in cp["faults"]["rng_state"].items():
        rng = random.Random()
        rng.setstate(state)
        faults._rngs[kind] = rng
    _set_slots(svc.fault_stats, cp["fault_stats"])
    if svc.dma is not None:
        dma_data = cp["dma"]
        svc.dma.check_contiguity = dma_data["check_contiguity"]
        svc.dma.busy_cycles = dma_data["busy_cycles"]
        svc.dma.bytes_copied = dma_data["bytes_copied"]
        svc.dma.batches = dma_data["batches"]
        svc.dma.submit_failures = dma_data["submit_failures"]
        svc.dma.aborted_batches = dma_data["aborted_batches"]
        svc.dma.stall_cycles = dma_data["stall_cycles"]
        svc.dma.efaults = dma_data["efaults"]
    # Scheduler groups before clients, so create_client finds its cgroup.
    for name, shares, total in cp["scheduler"]["cgroups"]:
        group = (svc.scheduler.cgroups.get(name)
                 or svc.scheduler.create_cgroup(name, shares))
        group.shares = shares
        group.total_copy_length = total
    for rec in cp["clients"]:
        client = svc.create_client(
            asid_map[rec["asid"]], name=rec["name"], cgroup=rec["cgroup"],
            queue_capacity=rec["queue_capacity"],
            segment_bytes=rec["segment_bytes"])
        for ring_name, head in rec["rings"].items():
            side, kind = ring_name.split("_")
            queues = client.u_queues if side == "u" else client.k_queues
            queue = getattr(queues, kind)
            queue.head = queue.tail = head
        barriers = client.barriers
        (barriers._current_barrier_pos, barriers._barrier_epoch,
         barriers._k_sequence, barriers.barriers_recorded) = rec["barriers"]
        pool = client.desc_pool
        pool.hits = rec["desc_pool"]["hits"]
        pool.misses = rec["desc_pool"]["misses"]
        for cls, count in rec["desc_pool"]["free"].items():
            free = pool._free[cls]
            while len(free) > count:
                free.pop()
            while len(free) < count:
                free.append(_fresh_descriptor(cls, pool))
        _set_slots(client.stats, rec["stats"])
        svc.scheduler._client_length[client] = rec["scheduler_length"]
    adm = svc.admission
    _set_slots(adm.stats, cp["admission"]["stats"])
    for name, (rate, burst, tokens, refill) in (
            cp["admission"]["cgroup_buckets"].items()):
        adm._cgroup_buckets[name] = _rebuild_bucket(env, rate, burst,
                                                    tokens, refill)
    for idx, (rate, burst, tokens, refill) in (
            cp["admission"]["client_buckets"].items()):
        adm._client_buckets[svc.clients[idx]] = _rebuild_bucket(
            env, rate, burst, tokens, refill)
    atc = svc.atcache
    atc._entries = OrderedDict(
        (tuple(key), frame) for key, frame in cp["atcache"]["entries"])
    atc.hits = cp["atcache"]["hits"]
    atc.misses = cp["atcache"]["misses"]
    atc.invalidations = cp["atcache"]["invalidations"]
    for asid in cp["atcache"]["hooked_asids"]:
        if asid in asid_map:
            atc.attach(asid_map[asid])
    atc._hooked_asids = set(cp["atcache"]["hooked_asids"])
    svc._departed_aspaces = [asid_map[a] for a in cp["departed_asids"]]
    agg = svc.stage_stats
    for name, (count, total, peak) in trace_data["stages"].items():
        lat = agg.stages[name]
        lat.count, lat.total, lat.max = count, total, peak
    agg.outcomes = dict(trace_data["outcomes"])
    agg.thread_sleeps = trace_data["thread_sleeps"]
    agg.thread_wakes = trace_data["thread_wakes"]
    agg.slept_cycles = trace_data["slept_cycles"]
    agg.rounds = trace_data["rounds"]
    agg.engine_fallbacks = trace_data["engine_fallbacks"]
    agg.fallback_bytes = trace_data["fallback_bytes"]
    agg.faults_injected = dict(trace_data["faults_injected"])
    agg.shed_tasks = trace_data["shed_tasks"]
    agg.shed_bytes = trace_data["shed_bytes"]
    agg.admission_rejects = trace_data["admission_rejects"]
    agg.watchdog_alerts = dict(trace_data["watchdog_alerts"])
    agg.processes_reaped = trace_data["processes_reaped"]
    agg.drains = trace_data["drains"]
    agg.events_seen = trace_data["events_seen"]
    return svc


def _fresh_descriptor(cls, pool):
    from repro.copier.descriptor import Descriptor

    return Descriptor(cls, pool.segment_bytes, pool=pool, size_class=cls)


def _rebuild_bucket(env, rate, burst, tokens, refill):
    bucket = TokenBucket(env, rate, burst)
    bucket.tokens = tokens
    bucket.last_refill = refill
    return bucket


def _restore_store(system, rec):
    from repro.fleet.netpath import SimLock
    from repro.fleet.store import KVStore

    proc = next(p for p in system.processes if p.pid == rec["pid"])
    store = KVStore.__new__(KVStore)
    store.system = system
    store.name = rec["name"]
    store.proc = proc
    store.client = proc.client
    store.staging = rec["staging"]
    store.out = rec["out"]
    store.staging_bytes = rec["staging_bytes"]
    store.arena = rec["arena"]
    store.arena_bytes = rec["arena_bytes"]
    store._cursor = rec["cursor"]
    store.lock = SimLock(system.env)
    store.db = {key: tuple(entry) for key, entry in rec["db"].items()}
    store.sets = rec["sets"]
    store.gets = rec["gets"]
    store.misses = rec["misses"]
    return store


def restore(source, resume=True):
    """Rebuild a machine from a checkpoint; returns ``(system, stores)``.

    ``source`` is a :class:`Checkpoint`, raw envelope bytes, or a file
    path.  With ``resume=True`` (default) the returned system is live —
    workers and DMA respawned, admission open; with ``resume=False`` it
    is left in the quiesced state for inspection.
    """
    if isinstance(source, Checkpoint):
        ckpt = source
    elif isinstance(source, (bytes, bytearray)):
        ckpt = Checkpoint.from_bytes(bytes(source))
    else:
        ckpt = Checkpoint.load(source)
    p = ckpt.payload
    sys_sec = p["system"]
    params = MachineParams(**sys_sec["params"])
    system = System(n_cores=sys_sec["n_cores"], params=params,
                    phys_frames=sys_sec["phys_frames"],
                    fragmented=sys_sec["fragmented"], copier=False,
                    timeslice=sys_sec["timeslice"])
    env = system.env
    env.clear_pending()
    env.processes.clear()
    e = p["env"]
    env.now = e["now"]
    env._seq = e["seq"]
    env.events_executed = e["events_executed"]
    cycles = defaultdict(lambda: defaultdict(int))
    for pid, tags in e["cycles"].items():
        cycles[pid].update(tags)
    env.stats.cycles = cycles
    instructions = defaultdict(lambda: defaultdict(float))
    for pid, tags in e["instructions"].items():
        instructions[pid].update(tags)
    env.stats.instructions = instructions
    core_cycles = defaultdict(lambda: defaultdict(int))
    for cid, tags in e["core_cycles"].items():
        core_cycles[cid].update(tags)
    env.stats.core_cycles = core_cycles
    for core, busy in zip(env.cores.cores, e["core_busy"]):
        core.busy_cycles = busy
    phys = system.phys
    phys.load_frames(p["phys"]["data"])
    phys._refcount = dict(p["phys"]["refcount"])
    phys._free = list(p["phys"]["free"])
    phys._free_sorted = p["phys"]["free_sorted"]
    phys._alloc_parity = p["phys"]["alloc_parity"]
    system.cache._pollution = dict(p["cache"]["pollution"])
    asid_map = {}
    kernel_asid = sys_sec["kernel_asid"]
    for data in p["aspaces"]:
        if data["asid"] == kernel_asid:
            aspace = system.kernel_as
        else:
            aspace = AddressSpace(phys, name=data["name"])
        asid_map[data["asid"]] = _restore_aspace(aspace, data)
    svc = None
    if p["copier"] is not None:
        svc = _restore_copier(system, p["copier"], p["trace"], asid_map)
        # Service construction scheduled (and discarded) start events,
        # bumping the event sequence; re-pin it so post-restore heap
        # tie-breaks replay exactly as the saved machine's would.
        env._seq = e["seq"]
    for rec in p["processes"]:
        client = (svc.clients[rec["client"]]
                  if svc is not None and rec["client"] is not None else None)
        proc = OSProcess(system, asid_map[rec["asid"]], client,
                         name=rec["name"])
        proc.pid = rec["pid"]
        proc.exited = rec["exited"]
        system.processes.append(proc)
    stores = [_restore_store(system, rec) for rec in p["stores"]]
    counters = p["counters"]
    Process._next_pid[0] = counters["sim_pid"]
    OSProcess._next_pid[0] = counters["os_pid"]
    AddressSpace._next_asid[0] = counters["asid"]
    task_mod._task_ids.next_value = counters["task_id"]
    if resume and svc is not None:
        svc.resume()
    return system, stores
