"""The on-disk checkpoint envelope: versioned, length-framed, checksummed.

Layout (big-endian)::

    4s  magic    b"RCKP"
    H   version  format version (1)
    Q   length   payload length in bytes
    32s sha256   checksum of the payload
    ... payload  pickled plain data (dicts/lists/tuples/bytes/ints only)

The payload is *pure data* — no repo classes are pickled, so loading an
envelope never constructs simulation objects; :mod:`repro.ckpt.machine`
rebuilds the machine from the decoded dictionaries.  Every decode
failure maps to a typed :class:`~repro.ckpt.errors.CheckpointError`
subclass, checked in order: truncated header, bad magic, unsupported
version, truncated payload, checksum mismatch, undecodable payload.
"""

import hashlib
import pickle
import struct

from repro.ckpt.errors import (
    CheckpointChecksumError,
    CheckpointFormatError,
    CheckpointTruncatedError,
    CheckpointVersionError,
)

MAGIC = b"RCKP"
VERSION = 1

_HEADER = struct.Struct(">4sHQ32s")


def dump_bytes(payload, version=VERSION):
    """Serialize ``payload`` into a framed, checksummed envelope."""
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(blob).digest()
    return _HEADER.pack(MAGIC, version, len(blob), digest) + blob


def load_bytes(data):
    """Decode an envelope produced by :func:`dump_bytes`.

    Raises a typed :class:`~repro.ckpt.errors.CheckpointError` subclass
    on any damage; returns the decoded payload otherwise.
    """
    if len(data) < _HEADER.size:
        raise CheckpointTruncatedError(
            "checkpoint is %d bytes; the header alone is %d"
            % (len(data), _HEADER.size))
    magic, version, length, digest = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise CheckpointFormatError(
            "bad magic %r (want %r): not a checkpoint" % (magic, MAGIC))
    if version != VERSION:
        raise CheckpointVersionError(
            "checkpoint format version %d; this build reads version %d"
            % (version, VERSION))
    blob = data[_HEADER.size:]
    if len(blob) < length:
        raise CheckpointTruncatedError(
            "payload truncated: %d of %d bytes present" % (len(blob), length))
    blob = blob[:length]
    if hashlib.sha256(blob).digest() != digest:
        raise CheckpointChecksumError("payload checksum mismatch")
    # Only the failures a checksum-valid-but-undecodable payload can
    # actually produce: unpickling protocol errors, short reads, missing
    # classes/attributes, and malformed primitive encodings.  Anything
    # else (KeyboardInterrupt, MemoryError, a bug in a __setstate__)
    # should propagate, not masquerade as a corrupt checkpoint.
    try:
        return pickle.loads(blob)
    except (pickle.UnpicklingError, EOFError, AttributeError, ValueError,
            TypeError) as exc:
        raise CheckpointFormatError(
            "payload does not decode: %s" % exc) from None


def dump_file(payload, path, version=VERSION):
    data = dump_bytes(payload, version=version)
    with open(path, "wb") as fh:
        fh.write(data)
    return len(data)


def load_file(path):
    with open(path, "rb") as fh:
        return load_bytes(fh.read())
