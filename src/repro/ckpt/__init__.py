"""Checkpoint/restore of a simulated machine (see :mod:`repro.ckpt.machine`).

Public surface::

    from repro.ckpt import checkpoint, restore, Checkpoint, CheckpointError

    ckpt = checkpoint(system)          # quiesces, serializes
    ckpt.save("machine.rckp")          # versioned, checksummed envelope
    system.copier.resume()             # keep running the same machine
    system2, stores = restore(ckpt)    # or restore("machine.rckp")
"""

from repro.ckpt.errors import (
    CheckpointChecksumError,
    CheckpointError,
    CheckpointFormatError,
    CheckpointStateError,
    CheckpointTruncatedError,
    CheckpointVersionError,
)
from repro.ckpt.format import MAGIC, VERSION
from repro.ckpt.machine import Checkpoint, checkpoint, restore

__all__ = [
    "MAGIC",
    "VERSION",
    "Checkpoint",
    "CheckpointChecksumError",
    "CheckpointError",
    "CheckpointFormatError",
    "CheckpointStateError",
    "CheckpointTruncatedError",
    "CheckpointVersionError",
    "checkpoint",
    "restore",
]
