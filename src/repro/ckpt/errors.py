"""Typed checkpoint errors.

Every failure mode of the checkpoint/restore path raises a subclass of
:class:`CheckpointError`, so callers can distinguish a damaged file
(format/checksum/truncation/version) from a machine that cannot reach a
checkpointable state (:class:`CheckpointStateError`).  A failed load
never hands back a half-restored machine: restore builds a *fresh*
``System`` and only returns it after the whole overlay succeeded.
"""


class CheckpointError(Exception):
    """Base class for every checkpoint/restore failure."""


class CheckpointFormatError(CheckpointError):
    """The file is not a checkpoint (bad magic, unreadable payload)."""


class CheckpointVersionError(CheckpointError):
    """The checkpoint's format version is not supported by this build."""


class CheckpointChecksumError(CheckpointError):
    """The payload does not match its recorded checksum (corruption)."""


class CheckpointTruncatedError(CheckpointError):
    """The file ends before the declared payload does."""


class CheckpointStateError(CheckpointError):
    """The machine cannot be checkpointed (or restored) in this state:
    wedged backlog, queued FUNC handlers, live foreign sim processes,
    shared-segment VMAs, and similar non-quiescent shapes."""
