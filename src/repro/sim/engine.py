"""The simulation environment: virtual clock and event loop."""

import heapq

from repro.sim.cores import CoreSet
from repro.sim.events import Event
from repro.sim.process import Process
from repro.sim.stats import CycleStats
from repro.sim.trace import TraceBus


class Environment:
    """Event loop with a cycle-granularity virtual clock.

    ``n_cores`` and ``timeslice`` configure the CPU model.  All simulated
    components (Copier service, kernel, apps, copy engines) share one
    environment, which is what gives Copier its whole-system global view.
    """

    def __init__(self, n_cores=4, timeslice=100_000):
        self.now = 0
        self._heap = []
        self._seq = 0
        self.events_executed = 0
        self.stats = CycleStats()
        self.trace = TraceBus()
        self.cores = CoreSet(self, n_cores, timeslice)
        self.processes = []

    def schedule(self, delay, fn):
        """Run ``fn()`` after ``delay`` cycles."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn))
        self._seq += 1

    def event(self):
        return Event(self)

    def spawn(self, generator, name=None, affinity=None):
        """Create and start a process from ``generator``."""
        process = Process(self, generator, name=name, affinity=affinity)
        self.processes.append(process)
        process.start()
        return process

    def run(self, until=None):
        """Run the event loop.

        With ``until=None`` runs until no events remain; otherwise runs
        until the clock reaches ``until`` cycles (events at exactly
        ``until`` still execute).
        """
        while self._heap:
            when, _seq, fn = self._heap[0]
            if until is not None and when > until:
                self.now = until
                return
            heapq.heappop(self._heap)
            self.now = when
            self.events_executed += 1
            fn()
        if until is not None and until > self.now:
            self.now = until

    def run_until(self, event, limit=None):
        """Run until ``event`` triggers; raises if the loop drains first."""
        while not event.triggered:
            if not self._heap:
                raise RuntimeError("event loop drained before event triggered")
            when, _seq, fn = heapq.heappop(self._heap)
            if limit is not None and when > limit:
                raise RuntimeError("simulation limit reached at %d" % when)
            self.now = when
            self.events_executed += 1
            fn()
        if event.exception is not None:
            raise event.exception
        return event.value
