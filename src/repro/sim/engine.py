"""The simulation environment: virtual clock and event loop.

Time model (the sim-time vs wall-time seam)
-------------------------------------------

The environment's clock is purely *virtual*: ``now`` advances only when
events execute (or when a run/step horizon passes), and the environment
never reads the host's wall clock.  Anything wall-time related — pacing
the simulation against real time, serving real sockets, parking real
coroutines on simulated completions — lives entirely *outside* this
module, in a driver that owns the loop (:mod:`repro.serve.driver`).  The
seam between the two worlds is the cooperative stepping API:

* :meth:`Environment.step` executes a bounded slice of the event loop
  and returns control (with a :class:`StepReport`), so an external
  driver can interleave simulation with I/O, wall-clock pacing, or
  other work;
* :attr:`Environment.idle` / :meth:`Environment.next_event_time` expose
  quiescence explicitly, so a driver can tell "nothing will ever happen
  until new work is injected" apart from "work is pending".

``run``/``run_until`` remain the batch drivers (run-to-horizon /
run-to-event); they share the queue discipline with ``step``, so
interleaved ``step`` calls execute the exact same event sequence — and
therefore produce byte-identical counters — as a single batch run.  All
three are mutually exclusive and non-reentrant: calling any of them from
inside an executing event raises, which is what keeps an external driver
and in-process drain loops from fighting over the run loop.

Queue engineering (the calendar queue)
--------------------------------------

The historic loop kept every pending event in one ``heapq`` of
``(when, seq, fn)`` tuples: every schedule and every pop paid an
O(log n) sift *per event*, with tuple allocation and tuple comparison on
the hot path.  The production loop is a **calendar/bucket queue** keyed
on the cycle: events scheduled for the same cycle share one bucket (a
plain list, appended in schedule order — which *is* ``seq`` order, since
``seq`` grows monotonically), and a small heap orders only the distinct
pending cycles.  Scheduling into an existing bucket is O(1); the heap
fallback pays its O(log d) only once per *distinct* future cycle, not
once per event.  Execution drains a whole bucket in one dispatch loop —
same-cycle batching — and events that schedule more work at the current
cycle land in the bucket being drained, exactly where the heap's
``(when, seq)`` total order would have put them.  The observable event
order is therefore bit-exact with the historic loop, and
``COPIER_SLOWHEAP=1`` (read once per :class:`Environment` construction)
keeps that historic heapq loop alive as a differential oracle, mirroring
the ``COPIER_SLOWPATH`` discipline of the memory fast paths.
"""

import heapq
import os

from repro.sim.cores import CoreSet
from repro.sim.events import Event
from repro.sim.process import Process
from repro.sim.stats import CycleStats
from repro.sim.trace import TraceBus

#: Default ``run_until`` safety limit (cycles) shared by benchmarks,
#: tools and app drivers: generous enough for every workload in the
#: repo, finite so a wedged simulation fails instead of spinning.
DEFAULT_RUN_LIMIT = 500_000_000_000


def slowheap_enabled():
    """True when ``COPIER_SLOWHEAP=1`` forces the historic heapq loop.

    Read once per :class:`Environment` construction — the differential
    determinism tests build one environment per setting.
    """
    return os.environ.get("COPIER_SLOWHEAP") == "1"


def _normalize_delay(delay):
    """Validate/normalize a schedule delay at the seam (once, here).

    Cycles are integral by definition.  Integral ``float``s (a common
    artifact of latency arithmetic) are normalized to ``int``; anything
    non-integral or non-numeric is a typed error instead of a silent
    drift of the clock into float territory.
    """
    if isinstance(delay, bool) or not isinstance(delay, (int, float)):
        raise TypeError(
            "schedule delay must be an integral number of cycles, got %r"
            % type(delay).__name__)
    if isinstance(delay, float):
        if not delay.is_integer():
            raise TypeError(
                "schedule delay must be a whole number of cycles, got %r"
                % (delay,))
        delay = int(delay)
    return delay


class StepReport:
    """What one :meth:`Environment.step` call did."""

    __slots__ = ("executed", "now", "idle")

    def __init__(self, executed, now, idle):
        self.executed = executed  # events executed by this step
        self.now = now            # clock after the step
        self.idle = idle          # True when the queue is empty

    def __repr__(self):
        return "StepReport(executed=%d, now=%d, idle=%s)" % (
            self.executed, self.now, self.idle)


class Environment:
    """Event loop with a cycle-granularity virtual clock.

    ``n_cores`` and ``timeslice`` configure the CPU model.  All simulated
    components (Copier service, kernel, apps, copy engines) share one
    environment, which is what gives Copier its whole-system global view.
    """

    def __init__(self, n_cores=4, timeslice=100_000):
        self.now = 0
        # Calendar queue: cycle -> [fn, ...] in schedule order, plus a
        # heap of the distinct pending cycles (each pushed exactly once).
        self._buckets = {}
        self._times = []
        # Historic heapq storage, used only under COPIER_SLOWHEAP=1.
        self._heap = []
        self._seq = 0
        self._running = False
        self.events_executed = 0
        self.slowheap = slowheap_enabled()
        if self.slowheap:
            # Bind the oracle loop per-instance: zero per-call branching
            # on the production path, and the oracle stays byte-for-byte
            # the historic implementation.
            self.schedule = self._schedule_slowheap
            self.run = self._run_slowheap
            self.step = self._step_slowheap
            self.run_until = self._run_until_slowheap
        self.stats = CycleStats()
        self.trace = TraceBus()
        self.cores = CoreSet(self, n_cores, timeslice)
        self.processes = []

    def schedule(self, delay, fn):
        """Run ``fn()`` after ``delay`` cycles."""
        if type(delay) is not int:
            delay = _normalize_delay(delay)
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        when = self.now + delay
        self._seq += 1
        bucket = self._buckets.get(when)
        if bucket is None:
            self._buckets[when] = [fn]
            heapq.heappush(self._times, when)
        else:
            bucket.append(fn)

    def event(self):
        return Event(self)

    def spawn(self, generator, name=None, affinity=None):
        """Create and start a process from ``generator``."""
        process = Process(self, generator, name=name, affinity=affinity)
        self.processes.append(process)
        process.start()
        return process

    # ----------------------------------------------------------- stepping

    @property
    def idle(self):
        """True when no events remain: nothing will happen until new work
        is scheduled from outside (quiescence, not just a pause)."""
        return not self._times and not self._heap

    def next_event_time(self):
        """Clock value of the earliest pending event, or ``None`` when
        idle.  Lets an external driver bound how far ``step`` can go
        without executing anything."""
        if self._times:
            return self._times[0]
        if self._heap:
            return self._heap[0][0]
        return None

    def pending_events(self):
        """Number of events currently queued (both loop flavors)."""
        if self._heap:
            return len(self._heap)
        return sum(len(b) for b in self._buckets.values())

    def clear_pending(self):
        """Drop every queued event (checkpoint/restore surgery)."""
        self._buckets.clear()
        del self._times[:]
        del self._heap[:]

    def _enter(self):
        if self._running:
            raise RuntimeError(
                "event loop re-entered: step()/run()/run_until() called "
                "from inside an executing event")
        self._running = True

    def step(self, max_events=None, max_cycles=None):
        """Execute a bounded slice of the event loop; returns a
        :class:`StepReport`.

        ``max_events`` bounds how many events execute; ``max_cycles``
        bounds how far the clock advances (a relative horizon at
        ``now + max_cycles`` — events exactly at the horizon still
        execute, matching ``run(until=...)``).  With a cycle horizon the
        clock advances *to* the horizon even when fewer events exist, so
        ``step(max_cycles=c)`` is exactly ``run(until=now+c)``; with only
        an event budget the clock stops at the last executed event, so a
        driver that steps an idle simulation burns no virtual time.
        With neither bound it runs to quiescence, like ``run()``.

        Re-entrant *between* calls (call it as often as you like, from
        wherever, interleaved with ``run``/``run_until``), but not from
        inside an executing event — that raises ``RuntimeError``.
        """
        self._enter()
        buckets = self._buckets
        times = self._times
        limit = None if max_cycles is None else self.now + max_cycles
        executed = 0
        try:
            while times:
                when = times[0]
                if limit is not None and when > limit:
                    break
                if max_events is not None and executed >= max_events:
                    break
                bucket = buckets[when]
                self.now = when
                i = 0
                try:
                    while i < len(bucket):
                        if max_events is not None and executed >= max_events:
                            break
                        fn = bucket[i]
                        i += 1
                        self.events_executed += 1
                        executed += 1
                        fn()
                finally:
                    if i < len(bucket):
                        # Budget (or an exception) cut the bucket short:
                        # keep the unexecuted suffix pending.
                        del bucket[:i]
                    else:
                        del buckets[when]
                        heapq.heappop(times)
            if limit is not None and limit > self.now:
                # Horizon semantics match run(until=...): the clock lands
                # on the horizon whether or not events filled the slice —
                # unless the event budget cut the slice short first.
                if not times or (max_events is None or executed < max_events):
                    self.now = limit
        finally:
            self._running = False
        return StepReport(executed, self.now, not times)

    # -------------------------------------------------------- batch drives

    def run(self, until=None):
        """Run the event loop.

        With ``until=None`` runs until no events remain; otherwise runs
        until the clock reaches ``until`` cycles (events at exactly
        ``until`` still execute).
        """
        self._enter()
        buckets = self._buckets
        times = self._times
        try:
            while times:
                when = times[0]
                if until is not None and when > until:
                    self.now = until
                    return
                bucket = buckets[when]
                self.now = when
                i = 0
                try:
                    # Same-cycle batch: one dispatch loop per bucket.
                    # Events scheduling at the current cycle append to
                    # this bucket and are picked up by the length check.
                    while i < len(bucket):
                        fn = bucket[i]
                        i += 1
                        self.events_executed += 1
                        fn()
                finally:
                    if i < len(bucket):
                        del bucket[:i]
                    else:
                        del buckets[when]
                        heapq.heappop(times)
            if until is not None and until > self.now:
                self.now = until
        finally:
            self._running = False

    def run_until(self, event, limit=None):
        """Run until ``event`` triggers; raises if the loop drains first."""
        self._enter()
        buckets = self._buckets
        times = self._times
        try:
            while not event.triggered:
                if not times:
                    raise RuntimeError("event loop drained before event triggered")
                when = times[0]
                if limit is not None and when > limit:
                    raise RuntimeError("simulation limit reached at %d" % when)
                bucket = buckets[when]
                self.now = when
                i = 0
                try:
                    while i < len(bucket):
                        if event.triggered:
                            break
                        fn = bucket[i]
                        i += 1
                        self.events_executed += 1
                        fn()
                finally:
                    if i < len(bucket):
                        del bucket[:i]
                    else:
                        del buckets[when]
                        heapq.heappop(times)
        finally:
            self._running = False
        if event.exception is not None:
            raise event.exception
        return event.value

    # ------------------------------------------- historic heapq loop (oracle)
    #
    # COPIER_SLOWHEAP=1 binds these in place of the calendar loop above.
    # They are the pre-calendar implementation, kept verbatim as the
    # differential oracle: any ordering drift in the calendar queue shows
    # up against these in tests/sim/test_calendar.py.

    def _schedule_slowheap(self, delay, fn):
        """Run ``fn()`` after ``delay`` cycles (historic heapq loop)."""
        if type(delay) is not int:
            delay = _normalize_delay(delay)
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn))
        self._seq += 1

    def _step_slowheap(self, max_events=None, max_cycles=None):
        self._enter()
        heap = self._heap
        limit = None if max_cycles is None else self.now + max_cycles
        executed = 0
        try:
            while heap:
                if max_events is not None and executed >= max_events:
                    break
                when = heap[0][0]
                if limit is not None and when > limit:
                    break
                _when, _seq, fn = heapq.heappop(heap)
                self.now = when
                self.events_executed += 1
                executed += 1
                fn()
            if limit is not None and limit > self.now:
                if not heap or (max_events is None or executed < max_events):
                    self.now = limit
        finally:
            self._running = False
        return StepReport(executed, self.now, not heap)

    def _run_slowheap(self, until=None):
        self._enter()
        try:
            while self._heap:
                when, _seq, fn = self._heap[0]
                if until is not None and when > until:
                    self.now = until
                    return
                heapq.heappop(self._heap)
                self.now = when
                self.events_executed += 1
                fn()
            if until is not None and until > self.now:
                self.now = until
        finally:
            self._running = False

    def _run_until_slowheap(self, event, limit=None):
        self._enter()
        try:
            while not event.triggered:
                if not self._heap:
                    raise RuntimeError("event loop drained before event triggered")
                when, _seq, fn = heapq.heappop(self._heap)
                if limit is not None and when > limit:
                    raise RuntimeError("simulation limit reached at %d" % when)
                self.now = when
                self.events_executed += 1
                fn()
        finally:
            self._running = False
        if event.exception is not None:
            raise event.exception
        return event.value
