"""Generator-based simulated processes."""

from repro.sim.events import Event
from repro.sim.requests import Compute, Timeout, WaitEvent

NEW = "new"
READY = "ready"
RUNNING = "running"
BLOCKED = "blocked"
DONE = "done"


class ProcessKilled(Exception):
    """Raised inside a process generator when it is killed (e.g. SIGSEGV)."""


class Process:
    """A simulated thread of execution.

    Wraps a generator that yields :mod:`repro.sim.requests` objects.  Code
    between yields executes instantaneously in simulated time; only
    :class:`Compute` consumes core cycles.

    ``affinity`` pins the process to a core id (``None`` floats it across
    all cores) — the Copier service thread uses this to claim its dedicated
    core, matching the paper's "one dedicated core to copy" setup.
    """

    _next_pid = [1]

    def __init__(self, env, generator, name=None, affinity=None):
        self.env = env
        self.gen = generator
        self.pid = Process._next_pid[0]
        Process._next_pid[0] += 1
        self.name = name or ("proc-%d" % self.pid)
        self.affinity = affinity
        self.state = NEW
        self.terminated = Event(env)
        self.result = None
        self._pending_exc = None
        self._compute_state = None  # set by CoreSet while computing

    def __repr__(self):
        return "<Process %s pid=%d %s>" % (self.name, self.pid, self.state)

    @property
    def is_alive(self):
        return self.state != DONE

    def start(self):
        if self.state != NEW:
            raise RuntimeError("process already started")
        self.state = BLOCKED
        self.env.schedule(0, lambda: self._resume(None))
        return self

    def kill(self, exc=None):
        """Deliver ``exc`` (default :class:`ProcessKilled`) into the process.

        Takes effect at the process's next resumption point; if it is
        currently blocked the environment forces an immediate resumption.
        This mirrors asynchronous signal delivery (the paper's sigsegv path
        in §4.5.4): the signal lands at the next scheduling boundary.
        """
        if self.state == DONE:
            return
        self._pending_exc = exc if exc is not None else ProcessKilled(self.name)
        if self.state == BLOCKED:
            self.env.schedule(0, self._deliver_kill)

    def _deliver_kill(self):
        # Only force-resume if still blocked with the kill pending; the
        # process may have resumed (and died) on its own in the meantime.
        if self.state == BLOCKED and self._pending_exc is not None:
            self._resume(None)

    def _resume(self, value):
        if self.state == DONE:
            return
        self.state = RUNNING
        try:
            if self._pending_exc is not None:
                exc, self._pending_exc = self._pending_exc, None
                request = self.gen.throw(exc)
            elif isinstance(value, BaseException):
                request = self.gen.throw(value)
            else:
                request = self.gen.send(value)
        except StopIteration as stop:
            self._finish(getattr(stop, "value", None), None)
            return
        except ProcessKilled as exc:
            self._finish(None, exc)
            return
        self._handle(request)

    def _handle(self, request):
        env = self.env
        if isinstance(request, Compute):
            env.cores.submit(self, request)
        elif isinstance(request, Timeout):
            self.state = BLOCKED
            env.schedule(request.cycles, lambda: self._resume(None))
        elif isinstance(request, WaitEvent):
            self.state = BLOCKED
            request.event.add_callback(self._on_event)
        elif isinstance(request, Event):
            # Allow yielding a bare Event as shorthand for WaitEvent.
            self.state = BLOCKED
            request.add_callback(self._on_event)
        else:
            exc = TypeError("process %s yielded %r" % (self.name, request))
            self.env.schedule(0, lambda: self._resume(exc))

    def _on_event(self, event):
        if self.state == DONE:
            return
        if event.exception is not None:
            self._resume(event.exception)
        else:
            self._resume(event.value)

    def _finish(self, result, exc):
        self.state = DONE
        self.result = result
        if exc is not None:
            self.terminated.fail(exc)
        else:
            self.terminated.succeed(result)
