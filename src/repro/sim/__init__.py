"""Discrete-event machine simulator.

The simulator models a small multicore machine with a cycle-granularity
virtual clock.  Application and OS code run as generator-based *processes*
that yield requests (:class:`Compute`, :class:`Timeout`, :class:`WaitEvent`)
to the :class:`Environment`.  Simulated time only advances through these
requests; everything between two yields is instantaneous, exactly as in
SimPy-style simulation kernels.

This substrate replaces the Xeon servers used by the paper (see DESIGN.md):
copy engines, syscall traps and the Copier service are all processes or
timed activities on this machine, so relative performance shapes (who
overlaps with whom, who waits on which queue) are preserved.
"""

from repro.sim.engine import DEFAULT_RUN_LIMIT, Environment, StepReport
from repro.sim.events import Event
from repro.sim.process import Process, ProcessKilled
from repro.sim.requests import Compute, Timeout, WaitEvent
from repro.sim.cores import CoreSet
from repro.sim.stats import CycleStats, EnergyModel
from repro.sim.trace import StageAggregator, TraceBus, TraceEvent

__all__ = [
    "DEFAULT_RUN_LIMIT",
    "Environment",
    "StepReport",
    "Event",
    "Process",
    "ProcessKilled",
    "Compute",
    "Timeout",
    "WaitEvent",
    "CoreSet",
    "CycleStats",
    "EnergyModel",
    "TraceBus",
    "TraceEvent",
    "StageAggregator",
]
