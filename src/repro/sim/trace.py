"""System-wide trace bus: typed events at every copy-path stage boundary.

The paper treats submission, ingestion, dispatch, execution and completion
as distinct stages with distinct policies (§4.2–§4.5); the trace bus makes
those boundaries observable.  Each layer of the Copier subsystem emits a
typed event as work crosses its boundary:

==================  ========================================================
event               emitted when
==================  ========================================================
``task-submitted``  a client publishes a Copy Task on its CSH ring
``task-ingested``   a Copier thread moves the task into the pending list
                    (security checks + proactive faulting done)
``round-planned``   the piggyback dispatcher produced an execution round
``segment-executed``one segment's bytes landed via the AVX path
``dma-completed``   a physically-contiguous DMA run signalled completion
``task-finished``   the task retired (``done``/``aborted``/``dropped``)
``thread-sleep``    a Copier thread blocked on its doorbell
``thread-wake``     a Copier thread resumed (carries the slept cycles)
``engine-fallback`` DMA work re-routed to a CPU engine after a persistent
                    submit failure or a mid-transfer abort
``fault-injected``  the fault-injection layer fired at a site
                    (:mod:`repro.faultinject`)
``integrity-mismatch`` the end-to-end CRC defense caught corruption at
                    retirement (``reexec``), declined to repair under a
                    newer overlapping writer (``overlap-skip``), or a
                    poisoned frame retired a task loudly (``poisoned``)
``task-shed``       admission control executed a copy synchronously in the
                    submitter's context instead of queueing it
                    (:mod:`repro.copier.admission`)
``admission-reject`` admission control refused a submission outright
``watchdog-stall``  the liveness watchdog saw nonempty queues with no
                    retirement progress over its check window
``watchdog-starved`` a client's oldest outstanding task aged past the
                    starvation threshold
``watchdog-quarantine`` backlog piling up behind a quarantined DMA engine
``process-reaped``  a process exited (or was killed) and the lifecycle
                    layer reaped its client's in-flight tasks
``service-drained`` the service finished (or timed out) a
                    ``shutdown(deadline=...)`` drain
==================  ========================================================

``task-finished`` additionally carries ``"cancelled"`` and
``"deadline-miss"`` outcomes for tasks retired by the overload-protection
layer, plus the lifecycle layer's ``"efault"`` (source/dest unmapped
mid-flight), ``"exit-reap"`` (owning process exited), ``"drain-reap"``
(force-retired at the shutdown deadline) and ``"poisoned"``
(uncorrectable frame under the copy) outcomes.

The bus itself is policy-free: ``subscribe`` a callable, every event is
delivered synchronously in emission order.  :class:`StageAggregator` is the
standard subscriber — it folds the per-task event streams into the
submit→ingest→execute→complete latency breakdown that ``copierstat`` and
the benchmark reports print.

One bus exists per simulated machine (``Environment.trace``), so kernel
services and future subsystems can share the same spine.
"""


class TraceEvent:
    """Base class: every event carries the cycle timestamp it occurred at."""

    __slots__ = ("ts",)
    kind = "event"

    def __init__(self, ts):
        self.ts = ts

    def __repr__(self):
        fields = ", ".join(
            "%s=%r" % (name, getattr(self, name))
            for cls in type(self).__mro__
            for name in getattr(cls, "__slots__", ())
        )
        return "<%s %s>" % (self.kind, fields)


class TaskSubmitted(TraceEvent):
    kind = "task-submitted"
    __slots__ = ("task_id", "client_name", "queue_kind", "nbytes", "lazy")

    def __init__(self, ts, task_id, client_name, queue_kind, nbytes, lazy):
        super().__init__(ts)
        self.task_id = task_id
        self.client_name = client_name
        self.queue_kind = queue_kind
        self.nbytes = nbytes
        self.lazy = lazy


class TaskIngested(TraceEvent):
    kind = "task-ingested"
    __slots__ = ("task_id", "client_name")

    def __init__(self, ts, task_id, client_name):
        super().__init__(ts)
        self.task_id = task_id
        self.client_name = client_name


class RoundPlanned(TraceEvent):
    kind = "round-planned"
    __slots__ = ("client_name", "mode", "avx_bytes", "dma_bytes", "n_tasks")

    def __init__(self, ts, client_name, mode, avx_bytes, dma_bytes, n_tasks):
        super().__init__(ts)
        self.client_name = client_name
        self.mode = mode
        self.avx_bytes = avx_bytes
        self.dma_bytes = dma_bytes
        self.n_tasks = n_tasks


class SegmentExecuted(TraceEvent):
    kind = "segment-executed"
    __slots__ = ("task_id", "seg_index", "nbytes", "engine", "absorbed_bytes")

    def __init__(self, ts, task_id, seg_index, nbytes, engine, absorbed_bytes=0):
        super().__init__(ts)
        self.task_id = task_id
        self.seg_index = seg_index
        self.nbytes = nbytes
        self.engine = engine
        self.absorbed_bytes = absorbed_bytes


class DmaCompleted(TraceEvent):
    kind = "dma-completed"
    __slots__ = ("task_id", "nbytes", "n_segments")

    def __init__(self, ts, task_id, nbytes, n_segments):
        super().__init__(ts)
        self.task_id = task_id
        self.nbytes = nbytes
        self.n_segments = n_segments


class TaskFinished(TraceEvent):
    kind = "task-finished"
    __slots__ = ("task_id", "client_name", "outcome", "nbytes")

    def __init__(self, ts, task_id, client_name, outcome, nbytes):
        super().__init__(ts)
        self.task_id = task_id
        self.client_name = client_name
        # "done" | "aborted" | "dropped" | "cancelled" | "deadline-miss"
        self.outcome = outcome
        self.nbytes = nbytes


class TaskShed(TraceEvent):
    """Admission control ran the copy synchronously in the submitter's
    context (the paper's bounded-latency sync escape hatch)."""

    kind = "task-shed"
    __slots__ = ("task_id", "client_name", "nbytes", "sync_cycles", "reason")

    def __init__(self, ts, task_id, client_name, nbytes, sync_cycles, reason):
        super().__init__(ts)
        self.task_id = task_id
        self.client_name = client_name
        self.nbytes = nbytes
        self.sync_cycles = sync_cycles
        self.reason = reason  # "queue-depth" | "deadline" | "tokens"


class AdmissionRejected(TraceEvent):
    """Admission control refused a submission outright."""

    kind = "admission-reject"
    __slots__ = ("client_name", "nbytes", "reason")

    def __init__(self, ts, client_name, nbytes, reason):
        super().__init__(ts)
        self.client_name = client_name
        self.nbytes = nbytes
        self.reason = reason


class WatchdogStall(TraceEvent):
    """No retirement progress over the watchdog window despite backlog."""

    kind = "watchdog-stall"
    __slots__ = ("backlog_tasks", "stalled_cycles")

    def __init__(self, ts, backlog_tasks, stalled_cycles):
        super().__init__(ts)
        self.backlog_tasks = backlog_tasks
        self.stalled_cycles = stalled_cycles


class WatchdogStarvation(TraceEvent):
    """A client's oldest outstanding task aged past the threshold."""

    kind = "watchdog-starved"
    __slots__ = ("client_name", "oldest_age")

    def __init__(self, ts, client_name, oldest_age):
        super().__init__(ts)
        self.client_name = client_name
        self.oldest_age = oldest_age


class WatchdogQuarantine(TraceEvent):
    """Backlog piling up behind a quarantined DMA engine."""

    kind = "watchdog-quarantine"
    __slots__ = ("backlog_tasks",)

    def __init__(self, ts, backlog_tasks):
        super().__init__(ts)
        self.backlog_tasks = backlog_tasks


class ProcessReaped(TraceEvent):
    """A process exited/was killed; its in-flight copies were reaped."""

    kind = "process-reaped"
    __slots__ = ("client_name", "tasks_reaped")

    def __init__(self, ts, client_name, tasks_reaped):
        super().__init__(ts)
        self.client_name = client_name
        self.tasks_reaped = tasks_reaped


class ServiceDrained(TraceEvent):
    """``CopierService.shutdown`` finished (or timed out) its drain."""

    kind = "service-drained"
    __slots__ = ("drained", "requeued", "force_reaped", "cycles")

    def __init__(self, ts, drained, requeued, force_reaped, cycles):
        super().__init__(ts)
        self.drained = drained          # True when the backlog hit zero
        self.requeued = requeued        # unfinished tasks at drain entry
        self.force_reaped = force_reaped  # stragglers reaped at deadline
        self.cycles = cycles


class EngineFallback(TraceEvent):
    """DMA-assigned work re-routed to a CPU engine (graceful degradation)."""

    kind = "engine-fallback"
    __slots__ = ("task_id", "client_name", "nbytes", "reason")

    def __init__(self, ts, task_id, client_name, nbytes, reason):
        super().__init__(ts)
        self.task_id = task_id
        self.client_name = client_name
        self.nbytes = nbytes
        self.reason = reason  # "dma-submit" | "dma-abort"


class FaultInjected(TraceEvent):
    kind = "fault-injected"
    __slots__ = ("fault_kind",)

    def __init__(self, ts, fault_kind):
        super().__init__(ts)
        self.fault_kind = fault_kind


class IntegrityMismatch(TraceEvent):
    """The end-to-end copy-integrity defense caught (or skipped) damage.

    ``action`` is ``"reexec"`` (CRC mismatch repaired on the CPU),
    ``"overlap-skip"`` (verification declined: a newer task's
    destination overlaps), or ``"poisoned"`` (uncorrectable frame —
    the task retired loudly with ``TaskPoisoned``).
    """

    kind = "integrity-mismatch"
    __slots__ = ("task_id", "client_name", "nbytes", "action")

    def __init__(self, ts, task_id, client_name, nbytes, action):
        super().__init__(ts)
        self.task_id = task_id
        self.client_name = client_name
        self.nbytes = nbytes
        self.action = action


class ThreadSleep(TraceEvent):
    kind = "thread-sleep"
    __slots__ = ("tid",)

    def __init__(self, ts, tid):
        super().__init__(ts)
        self.tid = tid


class ThreadWake(TraceEvent):
    kind = "thread-wake"
    __slots__ = ("tid", "slept_cycles")

    def __init__(self, ts, tid, slept_cycles):
        super().__init__(ts)
        self.tid = tid
        self.slept_cycles = slept_cycles


class TraceBus:
    """Synchronous publish/subscribe spine for :class:`TraceEvent` streams.

    :attr:`active` is a *cached plain boolean*, maintained by
    ``subscribe``/``unsubscribe``, so the zero-subscriber case costs emit
    sites a single attribute read — checked *before* constructing the
    event object, never after.  Do not assign it directly.
    """

    def __init__(self):
        self._subscribers = []
        #: True when at least one subscriber is attached (emit sites use
        #: this to skip event construction entirely).
        self.active = False

    def subscribe(self, fn):
        """Attach ``fn(event)``; returns ``fn`` for later unsubscribe."""
        self._subscribers.append(fn)
        self.active = True
        return fn

    def unsubscribe(self, fn):
        try:
            self._subscribers.remove(fn)
        except ValueError:
            pass
        self.active = bool(self._subscribers)

    def emit(self, event):
        for fn in self._subscribers:
            fn(event)


class StageLatency:
    """Count/total/max accumulator for one stage's latency samples."""

    __slots__ = ("count", "total", "max")

    def __init__(self):
        self.count = 0
        self.total = 0
        self.max = 0

    def add(self, delta):
        self.count += 1
        self.total += delta
        if delta > self.max:
            self.max = delta

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def as_dict(self):
        return {"count": self.count, "total": self.total,
                "mean": self.mean, "max": self.max}


#: Stage names in pipeline order (also the render order downstream).
STAGE_NAMES = (
    "submit_to_ingest",
    "ingest_to_execute",
    "execute_to_complete",
    "submit_to_complete",
)


class StageAggregator:
    """Folds the event stream into per-stage latency statistics.

    Memory is O(in-flight tasks): per-task timestamps are dropped the
    moment the task retires.  Only tasks that retire ``done`` contribute
    latency samples — aborted/dropped tasks would skew the breakdown with
    policy decisions rather than pipeline behaviour (they are still
    counted in ``outcomes``).
    """

    def __init__(self, bus=None):
        self.stages = {name: StageLatency() for name in STAGE_NAMES}
        self.outcomes = {"done": 0, "aborted": 0, "dropped": 0}
        self.thread_sleeps = 0
        self.thread_wakes = 0
        self.slept_cycles = 0
        self.rounds = 0
        self.engine_fallbacks = 0
        self.fallback_bytes = 0
        self.faults_injected = {}
        self.shed_tasks = 0
        self.shed_bytes = 0
        self.admission_rejects = 0
        self.watchdog_alerts = {}
        self.processes_reaped = 0
        self.drains = 0
        self.events_seen = 0
        self._submitted = {}
        self._ingested = {}
        self._first_exec = {}
        self._dispatch = {
            TaskSubmitted: self._on_submitted,
            TaskIngested: self._on_ingested,
            RoundPlanned: self._on_round,
            SegmentExecuted: self._on_executed,
            DmaCompleted: self._on_executed,
            TaskFinished: self._on_finished,
            ThreadSleep: self._on_sleep,
            ThreadWake: self._on_wake,
            EngineFallback: self._on_fallback,
            FaultInjected: self._on_fault,
            TaskShed: self._on_shed,
            AdmissionRejected: self._on_reject,
            WatchdogStall: self._on_watchdog,
            WatchdogStarvation: self._on_watchdog,
            WatchdogQuarantine: self._on_watchdog,
            ProcessReaped: self._on_process_reaped,
            ServiceDrained: self._on_drained,
        }
        if bus is not None:
            bus.subscribe(self)

    def __call__(self, event):
        self.events_seen += 1
        handler = self._dispatch.get(type(event))
        if handler is not None:
            handler(event)

    # ------------------------------------------------------------- handlers

    def _on_submitted(self, event):
        self._submitted[event.task_id] = event.ts

    def _on_ingested(self, event):
        self._ingested[event.task_id] = event.ts
        submitted = self._submitted.get(event.task_id)
        if submitted is not None:
            self.stages["submit_to_ingest"].add(event.ts - submitted)

    def _on_round(self, event):
        self.rounds += 1

    def _on_executed(self, event):
        if event.task_id in self._first_exec:
            return
        self._first_exec[event.task_id] = event.ts
        ingested = self._ingested.get(event.task_id)
        if ingested is not None:
            self.stages["ingest_to_execute"].add(event.ts - ingested)

    def _on_finished(self, event):
        task_id = event.task_id
        submitted = self._submitted.pop(task_id, None)
        self._ingested.pop(task_id, None)
        first_exec = self._first_exec.pop(task_id, None)
        self.outcomes[event.outcome] = self.outcomes.get(event.outcome, 0) + 1
        if event.outcome != "done":
            return
        if first_exec is not None:
            self.stages["execute_to_complete"].add(event.ts - first_exec)
        if submitted is not None:
            self.stages["submit_to_complete"].add(event.ts - submitted)

    def _on_sleep(self, event):
        self.thread_sleeps += 1

    def _on_wake(self, event):
        self.thread_wakes += 1
        self.slept_cycles += event.slept_cycles

    def _on_fallback(self, event):
        self.engine_fallbacks += 1
        self.fallback_bytes += event.nbytes

    def _on_fault(self, event):
        kind = event.fault_kind
        self.faults_injected[kind] = self.faults_injected.get(kind, 0) + 1

    def _on_shed(self, event):
        self.shed_tasks += 1
        self.shed_bytes += event.nbytes
        self.outcomes["shed"] = self.outcomes.get("shed", 0) + 1

    def _on_reject(self, event):
        self.admission_rejects += 1

    def _on_watchdog(self, event):
        kind = event.kind
        self.watchdog_alerts[kind] = self.watchdog_alerts.get(kind, 0) + 1

    def _on_process_reaped(self, event):
        self.processes_reaped += 1

    def _on_drained(self, event):
        self.drains += 1

    # -------------------------------------------------------------- export

    def as_dict(self):
        """Plain-dict snapshot (the shape ``copierstat`` renders)."""
        return {
            "stages": {name: self.stages[name].as_dict()
                       for name in STAGE_NAMES},
            "outcomes": dict(self.outcomes),
            "rounds": self.rounds,
            "threads": {"sleeps": self.thread_sleeps,
                        "wakes": self.thread_wakes,
                        "slept_cycles": self.slept_cycles},
            "engine_fallbacks": self.engine_fallbacks,
            "fallback_bytes": self.fallback_bytes,
            "faults_injected": dict(self.faults_injected),
            "shed_tasks": self.shed_tasks,
            "shed_bytes": self.shed_bytes,
            "admission_rejects": self.admission_rejects,
            "watchdog_alerts": dict(self.watchdog_alerts),
            "processes_reaped": self.processes_reaped,
            "drains": self.drains,
            "in_flight": len(self._submitted),
            "events": self.events_seen,
        }
