"""Cycle, instruction and energy accounting.

Drives three pieces of the evaluation:

* Fig. 2 — the share of cycles spent in copy per application (per-tag
  cycle counters).
* §6.3.5 — CPI of copy-irrelevant code (per-tag instruction counters).
* Fig. 13-c — smartphone energy (per-core busy/idle power integration).
"""

from collections import defaultdict


class CycleStats:
    """Aggregates cycles and instructions by process and tag."""

    def __init__(self):
        # {pid: {tag: cycles}}
        self.cycles = defaultdict(lambda: defaultdict(int))
        self.instructions = defaultdict(lambda: defaultdict(float))
        self.core_cycles = defaultdict(lambda: defaultdict(int))

    def account(self, process, tag, cycles, instructions, core_id):
        self.cycles[process.pid][tag] += cycles
        self.instructions[process.pid][tag] += instructions
        self.core_cycles[core_id][tag] += cycles

    def total_cycles(self, pid=None, tag=None):
        if pid is not None:
            per_tag = self.cycles.get(pid, {})
            if tag is not None:
                return per_tag.get(tag, 0)
            return sum(per_tag.values())
        total = 0
        for per_tag in self.cycles.values():
            if tag is not None:
                total += per_tag.get(tag, 0)
            else:
                total += sum(per_tag.values())
        return total

    def tag_share(self, tag, pid=None):
        """Fraction of accounted cycles carrying ``tag`` (Fig. 2 metric)."""
        total = self.total_cycles(pid=pid)
        if total == 0:
            return 0.0
        return self.total_cycles(pid=pid, tag=tag) / total

    def cpi(self, tags=None, pid=None, exclude_tags=()):
        """Cycles-per-instruction over the selected tags (§6.3.5 metric)."""
        cycles = 0
        instructions = 0.0
        sources = (
            [self.cycles.get(pid, {})] if pid is not None else list(self.cycles.values())
        )
        instr_sources = (
            [self.instructions.get(pid, {})]
            if pid is not None
            else list(self.instructions.values())
        )
        for cyc_map, ins_map in zip(sources, instr_sources):
            for tag, cyc in cyc_map.items():
                if tag in exclude_tags:
                    continue
                if tags is not None and tag not in tags:
                    continue
                cycles += cyc
                instructions += ins_map.get(tag, 0.0)
        if instructions == 0:
            return 0.0
        return cycles / instructions


class EnergyModel:
    """Simple per-core power integration (Fig. 13-c substitution).

    ``active_power`` and ``idle_power`` are in arbitrary power units; energy
    is power x cycles.  The paper reports energy deltas in percent, so only
    the active/idle ratio matters for reproducing the shape.
    """

    def __init__(self, active_power=1.0, idle_power=0.08):
        self.active_power = active_power
        self.idle_power = idle_power

    def energy(self, core_set, now=None):
        now = core_set.env.now if now is None else now
        total = 0.0
        for core in core_set.cores:
            busy = min(core.busy_cycles, now)
            total += busy * self.active_power + (now - busy) * self.idle_power
        return total
