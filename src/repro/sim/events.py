"""One-shot events for process synchronization."""


class Event:
    """A one-shot event that processes can wait on.

    An event starts untriggered.  Calling :meth:`succeed` (or :meth:`fail`)
    triggers it, delivering ``value`` (or raising ``exc``) into every waiting
    process.  Triggering twice is an error: events are one-shot, mirroring
    completion notifications in the simulated kernel.
    """

    __slots__ = ("env", "callbacks", "_value", "_exc", "triggered")

    def __init__(self, env):
        self.env = env
        self.callbacks = []
        self._value = None
        self._exc = None
        self.triggered = False

    @property
    def value(self):
        if not self.triggered:
            raise RuntimeError("event value read before trigger")
        return self._value

    @property
    def exception(self):
        return self._exc

    def succeed(self, value=None):
        if self.triggered:
            raise RuntimeError("event triggered twice")
        self.triggered = True
        self._value = value
        self._dispatch()
        return self

    def fail(self, exc):
        if self.triggered:
            raise RuntimeError("event triggered twice")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self.triggered = True
        self._exc = exc
        self._dispatch()
        return self

    def add_callback(self, fn):
        """Register ``fn(event)``; runs immediately if already triggered."""
        if self.triggered:
            self.env.schedule(0, lambda: fn(self))
        else:
            self.callbacks.append(fn)

    def _dispatch(self):
        callbacks, self.callbacks = self.callbacks, []
        for fn in callbacks:
            self.env.schedule(0, lambda fn=fn: fn(self))


def all_of(env, events):
    """Return an :class:`Event` that triggers once all ``events`` have.

    The composite's value is the list of component values in order.
    """
    events = list(events)
    done = Event(env)
    if not events:
        done.succeed([])
        return done
    remaining = [len(events)]

    def on_trigger(_ev):
        remaining[0] -= 1
        if remaining[0] == 0:
            done.succeed([e.value for e in events])

    for ev in events:
        ev.add_callback(on_trigger)
    return done


def any_of(env, events):
    """Return an :class:`Event` that triggers when any of ``events`` does."""
    events = list(events)
    done = Event(env)

    def on_trigger(ev):
        if not done.triggered:
            done.succeed(ev)

    for ev in events:
        ev.add_callback(on_trigger)
    return done
