"""Requests a simulated process may yield to the environment.

Yielding one of these suspends the generator until the environment has
satisfied the request; the generator's ``send`` value is the request's
result (the triggering event's value for :class:`WaitEvent`, ``None``
otherwise).
"""


class Compute:
    """Occupy a CPU core for ``cycles`` cycles of computation.

    ``tag`` categorizes the cycles for accounting (e.g. ``"copy"`` vs
    ``"app"``), which drives the Fig. 2 copy-cycle-share analysis.
    ``instructions`` feeds the CPI model of §6.3.5; when omitted it defaults
    to one instruction per cycle.
    """

    __slots__ = ("cycles", "tag", "instructions")

    def __init__(self, cycles, tag="app", instructions=None):
        if cycles < 0:
            raise ValueError("negative compute cycles: %r" % (cycles,))
        self.cycles = int(cycles)
        self.tag = tag
        self.instructions = self.cycles if instructions is None else int(instructions)

    def __repr__(self):
        return "Compute(%d, tag=%r)" % (self.cycles, self.tag)


class Timeout:
    """Sleep for ``cycles`` without occupying a core (e.g. DMA wait)."""

    __slots__ = ("cycles",)

    def __init__(self, cycles):
        if cycles < 0:
            raise ValueError("negative timeout: %r" % (cycles,))
        self.cycles = int(cycles)

    def __repr__(self):
        return "Timeout(%d)" % self.cycles


class WaitEvent:
    """Block (off-core) until ``event`` triggers."""

    __slots__ = ("event",)

    def __init__(self, event):
        self.event = event

    def __repr__(self):
        return "WaitEvent(%r)" % (self.event,)
