"""Multicore CPU model with round-robin timeslicing.

Cores execute :class:`~repro.sim.requests.Compute` requests.  A request may
span several timeslices; between slices the core rotates among ready
processes, which is what lets Fig. 14's oversubscribed 4-core experiments
show realistic throughput collapse when Copier's polling thread competes
with application instances.
"""

from collections import deque

from repro.sim import process as proc_mod


class _ComputeState:
    __slots__ = ("process", "request", "remaining", "instr_per_cycle")

    def __init__(self, process, request):
        self.process = process
        self.request = request
        self.remaining = request.cycles
        self.instr_per_cycle = (
            request.instructions / request.cycles if request.cycles else 0.0
        )


class Core:
    __slots__ = ("core_id", "current", "pinned_queue", "busy_cycles", "slice_end_at")

    def __init__(self, core_id):
        self.core_id = core_id
        self.current = None
        self.pinned_queue = deque()
        self.busy_cycles = 0
        self.slice_end_at = None


class CoreSet:
    """A set of CPU cores with per-core pinned queues and a shared queue."""

    def __init__(self, env, n_cores, timeslice=100_000):
        if n_cores < 1:
            raise ValueError("need at least one core")
        self.env = env
        self.cores = [Core(i) for i in range(n_cores)]
        self.timeslice = int(timeslice)
        self.shared_queue = deque()

    @property
    def n_cores(self):
        return len(self.cores)

    def submit(self, process, request):
        """Begin servicing a Compute request for ``process``."""
        if request.cycles == 0:
            # Zero-length compute still acts as a scheduling point.
            process.state = proc_mod.BLOCKED
            self.env.schedule(0, lambda: process._resume(None))
            return
        state = _ComputeState(process, request)
        process.state = proc_mod.READY
        process._compute_state = state
        self._enqueue(state)
        self._dispatch_all()

    def _enqueue(self, state):
        affinity = state.process.affinity
        if affinity is None:
            self.shared_queue.append(state)
        else:
            self.cores[affinity].pinned_queue.append(state)

    def _dispatch_all(self):
        for core in self.cores:
            if core.current is None:
                self._dispatch(core)

    def _dispatch(self, core):
        state = None
        if core.pinned_queue:
            state = core.pinned_queue.popleft()
        elif self.shared_queue:
            state = self.shared_queue.popleft()
        if state is None:
            return
        self._grant(core, state)

    def _grant(self, core, state):
        core.current = state
        state.process.state = proc_mod.RUNNING
        slice_len = min(state.remaining, self.timeslice)
        core.slice_end_at = self.env.now + slice_len
        self.env.schedule(slice_len, lambda: self._slice_end(core, state, slice_len))

    def _slice_end(self, core, state, slice_len):
        process = state.process
        state.remaining -= slice_len
        core.busy_cycles += slice_len
        core.slice_end_at = None
        self.env.stats.account(
            process,
            state.request.tag,
            slice_len,
            state.instr_per_cycle * slice_len,
            core.core_id,
        )
        if process._pending_exc is not None or process.state == proc_mod.DONE:
            # Killed mid-compute: abort the rest of the request.
            core.current = None
            self._dispatch(core)
            if process.state != proc_mod.DONE:
                process.state = proc_mod.BLOCKED
                self.env.schedule(0, lambda: process._resume(None))
            return
        if state.remaining == 0:
            core.current = None
            process._compute_state = None
            self._dispatch(core)
            process.state = proc_mod.BLOCKED
            self.env.schedule(0, lambda: process._resume(None))
            return
        # More cycles to run: rotate if anyone else is waiting for this core.
        contended = bool(core.pinned_queue) or (
            process.affinity is None and bool(self.shared_queue)
        )
        if contended:
            core.current = None
            process.state = proc_mod.READY
            self._enqueue(state)
            self._dispatch(core)
        else:
            self._grant(core, state)

    def utilization(self):
        """Return per-core busy fraction up to the current time."""
        now = self.env.now or 1
        return [core.busy_cycles / now for core in self.cores]
