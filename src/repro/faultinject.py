"""Seeded, deterministic fault injection for the copy path.

The paper's dependability claim (§4.5.4, §7) is that asynchronous copy can
be a *service*: engines fail, stall and get preempted mid-copy, and the
kernel — not the application — absorbs the damage.  This module is the
simulator's fault model.  A :class:`FaultPlan` names a set of fault kinds
with per-site firing rates; a :class:`FaultInjector` armed on a
:class:`~repro.copier.service.CopierService` consults the plan at each
injection site and the copy path degrades gracefully:

==========================  ==================================================
fault kind                  site and degradation
==========================  ==================================================
``engine_stall``            copy engine (AVX stream or the DMA device) stalls
                            for a drawn number of cycles — pure slowdown
``dma_submit_fail``         :meth:`DMAEngine.submit` raises
                            :class:`~repro.copier.errors.DMASubmitError`; the
                            executor retries with exponential backoff, and
                            falls back to the CPU engine when retries exhaust
``dma_abort``               the device aborts a batch mid-transfer (nothing
                            committed for the aborted subtask); unfinished
                            segments are re-copied on the CPU engine
``pin_fail``                page pinning during ingest raises
                            :class:`~repro.copier.errors.PagePinError`; the
                            executor retries (unpinning any partial pin),
                            dropping the task only on persistent failure
``queue_overflow``          a CSH ring acquire reports full; the client
                            backs off and retries before re-raising
``spurious_wakeup``         a sleeping Copier thread is woken with no work
``delayed_trap_return``     the kernel's return-to-user barrier snapshot is
                            delayed by a drawn number of cycles
``dma_bitflip``             the DMA engine silently flips one destination
                            bit after a subtask lands; only the opt-in
                            end-to-end CRC (``COPIER_E2E_CRC=1``) catches
                            it, re-executes on the CPU and quarantines
``engine_torn_write``       an engine writes only part of a segment yet
                            marks it complete — silent torn write, same
                            E2E-CRC detect/re-execute defense
``frame_poison``            an uncorrectable memory error under the copy:
                            the engine raises :class:`FramePoisonError`
                            and the task retires *loudly* with a typed
                            ``TaskPoisoned`` delivered at csync
==========================  ==================================================

Determinism: each fault kind draws from its own ``random.Random`` seeded
with ``(plan.seed, kind)``, so firing decisions depend only on the plan
seed and the per-site call sequence — both reproducible because the
simulator is single-threaded and event-ordered.  A per-site
``max_consecutive`` cap bounds how many times a site can fire in a row,
which guarantees every retry loop in the copy path makes progress.

Arm a plan explicitly (``CopierService(..., fault_plan=FaultPlan.mixed(1))``)
or through the environment (``COPIER_FAULT_PLAN=mixed COPIER_FAULT_SEED=1``),
which is how CI runs the whole tier-1 suite under injected faults.
"""

import os
import random


class TransientCopierError(Exception):
    """A recoverable infrastructure hiccup: retry with backoff.

    Handlers in the copy path must either retry these (recording the
    attempt in the service's recovery stats) or escalate after a bounded
    number of attempts — never swallow them silently.
    """


class DMASubmitError(TransientCopierError):
    """The DMA doorbell was lost / the device queue rejected a batch."""


class DMAAbortError(Exception):
    """The DMA device aborted a batch mid-transfer.

    Nothing from the aborted subtask was committed; the unfinished
    segments must be re-executed on a CPU engine (engine fallback).
    """


class PagePinError(TransientCopierError):
    """Pinning a task's pages failed transiently during ingest (§4.5.4)."""


class FramePoisonError(Exception):
    """An uncorrectable (poisoned) frame was hit mid-copy.

    Raised by the engine layer; the executor retires the task with a
    typed ``TaskPoisoned`` (a ``CopyAborted`` sibling) delivered to the
    submitter at csync — loud, attributable, never silent corruption.
    """

    def __init__(self, va=0):
        self.va = va
        super().__init__("poisoned frame at 0x%x" % va)


#: Every fault kind a plan may name, in documentation order.
FAULT_KINDS = (
    "engine_stall",
    "dma_submit_fail",
    "dma_abort",
    "pin_fail",
    "queue_overflow",
    "spurious_wakeup",
    "delayed_trap_return",
    "dma_bitflip",
    "engine_torn_write",
    "frame_poison",
)


class FaultSpec:
    """One fault kind's firing behaviour within a plan."""

    __slots__ = ("kind", "rate", "max_consecutive", "min_cycles", "max_cycles")

    def __init__(self, kind, rate, max_consecutive=2,
                 min_cycles=200, max_cycles=4000):
        if kind not in FAULT_KINDS:
            raise ValueError("unknown fault kind %r (have: %s)"
                             % (kind, ", ".join(FAULT_KINDS)))
        if not 0.0 < rate <= 1.0:
            raise ValueError("rate must be in (0, 1]")
        if max_consecutive < 1:
            raise ValueError("max_consecutive must be >= 1")
        self.kind = kind
        self.rate = rate
        self.max_consecutive = max_consecutive
        self.min_cycles = min_cycles
        self.max_cycles = max_cycles

    def __repr__(self):
        return "FaultSpec(%s, rate=%.2f, max_consecutive=%d)" % (
            self.kind, self.rate, self.max_consecutive)


class FaultPlan:
    """A named, seeded set of :class:`FaultSpec` entries."""

    def __init__(self, name, seed, specs):
        self.name = name
        self.seed = seed
        self.specs = {spec.kind: spec for spec in specs}

    def __repr__(self):
        return "FaultPlan(%r, seed=%d, kinds=[%s])" % (
            self.name, self.seed, ", ".join(sorted(self.specs)))

    # ------------------------------------------------------------ factories

    @classmethod
    def mixed(cls, seed=0):
        """Every fault kind at moderate rates — the CI soak plan.

        Rates are chosen so recovery paths all exercise within one stress
        run: submit failures mostly succeed on retry (``max_consecutive``
        below the executor's retry budget), while aborts force at least
        occasional CPU fallback.
        """
        return cls("mixed", seed, [
            FaultSpec("engine_stall", 0.05, max_consecutive=2,
                      min_cycles=500, max_cycles=5000),
            FaultSpec("dma_submit_fail", 0.25, max_consecutive=2),
            FaultSpec("dma_abort", 0.10, max_consecutive=1),
            FaultSpec("pin_fail", 0.10, max_consecutive=2),
            FaultSpec("queue_overflow", 0.05, max_consecutive=2),
            FaultSpec("spurious_wakeup", 0.20, max_consecutive=2,
                      min_cycles=1000, max_cycles=20000),
            FaultSpec("delayed_trap_return", 0.10, max_consecutive=2,
                      min_cycles=200, max_cycles=2000),
        ])

    @classmethod
    def single(cls, kind, seed=0, rate=0.25, max_consecutive=2, **kwargs):
        """A plan firing only ``kind`` (stress one recovery path)."""
        return cls(kind, seed,
                   [FaultSpec(kind, rate, max_consecutive=max_consecutive,
                              **kwargs)])

    @classmethod
    def dma_submit_persistent(cls, seed=0):
        """Submit failures that outlast the executor's retry budget,
        forcing the persistent-failure path: CPU fallback and, after
        repeated episodes, DMA quarantine.  ``rate=1.0`` makes every
        submit episode exhaust deterministically (``max_consecutive``
        is set well above the executor's retry budget)."""
        return cls("dma_submit_persistent", seed,
                   [FaultSpec("dma_submit_fail", 1.0, max_consecutive=16)])

    @classmethod
    def integrity(cls, seed=0):
        """The silent-corruption plan: bit flips, torn writes, poison.

        Kept out of :meth:`mixed` on purpose — mixed's rates are pinned
        by the differential suites, and silent corruption without the
        E2E-CRC defense armed would (correctly) fail any data check.
        Arm this plan together with ``COPIER_E2E_CRC=1``.
        """
        return cls("integrity", seed, [
            FaultSpec("dma_bitflip", 0.08, max_consecutive=2),
            FaultSpec("engine_torn_write", 0.05, max_consecutive=2),
            FaultSpec("frame_poison", 0.02, max_consecutive=1),
        ])

    @classmethod
    def named(cls, name, seed=0):
        """Build a plan from its registered name (see :data:`PLAN_NAMES`)."""
        if name == "mixed":
            return cls.mixed(seed)
        if name == "dma_submit_persistent":
            return cls.dma_submit_persistent(seed)
        if name == "integrity":
            return cls.integrity(seed)
        if name in FAULT_KINDS:
            return cls.single(name, seed)
        raise ValueError("unknown fault plan %r (have: %s)"
                         % (name, ", ".join(PLAN_NAMES)))

    @classmethod
    def from_env(cls, environ=None):
        """Plan named by ``COPIER_FAULT_PLAN`` / ``COPIER_FAULT_SEED``.

        Returns ``None`` when no plan is requested, so services stay
        fault-free (and overhead-free) by default.
        """
        environ = os.environ if environ is None else environ
        name = environ.get("COPIER_FAULT_PLAN", "").strip()
        if not name or name in ("none", "off", "0"):
            return None
        seed = int(environ.get("COPIER_FAULT_SEED", "0"))
        return cls.named(name, seed)


#: Names accepted by :meth:`FaultPlan.named` (and the CI env var).
PLAN_NAMES = ("mixed", "dma_submit_persistent", "integrity") + FAULT_KINDS


def fold_segment_crc(acc, seg_index, crc):
    """Fold one segment's CRC32 into a task-level accumulator.

    XOR makes the fold order-independent (segments complete out of
    order across AVX and DMA engines); mixing the segment index in
    first keeps identical payloads at different positions from
    cancelling out.
    """
    return acc ^ ((crc + seg_index * 0x9E3779B1) & 0xFFFFFFFF)


class IntegrityStats:
    """Counters for the end-to-end copy-integrity defense.

    ``crc_checks`` / ``crc_mismatches`` count verification at task
    retirement; ``reexec_tasks`` / ``reexec_bytes`` the CPU repairs;
    ``overlap_skips`` verifications skipped because a newer task's
    destination overlapped (re-executing would clobber it);
    ``quarantines`` DMA engines benched for corrupting; and
    ``poisoned_tasks`` the loud frame-poison retirements.
    """

    __slots__ = ("crc_checks", "crc_mismatches", "reexec_tasks",
                 "reexec_bytes", "overlap_skips", "quarantines",
                 "poisoned_tasks")

    def __init__(self):
        for name in self.__slots__:
            setattr(self, name, 0)

    def interesting(self):
        """True once any counter moved (or checking is armed)."""
        return any(getattr(self, name) for name in self.__slots__)

    def as_dict(self):
        return {name: getattr(self, name) for name in self.__slots__}


class RecoveryStats:
    """Counters for the copy path's degradation machinery.

    ``*_failures`` count faults the path absorbed; ``*_retries_ok`` count
    retry loops that subsequently succeeded — the acceptance signal that
    degradation is graceful rather than silent.
    """

    __slots__ = ("dma_submit_failures", "dma_submit_retries_ok",
                 "dma_submit_exhausted", "dma_aborts", "engine_fallbacks",
                 "fallback_bytes", "pin_failures", "pin_retries_ok",
                 "spurious_wakeups")

    def __init__(self):
        for name in self.__slots__:
            setattr(self, name, 0)

    @property
    def retries_ok(self):
        """Total successful retries across all recovery loops."""
        return self.dma_submit_retries_ok + self.pin_retries_ok

    def as_dict(self):
        snap = {name: getattr(self, name) for name in self.__slots__}
        snap["retries_ok"] = self.retries_ok
        return snap


class FaultInjector:
    """Consults a :class:`FaultPlan` at each injection site.

    One injector per service.  ``plan=None`` leaves it unarmed: every
    site guard is a single attribute check, so an unarmed service pays
    nothing measurable (the Fig-11 "unchanged within noise" requirement).
    """

    def __init__(self, plan=None, env=None, trace=None):
        self.plan = plan
        self.env = env
        self.trace = trace
        self.injected = {}
        self._rngs = {}
        self._consecutive = {}
        if plan is not None:
            for kind, spec in plan.specs.items():
                self._rngs[kind] = random.Random((plan.seed, kind).__repr__())
                self._consecutive[kind] = 0
                self.injected[kind] = 0

    @property
    def armed(self):
        return self.plan is not None

    @property
    def plan_name(self):
        return self.plan.name if self.plan is not None else None

    @property
    def seed(self):
        return self.plan.seed if self.plan is not None else None

    # -------------------------------------------------------------- firing

    def fire(self, kind):
        """True when ``kind`` fires at this call site.

        Never fires more than the spec's ``max_consecutive`` times in a
        row, so bounded retry loops always terminate.
        """
        if self.plan is None:
            return False
        spec = self.plan.specs.get(kind)
        if spec is None:
            return False
        if self._consecutive[kind] >= spec.max_consecutive:
            self._consecutive[kind] = 0
            return False
        if self._rngs[kind].random() >= spec.rate:
            self._consecutive[kind] = 0
            return False
        self._consecutive[kind] += 1
        self.injected[kind] += 1
        self._trace(kind)
        return True

    def stall_cycles(self, kind="engine_stall"):
        """Cycles of injected stall/delay; 0 when the site does not fire."""
        if not self.fire(kind):
            return 0
        spec = self.plan.specs[kind]
        return self._rngs[kind].randint(spec.min_cycles, spec.max_cycles)

    #: ``delayed_trap_return`` / ``spurious_wakeup`` draw durations the
    #: same way stalls do.
    delay_cycles = stall_cycles

    def draw_int(self, kind, n):
        """A deterministic draw in ``[0, n)`` from ``kind``'s stream.

        Corruption sites use this to pick *where* to damage (byte
        offset, bit index) from the same seeded stream that decided
        *whether* to fire, keeping campaigns replayable bit-for-bit.
        """
        return self._rngs[kind].randrange(n)

    def _trace(self, kind):
        trace = self.trace
        if trace is not None and trace.active and self.env is not None:
            from repro.sim.trace import FaultInjected
            trace.emit(FaultInjected(self.env.now, kind))

    def as_dict(self):
        return {
            "plan": self.plan_name,
            "seed": self.seed,
            "armed": self.armed,
            "injected": dict(self.injected),
        }
