"""Layered copy absorption (§4.4).

When task T (B→C) reads a range that an earlier *pending* task E (A→B)
writes, the untouched part of B need never be materialized on T's critical
path: Copier short-circuits those bytes straight from A.  The segment
descriptor decides which layer holds the freshest data:

* a *marked* segment of E was already copied (and the client, having
  csynced it, may have modified B) → read from B;
* an *unmarked* segment cannot have been client-accessed (csync would have
  forced the copy) → read from A, recursively resolving A's own producer.

The resolver returns "source spans": concrete (aspace, va, nbytes) pieces
whose concatenation equals the bytes T must write, plus a flag telling
whether the span was absorbed (for accounting and the Fig. 12-c ablation).
"""


class SourceSpan:
    """One resolved piece of a copy's source."""

    __slots__ = ("aspace", "va", "nbytes", "absorbed")

    def __init__(self, aspace, va, nbytes, absorbed):
        self.aspace = aspace
        self.va = va
        self.nbytes = nbytes
        self.absorbed = absorbed

    def __repr__(self):
        return "SourceSpan(as=%d, 0x%x+%d%s)" % (
            self.aspace.asid, self.va, self.nbytes,
            ", absorbed" if self.absorbed else "")


def resolve_sources(pending, reader_task, region, enabled=True, _depth=0,
                    _absorbed=False):
    """Resolve ``region`` (a source range of ``reader_task``) into spans.

    ``pending`` is the client's merged pending-task list; only tasks
    strictly earlier than ``reader_task`` are considered producers.  With
    ``enabled=False`` (the ablation switch) the region is returned as-is.

    Different slices of the region may be fed by different producers
    (e.g. a gather of several async copies into one buffer): slices not
    covered by the nearest producer are re-resolved recursively.
    """
    direct = [SourceSpan(region.aspace, region.start, region.length,
                         _absorbed)]
    if not enabled or _depth > 64:
        return direct
    producer = _nearest_producer(pending, reader_task, region)
    if producer is None:
        return direct

    spans = []
    cursor = region.start
    end = region.start + region.length
    while cursor < end:
        if cursor < producer.dst.start or cursor >= producer.dst.end:
            # Outside this producer's destination — another (earlier)
            # producer may still cover these bytes: re-resolve the slice
            # against the remaining producers.
            if cursor < producer.dst.start:
                chunk = min(end, producer.dst.start) - cursor
            else:
                chunk = end - cursor
            slice_region = type(region)(region.aspace, cursor, chunk)
            spans.extend(resolve_sources(
                pending, reader_task, slice_region, enabled=enabled,
                _depth=_depth + 1, _absorbed=_absorbed))
            cursor += chunk
            continue
        # Inside the producer's destination: consult its descriptor.
        offset_in_producer = cursor - producer.dst.start
        seg_index = offset_in_producer // producer.descriptor.segment_bytes
        seg_start = producer.dst.start + seg_index * producer.descriptor.segment_bytes
        seg_end = min(seg_start + producer.descriptor.segment_bytes, producer.dst.end)
        chunk = min(end, seg_end) - cursor
        if producer.descriptor.is_ready(seg_index):
            # Freshest data already lives in the intermediate buffer.
            spans.append(SourceSpan(region.aspace, cursor, chunk, _absorbed))
        else:
            # Absorb: read straight from the producer's source, recursing
            # through deeper chains (A may itself be fed by a pending task).
            src_va = producer.src.start + offset_in_producer
            sub_region = type(region)(producer.src.aspace, src_va, chunk)
            sub_spans = resolve_sources(
                pending, producer, sub_region, enabled=enabled,
                _depth=_depth + 1, _absorbed=True)
            spans.extend(sub_spans)
        cursor += chunk
    return _coalesce(spans)


def _nearest_producer(pending, reader_task, region):
    for other in pending.earlier_than(reader_task):
        if other.is_finished:
            continue
        if region.overlaps(other.dst):
            return other
    return None


def _coalesce(spans):
    out = []
    for span in spans:
        if (
            out
            and out[-1].aspace.asid == span.aspace.asid
            and out[-1].va + out[-1].nbytes == span.va
            and out[-1].absorbed == span.absorbed
        ):
            out[-1] = SourceSpan(
                out[-1].aspace, out[-1].va, out[-1].nbytes + span.nbytes,
                span.absorbed,
            )
        else:
            out.append(span)
    return out


def absorbed_bytes(spans):
    return sum(s.nbytes for s in spans if s.absorbed)
