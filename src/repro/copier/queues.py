"""CSH queues: the Copy/Sync/Handler ring buffers (§4.1, §5.1.1).

Each client owns two sets (u-mode for the app, k-mode for kernel services
sharing its context, §4.2.1).  Rings follow the paper's lock-free protocol:
producers *acquire* a slot by fetch-and-add on the head, fill it, then set
the valid bit; the consumer (a Copier thread) only advances the tail past
valid slots.  The simulator executes Python atomically between yields, so
the protocol is exercised logically (acquisition order defines task order)
rather than against a hardware memory model — see DESIGN.md deviations.
"""


class QueueFull(Exception):
    pass


class _Slot:
    __slots__ = ("item", "valid")

    def __init__(self):
        self.item = None
        self.valid = False


class RingQueue:
    """Fixed-capacity ring with acquire/publish semantics."""

    def __init__(self, capacity=1024, name=""):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.name = name
        self._slots = [_Slot() for _ in range(capacity)]
        self.head = 0  # total slots acquired (fetch-and-add counter)
        self.tail = 0  # total slots consumed

    def __len__(self):
        return self.head - self.tail

    @property
    def is_empty(self):
        return self.head == self.tail

    @property
    def epoch(self):
        """Times the ring wrapped (barrier bookkeeping).

        Derived from the acquire counter rather than counted imperatively:
        a stateful ``+= 1`` at ``head % capacity == 0`` bumps a capacity-1
        ring on every acquire and drifts from the wrap count the moment a
        future protocol change makes ``head`` move by more than one.
        """
        return self.head // self.capacity

    def acquire(self):
        """Fetch-and-add a slot index; raises :class:`QueueFull` when full."""
        if self.head - self.tail >= self.capacity:
            raise QueueFull(self.name or "ring")
        index = self.head
        self.head += 1
        return index

    def publish(self, index, item):
        """Fill the acquired slot and set its valid bit."""
        slot = self._slots[index % self.capacity]
        slot.item = item
        slot.valid = True

    def submit(self, item):
        """acquire + publish in one step; returns the global position."""
        index = self.acquire()
        self.publish(index, item)
        return index

    def pop(self):
        """Consume the item at the tail; None if tail slot not yet valid."""
        if self.is_empty:
            return None
        slot = self._slots[self.tail % self.capacity]
        if not slot.valid:
            return None  # producer acquired but not yet published
        item, slot.item = slot.item, None
        slot.valid = False
        self.tail += 1
        return item

    def drain(self):
        """Pop every published item at the tail."""
        items = []
        while True:
            item = self.pop()
            if item is None:
                break
            items.append(item)
        return items


class ClientQueues:
    """One privilege level's CSH queue triple."""

    def __init__(self, capacity=1024, name=""):
        self.copy = RingQueue(capacity, name + "-copy")
        self.sync = RingQueue(capacity, name + "-sync")
        self.handler = RingQueue(capacity, name + "-handler")

    def __repr__(self):
        return "<ClientQueues copy=%d sync=%d handler=%d>" % (
            len(self.copy), len(self.sync), len(self.handler))
