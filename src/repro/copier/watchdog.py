"""Liveness watchdog for the copy path (§4.5's "first-class service" bar).

A wedged worker, a starved client or a backlog piling up behind a
quarantined DMA engine is invisible to applications — copies just stop
retiring.  The watchdog runs on the simulated clock (it costs no core:
its checks are scheduled callbacks, not a thread) and periodically
compares the service's retirement progress against its backlog:

* **stall** — the service retired nothing over ``stall_checks``
  consecutive windows while queues or pending lists were nonempty;
* **starvation** — some client's oldest outstanding task is older than
  ``starvation_cycles``;
* **quarantine pile-up** — the dispatcher quarantined the DMA engine and
  backlog is still growing behind the CPU stream.

Each detection emits a typed trace-bus event (``watchdog-stall`` /
``watchdog-starved`` / ``watchdog-quarantine``) and bumps a counter
surfaced through ``stats_snapshot()["overload"]["watchdog"]`` —
``copierstat`` and ``faultsummary`` render the block.

The watchdog is quiescent-by-design: it only ticks while there is
backlog to watch (armed by ``notify_submit``, disarmed when the service
drains or after ``GIVE_UP_CHECKS`` windows of total stall), so an idle
machine schedules no events and ``Environment.run()`` still drains.
``COPIER_WATCHDOG_CYCLES`` overrides the check period machine-wide;
``0``/``off`` disables the watchdog entirely.
"""

import os

from repro.sim.trace import (WatchdogQuarantine, WatchdogStall,
                             WatchdogStarvation)

#: Default cycles between liveness checks.
DEFAULT_PERIOD_CYCLES = 50_000

#: Consecutive no-progress checks before a stall alert fires.
DEFAULT_STALL_CHECKS = 4

#: Outstanding-task age (cycles) that counts as client starvation.
DEFAULT_STARVATION_CYCLES = 1_000_000


def _period_from_env(environ=None):
    environ = os.environ if environ is None else environ
    raw = environ.get("COPIER_WATCHDOG_CYCLES", "").strip()
    if not raw:
        return DEFAULT_PERIOD_CYCLES
    if raw.lower() in ("0", "off", "none"):
        return 0
    return int(raw)


class WatchdogStats:
    """Alert counters plus the latest liveness observations."""

    __slots__ = ("checks", "stall_alerts", "starvation_alerts",
                 "quarantine_alerts", "last_progress_age",
                 "oldest_pending_age", "starved_clients")

    def __init__(self):
        self.checks = 0
        self.stall_alerts = 0
        self.starvation_alerts = 0
        self.quarantine_alerts = 0
        self.last_progress_age = 0
        self.oldest_pending_age = 0
        self.starved_clients = []

    def as_dict(self):
        return {
            "checks": self.checks,
            "stall_alerts": self.stall_alerts,
            "starvation_alerts": self.starvation_alerts,
            "quarantine_alerts": self.quarantine_alerts,
            "last_progress_age": self.last_progress_age,
            "oldest_pending_age": self.oldest_pending_age,
            "starved_clients": list(self.starved_clients),
        }


class CopierWatchdog:
    """Liveness monitor for one :class:`~repro.copier.service.CopierService`."""

    #: Consecutive fully-stalled checks after which the watchdog stops
    #: re-arming (the service is presumed dead; a new submission re-arms
    #: it).  Keeps a wedged simulation from ticking forever.
    GIVE_UP_CHECKS = 16

    def __init__(self, service, period_cycles=None, stall_checks=None,
                 starvation_cycles=None):
        self.service = service
        self.period_cycles = (_period_from_env() if period_cycles is None
                              else period_cycles)
        self.stall_checks = (DEFAULT_STALL_CHECKS if stall_checks is None
                             else stall_checks)
        self.starvation_cycles = (DEFAULT_STARVATION_CYCLES
                                  if starvation_cycles is None
                                  else starvation_cycles)
        self.stats = WatchdogStats()
        self._armed = False
        self._stopped = False
        self._last_retired = 0
        self._last_progress_at = service.env.now
        self._stall_streak = 0
        self._flagged_starved = set()

    @property
    def enabled(self):
        return self.period_cycles > 0 and not self._stopped

    # ------------------------------------------------------------- arm/stop

    def kick(self):
        """Arm the next check if backlog may exist (cheap, idempotent)."""
        if not self.enabled or self._armed:
            return
        self._armed = True
        self.service.env.schedule(self.period_cycles, self._tick)

    def stop(self):
        """Stop ticking for good (service shutdown)."""
        self._stopped = True

    # ---------------------------------------------------------------- check

    def _backlog(self):
        """(tasks, oldest_submitted_at, starved_names) over all clients."""
        now = self.service.env.now
        tasks = 0
        oldest = None
        starved = []
        for client in self.service.clients:
            client_oldest = None
            for task in client.task_index:
                if task.is_finished:
                    continue
                tasks += 1
                at = task.submitted_at
                if at is not None and (client_oldest is None
                                       or at < client_oldest):
                    client_oldest = at
            tasks += len(client.u_queues.sync) + len(client.k_queues.sync)
            if client_oldest is not None:
                if oldest is None or client_oldest < oldest:
                    oldest = client_oldest
                if now - client_oldest > self.starvation_cycles:
                    starved.append((client.name, now - client_oldest))
        return tasks, oldest, starved

    def _tick(self):
        self._armed = False
        if not self.enabled or not self.service.running:
            return
        stats = self.stats
        stats.checks += 1
        env = self.service.env
        now = env.now
        retired = self.service.tasks_retired
        if retired != self._last_retired:
            self._last_retired = retired
            self._last_progress_at = now
            self._stall_streak = 0
        stats.last_progress_age = now - self._last_progress_at

        backlog_tasks, oldest, starved = self._backlog()
        stats.oldest_pending_age = (now - oldest) if oldest is not None else 0
        trace = self.service.trace

        if backlog_tasks == 0:
            # Quiescent: nothing to watch; a submission re-arms us.
            self._stall_streak = 0
            self._flagged_starved.clear()
            return

        if stats.last_progress_age >= self.period_cycles:
            self._stall_streak += 1
        if self._stall_streak >= self.stall_checks:
            stats.stall_alerts += 1
            if trace.active:
                trace.emit(WatchdogStall(now, backlog_tasks,
                                         stats.last_progress_age))
            self._stall_streak = 0

        for name, age in starved:
            # One alert per starvation episode, not per check.
            if name not in self._flagged_starved:
                self._flagged_starved.add(name)
                stats.starvation_alerts += 1
                if trace.active:
                    trace.emit(WatchdogStarvation(now, name, age))
        starved_names = [name for name, _age in starved]
        stats.starved_clients = starved_names
        self._flagged_starved &= set(starved_names)

        if (self.service.dispatcher.dma_quarantined
                and stats.last_progress_age >= self.period_cycles):
            stats.quarantine_alerts += 1
            if trace.active:
                trace.emit(WatchdogQuarantine(now, backlog_tasks))

        if stats.last_progress_age >= self.period_cycles * self.GIVE_UP_CHECKS:
            return  # presumed dead — stop ticking until the next kick
        self.kick()

    # -------------------------------------------------------------- export

    def snapshot(self):
        return dict(self.stats.as_dict(), period_cycles=self.period_cycles,
                    enabled=self.enabled,
                    starvation_cycles=self.starvation_cycles)
