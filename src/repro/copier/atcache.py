"""ATCache: the address-translation cache (§4.3).

DMA needs physical addresses; walking page tables costs ~240 cycles/page.
Apps reuse I/O buffers heavily (the paper measures >75 % address recurrence
in Redis), so Copier caches (asid, vpn) → frame with LRU eviction and
invalidates entries when the memory subsystem changes a mapping.
"""

from collections import OrderedDict

from repro.mem.phys import PAGE_SIZE


class ATCache:
    def __init__(self, params):
        self.params = params
        self.capacity = params.atcache_capacity
        self._entries = OrderedDict()  # (asid, vpn) -> frame
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self._hooked_asids = set()

    def attach(self, aspace):
        """Register the invalidation hook on ``aspace`` (idempotent)."""
        if aspace.asid not in self._hooked_asids:
            aspace.register_invalidation_hook(self.invalidate)
            self._hooked_asids.add(aspace.asid)

    def invalidate(self, asid, vpn):
        if self._entries.pop((asid, vpn), None) is not None:
            self.invalidations += 1

    def translation_cost(self, aspace, va, length, write=False,
                         contiguous=False):
        """Cycles to translate every page of [va, va+length); fills the cache.

        The range must already be mapped (the proactive fault handler runs
        first).  Returns ``(cycles, hits, misses)`` for this walk.

        ``contiguous=True`` declares the range physically contiguous (the
        dispatcher's DMA runs are, by construction): only the first page
        needs a full walk — the rest are verified at hit cost, like a
        compound/huge-page mapping.
        """
        self.attach(aspace)
        cycles = 0
        hits = 0
        misses = 0
        first_vpn = va // PAGE_SIZE
        last_vpn = (va + max(length, 1) - 1) // PAGE_SIZE
        for vpn in range(first_vpn, last_vpn + 1):
            key = (aspace.asid, vpn)
            if key in self._entries:
                self._entries.move_to_end(key)
                cycles += self.params.atcache_hit_cycles
                hits += 1
            else:
                frame, _off = aspace.translate(vpn * PAGE_SIZE, write=False)
                self._entries[key] = frame
                if len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                if contiguous and vpn != first_vpn:
                    cycles += self.params.atcache_hit_cycles
                else:
                    cycles += self.params.page_translate_cycles
                misses += 1
        self.hits += hits
        self.misses += misses
        return cycles, hits, misses

    @property
    def hit_rate(self):
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
