"""Copier: the coordinated asynchronous copy OS service (the paper's §4).

Subpackage map:

- :mod:`repro.copier.task` — Copy/Sync/Barrier tasks and memory regions.
- :mod:`repro.copier.descriptor` — segment bitmaps + descriptor pool (§4.1).
- :mod:`repro.copier.queues` — CSH ring queues, u-mode and k-mode (§4.1).
- :mod:`repro.copier.deps` — order & data dependency tracking (§4.2).
- :mod:`repro.copier.atcache` — address-translation cache (§4.3).
- :mod:`repro.copier.dispatch` — hybrid subtasks + piggyback dispatcher (§4.3).
- :mod:`repro.copier.absorption` — layered copy absorption (§4.4).
- :mod:`repro.copier.sched` — copy-length CFS + cgroup copier controller (§4.5).
- :mod:`repro.copier.service` — Copier threads, polling modes, auto-scaling,
  proactive fault handling (§4.5).
"""

from repro.copier.task import CopyTask, SyncTask, BarrierTask, Region
from repro.copier.descriptor import Descriptor, DescriptorPool
from repro.copier.queues import RingQueue, ClientQueues, QueueFull
from repro.copier.atcache import ATCache
from repro.copier.sched import CopierScheduler, CopierCgroup
from repro.copier.service import CopierService, CopierClient

__all__ = [
    "CopyTask",
    "SyncTask",
    "BarrierTask",
    "Region",
    "Descriptor",
    "DescriptorPool",
    "RingQueue",
    "ClientQueues",
    "QueueFull",
    "ATCache",
    "CopierScheduler",
    "CopierCgroup",
    "CopierService",
    "CopierClient",
]
