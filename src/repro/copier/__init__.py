"""Copier: the coordinated asynchronous copy OS service (the paper's §4).

Subpackage map — the copy path is layered by pipeline stage:

- :mod:`repro.copier.task` — Copy/Sync/Barrier tasks and memory regions.
- :mod:`repro.copier.descriptor` — segment bitmaps + descriptor pool (§4.1).
- :mod:`repro.copier.queues` — CSH ring queues, u-mode and k-mode (§4.1).
- :mod:`repro.copier.deps` — order & data dependency tracking (§4.2).
- :mod:`repro.copier.client` — the submission stage: CopierClient,
  barriers, csync/abort, per-client stats (§4.1, §4.2).
- :mod:`repro.copier.atcache` — address-translation cache (§4.3).
- :mod:`repro.copier.dispatch` — hybrid subtasks + piggyback dispatcher (§4.3).
- :mod:`repro.copier.absorption` — layered copy absorption (§4.4).
- :mod:`repro.copier.sched` — copy-length CFS + cgroup copier controller (§4.5).
- :mod:`repro.copier.polling` — pluggable polling policies: NAPI,
  scenario-driven, adaptive gap-widening (§4.5.1, §5.3).
- :mod:`repro.copier.worker` — the per-thread loop, sleep/wake, lazy
  timers, auto-scaling (§4.5.1).
- :mod:`repro.copier.executor` — the execution stage: ingest, proactive
  fault handling, promotion, round execution (§4.2.2, §4.5.4).
- :mod:`repro.copier.completion` — the completion stage: retirement,
  unpinning, FUNC handler dispatch (§4.1).
- :mod:`repro.copier.admission` — overload valve: admit/shed/reject
  policies and share-weighted token buckets (§4.5).
- :mod:`repro.copier.watchdog` — liveness watchdog: stall, starvation
  and quarantine pile-up detection on the simulated clock.
- :mod:`repro.copier.service` — the composition root wiring the layers.

Stage boundaries emit typed events on the machine's trace bus
(:mod:`repro.sim.trace`), which is how ``copierstat`` and the benchmark
reports derive per-stage latency breakdowns.
"""

from repro.copier.task import CopyTask, SyncTask, BarrierTask, Region
from repro.copier.descriptor import Descriptor, DescriptorPool
from repro.copier.queues import RingQueue, ClientQueues, QueueFull
from repro.copier.atcache import ATCache
from repro.copier.polling import (AdaptivePolicy, NapiPolicy, PollingPolicy,
                                  ScenarioPolicy, make_policy)
from repro.copier.sched import CopierScheduler, CopierCgroup
from repro.copier.admission import (AdmissionController, AdmissionPolicy,
                                    AlwaysAdmit, DeadlineFeasiblePolicy,
                                    QueueDepthPolicy, TokenBucket,
                                    make_admission)
from repro.copier.errors import AdmissionReject, DeadlineMissed
from repro.copier.watchdog import CopierWatchdog
from repro.copier.client import ClientStats, CopierClient
from repro.copier.service import CopierService

__all__ = [
    "CopyTask",
    "SyncTask",
    "BarrierTask",
    "Region",
    "Descriptor",
    "DescriptorPool",
    "RingQueue",
    "ClientQueues",
    "QueueFull",
    "ATCache",
    "PollingPolicy",
    "NapiPolicy",
    "ScenarioPolicy",
    "AdaptivePolicy",
    "make_policy",
    "CopierScheduler",
    "CopierCgroup",
    "AdmissionController",
    "AdmissionPolicy",
    "AlwaysAdmit",
    "QueueDepthPolicy",
    "DeadlineFeasiblePolicy",
    "TokenBucket",
    "make_admission",
    "AdmissionReject",
    "DeadlineMissed",
    "CopierWatchdog",
    "ClientStats",
    "CopierService",
    "CopierClient",
]
