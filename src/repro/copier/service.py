"""The Copier OS service: threads, clients, and request handling (§4.5).

One :class:`CopierService` per simulated machine.  Clients (user processes
or kernel services with standalone contexts) register and get u-mode and
k-mode CSH queues; Copier threads — simulator processes pinned to dedicated
cores — poll the queues, ingest tasks with proactive fault handling, and
execute rounds planned by the piggyback dispatcher.

Polling modes (§4.5.1):

* ``"napi"`` (default) — busy-poll with a small gap between empty sweeps;
  good latency at the cost of a partially-busy dedicated core.
* ``"scenario"`` — the thread sleeps until :meth:`CopierService.
  scenario_begin` (or ``copier_awaken``) fires and goes back to sleep when
  queues drain; the smartphone-friendly mode used on HarmonyOS (§5.3).
"""

from repro.copier import task as task_mod
from repro.copier.atcache import ATCache
from repro.copier.deps import BarrierBookkeeping, PendingTasks, u_order_key
from repro.copier.descriptor import DescriptorPool
from repro.copier.dispatch import Dispatcher
from repro.copier.errors import CopierSecurityError, CopyAborted
from repro.copier.queues import ClientQueues
from repro.copier.sched import CopierScheduler
from repro.copier.task import CopyTask, Region, SyncTask
from repro.hw.dma import DMAEngine, DMASubtask
from repro.mem.faults import SegmentationFault
from repro.sim import Compute, Timeout, WaitEvent

_INGEST_CYCLES_PER_TASK = 20
_AVX_SEGMENT_OVERHEAD = 5
_NAPI_POLL_GAP = 200
_MAX_SPIN_CYCLES = 800


class ClientStats:
    __slots__ = ("submitted", "completed", "aborted", "dropped",
                 "sync_tasks", "bytes_copied", "bytes_absorbed")

    def __init__(self):
        self.submitted = 0
        self.completed = 0
        self.aborted = 0
        self.dropped = 0
        self.sync_tasks = 0
        self.bytes_copied = 0
        self.bytes_absorbed = 0


class CopierClient:
    """A registered client: its queues, pending tasks, and submission API.

    The ``amemcpy``/``csync`` methods here are the *mechanism* (queue
    protocol + cycle charging); :mod:`repro.api.libcopier` wraps them in
    the paper's high-level developer API.  All methods that consume
    simulated time are generators — call them with ``yield from`` inside a
    simulator process.
    """

    def __init__(self, service, aspace, name="", queue_capacity=1024,
                 process=None, segment_bytes=None):
        self.service = service
        self.env = service.env
        self.aspace = aspace
        self.name = name or ("client-%d" % aspace.asid)
        self.process = process
        self.segment_bytes = segment_bytes or service.params.default_segment_bytes
        self.u_queues = ClientQueues(queue_capacity, self.name + "-u")
        self.k_queues = ClientQueues(queue_capacity, self.name + "-k")
        self.barriers = BarrierBookkeeping(self.u_queues.copy)
        self.pending = PendingTasks()
        self.desc_pool = DescriptorPool(self.segment_bytes)
        self.task_index = []  # submitted tasks for csync address lookup
        self.stats = ClientStats()
        self.sigsegv_handler = None  # default: kill the attached process

    # -------------------------------------------------------------- barriers

    def on_trap(self):
        """Kernel entered a syscall on this client's context (§4.2.1)."""
        self.barriers.on_trap()

    def on_return(self):
        """Kernel is about to return to userspace."""
        self.barriers.on_return()

    # ------------------------------------------------------------ submission

    def amemcpy(self, dst_va, src_va, nbytes, handler=None, segment_bytes=None,
                lazy=False, descriptor=None):
        """u-mode async copy within this client's address space.

        Generator; returns the task's descriptor.
        """
        src = Region(self.aspace, src_va, nbytes)
        dst = Region(self.aspace, dst_va, nbytes)
        return (yield from self.submit_copy("u", src, dst, handler=handler,
                                            segment_bytes=segment_bytes,
                                            lazy=lazy, descriptor=descriptor))

    def k_amemcpy(self, src, dst, handler=None, segment_bytes=None,
                  lazy=False, descriptor=None):
        """k-mode async copy between arbitrary Regions (kernel services)."""
        return (yield from self.submit_copy("k", src, dst, handler=handler,
                                            segment_bytes=segment_bytes,
                                            lazy=lazy, descriptor=descriptor))

    def submit_copy(self, queue_kind, src, dst, handler=None,
                    segment_bytes=None, lazy=False, descriptor=None):
        params = self.service.params
        cost = params.queue_submit_cycles
        if descriptor is None:
            descriptor = self.desc_pool.acquire(
                src.length, segment_bytes or self.segment_bytes)
            cost += params.descriptor_alloc_cycles
        yield Compute(cost, tag="copier-submit")
        task = CopyTask(
            self, queue_kind, src, dst, descriptor, handler=handler,
            task_type=task_mod.TYPE_LAZY if lazy else task_mod.TYPE_NORMAL,
        )
        task.submitted_at = self.env.now
        if lazy:
            task.lazy_deadline = self.env.now + self.service.lazy_period_cycles
        if queue_kind == "u":
            queue = self.u_queues.copy
            position = queue.acquire()
            task.order_key = u_order_key(position)
            queue.publish(position, task)
        else:
            task.order_key = self.barriers.next_k_key()
            self.k_queues.copy.submit(task)
        self.task_index.append(task)
        self.stats.submitted += 1
        self.service.notify_submit(self)
        return descriptor

    # ----------------------------------------------------------------- csync

    def tasks_overlapping(self, region, queue_kind=None):
        out = []
        for task in self.task_index:
            if queue_kind is not None and task.queue_kind != queue_kind:
                continue
            if task.dst.overlaps(region):
                out.append(task)
        return out

    def _range_ready(self, region):
        """True when ``region``'s bytes, per their *newest* covering tasks,
        have landed.

        Buffers are recycled, so older tasks on the same addresses are
        superseded byte-by-byte by newer submissions: walk the index newest
        first and only consult older tasks for bytes no newer task covers.
        Raises :class:`CopyAborted` when the deciding copy for some byte
        was aborted before those bytes arrived.
        """
        remaining = [(region.start, region.start + region.length)]
        for task in reversed(self.task_index):
            if not remaining:
                return True
            if task.dst.aspace.asid != region.aspace.asid:
                continue
            next_remaining = []
            for start, end in remaining:
                lo = max(start, task.dst.start)
                hi = min(end, task.dst.end)
                if lo >= hi:
                    next_remaining.append((start, end))
                    continue
                covered = Region(region.aspace, lo, hi - lo)
                segs_ready = all(task.descriptor.is_ready(s)
                                 for s in task.segments_covering(covered))
                if task.state == task_mod.ABORTED:
                    if not segs_ready:
                        raise CopyAborted(
                            "copy covering 0x%x aborted" % lo)
                elif not segs_ready:
                    return False
                if start < lo:
                    next_remaining.append((start, lo))
                if hi < end:
                    next_remaining.append((hi, end))
            remaining = next_remaining
        return True

    def csync(self, va, nbytes, queue_kind="u"):
        """Ensure [va, va+nbytes) from prior async copies is ready (§4.1).

        Fast path: one descriptor check.  Slow path: submit a Sync Task
        (raising the segments' priority) and spin-wait with exponential
        backoff, burning the client's own core — the polling cost the
        paper accounts to csync.
        """
        params = self.service.params
        region = Region(self.aspace, va, nbytes)
        yield Compute(params.csync_check_cycles, tag="csync")
        if self._range_ready(region):
            self._prune_index()
            return
        yield Compute(params.queue_submit_cycles, tag="csync")
        sync = SyncTask(self, queue_kind, region)
        sync.submitted_at = self.env.now
        queues = self.u_queues if queue_kind == "u" else self.k_queues
        queues.sync.submit(sync)
        self.stats.sync_tasks += 1
        self.service.notify_submit(self)
        spin = params.csync_spin_cycles
        while not self._range_ready(region):
            yield Compute(spin, tag="csync")
            spin = min(spin * 2, _MAX_SPIN_CYCLES)
        self._prune_index()

    def csync_region(self, region, queue_kind="k"):
        """csync for an arbitrary Region (kernel-side users)."""
        params = self.service.params
        yield Compute(params.csync_check_cycles, tag="csync")
        if self._range_ready(region):
            return
        yield Compute(params.queue_submit_cycles, tag="csync")
        sync = SyncTask(self, queue_kind, region)
        sync.submitted_at = self.env.now
        queues = self.u_queues if queue_kind == "u" else self.k_queues
        queues.sync.submit(sync)
        self.stats.sync_tasks += 1
        self.service.notify_submit(self)
        spin = params.csync_spin_cycles
        while not self._range_ready(region):
            yield Compute(spin, tag="csync")
            spin = min(spin * 2, _MAX_SPIN_CYCLES)

    def csync_all(self):
        """Wait for every outstanding copy and run queued UFUNC handlers."""
        params = self.service.params
        yield Compute(params.csync_check_cycles, tag="csync")
        spin = params.csync_spin_cycles
        while any(not t.is_finished for t in self.task_index):
            yield Compute(spin, tag="csync")
            spin = min(spin * 2, _MAX_SPIN_CYCLES)
        yield from self.post_handlers()
        self._prune_index(force=True)

    def abort(self, va, nbytes, queue_kind="u"):
        """Discard still-queued copies targeting the range (§4.4)."""
        params = self.service.params
        yield Compute(params.queue_submit_cycles, tag="csync")
        sync = SyncTask(self, queue_kind, Region(self.aspace, va, nbytes),
                        abort=True)
        sync.submitted_at = self.env.now
        queues = self.u_queues if queue_kind == "u" else self.k_queues
        queues.sync.submit(sync)
        self.service.notify_submit(self)

    def post_handlers(self):
        """Run delegated UFUNC handlers from the Handler Queue (§4.1)."""
        params = self.service.params
        for entry in self.u_queues.handler.drain():
            yield Compute(params.handler_dispatch_cycles, tag="handler")
            fn, args = entry
            fn(*args)

    def _prune_index(self, force=False):
        if force or len(self.task_index) > 64:
            self.task_index = [t for t in self.task_index if not t.is_finished]

    def __repr__(self):
        return "<CopierClient %s>" % self.name


class CopierService:
    """The OS service: owns threads, dispatcher, scheduler, DMA and ATCache."""

    def __init__(self, env, params, phys=None, polling="napi",
                 use_dma=True, use_absorption=True, dma_engine=None,
                 n_threads=1, max_threads=4, dedicated_cores=None,
                 lazy_period_cycles=2_000_000, autoscale=False):
        self.env = env
        self.params = params
        self.polling = polling
        self.scheduler = CopierScheduler(params)
        self.atcache = ATCache(params)
        self.dispatcher = Dispatcher(params, use_dma=use_dma,
                                     use_absorption=use_absorption,
                                     atcache=self.atcache)
        self.dma = dma_engine if dma_engine is not None else (
            DMAEngine(env, params) if use_dma else None)
        self.lazy_period_cycles = lazy_period_cycles
        self.autoscale = autoscale
        self.clients = []
        self.running = True
        self.scenario_active = polling != "scenario"
        self._wake_events = {}
        self.threads = []
        self.active_threads = n_threads
        self.peak_threads = n_threads
        self.max_threads = max_threads
        self._load_window = []
        self.rounds_executed = 0
        self.tasks_dropped = 0
        spawn_count = max_threads if autoscale else n_threads
        if dedicated_cores is None:
            dedicated_cores = [env.cores.n_cores - 1 - i for i in range(spawn_count)]
        self.dedicated_cores = dedicated_cores
        for tid in range(spawn_count):
            core = dedicated_cores[tid % len(dedicated_cores)]
            proc = env.spawn(self._thread_loop(tid), name="copier-%d" % tid,
                             affinity=core)
            self.threads.append(proc)

    # ------------------------------------------------------------- clients

    def create_client(self, aspace, name="", cgroup="root", process=None,
                      queue_capacity=1024, segment_bytes=None):
        client = CopierClient(self, aspace, name=name, process=process,
                              queue_capacity=queue_capacity,
                              segment_bytes=segment_bytes)
        self.clients.append(client)
        self.scheduler.register(client, cgroup)
        return client

    def remove_client(self, client):
        self.clients.remove(client)
        self.scheduler.unregister(client)

    # ----------------------------------------------------------- wake/sleep

    def notify_submit(self, client):
        """Client published work; wake a sleeping *active* thread if needed."""
        if self.polling == "scenario" and not self.scenario_active:
            return  # stays asleep until the scenario activates (§5.3)
        for tid, event in list(self._wake_events.items()):
            if tid < self.active_threads and not event.triggered:
                event.succeed()

    def scenario_begin(self):
        """Activate scenario-driven Copier threads (e.g. video decode starts)."""
        self.scenario_active = True
        self._wake_all()

    def scenario_end(self):
        self.scenario_active = False

    def awaken(self):
        """The ``copier_awaken`` syscall: force-wake sleeping threads."""
        self._wake_all()

    def _wake_all(self):
        for tid, event in list(self._wake_events.items()):
            if not event.triggered:
                event.succeed()

    def stop(self):
        self.running = False
        self._wake_all()

    # -------------------------------------------------------------- metrics

    @property
    def bytes_absorbed(self):
        """Total short-circuited bytes across all clients (§4.4)."""
        return sum(c.stats.bytes_absorbed for c in self.clients)

    @property
    def bytes_copied(self):
        return sum(c.stats.bytes_copied for c in self.clients)

    # ------------------------------------------------------------ main loop

    def _my_clients(self, tid):
        """Clients served by thread ``tid``: round-robin over the active
        thread count, so scaling up immediately re-spreads clients (the
        NUMA-local preference is a no-op in this single-node model)."""
        if tid >= self.active_threads:
            return []
        return [c for i, c in enumerate(self.clients)
                if i % self.active_threads == tid]

    def _thread_loop(self, tid):
        params = self.params
        # Save SIMD state once on activation instead of per copy (§4.3).
        yield Compute(params.simd_state_cycles, tag="copier-mgmt")
        idle_streak = 0
        win_start = self.env.now
        win_busy = 0
        win_iters = 0
        while self.running:
            if self.polling == "scenario" and not self.scenario_active:
                yield from self._sleep(tid)
                win_start, win_busy, win_iters = self.env.now, 0, 0
                continue
            if tid >= self.active_threads:
                yield from self._sleep(tid)
                win_start, win_busy, win_iters = self.env.now, 0, 0
                continue
            iter_start = self.env.now
            did_work = False
            clients = self._my_clients(tid)

            ingest_cost = 0
            for client in clients:
                ingest_cost += self._ingest(client)
            if ingest_cost:
                yield Compute(ingest_cost, tag="copier-mgmt")

            # Sync Tasks first — k-mode before u-mode (§4.2.2).
            for kind in ("k", "u"):
                for client in clients:
                    queues = client.k_queues if kind == "k" else client.u_queues
                    for sync in queues.sync.drain():
                        did_work = True
                        yield from self._handle_sync(client, sync)

            ready = [c for c in clients if self._has_runnable(c)]
            client = self.scheduler.pick(ready)
            if client is not None:
                head = self._next_head(client)
                plan = self.dispatcher.build_round(
                    client.pending, self.scheduler.copy_slice_bytes, head=head)
                if plan is not None and (plan.avx_jobs or plan.dma_runs):
                    did_work = True
                    yield from self._execute_plan(client, plan)
                self._sweep_completed(client)

            if did_work:
                win_busy += self.env.now - iter_start
            win_iters += 1
            if win_iters >= self.LOAD_WINDOW:
                elapsed = max(1, self.env.now - win_start)
                self._record_load(win_busy / elapsed, tid=tid)
                win_start, win_busy, win_iters = self.env.now, 0, 0
            if did_work:
                idle_streak = 0
                self.rounds_executed += 1
            else:
                idle_streak += 1
                yield Compute(params.queue_poll_cycles, tag="poll")
                if idle_streak > 8:
                    # Brief busy-poll burst, then block until a client's
                    # doorbell (or, in scenario mode, until the scenario
                    # begins) — instant wakeup, no idle burn.  Going idle
                    # is itself a low-load observation for auto-scaling.
                    self._record_load(0.0, tid=tid)
                    self._arm_lazy_timer(tid, clients)
                    yield from self._sleep(tid, wake_cost=100)
                    idle_streak = 0
                    win_start, win_busy, win_iters = self.env.now, 0, 0
                else:
                    yield Timeout(_NAPI_POLL_GAP)

    def _arm_lazy_timer(self, tid, clients):
        """Before sleeping, arm a wakeup at the earliest lazy deadline so
        deferred tasks still run when their period elapses (§4.4)."""
        deadlines = [t.lazy_deadline for c in clients for t in c.pending
                     if t.lazy and t.lazy_deadline is not None]
        if not deadlines:
            return
        delay = max(0, min(deadlines) - self.env.now)

        def fire():
            event = self._wake_events.get(tid)
            if event is not None and not event.triggered:
                event.succeed()

        self.env.schedule(delay, fire)

    def _sleep(self, tid, wake_cost=None):
        event = self.env.event()
        self._wake_events[tid] = event
        # Re-check after publishing the wake slot: a client may have
        # submitted between our last drain and here (the classic lost
        # wakeup), in which case we skip the sleep entirely.  An inactive
        # scenario sleeps unconditionally — only scenario_begin wakes it.
        if ((self.polling != "scenario" or self.scenario_active)
                and self._has_published_work(tid)):
            self._wake_events.pop(tid, None)
            return
        yield WaitEvent(event)
        self._wake_events.pop(tid, None)
        if wake_cost is None:
            wake_cost = self.params.scenario_wake_cycles
        yield Compute(wake_cost, tag="copier-mgmt")

    def _has_published_work(self, tid):
        for client in self._my_clients(tid):
            if (not client.u_queues.copy.is_empty
                    or not client.k_queues.copy.is_empty
                    or not client.u_queues.sync.is_empty
                    or not client.k_queues.sync.is_empty
                    or self._has_runnable(client)):
                return True
        return False

    #: Loop iterations per auto-scaling decision window.
    LOAD_WINDOW = 24

    #: Consecutive low-load observations before shedding a thread.
    LOW_STREAK = 3

    def _record_load(self, load, tid=0):
        """Auto-scaling (§4.5.1): thread 0 watches its busy-time fraction
        over each decision window and keeps it between low_load and
        high_load by waking/sleeping sibling threads.  Scale-down needs a
        streak of low observations (hysteresis) so brief inter-request
        gaps don't shed threads under sustained load."""
        if not self.autoscale or tid != 0:
            return
        self._load_window.append(load)
        if load > self.params.high_load:
            self._low_streak = 0
            if self.active_threads < self.max_threads:
                self.active_threads += 1
                self.peak_threads = max(
                    getattr(self, "peak_threads", 1), self.active_threads)
                self._wake_all()
        elif load < self.params.low_load:
            self._low_streak = getattr(self, "_low_streak", 0) + 1
            if self._low_streak >= self.LOW_STREAK and self.active_threads > 1:
                self.active_threads -= 1
                self._low_streak = 0
        else:
            self._low_streak = 0

    # --------------------------------------------------------------- ingest

    def _ingest(self, client):
        """Move published Copy Tasks into the pending list with proactive
        fault handling (§4.5.4).  Returns cycles to charge."""
        cost = 0
        for queue in (client.k_queues.copy, client.u_queues.copy):
            for task in queue.drain():
                cost += _INGEST_CYCLES_PER_TASK
                cost += self._prepare_task(client, task)
        return cost

    def _prepare_task(self, client, task):
        """Security checks, proactive faulting, pinning, translation."""
        params = self.params
        cost = 0
        from repro.mem.phys import OutOfMemory

        try:
            task.src.aspace.check_range(task.src.start, task.src.length, write=False)
            task.dst.aspace.check_range(task.dst.start, task.dst.length, write=True)
        except SegmentationFault as exc:
            self._drop_task(client, task, exc)
            return cost
        try:
            resolutions = []
            resolutions += task.src.aspace.ensure_mapped(
                task.src.start, task.src.length, write=False)
            resolutions += task.dst.aspace.ensure_mapped(
                task.dst.start, task.dst.length, write=True)
        except OutOfMemory as exc:
            # Unresolvable fault (§4.5.4): drop the task and signal the
            # process, exactly like the in-context OOM-kill would.
            self._drop_task(client, task, exc)
            return cost
        for kind in resolutions:
            cost += params.page_alloc_cycles
            if kind == "cow_copy":
                cost += params.cpu_copy_cycles(4096, engine="avx")
        task.src.aspace.pin(task.src.start, task.src.length)
        task.dst.aspace.pin(task.dst.start, task.dst.length, write=True)
        task.pinned = True
        client.pending.add(task)
        return cost

    def _drop_task(self, client, task, exc):
        task.state = task_mod.ABORTED
        task.descriptor.abort()
        client.stats.dropped += 1
        self.tasks_dropped += 1
        if client.sigsegv_handler is not None:
            client.sigsegv_handler(task, exc)
        elif client.process is not None:
            client.process.kill(CopierSecurityError(str(exc)))

    # ------------------------------------------------------------ sync path

    def _handle_sync(self, client, sync, _depth=0):
        # The Copy Task a sync refers to may have been published *after*
        # this iteration's ingest pass swept the client's rings; re-ingest
        # so promotion/abort sees it (queue order guarantees the copy was
        # acquired before the sync that names it).
        cost = self._ingest(client)
        if cost:
            yield Compute(cost, tag="copier-mgmt")
        if sync.abort:
            # Only discard copies submitted *before* the abort: buffers are
            # recycled, and a newer task on the same range must survive.
            for task in client.pending.tasks_writing(sync.region):
                if task.task_id < sync.task_id:
                    yield from self._abort_task(client, task)
            return
        yield from self._promote_region(client, sync.region, _depth=_depth)

    def _serve_other_syncs(self, busy_client):
        """Between slices of a bulk promotion, serve other clients' Sync
        Tasks so one client's huge csync cannot monopolize the thread
        (the copy-slice guarantee of §4.5.3)."""
        for kind in ("k", "u"):
            for other in list(self.clients):
                if other is busy_client:
                    continue
                queues = other.k_queues if kind == "k" else other.u_queues
                for sync in queues.sync.drain():
                    yield from self._handle_sync(other, sync, _depth=1)

    def _abort_task(self, client, task):
        task.state = task_mod.ABORTED
        task.descriptor.abort()
        client.pending.remove(task)
        client.stats.aborted += 1
        self._unpin(task)
        yield from self._run_handler(client, task)

    def _promote_region(self, client, region, _depth=0):
        """Out-of-order execution of the segments a Sync Task needs (§4.2.2)."""
        if _depth > 16:
            return
        for task in list(client.pending.tasks_writing(region)):
            segs = [s for s in task.segments_covering(region)
                    if not task.descriptor.is_ready(s)]
            if not segs:
                continue
            task.promoted = True
            needed = len(segs) * task.descriptor.segment_bytes
            hazards = [d for d in client.pending.dependencies_of(task)
                       if not d.is_finished]
            if (needed >= self.params.i_piggyback_threshold and not hazards
                    and self.dispatcher.use_dma):
                # Large promotion with no reordering hazards: run the full
                # piggyback dispatcher so DMA still helps (§4.3) — but in
                # copy-slice-bounded rounds, serving other clients' syncs
                # in between so the bulk csync cannot starve them.
                budget = self.scheduler.copy_slice_bytes
                progressed = True
                while (progressed and not task.is_finished
                       and not task.descriptor.all_ready):
                    plan = self.dispatcher.build_round(
                        client.pending, budget_bytes=budget, head=task)
                    if plan is None or not (plan.avx_jobs or plan.dma_runs):
                        progressed = False
                        break
                    yield from self._execute_plan(client, plan)
                    if _depth == 0:
                        yield from self._serve_other_syncs(client)
                if task.is_finished or task.descriptor.all_ready:
                    continue
            yield from self._execute_segments(client, task, segs,
                                              _depth=_depth)

    def _execute_segments(self, client, task, segments, _depth=0):
        """Copy specific segments now, honoring WAR/WAW hazards recursively."""
        from repro.copier.absorption import resolve_sources

        params = self.params
        for seg in segments:
            if task.is_finished or task.descriptor.is_ready(seg):
                continue
            dst_region = task.dst_range_of_segment(seg)
            src_region = task.src_range_of_segment(seg)
            for earlier in client.pending.earlier_than(task):
                if earlier.is_finished:
                    continue
                if earlier.src.overlaps(dst_region):
                    hazard = earlier.segments_covering_src(dst_region)
                    yield from self._execute_segments(
                        client, earlier,
                        [s for s in hazard if not earlier.descriptor.is_ready(s)],
                        _depth=_depth + 1)
                elif earlier.dst.overlaps(dst_region):
                    hazard = earlier.segments_covering(dst_region)
                    yield from self._execute_segments(
                        client, earlier,
                        [s for s in hazard if not earlier.descriptor.is_ready(s)],
                        _depth=_depth + 1)
                elif not self.dispatcher.use_absorption and \
                        earlier.dst.overlaps(src_region):
                    hazard = earlier.segments_covering(src_region)
                    yield from self._execute_segments(
                        client, earlier,
                        [s for s in hazard if not earlier.descriptor.is_ready(s)],
                        _depth=_depth + 1)
            spans = resolve_sources(client.pending, task, src_region,
                                    enabled=self.dispatcher.use_absorption)
            nbytes = dst_region.length
            cycles = int(nbytes / params.avx_bytes_per_cycle) + _AVX_SEGMENT_OVERHEAD
            yield Compute(cycles, tag="copier-copy")
            self._write_spans(client, task, seg, dst_region, spans)
        if not task.is_finished and task.descriptor.all_ready:
            yield from self._finish_task(client, task)

    # ------------------------------------------------------------ execution

    def _has_runnable(self, client):
        if client.pending.runnable_head() is not None:
            return True
        now = self.env.now
        return any(t.lazy and t.lazy_deadline is not None and t.lazy_deadline <= now
                   for t in client.pending)

    def _next_head(self, client):
        head = client.pending.runnable_head()
        if head is not None:
            return head
        now = self.env.now
        for t in client.pending:
            if t.lazy and t.lazy_deadline is not None and t.lazy_deadline <= now:
                return t
        return None

    def _execute_plan(self, client, plan):
        params = self.params
        dma_done = None
        if plan.dma_runs:
            # DMA needs physical addresses: walk (or ATCache-hit) the pages
            # of each run before ringing the doorbell (§4.3).
            translate = 0
            for run in plan.dma_runs:
                cycles, _h, _m = self.atcache.translation_cost(
                    run.task.src.aspace, run.src_va, run.nbytes,
                    contiguous=True)
                translate += cycles
                cycles, _h, _m = self.atcache.translation_cost(
                    run.task.dst.aspace, run.dst_va, run.nbytes, write=True,
                    contiguous=True)
                translate += cycles
            yield Compute(params.dma_submit_cycles + translate,
                          tag="copier-copy")
            batch = []
            for run in plan.dma_runs:
                batch.append(DMASubtask(
                    run.task.src.aspace, run.src_va,
                    run.task.dst.aspace, run.dst_va, run.nbytes,
                    on_done=self._make_dma_callback(client, run)))
            dma_done = self.dma.submit(batch)
        for job in plan.avx_jobs:
            if job.task.is_finished or job.task.descriptor.is_ready(job.seg_index):
                continue
            cycles = int(job.nbytes / params.avx_bytes_per_cycle) \
                + _AVX_SEGMENT_OVERHEAD
            yield Compute(cycles, tag="copier-copy")
            dst_region = job.task.dst_range_of_segment(job.seg_index)
            self._write_spans(client, job.task, job.seg_index, dst_region,
                              job.spans)
        if dma_done is not None:
            yield WaitEvent(dma_done)
            yield Compute(params.dma_complete_check_cycles, tag="copier-copy")
        for task in plan.tasks:
            if not task.is_finished and task.descriptor.all_ready:
                yield from self._finish_task(client, task)

    def _make_dma_callback(self, client, run):
        def on_done(_subtask):
            for job in run.jobs:
                if not run.task.is_finished:
                    run.task.descriptor.mark(job.seg_index)
            client.stats.bytes_copied += run.nbytes
            self.scheduler.charge(client, run.nbytes)
        return on_done

    def _write_spans(self, client, task, seg_index, dst_region, spans):
        data = bytearray()
        absorbed = 0
        for span in spans:
            data += span.aspace.read(span.va, span.nbytes)
            if span.absorbed:
                absorbed += span.nbytes
        task.dst.aspace.write(dst_region.start, bytes(data))
        task.descriptor.mark(seg_index)
        task.absorbed_bytes += absorbed
        client.stats.bytes_copied += dst_region.length
        client.stats.bytes_absorbed += absorbed
        self.scheduler.charge(client, dst_region.length)
        if task.started_at is None:
            task.started_at = self.env.now

    def _sweep_completed(self, client):
        for task in list(client.pending):
            if not task.is_finished and task.descriptor.all_ready:
                # Completed by DMA callbacks or promotion: finalize cheaply.
                task.state = task_mod.DONE
                task.completed_at = self.env.now
                client.pending.remove(task)
                client.stats.completed += 1
                self._unpin(task)
                self._queue_handler(client, task)

    def _finish_task(self, client, task):
        task.state = task_mod.DONE
        task.completed_at = self.env.now
        try:
            client.pending.remove(task)
        except ValueError:
            pass
        client.stats.completed += 1
        self._unpin(task)
        yield from self._run_handler(client, task)

    def _unpin(self, task):
        if task.pinned:
            task.src.aspace.unpin(task.src.start, task.src.length)
            task.dst.aspace.unpin(task.dst.start, task.dst.length)
            task.pinned = False

    def _queue_handler(self, client, task):
        if task.handler is None:
            return
        kind, fn, args = task.handler
        if kind == "kfunc":
            fn(*args)
        else:
            client.u_queues.handler.submit((fn, args))

    def _run_handler(self, client, task):
        if task.handler is None:
            return
        kind, fn, args = task.handler
        yield Compute(self.params.handler_dispatch_cycles, tag="copier-mgmt")
        if kind == "kfunc":
            fn(*args)
        else:
            client.u_queues.handler.submit((fn, args))
