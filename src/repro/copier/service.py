"""The Copier OS service: the composition root of the copy path (§4.5).

One :class:`CopierService` per machine — it wires the layers together:

* :mod:`repro.copier.client` — submission API (clients, barriers, csync);
* :mod:`repro.copier.polling` — pluggable polling policies (§4.5.1, §5.3);
* :mod:`repro.copier.worker` — per-thread loops, sleep/wake, auto-scaling;
* :mod:`repro.copier.executor` — ingest, fault handling, round execution;
* :mod:`repro.copier.completion` — task retirement and FUNC handlers.

Stage boundaries emit typed events on the machine-wide trace bus
(:mod:`repro.sim.trace`); ``service.stage_stats`` aggregates them into
the latency breakdown :mod:`repro.tools.copierstat` renders.
"""

from repro.copier.admission import AdmissionController
from repro.copier.client import ClientStats, CopierClient  # noqa: F401
from repro.copier.completion import CompletionHandler
from repro.copier.dispatch import Dispatcher
from repro.copier.executor import CopyExecutor
from repro.copier.polling import make_policy
from repro.copier.watchdog import CopierWatchdog
from repro.copier.worker import AutoScaler, CopierWorker
from repro.copier.atcache import ATCache
from repro.copier.sched import CopierScheduler
from repro.faultinject import FaultInjector, FaultPlan, RecoveryStats
from repro.hw.dma import DMAEngine
from repro.sim.trace import StageAggregator


class CopierService:
    """The OS service: owns threads, dispatcher, scheduler, DMA and ATCache."""

    def __init__(self, env, params, phys=None, polling="napi",
                 use_dma=True, use_absorption=True, dma_engine=None,
                 n_threads=1, max_threads=4, dedicated_cores=None,
                 lazy_period_cycles=2_000_000, autoscale=False, trace=None,
                 fault_plan=None, admission=None, watchdog_cycles=None,
                 watchdog_starvation_cycles=None):
        self.env = env
        self.params = params
        self.policy = make_policy(polling)
        self.trace = trace if trace is not None else env.trace
        self.stage_stats = StageAggregator(self.trace)
        self.scheduler = CopierScheduler(params)
        self.atcache = ATCache(params)
        self.dispatcher = Dispatcher(params, use_dma=use_dma,
                                     use_absorption=use_absorption,
                                     atcache=self.atcache)
        # Fault injection (repro.faultinject): an explicit plan wins, else
        # COPIER_FAULT_PLAN/COPIER_FAULT_SEED from the environment; neither
        # leaves the injector unarmed (every site guards on ``faults.armed``,
        # so the unarmed path costs one attribute check).
        if fault_plan is None:
            fault_plan = FaultPlan.from_env()
        self.faults = FaultInjector(fault_plan, env=env, trace=self.trace)
        self.fault_stats = RecoveryStats()
        self.dma = dma_engine if dma_engine is not None else (
            DMAEngine(env, params,
                      injector=self.faults if self.faults.armed else None)
            if use_dma else None)
        if (self.dma is not None and self.faults.armed
                and self.dma.injector is None):
            self.dma.injector = self.faults
        self.completion = CompletionHandler(self)
        self.executor = CopyExecutor(self, self.completion)
        self.autoscaler = AutoScaler(self)
        # Overload protection: the admission valve (explicit policy wins
        # over COPIER_ADMISSION), the liveness watchdog, and the global
        # retirement counter that serves as the watchdog's progress signal.
        self.admission = AdmissionController(self, admission)
        self.tasks_retired = 0
        self.watchdog = CopierWatchdog(
            self, period_cycles=watchdog_cycles,
            starvation_cycles=watchdog_starvation_cycles)
        self.lazy_period_cycles = lazy_period_cycles
        self.autoscale = autoscale
        self.clients = []
        self.running = True
        self.scenario_active = self.policy.name != "scenario"
        self._wake_events = {}
        self.workers = []
        self.threads = []
        self.active_threads = n_threads
        self.peak_threads = n_threads
        self.max_threads = max_threads
        self.rounds_executed = 0
        self.tasks_dropped = 0
        spawn_count = max_threads if autoscale else n_threads
        if dedicated_cores is None:
            dedicated_cores = [env.cores.n_cores - 1 - i for i in range(spawn_count)]
        self.dedicated_cores = dedicated_cores
        for tid in range(spawn_count):
            core = dedicated_cores[tid % len(dedicated_cores)]
            worker = CopierWorker(self, tid)
            self.workers.append(worker)
            proc = env.spawn(worker.loop(), name="copier-%d" % tid,
                             affinity=core)
            self.threads.append(proc)

    # -------------------------------------------------------------- polling

    @property
    def polling(self):
        """The polling mode name; assigning swaps the policy object."""
        return self.policy.name

    @polling.setter
    def polling(self, value):
        self.policy = make_policy(value)

    # ------------------------------------------------------------- clients

    def create_client(self, aspace, name="", cgroup="root", process=None,
                      queue_capacity=1024, segment_bytes=None):
        client = CopierClient(self, aspace, name=name, process=process,
                              queue_capacity=queue_capacity,
                              segment_bytes=segment_bytes)
        self.clients.append(client)
        self.scheduler.register(client, cgroup)
        return client

    def remove_client(self, client):
        self.clients.remove(client)
        self.scheduler.unregister(client)
        self.admission.forget(client)

    # ----------------------------------------------------------- wake/sleep

    def notify_submit(self, client):
        """Client published work; wake a sleeping *active* thread if needed."""
        self.watchdog.kick()
        if not self.policy.wake_on_submit(self):
            return  # stays asleep until the scenario activates (§5.3)
        for tid, event in list(self._wake_events.items()):
            if tid < self.active_threads and not event.triggered:
                event.succeed()

    def scenario_begin(self):
        """Activate scenario-driven Copier threads (e.g. video decode starts)."""
        self.scenario_active = True
        self._wake_all()

    def scenario_end(self):
        self.scenario_active = False

    def awaken(self):
        """The ``copier_awaken`` syscall: force-wake sleeping threads."""
        self._wake_all()

    def _wake_all(self):
        for tid, event in list(self._wake_events.items()):
            if not event.triggered:
                event.succeed()

    def stop(self):
        self.running = False
        self.watchdog.stop()
        self._wake_all()

    # -------------------------------------------------------------- metrics

    @property
    def bytes_absorbed(self):
        """Total short-circuited bytes across all clients (§4.4)."""
        return sum(c.stats.bytes_absorbed for c in self.clients)

    @property
    def bytes_copied(self):
        return sum(c.stats.bytes_copied for c in self.clients)

    def _my_clients(self, tid):
        """Clients served by thread ``tid`` (see CopierWorker.my_clients)."""
        if tid >= len(self.workers):
            return []
        return self.workers[tid].my_clients()

    @property
    def _load_window(self):
        """Auto-scaling load observations (kept for introspection)."""
        return self.autoscaler.window

    # ------------------------------------------------------------- snapshot

    def stats_snapshot(self):
        """Plain-dict snapshot of the whole service (see copierstat)."""
        dispatcher, atcache = self.dispatcher, self.atcache
        snap = {
            "now": self.env.now,
            "polling": self.polling,
            "scenario_active": self.scenario_active,
            "threads": {
                "active": self.active_threads,
                "peak": self.peak_threads,
                "spawned": len(self.threads),
                "sleeping": sorted(self._wake_events),
            },
            "dispatcher": {
                "rounds": dispatcher.rounds_planned,
                "bytes_to_dma": dispatcher.bytes_to_dma,
                "bytes_to_avx": dispatcher.bytes_to_avx,
                "use_dma": dispatcher.use_dma,
                "use_absorption": dispatcher.use_absorption,
            },
            "atcache": {
                "hits": atcache.hits,
                "misses": atcache.misses,
                "hit_rate": atcache.hit_rate,
                "invalidations": atcache.invalidations,
            },
            "dma": None,
            "tasks_dropped": self.tasks_dropped,
            "cgroups": {
                name: {"shares": g.shares,
                       "total_copy_length": g.total_copy_length,
                       "clients": len(g.clients)}
                for name, g in self.scheduler.cgroups.items()
            },
            "clients": {c.name: c.stats_snapshot() for c in self.clients},
            "overload": dict(self.admission.snapshot(),
                             tasks_retired=self.tasks_retired,
                             watchdog=self.watchdog.snapshot()),
            "stages": self.stage_stats.as_dict(),
            "faults": dict(
                self.faults.as_dict(),
                dma_quarantined=dispatcher.dma_quarantined,
                recovery=self.fault_stats.as_dict(),
            ),
        }
        if self.dma is not None:
            snap["dma"] = {
                "bytes_copied": self.dma.bytes_copied,
                "batches": self.dma.batches,
                "busy_cycles": self.dma.busy_cycles,
                "submit_failures": self.dma.submit_failures,
                "aborted_batches": self.dma.aborted_batches,
                "stall_cycles": self.dma.stall_cycles,
            }
        return snap
