"""The Copier OS service: the composition root of the copy path (§4.5).

One :class:`CopierService` per machine — it wires the layers together:

* :mod:`repro.copier.client` — submission API (clients, barriers, csync);
* :mod:`repro.copier.polling` — pluggable polling policies (§4.5.1, §5.3);
* :mod:`repro.copier.worker` — per-thread loops, sleep/wake, auto-scaling;
* :mod:`repro.copier.executor` — ingest, fault handling, round execution;
* :mod:`repro.copier.completion` — task retirement and FUNC handlers.

Stage boundaries emit typed events on the machine-wide trace bus
(:mod:`repro.sim.trace`); ``service.stage_stats`` aggregates them into
the latency breakdown :mod:`repro.tools.copierstat` renders.
"""

from repro.copier.admission import AdmissionController
from repro.copier.client import ClientStats, CopierClient  # noqa: F401
from repro.copier.completion import CompletionHandler
from repro.copier.dispatch import Dispatcher
from repro.copier.executor import CopyExecutor
from repro.copier.polling import make_policy
from repro.copier.watchdog import CopierWatchdog
from repro.copier.worker import AutoScaler, CopierWorker
from repro.copier.atcache import ATCache
from repro.copier.sched import CopierScheduler
import os

from repro.faultinject import (FaultInjector, FaultPlan, IntegrityStats,
                               RecoveryStats)
from repro.hw.dma import DMAEngine
from repro.sim.trace import ProcessReaped, ServiceDrained, StageAggregator

#: Event-loop slice the shutdown drain advances per iteration.
_DRAIN_STEP_CYCLES = 20_000

#: Consecutive drain slices with executing events but a frozen backlog
#: (no queue, state, or segment movement) before shutdown declares the
#: service wedged — spinners (csync backoff loops) keep the clock busy
#: without ever draining anything, so ``executed == 0`` never fires.
_DRAIN_STALL_STEPS = 4


class LifecycleStats:
    """Counters for the lifecycle layer (exit reaping, EFAULT, drain)."""

    __slots__ = ("exit_reaped", "efault_tasks", "drain_requeued",
                 "processes_reaped", "drains")

    def __init__(self):
        self.exit_reaped = 0       # tasks force-completed by process exit
        self.efault_tasks = 0      # tasks retired with a TaskEFault
        self.drain_requeued = 0    # unfinished tasks at shutdown entry
        self.processes_reaped = 0  # clients reaped by exit/kill
        self.drains = 0            # shutdown() drains completed

    def as_dict(self):
        return {name: getattr(self, name) for name in self.__slots__}


class CopierService:
    """The OS service: owns threads, dispatcher, scheduler, DMA and ATCache."""

    def __init__(self, env, params, phys=None, polling="napi",
                 use_dma=True, use_absorption=True, dma_engine=None,
                 n_threads=1, max_threads=4, dedicated_cores=None,
                 lazy_period_cycles=2_000_000, autoscale=False, trace=None,
                 fault_plan=None, admission=None, watchdog_cycles=None,
                 watchdog_starvation_cycles=None, e2e_crc=None):
        self.env = env
        self.params = params
        self.policy = make_policy(polling)
        self.trace = trace if trace is not None else env.trace
        self.stage_stats = StageAggregator(self.trace)
        self.scheduler = CopierScheduler(params)
        self.atcache = ATCache(params)
        self.dispatcher = Dispatcher(params, use_dma=use_dma,
                                     use_absorption=use_absorption,
                                     atcache=self.atcache)
        # Fault injection (repro.faultinject): an explicit plan wins, else
        # COPIER_FAULT_PLAN/COPIER_FAULT_SEED from the environment; neither
        # leaves the injector unarmed (every site guards on ``faults.armed``,
        # so the unarmed path costs one attribute check).
        if fault_plan is None:
            fault_plan = FaultPlan.from_env()
        self.faults = FaultInjector(fault_plan, env=env, trace=self.trace)
        self.fault_stats = RecoveryStats()
        # End-to-end copy-path integrity (opt-in): checksum each task's
        # intended bytes as they are produced and verify the destination
        # at retirement.  Explicit argument wins over COPIER_E2E_CRC=1.
        if e2e_crc is None:
            e2e_crc = os.environ.get("COPIER_E2E_CRC", "") == "1"
        self.e2e_crc = bool(e2e_crc)
        self.integrity = IntegrityStats()
        self.dma = dma_engine if dma_engine is not None else (
            DMAEngine(env, params,
                      injector=self.faults if self.faults.armed else None)
            if use_dma else None)
        if (self.dma is not None and self.faults.armed
                and self.dma.injector is None):
            self.dma.injector = self.faults
        self.completion = CompletionHandler(self)
        self.executor = CopyExecutor(self, self.completion)
        self.autoscaler = AutoScaler(self)
        # Overload protection: the admission valve (explicit policy wins
        # over COPIER_ADMISSION), the liveness watchdog, and the global
        # retirement counter that serves as the watchdog's progress signal.
        self.admission = AdmissionController(self, admission)
        self.tasks_retired = 0
        self.watchdog = CopierWatchdog(
            self, period_cycles=watchdog_cycles,
            starvation_cycles=watchdog_starvation_cycles)
        self.lazy_period_cycles = lazy_period_cycles
        self.autoscale = autoscale
        self.clients = []
        # Set by repro.serve.SimDriver when an async driver owns the
        # event loop; surfaces its stats under stats_snapshot()["serve"].
        self.serve_driver = None
        self.lifecycle = LifecycleStats()
        self.draining = False
        self.quiesced = False
        self._shutdown_report = None
        self._departed_aspaces = []  # kept so counters survive client reaping
        self.running = True
        self.scenario_active = self.policy.name != "scenario"
        self._wake_events = {}
        self.workers = []
        self.threads = []
        self.active_threads = n_threads
        self.peak_threads = n_threads
        self.max_threads = max_threads
        self.rounds_executed = 0
        self.tasks_dropped = 0
        spawn_count = max_threads if autoscale else n_threads
        if dedicated_cores is None:
            dedicated_cores = [env.cores.n_cores - 1 - i for i in range(spawn_count)]
        self.dedicated_cores = dedicated_cores
        for tid in range(spawn_count):
            core = dedicated_cores[tid % len(dedicated_cores)]
            worker = CopierWorker(self, tid)
            self.workers.append(worker)
            proc = env.spawn(worker.loop(), name="copier-%d" % tid,
                             affinity=core)
            self.threads.append(proc)

    # -------------------------------------------------------------- polling

    @property
    def polling(self):
        """The polling mode name; assigning swaps the policy object."""
        return self.policy.name

    @polling.setter
    def polling(self, value):
        self.policy = make_policy(value)

    # ------------------------------------------------------------- clients

    def create_client(self, aspace, name="", cgroup="root", process=None,
                      queue_capacity=1024, segment_bytes=None):
        client = CopierClient(self, aspace, name=name, process=process,
                              queue_capacity=queue_capacity,
                              segment_bytes=segment_bytes)
        self.clients.append(client)
        self.scheduler.register(client, cgroup)
        return client

    def remove_client(self, client):
        self.clients.remove(client)
        self.scheduler.unregister(client)
        self.admission.forget(client)

    # ------------------------------------------------------------ lifecycle

    def reap_client(self, client, outcome="exit-reap"):
        """Reap a client whose process exited or was killed.

        Drains its CSH rings, force-completes every in-flight task with
        clean unpin (``completion.reap_exit``), and detaches the client
        from the scheduler, admission controller and cgroup.  The aspace
        is *not* torn down here — the caller does that after the reap, so
        unpin always finds live (or lazily-deferred) PTEs.  Returns the
        number of tasks reaped.
        """
        if client not in self.clients:
            return 0
        count = self._reap_tasks(client, outcome)
        # UFUNC handlers queued for a dead process will never run.
        client.u_queues.handler.drain()
        self._departed_aspaces.append(client.aspace)
        self.remove_client(client)
        self.lifecycle.processes_reaped += 1
        if self.trace.active:
            self.trace.emit(ProcessReaped(self.env.now, client.name, count))
        return count

    def _reap_tasks(self, client, outcome):
        """Force-complete every unfinished task a client owns; returns
        how many were reaped.  Ring entries behind a wedged (acquired but
        never published) slot stay unpoppable but are still reaped through
        the task index, which records every submission."""
        completion = self.completion
        count = 0
        for queue in (client.u_queues.copy, client.k_queues.copy):
            for task in queue.drain():
                if not task.is_finished:
                    completion.reap_exit(client, task, outcome)
                    count += 1
        client.u_queues.sync.drain()
        client.k_queues.sync.drain()
        seen = set()
        for task in list(client.pending) + client.task_index:
            if id(task) in seen:
                continue
            seen.add(id(task))
            if not task.is_finished:
                completion.reap_exit(client, task, outcome)
                count += 1
        return count

    def _outstanding(self):
        """True while any client still has unfinished copy work."""
        for client in self.clients:
            if len(client.u_queues.copy) or len(client.k_queues.copy):
                return True
            if any(not t.is_finished for t in client.task_index):
                return True
            if any(not t.is_finished for t in client.pending):
                return True
        return False

    def _drain_signature(self):
        """Progress fingerprint of the backlog the shutdown drain waits on.

        Two equal signatures across a full drain slice mean no queue
        shrank, no task changed state, and no segment landed — only
        busy-waiters (csync spin loops) are keeping the clock alive.
        """
        sig = []
        for client in self.clients:
            tasks = tuple(
                (t.task_id, t.state, len(t.segments_pending()),
                 t.absorbed_bytes)
                for t in list(client.task_index) + list(client.pending)
                if not t.is_finished)
            sig.append((len(client.u_queues.copy), len(client.k_queues.copy),
                        client.stats.bytes_copied, tasks))
        return tuple(sig)

    def _all_aspaces(self):
        seen = {}
        for client in self.clients:
            seen[client.aspace.asid] = client.aspace
        for aspace in self._departed_aspaces:
            seen[aspace.asid] = aspace
        return list(seen.values())

    def leaked_pins(self):
        """Outstanding pin count across every aspace the service touched."""
        return sum(a.pins_outstanding() for a in self._all_aspaces())

    def shutdown(self, deadline=None):
        """Drain and stop the service; returns a report dict.

        Stops admission (submissions raise ``AdmissionReject("draining")``),
        then drives the event loop in bounded ``env.step`` slices until
        the backlog drains or ``deadline`` (relative cycles) passes —
        work parked behind a quarantined DMA engine drains too, because
        rounds fall back to the AVX stream.  The drain is wedge-aware in
        both directions: an idle slice (``executed == 0``) means nothing
        can run, and ``_DRAIN_STALL_STEPS`` slices with events but a
        frozen :meth:`_drain_signature` mean only busy-waiters are
        running — e.g. a csync spinning on a copy whose worker wedged on
        a dead fleet link.  Stragglers at the wedge or deadline
        are force-reaped (``drain-reap``), the workers are stopped, and
        zero leaked pins is asserted.  Call from outside the event loop
        (a driver, not a simulated process); the stepping API's
        re-entrancy guard enforces that, and also means the drain can
        never fight an async :class:`~repro.serve.driver.SimDriver` for
        the run loop — stop the driver first, then drain.
        """
        if self._shutdown_report is not None:
            return self._shutdown_report
        env = self.env
        start = env.now
        self.draining = True
        requeued = sum(1 for c in self.clients
                       for t in c.task_index if not t.is_finished)
        self.lifecycle.drain_requeued += requeued
        limit = None if deadline is None else start + deadline
        stalled = 0
        last_sig = None
        while self._outstanding():
            if limit is not None and env.now >= limit:
                break
            self.awaken()
            budget = _DRAIN_STEP_CYCLES
            if limit is not None and env.now + budget > limit:
                budget = limit - env.now
            report = env.step(max_cycles=budget)
            if report.executed == 0:
                break  # nothing left to execute: wedged or already idle
            sig = self._drain_signature()
            if sig == last_sig:
                stalled += 1
                if stalled >= _DRAIN_STALL_STEPS:
                    break  # events fire but the backlog is frozen: wedged
            else:
                stalled = 0
                last_sig = sig
        force_reaped = 0
        for client in list(self.clients):
            force_reaped += self._reap_tasks(client, "drain-reap")
        drained = force_reaped == 0
        self.stop()
        leaked = self.leaked_pins()
        self.lifecycle.drains += 1
        report = {
            "drained": drained,
            "requeued": requeued,
            "force_reaped": force_reaped,
            "cycles": env.now - start,
            "leaked_pins": leaked,
        }
        self._shutdown_report = report
        if self.trace.active:
            self.trace.emit(ServiceDrained(env.now, drained, requeued,
                                           force_reaped, report["cycles"]))
        if leaked:
            raise RuntimeError("shutdown leaked %d pins" % leaked)
        return report

    # ------------------------------------------------------ quiesce/resume

    def _quiesce_pending(self):
        """True while anything short of a checkpointable standstill remains:
        unfinished copy work, or sync entries the workers still must drain."""
        if self._outstanding():
            return True
        for client in self.clients:
            if len(client.u_queues.sync) or len(client.k_queues.sync):
                return True
        return False

    def quiesce(self, deadline=None):
        """Drain the service to a checkpointable standstill — pause, not reap.

        The same wedge-aware bounded drain as :meth:`shutdown`, with pause
        semantics: admission freezes (``draining``), every in-flight task
        retires normally, the sync rings empty, the workers park (their
        loop generators exit), the DMA device process is killed and the
        event heap drains to idle.  Nothing is force-reaped and no
        shutdown report is recorded; :meth:`resume` restarts the service
        in place.  Raises :class:`~repro.ckpt.errors.CheckpointStateError`
        when the machine cannot reach a quiescent point (wedged backlog,
        queued FUNC handlers whose owning process never ran them).
        """
        from repro.ckpt.errors import CheckpointStateError

        if self._shutdown_report is not None:
            raise CheckpointStateError("service already shut down")
        if self.quiesced:
            return
        env = self.env
        start = env.now
        self.draining = True
        # Lazy tasks are deferred-until-convenient work and the checkpoint
        # is the convenient moment: kick them in now instead of letting the
        # stall detector read a multi-megacycle lazy timer as a wedge.
        for client in self.clients:
            for task in client.pending:
                if task.lazy and not task.is_finished and \
                        task.lazy_deadline is not None:
                    task.lazy_deadline = min(task.lazy_deadline, env.now)
        limit = None if deadline is None else start + deadline
        stalled = 0
        last_sig = None
        while self._quiesce_pending():
            if limit is not None and env.now >= limit:
                raise CheckpointStateError(
                    "quiesce deadline passed with work outstanding")
            self.awaken()
            budget = _DRAIN_STEP_CYCLES
            if limit is not None and env.now + budget > limit:
                budget = limit - env.now
            report = env.step(max_cycles=budget)
            if report.executed == 0:
                raise CheckpointStateError(
                    "quiesce wedged: backlog remains but nothing can run")
            sig = self._drain_signature()
            if sig == last_sig:
                stalled += 1
                if stalled >= _DRAIN_STALL_STEPS:
                    raise CheckpointStateError(
                        "quiesce wedged: events fire but nothing drains")
            else:
                stalled = 0
                last_sig = sig
        for client in self.clients:
            if len(client.u_queues.handler) or len(client.k_queues.handler):
                # Refusal, not a wedge: the drain finished, so thaw
                # admission and let the caller run post_handlers().
                self.draining = False
                raise CheckpointStateError(
                    "client %r has queued FUNC handlers; run post_handlers()"
                    " before checkpointing" % client.name)
        # Park: stop the worker loops and the DMA device process, then step
        # the heap (parked wakeups, watchdog ticks and lazy timers firing as
        # no-ops) down to a truly idle event loop.
        self.running = False
        self.watchdog.stop()
        self._wake_all()
        if self.dma is not None and self.dma._proc.is_alive:
            self.dma._proc.kill()
        for _ in range(256):
            if env.idle:
                break
            env.step(max_cycles=_DRAIN_STEP_CYCLES)
        if not env.idle:
            raise CheckpointStateError("event heap did not drain to idle")
        for proc in self.threads:
            if proc.is_alive:
                raise CheckpointStateError("worker %s failed to park"
                                           % proc.name)
        if self._wake_events:
            raise CheckpointStateError("parked workers left wake events")
        # Canonical parked shape — identical on the resume-in-place path
        # and the restore-from-blob path: retired tasks compacted away.
        for client in self.clients:
            client._prune_index(force=True)
            for task in [t for t in client.pending if t.is_finished]:
                client.pending.remove(task)
        self.quiesced = True

    def resume(self):
        """Restart a quiesced service in place: respawn workers and DMA.

        Reverses :meth:`quiesce` — admission thaws, the watchdog re-arms
        from the current retirement count, the DMA device process is
        respawned and every worker loop restarts on its dedicated core
        (paying the same SIMD state-save cost as at boot, so a resumed
        machine and a restored one advance identically).
        """
        from repro.ckpt.errors import CheckpointStateError

        if not self.quiesced:
            raise CheckpointStateError("service is not quiesced")
        env = self.env
        self.quiesced = False
        self.draining = False
        self.running = True
        wd = self.watchdog
        wd._stopped = False
        wd._armed = False
        wd._last_retired = self.tasks_retired
        wd._last_progress_at = env.now
        wd._stall_streak = 0
        wd._flagged_starved.clear()
        self._wake_events = {}
        if self.dma is not None:
            self.dma.restart()
        threads = []
        for tid, worker in enumerate(self.workers):
            core = self.dedicated_cores[tid % len(self.dedicated_cores)]
            proc = env.spawn(worker.loop(), name="copier-%d" % tid,
                             affinity=core)
            threads.append(proc)
        self.threads = threads

    # ----------------------------------------------------------- wake/sleep

    def notify_submit(self, client):
        """Client published work; wake a sleeping *active* thread if needed."""
        self.watchdog.kick()
        if not self.policy.wake_on_submit(self):
            return  # stays asleep until the scenario activates (§5.3)
        for tid, event in list(self._wake_events.items()):
            if tid < self.active_threads and not event.triggered:
                event.succeed()

    def scenario_begin(self):
        """Activate scenario-driven Copier threads (e.g. video decode starts)."""
        self.scenario_active = True
        self._wake_all()

    def scenario_end(self):
        self.scenario_active = False

    def awaken(self):
        """The ``copier_awaken`` syscall: force-wake sleeping threads."""
        self._wake_all()

    def _wake_all(self):
        for tid, event in list(self._wake_events.items()):
            if not event.triggered:
                event.succeed()

    def stop(self):
        self.running = False
        self.watchdog.stop()
        self._wake_all()

    # -------------------------------------------------------------- metrics

    @property
    def bytes_absorbed(self):
        """Total short-circuited bytes across all clients (§4.4)."""
        return sum(c.stats.bytes_absorbed for c in self.clients)

    @property
    def bytes_copied(self):
        return sum(c.stats.bytes_copied for c in self.clients)

    def _my_clients(self, tid):
        """Clients served by thread ``tid`` (see CopierWorker.my_clients)."""
        if tid >= len(self.workers):
            return []
        return self.workers[tid].my_clients()

    @property
    def _load_window(self):
        """Auto-scaling load observations (kept for introspection)."""
        return self.autoscaler.window

    # ------------------------------------------------------------- snapshot

    def stats_snapshot(self):
        """Plain-dict snapshot of the whole service (see copierstat)."""
        dispatcher, atcache = self.dispatcher, self.atcache
        snap = {
            "now": self.env.now,
            "polling": self.polling,
            "scenario_active": self.scenario_active,
            "threads": {
                "active": self.active_threads,
                "peak": self.peak_threads,
                "spawned": len(self.threads),
                "sleeping": sorted(self._wake_events),
            },
            "dispatcher": {
                "rounds": dispatcher.rounds_planned,
                "bytes_to_dma": dispatcher.bytes_to_dma,
                "bytes_to_avx": dispatcher.bytes_to_avx,
                "use_dma": dispatcher.use_dma,
                "use_absorption": dispatcher.use_absorption,
            },
            "atcache": {
                "hits": atcache.hits,
                "misses": atcache.misses,
                "hit_rate": atcache.hit_rate,
                "invalidations": atcache.invalidations,
            },
            "dma": None,
            "tasks_dropped": self.tasks_dropped,
            "cgroups": {
                name: {"shares": g.shares,
                       "total_copy_length": g.total_copy_length,
                       "clients": len(g.clients)}
                for name, g in self.scheduler.cgroups.items()
            },
            "clients": {c.name: c.stats_snapshot() for c in self.clients},
            "overload": dict(self.admission.snapshot(),
                             tasks_retired=self.tasks_retired,
                             watchdog=self.watchdog.snapshot()),
            "stages": self.stage_stats.as_dict(),
            "faults": dict(
                self.faults.as_dict(),
                dma_quarantined=dispatcher.dma_quarantined,
                recovery=self.fault_stats.as_dict(),
            ),
            "lifecycle": dict(
                self.lifecycle.as_dict(),
                draining=self.draining,
                deferred_unmaps=sum(a.deferred_unmaps
                                    for a in self._all_aspaces()),
                deferred_reclaimed=sum(a.deferred_reclaimed
                                       for a in self._all_aspaces()),
                pins_outstanding=self.leaked_pins(),
            ),
        }
        if self.e2e_crc or self.integrity.interesting():
            # Presence-gated: the key appears only when the end-to-end
            # CRC is armed (or something tripped it), so unarmed snapshots
            # stay byte-identical to pre-integrity builds.
            snap["integrity"] = dict(
                self.integrity.as_dict(),
                e2e_crc=self.e2e_crc,
                dma_bitflips=self.dma.bitflips if self.dma is not None else 0,
            )
        if self.serve_driver is not None:
            snap["serve"] = self.serve_driver.snapshot()
        if self.dma is not None:
            snap["dma"] = {
                "bytes_copied": self.dma.bytes_copied,
                "batches": self.dma.batches,
                "busy_cycles": self.dma.busy_cycles,
                "submit_failures": self.dma.submit_failures,
                "aborted_batches": self.dma.aborted_batches,
                "stall_cycles": self.dma.stall_cycles,
                "efaults": self.dma.efaults,
            }
        return snap
