"""Copier scheduler and the cgroup copier controller (§4.5.2, §4.5.3).

Copy is managed as a first-class resource whose unit is *copy length* —
bytes copied on behalf of a client — rather than CPU time, because copy
completion time varies with cache/TLB state.  Scheduling is CFS-like:
among cgroups, pick the one with the minimum share-weighted total copy
length; within it, the client with the minimum total.  ``copy_slice``
bounds how much one scheduling decision may copy.
"""


class CopierCgroup:
    """A control group with a ``copier.shares`` weight."""

    def __init__(self, name, shares=100):
        if shares <= 0:
            raise ValueError("copier.shares must be positive")
        self.name = name
        self.shares = shares
        self.total_copy_length = 0
        self.clients = []

    @property
    def weighted_length(self):
        return self.total_copy_length / self.shares

    def __repr__(self):
        return "<CopierCgroup %s shares=%d total=%d>" % (
            self.name, self.shares, self.total_copy_length)


class CopierScheduler:
    def __init__(self, params):
        self.params = params
        self.copy_slice_bytes = params.copy_slice_bytes
        self.root_cgroup = CopierCgroup("root")
        self.cgroups = {"root": self.root_cgroup}
        self._client_group = {}
        self._client_length = {}

    # ---------------------------------------------------------- membership

    def create_cgroup(self, name, shares=100):
        if name in self.cgroups:
            raise ValueError("cgroup %r exists" % name)
        group = CopierCgroup(name, shares)
        self.cgroups[name] = group
        return group

    def remove_cgroup(self, name):
        """Tear down a cgroup, reassigning its clients to ``root``.

        The clients keep their accumulated per-client copy lengths (they
        earned them), but the removed group's total does not fold into
        root's — root's weighted length reflects only work done under
        root, so survivors are not suddenly outranked.  Removing ``root``
        is forbidden.
        """
        if name == "root":
            raise ValueError("cannot remove the root cgroup")
        group = self.cgroups.pop(name, None)
        if group is None:
            raise KeyError("no cgroup %r" % name)
        for client in list(group.clients):
            group.clients.remove(client)
            self.root_cgroup.clients.append(client)
            self._client_group[client] = self.root_cgroup
        return group

    def register(self, client, cgroup="root"):
        group = self.cgroups[cgroup]
        group.clients.append(client)
        self._client_group[client] = group
        self._client_length[client] = 0

    def unregister(self, client):
        group = self._client_group.pop(client, None)
        if group is not None:
            group.clients.remove(client)
        self._client_length.pop(client, None)

    def move(self, client, cgroup):
        self.unregister(client)
        self.register(client, cgroup)

    # ------------------------------------------------------------- decision

    def pick(self, ready):
        """Choose the next client to serve from the ``ready`` collection.

        Two-level minimum: share-weighted cgroup totals, then per-client
        totals — both on copy length, the paper's fairness unit.
        """
        ready = [c for c in ready if c in self._client_group]
        if not ready:
            return None
        groups = {}
        for client in ready:
            groups.setdefault(self._client_group[client], []).append(client)
        group = min(groups, key=lambda g: (g.weighted_length, g.name))
        # min() is stable, so equal-length clients resolve to the first in
        # ``ready`` (registration) order — never by memory address, which
        # would make the pick depend on allocator/GC history.
        return min(groups[group], key=lambda c: self._client_length[c])

    def charge(self, client, nbytes):
        """Account ``nbytes`` of copy done on behalf of ``client``."""
        self._client_length[client] = self._client_length.get(client, 0) + nbytes
        group = self._client_group.get(client)
        if group is not None:
            group.total_copy_length += nbytes

    def client_total(self, client):
        return self._client_length.get(client, 0)
