"""The submission layer: registered clients and their developer-facing API.

A :class:`CopierClient` owns one client's CSH queues, barrier bookkeeping,
descriptor pool and pending-task state.  The ``amemcpy``/``csync`` methods
here are the *mechanism* (queue protocol + cycle charging);
:mod:`repro.api.libcopier` wraps them in the paper's high-level developer
API.  All methods that consume simulated time are generators — call them
with ``yield from`` inside a simulator process.
"""

from repro.copier import task as task_mod
from repro.copier.admission import REJECT, SHED
from repro.copier.deps import BarrierBookkeeping, PendingTasks, u_order_key
from repro.copier.descriptor import DescriptorPool
from repro.copier.errors import AdmissionReject, CopyAborted, DeadlineMissed
from repro.copier.queues import ClientQueues, QueueFull
from repro.copier.task import CopyTask, Region, SyncTask
from repro.sim import Compute
from repro.sim.trace import AdmissionRejected, TaskShed, TaskSubmitted

_MAX_SPIN_CYCLES = 800

#: Full-ring (or injected queue_overflow) retries before QueueFull
#: propagates to the submitter.
_MAX_SUBMIT_RETRIES = 8


class ClientStats:
    __slots__ = ("submitted", "completed", "aborted", "dropped",
                 "sync_tasks", "bytes_copied", "bytes_absorbed",
                 "queue_overflows", "shed_tasks", "shed_bytes",
                 "rejected_submits", "cancelled", "deadline_misses",
                 "efault_tasks", "exit_reaped", "poisoned_tasks")

    def __init__(self):
        self.submitted = 0
        self.completed = 0
        self.aborted = 0
        self.dropped = 0
        self.sync_tasks = 0
        self.bytes_copied = 0
        self.bytes_absorbed = 0
        self.queue_overflows = 0
        self.shed_tasks = 0
        self.shed_bytes = 0
        self.rejected_submits = 0
        self.cancelled = 0
        self.deadline_misses = 0
        self.efault_tasks = 0
        self.exit_reaped = 0
        self.poisoned_tasks = 0

    def as_dict(self):
        """Plain-dict snapshot of every counter."""
        return {name: getattr(self, name) for name in self.__slots__}


class CopierClient:
    """A registered client: its queues, pending tasks, and submission API."""

    #: Hard bound on ``task_index`` growth.  Crossing it forces a prune of
    #: finished tasks at submission time, so a client that never csyncs
    #: cannot leak index entries (unfinished tasks are always retained —
    #: they are needed for csync correctness and are already bounded by
    #: the ring capacity + pending list).
    INDEX_CAP = 2048

    def __init__(self, service, aspace, name="", queue_capacity=1024,
                 process=None, segment_bytes=None):
        self.service = service
        self.env = service.env
        self.aspace = aspace
        self.name = name or ("client-%d" % aspace.asid)
        self.process = process
        self.segment_bytes = segment_bytes or service.params.default_segment_bytes
        self.u_queues = ClientQueues(queue_capacity, self.name + "-u")
        self.k_queues = ClientQueues(queue_capacity, self.name + "-k")
        self.barriers = BarrierBookkeeping(self.u_queues.copy)
        self.pending = PendingTasks()
        self.desc_pool = DescriptorPool(self.segment_bytes)
        self.task_index = []  # submitted tasks for csync address lookup
        self.stats = ClientStats()
        self.outstanding_bytes = 0  # admitted async bytes not yet retired
        self.sigsegv_handler = None  # default: kill the attached process

    # -------------------------------------------------------------- barriers

    def on_trap(self):
        """Kernel entered a syscall on this client's context (§4.2.1)."""
        self.barriers.on_trap()

    def on_return(self):
        """Kernel is about to return to userspace.

        An armed ``delayed_trap_return`` fault postpones the barrier
        snapshot — the kernel dawdled on the return path — which widens
        the window where k-mode tasks outrank racing u-mode submissions
        (Fig. 6-a); ordering stays correct, only the window moves.
        """
        inj = self.service.faults
        if inj.armed:
            delay = inj.delay_cycles("delayed_trap_return")
            if delay:
                self.env.schedule(delay, self.barriers.on_return)
                return
        self.barriers.on_return()

    # ------------------------------------------------------------ submission

    def amemcpy(self, dst_va, src_va, nbytes, handler=None, segment_bytes=None,
                lazy=False, descriptor=None, deadline=None, on_retire=None):
        """u-mode async copy within this client's address space.

        Generator; returns the task's descriptor.  ``deadline`` is an
        absolute cycle count: past it the task is reaped unexecuted
        (``deadline-miss``) rather than copied late.  ``on_retire`` is an
        optional ``fn(task, outcome)`` hook fired exactly once when the
        task retires, whatever the path (see :class:`CopyTask`).
        """
        src = Region(self.aspace, src_va, nbytes)
        dst = Region(self.aspace, dst_va, nbytes)
        return (yield from self.submit_copy("u", src, dst, handler=handler,
                                            segment_bytes=segment_bytes,
                                            lazy=lazy, descriptor=descriptor,
                                            deadline=deadline,
                                            on_retire=on_retire))

    def k_amemcpy(self, src, dst, handler=None, segment_bytes=None,
                  lazy=False, descriptor=None, deadline=None):
        """k-mode async copy between arbitrary Regions (kernel services)."""
        return (yield from self.submit_copy("k", src, dst, handler=handler,
                                            segment_bytes=segment_bytes,
                                            lazy=lazy, descriptor=descriptor,
                                            deadline=deadline))

    def submit_copy(self, queue_kind, src, dst, handler=None,
                    segment_bytes=None, lazy=False, descriptor=None,
                    deadline=None, on_retire=None):
        params = self.service.params
        cost = params.queue_submit_cycles
        pooled = descriptor is None
        if descriptor is None:
            descriptor = self.desc_pool.acquire(
                src.length, segment_bytes or self.segment_bytes)
            cost += params.descriptor_alloc_cycles
        yield Compute(cost, tag="copier-submit")
        task = CopyTask(
            self, queue_kind, src, dst, descriptor, handler=handler,
            task_type=task_mod.TYPE_LAZY if lazy else task_mod.TYPE_NORMAL,
        )
        task.submitted_at = self.env.now
        task.deadline = deadline
        task.on_retire = on_retire
        if lazy:
            task.lazy_deadline = self.env.now + self.service.lazy_period_cycles
        admission = self.service.admission
        if self.service.draining:
            # Shutdown in progress: no new work is admitted, period —
            # the drain loop must converge on the backlog it started with.
            self.stats.rejected_submits += 1
            admission.stats.rejected += 1
            if pooled:
                descriptor.release()
            trace = self.service.trace
            if trace.active:
                trace.emit(AdmissionRejected(self.env.now, self.name,
                                             src.length, "draining"))
            raise AdmissionReject("draining", src.length)
        decision = admission.admit(self, task)
        if decision == REJECT:
            self.stats.rejected_submits += 1
            admission.stats.rejected += 1
            if pooled:
                descriptor.release()
            trace = self.service.trace
            if trace.active:
                trace.emit(AdmissionRejected(self.env.now, self.name,
                                             src.length,
                                             admission.policy.name))
            raise AdmissionReject(admission.policy.name, src.length)
        if decision == SHED:
            yield from self._shed_sync(task, admission.policy.name)
            return descriptor
        if queue_kind == "u":
            queue = self.u_queues.copy
            position = yield from self._acquire_slot(queue)
            task.order_key = u_order_key(position)
            queue.publish(position, task)
        else:
            queue = self.k_queues.copy
            task.order_key = self.barriers.next_k_key()
            position = yield from self._acquire_slot(queue)
            queue.publish(position, task)
        if len(self.task_index) >= self.INDEX_CAP:
            self._prune_index(force=True)
        self.task_index.append(task)
        self.stats.submitted += 1
        self.outstanding_bytes += src.length
        trace = self.service.trace
        if trace.active:
            trace.emit(TaskSubmitted(self.env.now, task.task_id, self.name,
                                     queue_kind, src.length, lazy))
        self.service.notify_submit(self)
        return descriptor

    def _shed_sync(self, task, reason):
        """Execute a shed task synchronously in the submitter's context.

        Same semantics as ``user_memcpy``: the caller's core pays the
        faults and the copy, and the bytes are in place on return.  The
        task still lands in ``task_index`` fully marked, so later csyncs
        over the range take the fast path.  Latency is bounded (no
        queueing), which is the entire point of the overload valve.
        """
        params = self.service.params
        t0 = self.env.now
        fault_cycles = 0
        resolutions = task.src.aspace.ensure_mapped(
            task.src.start, task.src.length, write=False)
        resolutions += task.dst.aspace.ensure_mapped(
            task.dst.start, task.dst.length, write=True)
        for kind in resolutions:
            fault_cycles += (params.fault_entry_cycles
                             + params.page_alloc_cycles
                             + params.fault_exit_cycles)
            if kind == "cow_copy":
                fault_cycles += params.cpu_copy_cycles(4096, engine="avx")
        if fault_cycles:
            yield Compute(fault_cycles, tag="fault")
        yield Compute(params.cpu_copy_cycles(task.length, engine="avx"),
                      tag="copier-submit")
        data = task.src.aspace.read(task.src.start, task.src.length)
        task.dst.aspace.write(task.dst.start, data)
        for seg in range(task.descriptor.n_segments):
            task.descriptor.mark(seg)
        task.state = task_mod.DONE
        task.completed_at = self.env.now
        if len(self.task_index) >= self.INDEX_CAP:
            self._prune_index(force=True)
        self.task_index.append(task)
        self.stats.shed_tasks += 1
        self.stats.shed_bytes += task.length
        overload = self.service.admission.stats
        overload.shed_tasks += 1
        overload.shed_bytes += task.length
        if task.handler is not None:
            kind, fn, args = task.handler
            if kind == "kfunc":
                fn(*args)
            else:
                self.u_queues.handler.submit((fn, args))
        trace = self.service.trace
        if trace.active:
            trace.emit(TaskShed(self.env.now, task.task_id, self.name,
                                task.length, self.env.now - t0, reason))
        hook, task.on_retire = task.on_retire, None
        if hook is not None:
            hook(task, "shed")

    # ---------------------------------------------------------- cancellation

    def cancel(self, va, nbytes, queue_kind=None):
        """Cancel unfinished copies whose destination overlaps the range.

        Generator; returns how many tasks were marked.  Marked tasks are
        retired by the service (``cancelled`` outcome, pins released,
        FUNC still dispatched) rather than copied; a csync over the range
        then raises :class:`~repro.copier.errors.CopyAborted`.
        """
        params = self.service.params
        yield Compute(params.queue_submit_cycles, tag="csync")
        count = self._mark_cancelled(Region(self.aspace, va, nbytes),
                                     queue_kind)
        if count:
            self.service.notify_submit(self)  # wake a worker to reap
        return count

    def _mark_cancelled(self, region, queue_kind=None):
        count = 0
        for task in self.task_index:
            if task.is_finished or task.cancelled:
                continue
            if queue_kind is not None and task.queue_kind != queue_kind:
                continue
            if task.dst.overlaps(region):
                task.cancelled = True
                count += 1
        return count

    def _acquire_slot(self, queue):
        """Acquire a ring slot, absorbing transient overflow (generator).

        A full ring (genuine, or an injected ``queue_overflow``) backs off
        on the client's own core — giving the Copier thread time to drain
        the tail — and retries.  Only a ring that *stays* full for the
        whole retry budget propagates :class:`QueueFull`: that is back
        pressure, not a transient, and the submitter must see it.
        """
        inj = self.service.faults
        backoff = self.service.params.queue_submit_cycles
        for _attempt in range(_MAX_SUBMIT_RETRIES):
            try:
                if inj.armed and inj.fire("queue_overflow"):
                    raise QueueFull(queue.name)
                return queue.acquire()
            except QueueFull:
                self.stats.queue_overflows += 1
                self.service.notify_submit(self)  # kick a sleeping drainer
                yield Compute(backoff, tag="copier-submit")
                backoff = min(backoff * 2, _MAX_SPIN_CYCLES)
        return queue.acquire()

    # ----------------------------------------------------------------- csync

    def tasks_overlapping(self, region, queue_kind=None):
        out = []
        for task in self.task_index:
            if queue_kind is not None and task.queue_kind != queue_kind:
                continue
            if task.dst.overlaps(region):
                out.append(task)
        return out

    def _range_ready(self, region):
        """True when ``region``'s bytes, per their *newest* covering tasks,
        have landed.

        Buffers are recycled, so older tasks on the same addresses are
        superseded byte-by-byte by newer submissions: walk the index newest
        first and only consult older tasks for bytes no newer task covers.
        Raises :class:`CopyAborted` when the deciding copy for some byte
        was aborted before those bytes arrived.
        """
        remaining = [(region.start, region.start + region.length)]
        for task in reversed(self.task_index):
            if not remaining:
                return True
            if task.dst.aspace.asid != region.aspace.asid:
                continue
            next_remaining = []
            for start, end in remaining:
                lo = max(start, task.dst.start)
                hi = min(end, task.dst.end)
                if lo >= hi:
                    next_remaining.append((start, end))
                    continue
                covered = Region(region.aspace, lo, hi - lo)
                segs_ready = all(task.descriptor.is_ready(s)
                                 for s in task.segments_covering(covered))
                if task.state == task_mod.ABORTED:
                    if not segs_ready:
                        if task.error is not None:
                            raise task.error
                        raise CopyAborted(
                            "copy covering 0x%x aborted" % lo)
                elif not segs_ready:
                    return False
                if start < lo:
                    next_remaining.append((start, lo))
                if hi < end:
                    next_remaining.append((hi, end))
            remaining = next_remaining
        return True

    def csync(self, va, nbytes, queue_kind="u", deadline=None):
        """Ensure [va, va+nbytes) from prior async copies is ready (§4.1).

        Fast path: one descriptor check.  Slow path: submit a Sync Task
        (raising the segments' priority) and spin-wait with exponential
        backoff, burning the client's own core — the polling cost the
        paper accounts to csync.

        With a ``deadline`` (absolute cycles), a spin that reaches it
        stops waiting: the still-unfinished covering copies are cancelled
        and :class:`~repro.copier.errors.DeadlineMissed` is raised, so
        the caller's wait — not just the copy — is bounded.
        """
        params = self.service.params
        region = Region(self.aspace, va, nbytes)
        yield Compute(params.csync_check_cycles, tag="csync")
        if self._range_ready(region):
            self._prune_index()
            return
        yield from self._sync_and_spin(region, queue_kind, deadline)
        self._prune_index()

    def csync_region(self, region, queue_kind="k", deadline=None):
        """csync for an arbitrary Region (kernel-side users)."""
        params = self.service.params
        yield Compute(params.csync_check_cycles, tag="csync")
        if self._range_ready(region):
            return
        yield from self._sync_and_spin(region, queue_kind, deadline)

    def _sync_and_spin(self, region, queue_kind, deadline=None):
        """Slow path shared by the csync flavours: submit a Sync Task and
        spin-wait with exponential backoff until the range lands."""
        params = self.service.params
        yield Compute(params.queue_submit_cycles, tag="csync")
        sync = SyncTask(self, queue_kind, region)
        sync.submitted_at = self.env.now
        queues = self.u_queues if queue_kind == "u" else self.k_queues
        queues.sync.submit(sync)
        self.stats.sync_tasks += 1
        self.service.notify_submit(self)
        spin = params.csync_spin_cycles
        while not self._range_ready(region):
            if deadline is not None and self.env.now >= deadline:
                if self._mark_cancelled(region, queue_kind):
                    self.service.notify_submit(self)
                raise DeadlineMissed(
                    "csync [0x%x, +%d) missed its deadline at cycle %d"
                    % (region.start, region.length, deadline))
            yield Compute(spin, tag="csync")
            spin = min(spin * 2, _MAX_SPIN_CYCLES)

    def csync_all(self):
        """Wait for every outstanding copy and run queued UFUNC handlers."""
        params = self.service.params
        yield Compute(params.csync_check_cycles, tag="csync")
        spin = params.csync_spin_cycles
        while any(not t.is_finished for t in self.task_index):
            yield Compute(spin, tag="csync")
            spin = min(spin * 2, _MAX_SPIN_CYCLES)
        yield from self.post_handlers()
        self._prune_index(force=True)

    def abort(self, va, nbytes, queue_kind="u"):
        """Discard still-queued copies targeting the range (§4.4)."""
        params = self.service.params
        yield Compute(params.queue_submit_cycles, tag="csync")
        sync = SyncTask(self, queue_kind, Region(self.aspace, va, nbytes),
                        abort=True)
        sync.submitted_at = self.env.now
        queues = self.u_queues if queue_kind == "u" else self.k_queues
        queues.sync.submit(sync)
        self.service.notify_submit(self)

    def post_handlers(self):
        """Run delegated UFUNC handlers from the Handler Queue (§4.1)."""
        params = self.service.params
        for entry in self.u_queues.handler.drain():
            yield Compute(params.handler_dispatch_cycles, tag="handler")
            fn, args = entry
            fn(*args)

    def _prune_index(self, force=False):
        if force or len(self.task_index) > 64:
            self.task_index = [t for t in self.task_index if not t.is_finished]

    # ------------------------------------------------------------- snapshot

    def stats_snapshot(self):
        """Plain-dict view of this client's state (for copierstat)."""
        snap = {
            "queues": {
                "u_copy": len(self.u_queues.copy),
                "u_sync": len(self.u_queues.sync),
                "u_handler": len(self.u_queues.handler),
                "k_copy": len(self.k_queues.copy),
                "k_sync": len(self.k_queues.sync),
            },
            "pending_tasks": len(self.pending),
            "outstanding_bytes": self.outstanding_bytes,
            "task_index": len(self.task_index),
            "scheduler_total": self.service.scheduler.client_total(self),
            "descriptor_pool": {"hits": self.desc_pool.hits,
                                "misses": self.desc_pool.misses},
        }
        snap.update(self.stats.as_dict())
        return snap

    def __repr__(self):
        return "<CopierClient %s>" % self.name
