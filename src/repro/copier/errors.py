"""Copier error types."""


class CopyAborted(Exception):
    """csync on a region whose pending copy was explicitly aborted (§4.4)."""


class CopierSecurityError(Exception):
    """A submitted task failed the service's security checks (§4.5.4).

    The service drops the task and signals the offending process; this
    exception is what lands in the process (the simulated SIGSEGV).
    """
