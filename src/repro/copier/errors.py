"""Copier error types.

The fault-injection layer (:mod:`repro.faultinject`) distinguishes
*transient* infrastructure errors — worth retrying with backoff — from
persistent ones that demand degradation (engine fallback) or task drop.
The fault error classes are defined in :mod:`repro.faultinject` (so the
hardware layer can raise them without importing the copier package) and
re-exported here, where copy-path code looks for them.
"""

from repro.faultinject import (DMAAbortError, DMASubmitError, FramePoisonError,
                               PagePinError, TransientCopierError)
from repro.mem.errors import (MemoryLifecycleError, PinnedPageError,
                              UnpinMismatchError)

__all__ = [
    "CopyAborted",
    "TaskEFault",
    "TaskPoisoned",
    "FramePoisonError",
    "CopierSecurityError",
    "TransientCopierError",
    "DMASubmitError",
    "DMAAbortError",
    "PagePinError",
    "AdmissionReject",
    "DeadlineMissed",
    "MemoryLifecycleError",
    "PinnedPageError",
    "UnpinMismatchError",
]


class CopyAborted(Exception):
    """csync on a region whose pending copy was explicitly aborted (§4.4)."""


class TaskEFault(CopyAborted):
    """A task's source or destination was unmapped while it was in flight.

    The io_uring/IDXD answer to buffer-lifetime races: the task is retired
    with an ``efault`` outcome instead of crashing the service, and the
    error is delivered to the submitter at the next csync touching the
    range.  Subclasses :class:`CopyAborted` so callers that already handle
    aborted copies keep working.
    """

    def __init__(self, task_id, va, detail=""):
        self.task_id = task_id
        self.va = va
        msg = "task #%d faulted at 0x%x" % (task_id, va)
        if detail:
            msg += " (%s)" % detail
        super().__init__(msg)


class TaskPoisoned(CopyAborted):
    """An uncorrectable (poisoned) frame was consumed by a copy task.

    The machine-check answer to silent data corruption: when an engine
    hits poison under a task's range the task retires with a
    ``poisoned`` outcome — nothing partial is trusted — and this error
    is delivered to the submitter at the next csync touching the range,
    exactly like :class:`TaskEFault`.  Subclasses :class:`CopyAborted`
    so existing abort handling (fleet read fallback included) applies.
    """

    def __init__(self, task_id, va, detail=""):
        self.task_id = task_id
        self.va = va
        msg = "task #%d hit poisoned frame at 0x%x" % (task_id, va)
        if detail:
            msg += " (%s)" % detail
        super().__init__(msg)


class AdmissionReject(Exception):
    """Admission control refused the submission (service saturated).

    Raised back to the submitter by :meth:`CopierClient.submit_copy` when
    the active :mod:`repro.copier.admission` policy decides to reject
    rather than queue or shed.  Carries the policy's reason string.
    """

    def __init__(self, reason, nbytes=0):
        super().__init__(reason)
        self.reason = reason
        self.nbytes = nbytes


class DeadlineMissed(Exception):
    """A deadline-carrying csync timed out before its range landed.

    The covering tasks are cancelled before this propagates, so the
    service stops paying for work nobody will consume.
    """


class CopierSecurityError(Exception):
    """A submitted task failed the service's security checks (§4.5.4).

    The service drops the task and signals the offending process; this
    exception is what lands in the process (the simulated SIGSEGV).
    """
