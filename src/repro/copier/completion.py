"""The completion stage: retiring tasks, unpinning, and FUNC handlers.

Everything that happens *after* a task's last byte lands (or after it is
abandoned) lives here: marking it done/aborted, removing it from the
pending list, unpinning its pages, and dispatching its post-copy FUNC —
KFUNCs run in Copier's own context, UFUNCs are delegated to the client's
Handler Queue (§4.1).  Emits ``task-finished`` trace events at the
pipeline's final boundary.

The overload-protection layer adds two retirement flavours: tasks the
submitter :meth:`cancelled <repro.copier.client.CopierClient.cancel>`
and tasks whose :attr:`deadline <repro.copier.task.CopyTask.deadline>`
passed before their bytes landed.  Both retire through
:meth:`retire_overload` — clean unpin, a ``cancelled``/``deadline-miss``
trace outcome, and the handler still dispatched (kernel FUNCs often free
resources; skipping them would leak).  :meth:`reap_overload` is the
per-iteration sweep the worker loop runs over each client's pending
list.
"""

import zlib

from repro.copier import task as task_mod
from repro.copier.absorption import resolve_sources
from repro.faultinject import fold_segment_crc
from repro.mem.faults import MemoryFault
from repro.sim import Compute
from repro.sim.trace import IntegrityMismatch, TaskFinished


class CompletionHandler:
    """Retires tasks for one :class:`~repro.copier.service.CopierService`."""

    def __init__(self, service):
        self.service = service

    # ---------------------------------------------------------------- sweep

    def sweep(self, client):
        """Finalize tasks completed out-of-band (DMA callbacks, promotion)
        without charging handler-dispatch time inline."""
        for task in list(client.pending):
            if not task.is_finished and task.descriptor.all_ready:
                self.verify_integrity(client, task)
                task.state = task_mod.DONE
                task.completed_at = self.service.env.now
                client.pending.remove(task)
                client.stats.completed += 1
                self._finalize(client, task, "done")
                self.queue_handler(client, task)

    # --------------------------------------------------------------- finish

    def finish_task(self, client, task):
        """Retire a task whose segments all landed (generator)."""
        self.verify_integrity(client, task)
        task.state = task_mod.DONE
        task.completed_at = self.service.env.now
        try:
            client.pending.remove(task)
        except ValueError:
            pass  # already retired by a concurrent sweep — benign
        client.stats.completed += 1
        self._finalize(client, task, "done")
        yield from self.run_handler(client, task)

    # ------------------------------------------------------------- integrity

    def verify_integrity(self, client, task):
        """End-to-end CRC check at retirement (``COPIER_E2E_CRC=1``).

        ``task.crc_expect`` accumulated the intended bytes of every
        completed segment (folded order-independently); here — with the
        pins still held — the destination is re-read and checked.  On a
        mismatch the engines lied: the task is re-executed synchronously
        on the CPU from its (re-resolved) sources, and if any segment
        ran on the DMA engine that engine is quarantined, reusing the
        persistent-failure quarantine spine.  Repair is per-segment:
        segments whose destination a newer pending task overlaps are
        skipped (and counted) — re-executing those would clobber the
        newer task's bytes, and its own verification covers the range.
        """
        if task.crc_expect is None:
            return
        try:
            self._verify_integrity(client, task)
        except MemoryFault:
            # The range was unmapped between the last byte landing and
            # retirement (the same lifecycle race retire_efault covers
            # on the write path).  Nothing can read the destination any
            # more, so there is nothing left to protect — skip.
            pass

    def _verify_integrity(self, client, task):
        service = self.service
        integ = service.integrity
        integ.crc_checks += 1
        dst_as = task.dst.aspace
        actual = 0
        for seg in range(task.descriptor.n_segments):
            region = task.dst_range_of_segment(seg)
            crc = zlib.crc32(bytes(dst_as.read(region.start,
                                               region.length))) & 0xFFFFFFFF
            actual = fold_segment_crc(actual, seg, crc)
        if actual == task.crc_expect:
            return
        integ.crc_mismatches += 1
        # Synchronous CPU repair: re-resolve the sources (absorption may
        # still be feeding some spans from an earlier pending task) and
        # rewrite each segment host-side while the pins are held.  A
        # segment whose destination a *newer* pending task overlaps is
        # left alone — re-writing it would clobber the newer task's
        # bytes, and that task's own verification covers the range.
        newer = [o for o in client.pending
                 if (o is not task and not o.is_finished
                     and o.task_id > task.task_id
                     and o.dst.overlaps(task.dst))]
        use_absorption = service.dispatcher.use_absorption
        repaired_bytes = skipped = 0
        for seg in range(task.descriptor.n_segments):
            dst_region = task.dst_range_of_segment(seg)
            if any(o.dst.overlaps(dst_region) for o in newer):
                skipped += 1
                continue
            src_region = task.src_range_of_segment(seg)
            spans = resolve_sources(client.pending, task, src_region,
                                    enabled=use_absorption)
            pos = dst_region.start
            for span in spans:
                dst_as.write(pos, bytes(span.aspace.read(span.va,
                                                         span.nbytes)))
                pos += span.nbytes
            repaired_bytes += dst_region.length
        if skipped:
            integ.overlap_skips += 1
        trace = service.trace
        action = "reexec" if repaired_bytes else "overlap-skip"
        if trace.active:
            trace.emit(IntegrityMismatch(service.env.now, task.task_id,
                                         client.name, task.length, action))
        if not repaired_bytes:
            return
        integ.reexec_tasks += 1
        integ.reexec_bytes += repaired_bytes
        if task.dma_used:
            service.dispatcher.quarantine_dma()
            integ.quarantines += 1

    def retire_poisoned(self, client, task, exc):
        """Retire a task that consumed an uncorrectable (poisoned) frame.

        The machine-check analogue of :meth:`retire_efault`: nothing
        partial is trusted, the task retires loudly with a typed
        :class:`~repro.copier.errors.TaskPoisoned` parked on it, and the
        next csync touching the range delivers the error.  Pins release
        exactly once.
        """
        from repro.copier.errors import TaskPoisoned

        if task.is_finished:
            return
        task.state = task_mod.ABORTED
        if task.error is None:
            va = getattr(exc, "va", task.dst.start)
            task.error = TaskPoisoned(task.task_id, va, str(exc))
        task.descriptor.abort()
        try:
            client.pending.remove(task)
        except ValueError:
            pass  # not ingested yet, or already plucked — benign
        client.stats.poisoned_tasks += 1
        self.service.integrity.poisoned_tasks += 1
        trace = self.service.trace
        if trace.active:
            trace.emit(IntegrityMismatch(self.service.env.now, task.task_id,
                                         client.name, task.length,
                                         "poisoned"))
        self._finalize(client, task, "poisoned")
        self.queue_handler(client, task)

    def abort_task(self, client, task):
        """Discard a pending task (abort Sync Task path, §4.4)."""
        task.state = task_mod.ABORTED
        task.descriptor.abort()
        client.pending.remove(task)
        client.stats.aborted += 1
        self._finalize(client, task, "aborted")
        yield from self.run_handler(client, task)

    def drop_task(self, client, task, exc):
        """Unresolvable fault or failed security check (§4.5.4): drop the
        task and signal the process, exactly like the in-context OOM-kill
        or SIGSEGV would."""
        from repro.copier.errors import CopierSecurityError

        task.state = task_mod.ABORTED
        task.descriptor.abort()
        client.stats.dropped += 1
        self.service.tasks_dropped += 1
        self._finalize(client, task, "dropped")
        if client.sigsegv_handler is not None:
            client.sigsegv_handler(task, exc)
        elif client.process is not None:
            client.process.kill(CopierSecurityError(str(exc)))

    # ------------------------------------------------------------- overload

    def retire_overload(self, client, task, outcome):
        """Retire a cancelled or deadline-expired task (non-generator).

        ``outcome`` is ``"cancelled"`` or ``"deadline-miss"``.  The task
        may be anywhere in its lifecycle — still on a ring, pending, or
        partially copied — so the descriptor is aborted (csync on the
        range raises :class:`~repro.copier.errors.CopyAborted` rather
        than spinning forever) and pins are released exactly once.  The
        FUNC still dispatches, uncharged, like the sweep path: kernel
        handlers frequently release buffers and must not be skipped.
        """
        task.state = task_mod.ABORTED
        task.descriptor.abort()
        try:
            client.pending.remove(task)
        except ValueError:
            pass  # not ingested yet, or already plucked — benign
        overload = self.service.admission.stats
        if outcome == "cancelled":
            client.stats.cancelled += 1
            overload.cancelled += 1
        else:
            client.stats.deadline_misses += 1
            overload.deadline_misses += 1
        self._finalize(client, task, outcome)
        self.queue_handler(client, task)

    def reap_overload(self, client):
        """Retire every cancelled/expired task in the pending list;
        returns how many were retired (the worker's did-work signal)."""
        now = self.service.env.now
        reaped = 0
        for task in list(client.pending):
            if task.is_finished:
                continue
            if task.cancelled:
                self.retire_overload(client, task, "cancelled")
                reaped += 1
            elif task.expired(now):
                self.retire_overload(client, task, "deadline-miss")
                reaped += 1
        return reaped

    # ------------------------------------------------------------- lifecycle

    def retire_efault(self, client, task, exc):
        """Retire a task whose source/dest was unmapped mid-flight.

        The io_uring answer to buffer-lifetime races: the task fails with
        a typed EFAULT rather than crashing the service or killing the
        process (the unmap was a legal, if rude, application action).
        The error is parked on the task and re-raised by the next csync
        whose range depends on it.  Pins release exactly once — unpin of
        a lazily-torn-down page reclaims its deferred frame.
        """
        from repro.copier.errors import TaskEFault

        if task.is_finished:
            return
        task.state = task_mod.ABORTED
        if task.error is None:
            va = getattr(exc, "va", task.src.start)
            task.error = TaskEFault(task.task_id, va, str(exc))
        task.descriptor.abort()
        try:
            client.pending.remove(task)
        except ValueError:
            pass  # not ingested yet, or already plucked — benign
        client.stats.efault_tasks += 1
        self.service.lifecycle.efault_tasks += 1
        self._finalize(client, task, "efault")
        self.queue_handler(client, task)

    def reap_exit(self, client, task, outcome="exit-reap"):
        """Force-complete a task whose owning process is exiting.

        The IDXD cancel-on-exit path: descriptor aborted (any stranded
        waiter wakes), pins released so deferred frames reclaim, and only
        *kernel* FUNCs still dispatch — they free kernel resources; the
        process that would consume a UFUNC no longer exists.
        """
        task.state = task_mod.ABORTED
        task.descriptor.abort()
        try:
            client.pending.remove(task)
        except ValueError:
            pass
        client.stats.exit_reaped += 1
        self.service.lifecycle.exit_reaped += 1
        self._finalize(client, task, outcome)
        if task.handler is not None and task.handler[0] == "kfunc":
            self.queue_handler(client, task)

    # ---------------------------------------------------------------- pages

    def unpin(self, task):
        if task.pinned:
            task.src.aspace.unpin(task.src.start, task.src.length)
            task.dst.aspace.unpin(task.dst.start, task.dst.length)
            task.pinned = False

    # -------------------------------------------------------------- handlers

    def queue_handler(self, client, task):
        """Dispatch the FUNC without charging Copier time (sweep path)."""
        if task.handler is None:
            return
        kind, fn, args = task.handler
        if kind == "kfunc":
            fn(*args)
        else:
            client.u_queues.handler.submit((fn, args))

    def run_handler(self, client, task):
        """Dispatch the FUNC, charging handler-dispatch cycles (generator)."""
        if task.handler is None:
            return
        kind, fn, args = task.handler
        yield Compute(self.service.params.handler_dispatch_cycles,
                      tag="copier-mgmt")
        if kind == "kfunc":
            fn(*args)
        else:
            client.u_queues.handler.submit((fn, args))

    # ----------------------------------------------------------------- trace

    def _finalize(self, client, task, outcome):
        """Post-retirement bookkeeping shared by every path: release the
        pins, settle the outstanding-byte meter, count global progress
        (the watchdog's liveness signal), emit ``task-finished`` and fire
        the task's ``on_retire`` hook (exactly once — the async facade
        parks coroutine futures on it)."""
        self.unpin(task)
        client.outstanding_bytes = max(0,
                                       client.outstanding_bytes - task.length)
        self.service.tasks_retired += 1
        trace = self.service.trace
        if trace.active:
            trace.emit(TaskFinished(self.service.env.now, task.task_id,
                                    client.name, outcome, task.length))
        hook, task.on_retire = task.on_retire, None
        if hook is not None:
            hook(task, outcome)
