"""Hybrid subtasks and the piggyback-based hardware dispatcher (§4.3).

The dispatcher plans *rounds*: it takes the head of a client's pending
list, optionally fuses adjacent independent tasks (e-piggyback, for tasks
below the 12 KB i-piggyback threshold), splits the work into segment jobs,
finds physically-contiguous DMA-candidate runs, and pairs DMA work with
AVX work so both units finish together — DMA riding piggyback on the AVX
copy instead of the CPU waiting for it.
"""

from repro.copier.absorption import absorbed_bytes, resolve_sources
from repro.mem.faults import MemoryFault
from repro.mem.phys import PAGE_SIZE


class SegmentJob:
    """One segment of one task, with resolved source spans."""

    __slots__ = ("task", "seg_index", "dst_va", "nbytes", "spans")

    def __init__(self, task, seg_index, spans):
        self.task = task
        self.seg_index = seg_index
        dst = task.dst_range_of_segment(seg_index)
        self.dst_va = dst.start
        self.nbytes = dst.length
        self.spans = spans

    @property
    def absorbed(self):
        return absorbed_bytes(self.spans)

    @property
    def plain(self):
        """True when the job copies straight from its own task's source
        (one unabsorbed span) — the precondition for DMA eligibility."""
        return len(self.spans) == 1 and not self.spans[0].absorbed

    def __repr__(self):
        return "SegJob(task=%d seg=%d %dB)" % (
            self.task.task_id, self.seg_index, self.nbytes)


class DMARun:
    """A physically-contiguous run of consecutive plain segment jobs."""

    __slots__ = ("task", "jobs", "src_va", "dst_va", "nbytes")

    def __init__(self, task, jobs):
        self.task = task
        self.jobs = jobs
        self.src_va = jobs[0].spans[0].va
        self.dst_va = jobs[0].dst_va
        self.nbytes = sum(j.nbytes for j in jobs)

    def __repr__(self):
        return "DMARun(task=%d, %d jobs, %dB)" % (
            self.task.task_id, len(self.jobs), self.nbytes)


class RoundPlan:
    """The dispatcher's output: what runs where in this round."""

    def __init__(self, tasks, avx_jobs, dma_runs, mode):
        self.tasks = tasks
        self.avx_jobs = avx_jobs
        self.dma_runs = dma_runs
        self.mode = mode  # "i-piggyback", "e-piggyback" or "avx-only"

    @property
    def avx_bytes(self):
        return sum(j.nbytes for j in self.avx_jobs)

    @property
    def dma_bytes(self):
        return sum(r.nbytes for r in self.dma_runs)

    @property
    def total_bytes(self):
        return self.avx_bytes + self.dma_bytes


class Dispatcher:
    """Builds round plans from a client's pending list."""

    def __init__(self, params, use_dma=True, use_absorption=True, atcache=None):
        self.params = params
        self.use_dma = use_dma
        self.use_absorption = use_absorption
        self.atcache = atcache
        self.dma_quarantined = False
        self.rounds_planned = 0
        self.bytes_to_dma = 0
        self.bytes_to_avx = 0
        self.bytes_absorbed = 0

    @property
    def dma_available(self):
        """DMA is configured on *and* has not been quarantined."""
        return self.use_dma and not self.dma_quarantined

    def quarantine_dma(self):
        """Stop assigning DMA runs after persistent device failure.

        The executor calls this once submit retries have been exhausted
        repeatedly; every subsequent round runs AVX-only, which is the
        paper's degradation story — the service keeps its asynchronous
        contract on the engines that still work.
        """
        self.dma_quarantined = True

    #: Assumed DMA-run size when estimating translation amortization.
    _EST_RUN_BYTES = 16 * 1024

    def _translate_cost_per_byte(self):
        """Expected software-translation cycles per DMA byte.

        DMA runs are physically contiguous, so only the run's first page
        needs a full walk (~240 cyc) — the rest verify at hit cost.  The
        live ATCache hit rate discounts even the first walk for recycled
        buffers (the ≥75 % recurrence the paper measures in Redis), which
        is why DMA's share grows with buffer repetition (Fig. 9)."""
        p = self.params
        hit = self.atcache.hit_rate if self.atcache is not None else 0.0
        first = hit * p.atcache_hit_cycles + (1.0 - hit) * p.page_translate_cycles
        pages = max(1, self._EST_RUN_BYTES // PAGE_SIZE)
        per_run = first + (pages - 1) * p.atcache_hit_cycles
        return 2.0 * per_run / self._EST_RUN_BYTES

    # ------------------------------------------------------------- planning

    def build_round(self, pending, budget_bytes, head=None):
        """Plan one round starting at ``head`` (default: first runnable task).

        Returns a :class:`RoundPlan` or ``None`` when nothing is runnable.
        """
        params = self.params
        if head is None:
            head = pending.runnable_head()
        if head is None:
            return None

        tasks = self._lazy_prerequisites(pending, head)
        tasks.append(head)
        mode = "i-piggyback" if head.length >= params.i_piggyback_threshold \
            else "e-piggyback"
        if mode == "e-piggyback":
            tasks.extend(self._fusable_followers(pending, tasks, budget_bytes))

        jobs = []
        budget = budget_bytes
        for task in tasks:
            for seg_index in task.segments_pending():
                if budget <= 0:
                    break
                region = task.src_range_of_segment(seg_index)
                spans = resolve_sources(
                    pending, task, region, enabled=self.use_absorption
                )
                job = SegmentJob(task, seg_index, spans)
                jobs.append(job)
                budget -= job.nbytes
            if budget <= 0:
                break
        if not jobs:
            return RoundPlan(tasks, [], [], mode)

        dma_runs = self._assign_dma(jobs) if self.dma_available else []
        dma_job_ids = {id(j) for run in dma_runs for j in run.jobs}
        avx_jobs = [j for j in jobs if id(j) not in dma_job_ids]

        self.rounds_planned += 1
        plan = RoundPlan(tasks, avx_jobs, dma_runs, mode)
        self.bytes_to_dma += plan.dma_bytes
        self.bytes_to_avx += plan.avx_bytes
        self.bytes_absorbed += sum(j.absorbed for j in jobs)
        return plan

    def _lazy_prerequisites(self, pending, head):
        """Lazy tasks that must materialize before ``head`` runs.

        With absorption on, RAW producers are read *through* (that is the
        point of lazy tasks, §4.4) — only WAR/WAW hazards force execution.
        With absorption off, RAW producers must execute too.

        The closure is transitive: a forced prerequisite may itself have
        lazy hazards that must run even earlier (e.g. head overwrites the
        source of lazy L2, and L2 overwrites the source of lazy L1 — L1
        must read before L2 writes before head writes).
        """
        prereqs = []
        seen = {head.task_id}
        stack = [head]
        while stack:
            current = stack.pop()
            for dep in pending.dependencies_of(current):
                if not dep.lazy or dep.is_finished or dep.task_id in seen:
                    continue
                war_waw = (current.dst.overlaps(dep.src)
                           or current.dst.overlaps(dep.dst))
                raw = current.src.overlaps(dep.dst)
                if war_waw or (raw and not self.use_absorption):
                    seen.add(dep.task_id)
                    prereqs.append(dep)
                    stack.append(dep)
        prereqs.sort(key=lambda t: t.order_key)
        return prereqs

    def _fusable_followers(self, pending, round_tasks, budget_bytes):
        """e-piggyback: adjacent tasks with no data dependency on the round."""
        params = self.params
        fused = []
        total = sum(t.length for t in round_tasks)
        for task in pending:
            if task in round_tasks or task.lazy or task.is_finished:
                continue
            if task.order_key < round_tasks[-1].order_key:
                continue
            if total + task.length > max(budget_bytes, params.i_piggyback_threshold):
                break
            # No data dependency on ANY unfinished earlier task — not just
            # the round's tasks: fusing would also hop over skipped (lazy)
            # tasks it conflicts with, reordering a WAR/WAW hazard.
            if any(not dep.is_finished
                   for dep in pending.dependencies_of(task)):
                break
            fused.append(task)
            total += task.length
        return fused

    # ----------------------------------------------------- DMA assignment

    def _assign_dma(self, jobs):
        """Pick DMA runs from the *latter* candidates, balancing unit times.

        Latter segments/tasks have the longest Copy-Use windows (§4.3), so
        they tolerate DMA's slower start; the CPU keeps the head of the
        round where the client will look first.
        """
        params = self.params
        candidates = self._candidate_runs(jobs)
        if not candidates:
            return []
        total_bytes = sum(j.nbytes for j in jobs)
        avx_rate = params.avx_bytes_per_cycle
        dma_rate = params.dma_bytes_per_cycle
        # Completion-time balance (§4.3): choose d so that
        #   submit + translate(d) + d/dma_rate  ≈  (total - d)/avx_rate,
        # where translation is paid on the Copier core before AVX starts.
        tc = self._translate_cost_per_byte()
        target = (total_bytes / avx_rate - params.dma_submit_cycles) / (
            1.0 / dma_rate + tc + 1.0 / avx_rate)
        floor = params.dma_candidate_min_bytes
        if target < floor:
            # Balanced split is below the candidacy floor.  A single
            # floor-sized run may still be profitable (warm ATCache, small
            # fused copies) as long as DMA does not outlast the AVX stream.
            dma_time = (params.dma_submit_cycles + tc * floor
                        + floor / dma_rate)
            avx_time = (total_bytes - floor) / avx_rate
            if dma_time <= avx_time:
                target = floor
            else:
                return []
        chosen = []
        dma_bytes = 0
        for run in reversed(candidates):
            remaining = target - dma_bytes
            if remaining <= 0:
                break
            if run.nbytes <= remaining:
                chosen.append(run)
                dma_bytes += run.nbytes
                continue
            # Split the run: take its *tail* (longest Copy-Use window),
            # keeping the partial piece above the DMA candidacy floor.
            tail = []
            tail_bytes = 0
            for job in reversed(run.jobs):
                if tail_bytes + job.nbytes > remaining:
                    break
                tail.insert(0, job)
                tail_bytes += job.nbytes
            if tail and tail_bytes >= params.dma_candidate_min_bytes:
                chosen.append(DMARun(run.task, tail))
                dma_bytes += tail_bytes
            break
        chosen.reverse()
        return chosen

    def _candidate_runs(self, jobs):
        """Maximal physically-contiguous runs of plain jobs ≥ the DMA floor.

        Discovery is *run-based*: VA-adjacent plain jobs of one task are
        grouped, the group's whole source and destination ranges are
        translated once into physical runs (:meth:`~repro.mem.addrspace.
        AddressSpace.translate_run`, TLB-backed), and DMA runs are cut at
        the physical discontinuities — instead of probing every page of
        every job and every job boundary separately.
        """
        params = self.params
        runs = []
        group = []
        for job in jobs:
            if group and self._va_follows(group[-1], job):
                group.append(job)
            else:
                runs.extend(self._split_group(group))
                group = [job] if job.plain else []
        runs.extend(self._split_group(group))
        return [r for r in runs if r.nbytes >= params.dma_candidate_min_bytes]

    @staticmethod
    def _va_follows(prev, job):
        """True when ``job`` continues ``prev``'s group: next segment of
        the same task, plain, and VA-adjacent on both source and dest."""
        if job.task is not prev.task or job.seg_index != prev.seg_index + 1:
            return False
        if not job.plain:
            return False
        prev_span, span = prev.spans[0], job.spans[0]
        return (prev_span.va + prev_span.nbytes == span.va
                and prev.dst_va + prev.nbytes == job.dst_va)

    def _split_group(self, group):
        """Cut a VA-contiguous job group into physically-contiguous DMARuns.

        A job belongs to a run iff it lies entirely inside one physical
        run on *both* sides; consecutive such jobs extend the same DMARun
        iff they share those physical runs (equivalent to the historic
        per-job probe + per-boundary adjacency check).
        """
        if not group:
            return []
        first = group[0]
        total = sum(j.nbytes for j in group)
        aspace = first.spans[0].aspace
        dst_as = first.task.dst.aspace
        try:
            src_runs = aspace.translate_run(first.spans[0].va, total)
            dst_runs = dst_as.translate_run(first.dst_va, total, write=True)
        except MemoryFault:
            # Unmapped/unwritable page somewhere in the group: retry per
            # job so one faulted page only disqualifies the jobs it
            # touches (the AVX path resolves the fault inline).  Anything
            # other than a memory fault is a real bug and must propagate.
            return self._split_group_per_job(group)
        # Prefix-sum run boundaries → for each job offset, which physical
        # run (src, dst) contains it.
        runs = []
        current = []
        current_key = None
        offset = 0
        si = di = 0
        s_end = src_runs[0][2]
        d_end = dst_runs[0][2]
        for job in group:
            job_end = offset + job.nbytes
            while s_end < job_end:
                si += 1
                s_end += src_runs[si][2]
            while d_end < job_end:
                di += 1
                d_end += dst_runs[di][2]
            # The job is capable iff it starts inside the same physical
            # runs it ends in (runs are maximal, so spanning a boundary
            # means discontiguous).
            capable = (s_end - src_runs[si][2] <= offset
                       and d_end - dst_runs[di][2] <= offset)
            if capable and current_key == (si, di):
                current.append(job)
            else:
                self._close_run(runs, current)
                current = [job] if capable else []
            current_key = (si, di) if capable else None
            offset = job_end
        self._close_run(runs, current)
        return runs

    def _split_group_per_job(self, group):
        """Fault-tolerant fallback: probe each job's ranges separately."""
        runs = []
        current = []
        for job in group:
            if self._job_contiguous(job):
                current.append(job)
            else:
                self._close_run(runs, current)
                current = []
        self._close_run(runs, current)
        # Boundary adjacency within the surviving jobs is re-checked by
        # splitting on physical breaks between consecutive jobs.
        split = []
        for run in runs:
            split.extend(self._split_run_on_boundaries(run))
        return split

    def _job_contiguous(self, job):
        span = job.spans[0]
        try:
            if len(span.aspace.translate_run(span.va, span.nbytes)) > 1:
                return False
            return len(job.task.dst.aspace.translate_run(
                job.dst_va, job.nbytes, write=True)) <= 1
        except MemoryFault:
            return False

    def _split_run_on_boundaries(self, run):
        out = []
        current = [run.jobs[0]]
        for prev, job in zip(run.jobs, run.jobs[1:]):
            prev_span, span = prev.spans[0], job.spans[0]
            try:
                src_adj = len(span.aspace.translate_run(
                    prev_span.va, prev_span.nbytes + span.nbytes)) <= 1
                dst_adj = len(job.task.dst.aspace.translate_run(
                    prev.dst_va, prev.nbytes + job.nbytes, write=True)) <= 1
            except MemoryFault:
                src_adj = dst_adj = False
            if src_adj and dst_adj:
                current.append(job)
            else:
                out.append(DMARun(run.task, current))
                current = [job]
        out.append(DMARun(run.task, current))
        return out

    @staticmethod
    def _close_run(runs, current):
        if current:
            runs.append(DMARun(current[0].task, list(current)))
