"""Copier task types and memory regions (§4.1, §4.2).

A Copy Task names a source and destination range, a segment granularity and
a descriptor; Sync Tasks promote ranges (or abort pending copies); Barrier
Tasks record cross-queue positions for order-dependency tracking.
"""

# Task lifecycle states.
PENDING = "pending"
RUNNING = "running"
DONE = "done"
ABORTED = "aborted"

# Task types (the paper's `type` field).
TYPE_NORMAL = "normal"
TYPE_LAZY = "lazy"


class _TaskIdCounter:
    """Monotonic task-id source with a *readable* position.

    ``itertools.count`` hides its next value, which makes the machine
    checkpoint (repro.ckpt) unable to save/restore the id stream; this
    is the same iterator protocol with ``next_value`` exposed.
    """

    __slots__ = ("next_value",)

    def __init__(self, start=1):
        self.next_value = start

    def __next__(self):
        value = self.next_value
        self.next_value = value + 1
        return value


_task_ids = _TaskIdCounter(1)


class Region:
    """A byte range inside one address space."""

    __slots__ = ("aspace", "start", "length")

    def __init__(self, aspace, start, length):
        self.aspace = aspace
        self.start = start
        self.length = length

    @property
    def end(self):
        return self.start + self.length

    def overlaps(self, other):
        return (
            self.aspace.asid == other.aspace.asid
            and self.start < other.end
            and other.start < self.end
        )

    def contains(self, other):
        return (
            self.aspace.asid == other.aspace.asid
            and self.start <= other.start
            and other.end <= self.end
        )

    def intersection(self, other):
        if not self.overlaps(other):
            return None
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        return Region(self.aspace, start, end - start)

    def __repr__(self):
        return "Region(as=%d, 0x%x+%d)" % (self.aspace.asid, self.start, self.length)


class CopyTask:
    """An asynchronous copy request.

    ``order_key`` is filled in at submission by the queue layer: a tuple
    that merges u-mode and k-mode streams into a single per-client order
    (see :mod:`repro.copier.deps`).  ``handler`` is the post-copy FUNC
    (§4.1): ``("kfunc", callable, args)`` runs in Copier's context,
    ``("ufunc", callable, args)`` is delegated to the client's Handler
    Queue.
    """

    __slots__ = (
        "task_id",
        "client",
        "queue_kind",
        "src",
        "dst",
        "descriptor",
        "handler",
        "task_type",
        "order_key",
        "state",
        "submitted_at",
        "started_at",
        "completed_at",
        "promoted",
        "pinned",
        "absorbed_bytes",
        "lazy_deadline",
        "deadline",
        "cancelled",
        "error",
        "on_retire",
        "crc_expect",
        "dma_used",
    )

    def __init__(self, client, queue_kind, src, dst, descriptor,
                 handler=None, task_type=TYPE_NORMAL):
        if src.length != dst.length:
            raise ValueError("copy src/dst length mismatch")
        self.task_id = next(_task_ids)
        self.client = client
        self.queue_kind = queue_kind
        self.src = src
        self.dst = dst
        self.descriptor = descriptor
        self.handler = handler
        self.task_type = task_type
        self.order_key = None
        self.state = PENDING
        self.submitted_at = None
        self.started_at = None
        self.completed_at = None
        self.promoted = False
        self.pinned = False
        self.absorbed_bytes = 0
        self.lazy_deadline = None
        #: Absolute cycle by which the submitter wants the copy completed;
        #: the service retires the task (``deadline-miss``) once it passes.
        self.deadline = None
        #: Set by :meth:`CopierClient.cancel`; the next service pass
        #: retires the task without copying further bytes.
        self.cancelled = False
        #: The typed error (e.g. :class:`~repro.copier.errors.TaskEFault`)
        #: that retired this task, delivered to csyncs over its range.
        self.error = None
        #: Retirement hook ``fn(task, outcome)``, fired exactly once on
        #: every retirement path (done/shed/efault/cancel/reap).  The
        #: async serving facade parks coroutine futures on it.
        self.on_retire = None
        #: End-to-end CRC accumulator (``COPIER_E2E_CRC=1``): the
        #: intended-bytes checksum folded in per completed segment and
        #: verified against the destination at retirement.  ``None``
        #: while the defense is disarmed.
        self.crc_expect = None
        #: True once any segment of this task ran on the DMA engine —
        #: the quarantine target when verification catches corruption.
        self.dma_used = False

    @property
    def length(self):
        return self.src.length

    @property
    def lazy(self):
        return self.task_type == TYPE_LAZY

    @property
    def is_finished(self):
        return self.state in (DONE, ABORTED)

    def expired(self, now):
        """True when the task carries a deadline that has already passed."""
        return self.deadline is not None and now > self.deadline

    def segments_pending(self):
        """Indices of segments not yet copied."""
        return [i for i in range(self.descriptor.n_segments)
                if not self.descriptor.is_ready(i)]

    def dst_range_of_segment(self, index):
        """The destination byte range covered by segment ``index``."""
        seg = self.descriptor.segment_bytes
        start = self.dst.start + index * seg
        length = min(seg, self.dst.end - start)
        return Region(self.dst.aspace, start, length)

    def src_range_of_segment(self, index):
        seg = self.descriptor.segment_bytes
        offset = index * seg
        length = min(seg, self.length - offset)
        return Region(self.src.aspace, self.src.start + offset, length)

    def segments_covering(self, region):
        """Segment indices whose *destination* range intersects ``region``."""
        if region.aspace.asid != self.dst.aspace.asid:
            return []
        inter = self.dst.intersection(region)
        if inter is None:
            return []
        seg = self.descriptor.segment_bytes
        first = (inter.start - self.dst.start) // seg
        last = (inter.end - 1 - self.dst.start) // seg
        return list(range(first, last + 1))

    def segments_covering_src(self, region):
        """Segment indices whose *source* range intersects ``region``."""
        if region.aspace.asid != self.src.aspace.asid:
            return []
        inter = self.src.intersection(region)
        if inter is None:
            return []
        seg = self.descriptor.segment_bytes
        first = (inter.start - self.src.start) // seg
        last = (inter.end - 1 - self.src.start) // seg
        return list(range(first, last + 1))

    def __repr__(self):
        return "<CopyTask #%d %s %s->%s %s%s>" % (
            self.task_id,
            self.queue_kind,
            self.src,
            self.dst,
            self.state,
            " lazy" if self.lazy else "",
        )


class SyncTask:
    """A promotion (or abort) request for a destination range (§4.1, §4.4)."""

    __slots__ = ("task_id", "client", "queue_kind", "region", "abort", "submitted_at")

    def __init__(self, client, queue_kind, region, abort=False):
        self.task_id = next(_task_ids)
        self.client = client
        self.queue_kind = queue_kind
        self.region = region
        self.abort = abort
        self.submitted_at = None

    def __repr__(self):
        kind = "abort" if self.abort else "sync"
        return "<SyncTask #%d %s %s>" % (self.task_id, kind, self.region)


class BarrierTask:
    """Records the paired u-mode Copy Queue position at a trap/return event.

    ``u_position`` is the count of u-mode tasks acquired at the moment the
    kernel crossed the privilege boundary; k-mode tasks submitted after this
    barrier depend on exactly those u-mode tasks (§4.2.1, Fig. 6-a).
    """

    __slots__ = ("task_id", "u_position", "u_epoch")

    def __init__(self, u_position, u_epoch):
        self.task_id = next(_task_ids)
        self.u_position = u_position
        self.u_epoch = u_epoch

    def __repr__(self):
        return "<Barrier u_pos=%d epoch=%d>" % (self.u_position, self.u_epoch)
