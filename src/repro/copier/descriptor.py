"""Segment descriptors: fine-grained copy progress bitmaps (§4.1).

A descriptor partitions a copy into fixed-size *segments* and tracks which
segments have landed.  Clients csync against the bitmap, so data can be
used as soon as the needed prefix arrives — the copy-use pipeline.  The
service marks bits as it copies; waiters registered by csync fire as soon
as their range becomes fully ready.
"""


class Descriptor:
    """Progress bitmap for one async copy."""

    __slots__ = ("length", "segment_bytes", "_bits", "_ready_count",
                 "n_segments", "_waiters", "pool", "size_class", "aborted")

    def __init__(self, length, segment_bytes, pool=None, size_class=None):
        if length <= 0:
            raise ValueError("descriptor length must be positive")
        if segment_bytes <= 0:
            raise ValueError("segment size must be positive")
        self.length = length
        self.segment_bytes = segment_bytes
        self.n_segments = (length + segment_bytes - 1) // segment_bytes
        self._bits = 0
        self._ready_count = 0
        self._waiters = []  # (first_seg, last_seg, event)
        self.pool = pool
        self.size_class = size_class
        self.aborted = False

    # ------------------------------------------------------------- progress

    def mark(self, index):
        """Mark segment ``index`` copied; wakes satisfied waiters."""
        if index < 0 or index >= self.n_segments:
            raise IndexError("segment %d out of range" % index)
        bit = 1 << index
        if self._bits & bit:
            return
        self._bits |= bit
        self._ready_count += 1
        self._wake_waiters()

    def mark_range(self, first, last):
        """Mark segments ``[first, last]`` copied in one bitmap update.

        Equivalent to calling :meth:`mark` for each index, but the bitmap
        is updated with a single OR and satisfied waiters fire exactly
        once — the path the executor uses when a multi-segment round (or
        DMA run) retires together.
        """
        if first < 0 or last >= self.n_segments or first > last:
            raise IndexError("segment range [%d, %d] out of range" % (first, last))
        mask = ((1 << (last - first + 1)) - 1) << first
        new = mask & ~self._bits
        if not new:
            return
        self._bits |= mask
        self._ready_count += bin(new).count("1")
        self._wake_waiters()

    def _wake_waiters(self):
        if self._waiters:
            still_waiting = []
            for first, last, event in self._waiters:
                if self.range_ready_segments(first, last):
                    event.succeed()
                else:
                    still_waiting.append((first, last, event))
            self._waiters = still_waiting

    def is_ready(self, index):
        return bool(self._bits & (1 << index))

    @property
    def all_ready(self):
        return self._ready_count == self.n_segments

    @property
    def ready_segments(self):
        return self._ready_count

    def ready_bytes(self):
        total = 0
        for i in range(self.n_segments):
            if self.is_ready(i):
                total += min(self.segment_bytes, self.length - i * self.segment_bytes)
        return total

    # ------------------------------------------------------------ range ops

    def segments_of_range(self, offset, length):
        """Segment index span [first, last] covering bytes [offset, offset+length)."""
        if length <= 0:
            raise ValueError("empty range")
        if offset < 0 or offset + length > self.length:
            raise ValueError("range outside descriptor")
        first = offset // self.segment_bytes
        last = (offset + length - 1) // self.segment_bytes
        return first, last

    def range_ready(self, offset, length):
        """True if every segment covering the byte range is marked."""
        first, last = self.segments_of_range(offset, length)
        return self.range_ready_segments(first, last)

    def range_ready_segments(self, first, last):
        mask = ((1 << (last - first + 1)) - 1) << first
        return (self._bits & mask) == mask

    def wait_range(self, env, offset, length):
        """Event that triggers once [offset, offset+length) is fully copied."""
        event = env.event()
        first, last = self.segments_of_range(offset, length)
        if self.range_ready_segments(first, last):
            event.succeed()
        else:
            self._waiters.append((first, last, event))
        return event

    def abort(self):
        """Mark the copy discarded: the data will never arrive (§4.4).

        Waiters are woken so a csync racing an abort raises instead of
        spinning forever; :mod:`repro.api` turns this into ``CopyAborted``.
        """
        self.aborted = True
        waiters, self._waiters = self._waiters, []
        for _first, _last, event in waiters:
            event.succeed()

    def reset(self):
        self._bits = 0
        self._ready_count = 0
        self._waiters = []
        self.aborted = False

    def release(self):
        """Return a pooled descriptor to its pool (§5.1.1)."""
        if self.pool is not None:
            self.pool.release(self)

    def __repr__(self):
        return "<Descriptor %d/%d segs of %dB>" % (
            self._ready_count, self.n_segments, self.segment_bytes)


class DescriptorPool:
    """Pre-allocated descriptors by size class (§5.1.1).

    libCopier keeps pools so task submission does not pay allocation on the
    hot path; we track hit/miss counts so that benefit is observable.
    """

    #: Size classes in bytes; requests round up to the nearest class.
    DEFAULT_CLASSES = (1024, 4096, 16384, 65536, 262144, 1048576)

    def __init__(self, segment_bytes, classes=DEFAULT_CLASSES, prealloc=8):
        self.segment_bytes = segment_bytes
        self.classes = tuple(sorted(classes))
        self._free = {c: [] for c in self.classes}
        self.hits = 0
        self.misses = 0
        for c in self.classes:
            for _ in range(prealloc):
                self._free[c].append(
                    Descriptor(c, segment_bytes, pool=self, size_class=c)
                )

    def _size_class(self, length):
        for c in self.classes:
            if length <= c:
                return c
        return None

    def acquire(self, length, segment_bytes=None):
        """Fetch a descriptor able to track ``length`` bytes.

        Pooled descriptors keep the pool's segment size; odd sizes or
        custom granularities fall back to direct allocation (a miss).
        """
        seg = segment_bytes or self.segment_bytes
        size_class = self._size_class(length) if seg == self.segment_bytes else None
        if size_class is not None and self._free[size_class]:
            desc = self._free[size_class].pop()
            # Re-shape the pooled descriptor to the exact length.
            desc.length = length
            desc.n_segments = (length + seg - 1) // seg
            desc.reset()
            self.hits += 1
            return desc
        self.misses += 1
        return Descriptor(length, seg, pool=self if size_class else None,
                          size_class=size_class)

    def release(self, descriptor):
        if descriptor.size_class is None:
            return
        descriptor.reset()
        self._free[descriptor.size_class].append(descriptor)
