"""The execution stage: ingest, fault promotion, and round execution.

This layer does the Copier thread's actual work each iteration:

* **ingest** — move published Copy Tasks from the CSH rings into the
  pending list, with security checks, proactive fault handling and page
  pinning (§4.5.4);
* **sync handling** — serve Sync Tasks: aborts, and out-of-order
  *promotion* of the segments a csync is spinning on (§4.2.2);
* **round execution** — run the piggyback dispatcher's plans, pairing the
  AVX stream with DMA runs and writing resolved source spans (§4.3–§4.4).

Retirement of finished tasks is delegated to
:class:`repro.copier.completion.CompletionHandler`.

The executor is also where the copy path degrades gracefully under
faults (:mod:`repro.faultinject`): transient DMA submit failures are
retried with exponential backoff, persistent failures and mid-transfer
aborts re-route the affected runs to the AVX stream (``engine-fallback``
on the trace bus, with DMA quarantined after repeated persistent
failures), and transient page-pin failures during ingest retry before a
task is ever dropped.  Every absorbed fault is recorded in the service's
:class:`~repro.faultinject.RecoveryStats`.
"""

import zlib

from repro.copier.absorption import resolve_sources
from repro.copier.errors import (DMAAbortError, DMASubmitError,
                                 FramePoisonError, PagePinError)
from repro.faultinject import fold_segment_crc
from repro.hw.dma import DMASubtask
from repro.mem.addrspace import copy_range
from repro.mem.faults import MemoryFault, SegmentationFault
from repro.sim import Compute, Timeout, WaitEvent
from repro.sim.trace import (DmaCompleted, EngineFallback, RoundPlanned,
                             SegmentExecuted, TaskIngested)

_INGEST_CYCLES_PER_TASK = 20
_AVX_SEGMENT_OVERHEAD = 5

#: DMA submit retry budget before the round falls back to the CPU engine.
_MAX_DMA_SUBMIT_RETRIES = 3
_DMA_RETRY_BACKOFF_CYCLES = 200

#: Exhausted-retry episodes tolerated before DMA is quarantined entirely.
_DMA_QUARANTINE_EPISODES = 2

#: Page-pin retry budget before the task is dropped as unresolvable.
_MAX_PIN_RETRIES = 6
_PIN_RETRY_BACKOFF_CYCLES = 150


class CopyExecutor:
    """Executes copy work for one :class:`~repro.copier.service.
    CopierService`; shared by all of its worker threads."""

    def __init__(self, service, completion):
        self.service = service
        self.completion = completion

    # --------------------------------------------------------------- ingest

    def ingest(self, client):
        """Move published Copy Tasks into the pending list with proactive
        fault handling (§4.5.4).  Returns cycles to charge."""
        cost = 0
        for queue in (client.k_queues.copy, client.u_queues.copy):
            for task in queue.drain():
                cost += _INGEST_CYCLES_PER_TASK
                cost += self._prepare_task(client, task)
        return cost

    def _prepare_task(self, client, task):
        """Security checks, proactive faulting, pinning, translation."""
        params = self.service.params
        cost = 0
        from repro.mem.phys import OutOfMemory

        # Cancelled or already-expired tasks retire here, before any pin
        # or page work is spent on bytes nobody will consume.
        if task.cancelled:
            self.completion.retire_overload(client, task, "cancelled")
            return cost
        if task.expired(self.service.env.now):
            self.completion.retire_overload(client, task, "deadline-miss")
            return cost
        try:
            task.src.aspace.check_range(task.src.start, task.src.length, write=False)
            task.dst.aspace.check_range(task.dst.start, task.dst.length, write=True)
        except SegmentationFault as exc:
            # A range that *was* mapped and disappeared is a lifecycle
            # race (munmap beat the ingest) — EFAULT, not SIGSEGV.  A
            # never-mapped range is an application bug and still kills.
            if (task.src.aspace.was_unmapped(task.src.start, task.src.length)
                    or task.dst.aspace.was_unmapped(task.dst.start,
                                                    task.dst.length)):
                self.completion.retire_efault(client, task, exc)
            else:
                self.completion.drop_task(client, task, exc)
            return cost
        try:
            resolutions = []
            resolutions += task.src.aspace.ensure_mapped(
                task.src.start, task.src.length, write=False)
            resolutions += task.dst.aspace.ensure_mapped(
                task.dst.start, task.dst.length, write=True)
        except OutOfMemory as exc:
            self.completion.drop_task(client, task, exc)
            return cost
        for kind in resolutions:
            cost += params.page_alloc_cycles
            if kind == "cow_copy":
                cost += params.cpu_copy_cycles(4096, engine="avx")
        stats = self.service.fault_stats
        attempts = 0
        while True:
            try:
                self._pin_task(task)
                break
            except PagePinError as exc:
                stats.pin_failures += 1
                attempts += 1
                if attempts > _MAX_PIN_RETRIES:
                    self.completion.drop_task(client, task, exc)
                    return cost
                cost += _PIN_RETRY_BACKOFF_CYCLES
        if attempts:
            stats.pin_retries_ok += 1
        if self.service.e2e_crc:
            # Arm the end-to-end checksum at prepare: every completed
            # segment folds its intended-bytes CRC in, and retirement
            # verifies the destination against the accumulator.
            task.crc_expect = 0
        client.pending.add(task)
        trace = self.service.trace
        if trace.active:
            trace.emit(TaskIngested(self.service.env.now, task.task_id,
                                    client.name))
        return cost

    def _pin_task(self, task):
        """Pin both ranges, leaving no partial pin behind on failure."""
        inj = self.service.faults
        if inj.armed and inj.fire("pin_fail"):
            raise PagePinError("transient pin failure on source range")
        task.src.aspace.pin(task.src.start, task.src.length)
        try:
            if inj.armed and inj.fire("pin_fail"):
                raise PagePinError("transient pin failure on destination range")
        except PagePinError:
            task.src.aspace.unpin(task.src.start, task.src.length)
            raise
        task.dst.aspace.pin(task.dst.start, task.dst.length, write=True)
        task.pinned = True

    # ------------------------------------------------------------ sync path

    def handle_sync(self, client, sync, _depth=0):
        # The Copy Task a sync refers to may have been published *after*
        # this iteration's ingest pass swept the client's rings; re-ingest
        # so promotion/abort sees it (queue order guarantees the copy was
        # acquired before the sync that names it).
        cost = self.ingest(client)
        if cost:
            yield Compute(cost, tag="copier-mgmt")
        if sync.abort:
            # Only discard copies submitted *before* the abort: buffers are
            # recycled, and a newer task on the same range must survive.
            for task in client.pending.tasks_writing(sync.region):
                if task.task_id < sync.task_id:
                    yield from self.completion.abort_task(client, task)
            return
        yield from self._promote_region(client, sync.region, _depth=_depth)

    def serve_other_syncs(self, busy_client):
        """Between slices of a bulk promotion, serve other clients' Sync
        Tasks so one client's huge csync cannot monopolize the thread
        (the copy-slice guarantee of §4.5.3)."""
        for kind in ("k", "u"):
            for other in list(self.service.clients):
                if other is busy_client:
                    continue
                queues = other.k_queues if kind == "k" else other.u_queues
                for sync in queues.sync.drain():
                    yield from self.handle_sync(other, sync, _depth=1)

    def _promote_region(self, client, region, _depth=0):
        """Out-of-order execution of the segments a Sync Task needs (§4.2.2)."""
        service = self.service
        if _depth > 16:
            return
        for task in list(client.pending.tasks_writing(region)):
            segs = [s for s in task.segments_covering(region)
                    if not task.descriptor.is_ready(s)]
            if not segs:
                continue
            task.promoted = True
            needed = len(segs) * task.descriptor.segment_bytes
            hazards = [d for d in client.pending.dependencies_of(task)
                       if not d.is_finished]
            if (needed >= service.params.i_piggyback_threshold and not hazards
                    and service.dispatcher.dma_available):
                # Large promotion with no reordering hazards: run the full
                # piggyback dispatcher so DMA still helps (§4.3) — but in
                # copy-slice-bounded rounds, serving other clients' syncs
                # in between so the bulk csync cannot starve them.
                budget = service.scheduler.copy_slice_bytes
                progressed = True
                while (progressed and not task.is_finished
                       and not task.descriptor.all_ready):
                    plan = service.dispatcher.build_round(
                        client.pending, budget_bytes=budget, head=task)
                    if plan is None or not (plan.avx_jobs or plan.dma_runs):
                        progressed = False
                        break
                    yield from self.execute_plan(client, plan)
                    if _depth == 0:
                        yield from self.serve_other_syncs(client)
                if task.is_finished or task.descriptor.all_ready:
                    continue
            yield from self._execute_segments(client, task, segs,
                                              _depth=_depth)

    def _execute_segments(self, client, task, segments, _depth=0):
        """Copy specific segments now, honoring WAR/WAW hazards recursively."""
        service = self.service
        params = service.params
        for seg in segments:
            if task.is_finished or task.descriptor.is_ready(seg):
                continue
            dst_region = task.dst_range_of_segment(seg)
            src_region = task.src_range_of_segment(seg)
            for earlier in client.pending.earlier_than(task):
                if earlier.is_finished:
                    continue
                if earlier.src.overlaps(dst_region):
                    hazard = earlier.segments_covering_src(dst_region)
                elif earlier.dst.overlaps(dst_region):
                    hazard = earlier.segments_covering(dst_region)
                elif not service.dispatcher.use_absorption and \
                        earlier.dst.overlaps(src_region):
                    hazard = earlier.segments_covering(src_region)
                else:
                    continue
                yield from self._execute_segments(
                    client, earlier,
                    [s for s in hazard if not earlier.descriptor.is_ready(s)],
                    _depth=_depth + 1)
            spans = resolve_sources(client.pending, task, src_region,
                                    enabled=service.dispatcher.use_absorption)
            nbytes = dst_region.length
            inj = service.faults
            if inj.armed:
                stall = inj.stall_cycles("engine_stall")
                if stall:
                    yield Timeout(stall)
            cycles = int(nbytes / params.avx_bytes_per_cycle) + _AVX_SEGMENT_OVERHEAD
            yield Compute(cycles, tag="copier-copy")
            try:
                self.write_spans(client, task, seg, dst_region, spans)
            except MemoryFault as exc:
                # The range was unmapped after ingest (it passed the
                # security check then): a lifecycle race, not a bug.
                self.completion.retire_efault(client, task, exc)
                return
            except FramePoisonError as exc:
                self.completion.retire_poisoned(client, task, exc)
                return
        if not task.is_finished and task.descriptor.all_ready:
            yield from self.completion.finish_task(client, task)

    # ------------------------------------------------------------ execution

    def has_runnable(self, client):
        if client.pending.runnable_head() is not None:
            return True
        now = self.service.env.now
        return any(t.lazy and t.lazy_deadline is not None and t.lazy_deadline <= now
                   for t in client.pending)

    def next_head(self, client):
        head = client.pending.runnable_head()
        if head is not None:
            return head
        now = self.service.env.now
        for t in client.pending:
            if t.lazy and t.lazy_deadline is not None and t.lazy_deadline <= now:
                return t
        return None

    def execute_plan(self, client, plan):
        service = self.service
        params = service.params
        trace = service.trace
        if trace.active:
            trace.emit(RoundPlanned(service.env.now, client.name, plan.mode,
                                    plan.avx_bytes, plan.dma_bytes,
                                    len(plan.tasks)))
        inj = service.faults
        stats = service.fault_stats
        dma_done = None
        fallback_reason = None
        dma_runs = plan.dma_runs
        if dma_runs:
            # DMA needs physical addresses: walk (or ATCache-hit) the pages
            # of each run before ringing the doorbell (§4.3).  A run whose
            # mapping vanished since ingest (munmap racing the round)
            # EFAULTs its task here and is excluded from the batch.
            translate = 0
            live_runs = []
            for run in dma_runs:
                if run.task.is_finished:
                    continue
                try:
                    cycles, _h, _m = service.atcache.translation_cost(
                        run.task.src.aspace, run.src_va, run.nbytes,
                        contiguous=True)
                    translate += cycles
                    cycles, _h, _m = service.atcache.translation_cost(
                        run.task.dst.aspace, run.dst_va, run.nbytes, write=True,
                        contiguous=True)
                    translate += cycles
                except MemoryFault as exc:
                    self.completion.retire_efault(client, run.task, exc)
                    continue
                live_runs.append(run)
            dma_runs = live_runs
            yield Compute(params.dma_submit_cycles + translate,
                          tag="copier-copy")
        if dma_runs:
            batch = []
            for run in dma_runs:
                batch.append(DMASubtask(
                    run.task.src.aspace, run.src_va,
                    run.task.dst.aspace, run.dst_va, run.nbytes,
                    on_done=self._make_dma_callback(client, run)))
            # Transient submit failures retry with exponential backoff;
            # a persistent failure re-routes the runs to the AVX stream.
            attempts = 0
            backoff = _DMA_RETRY_BACKOFF_CYCLES
            while True:
                try:
                    dma_done = service.dma.submit(batch)
                    if attempts:
                        stats.dma_submit_retries_ok += 1
                    break
                except DMASubmitError:
                    stats.dma_submit_failures += 1
                    attempts += 1
                    if attempts > _MAX_DMA_SUBMIT_RETRIES:
                        stats.dma_submit_exhausted += 1
                        fallback_reason = "dma-submit"
                        if stats.dma_submit_exhausted >= _DMA_QUARANTINE_EPISODES:
                            service.dispatcher.quarantine_dma()
                        break
                    yield Timeout(backoff)
                    backoff *= 2
        for job in plan.avx_jobs:
            if job.task.is_finished or job.task.descriptor.is_ready(job.seg_index):
                continue
            if inj.armed:
                stall = inj.stall_cycles("engine_stall")
                if stall:
                    yield Timeout(stall)
            cycles = int(job.nbytes / params.avx_bytes_per_cycle) \
                + _AVX_SEGMENT_OVERHEAD
            yield Compute(cycles, tag="copier-copy")
            dst_region = job.task.dst_range_of_segment(job.seg_index)
            try:
                self.write_spans(client, job.task, job.seg_index, dst_region,
                                 job.spans)
            except MemoryFault as exc:
                self.completion.retire_efault(client, job.task, exc)
            except FramePoisonError as exc:
                self.completion.retire_poisoned(client, job.task, exc)
        if dma_done is not None:
            try:
                yield WaitEvent(dma_done)
            except DMAAbortError:
                # The device aborted the batch mid-transfer: the aborted
                # subtasks committed nothing, so their segments are simply
                # still not ready and the fallback below re-copies them.
                stats.dma_aborts += 1
                fallback_reason = "dma-abort"
            yield Compute(params.dma_complete_check_cycles, tag="copier-copy")
        if fallback_reason is not None:
            yield from self._fallback_runs(client, dma_runs,
                                           fallback_reason)
        for task in plan.tasks:
            if not task.is_finished and task.descriptor.all_ready:
                yield from self.completion.finish_task(client, task)

    def _fallback_runs(self, client, runs, reason):
        """Re-execute a DMA run's unfinished segments on the AVX stream.

        The device committed nothing for aborted subtasks (and a lost
        doorbell committed nothing at all), so re-copying whole segments
        here can never tear data — segments are only marked ready after
        their bytes land via exactly one engine.
        """
        service = self.service
        params = service.params
        stats = service.fault_stats
        trace = service.trace
        for run in runs:
            redo = [job for job in run.jobs
                    if not run.task.is_finished
                    and not run.task.descriptor.is_ready(job.seg_index)]
            if not redo:
                continue
            nbytes = sum(job.nbytes for job in redo)
            stats.engine_fallbacks += 1
            stats.fallback_bytes += nbytes
            if trace.active:
                trace.emit(EngineFallback(service.env.now, run.task.task_id,
                                          client.name, nbytes, reason))
            for job in redo:
                if run.task.is_finished:
                    break
                cycles = int(job.nbytes / params.avx_bytes_per_cycle) \
                    + _AVX_SEGMENT_OVERHEAD
                yield Compute(cycles, tag="copier-copy")
                dst_region = job.task.dst_range_of_segment(job.seg_index)
                try:
                    self.write_spans(client, job.task, job.seg_index,
                                     dst_region, job.spans)
                except MemoryFault as exc:
                    self.completion.retire_efault(client, job.task, exc)
                    break
                except FramePoisonError as exc:
                    self.completion.retire_poisoned(client, job.task, exc)
                    break

    def _make_dma_callback(self, client, run):
        service = self.service

        def on_done(_subtask):
            if not run.task.is_finished:
                # Run jobs are consecutive segments of one task by
                # construction — retire them with one bitmap update so
                # csync waiters fire once per run, not once per segment.
                run.task.descriptor.mark_range(run.jobs[0].seg_index,
                                               run.jobs[-1].seg_index)
                run.task.dma_used = True
                if run.task.crc_expect is not None:
                    # Fold the intended bytes from the (pinned, still
                    # pristine) source — a device that corrupted the
                    # destination cannot also doctor this checksum.
                    for job in run.jobs:
                        src = run.task.src_range_of_segment(job.seg_index)
                        crc = zlib.crc32(bytes(src.aspace.read(
                            src.start, src.length))) & 0xFFFFFFFF
                        run.task.crc_expect = fold_segment_crc(
                            run.task.crc_expect, job.seg_index, crc)
            client.stats.bytes_copied += run.nbytes
            service.scheduler.charge(client, run.nbytes)
            trace = service.trace
            if trace.active:
                trace.emit(DmaCompleted(service.env.now, run.task.task_id,
                                        run.nbytes, len(run.jobs)))
        return on_done

    def write_spans(self, client, task, seg_index, dst_region, spans):
        service = self.service
        dst_as = task.dst.aspace
        inj = service.faults
        if inj.armed and inj.fire("frame_poison"):
            # Uncorrectable memory error under the copy: loud, typed,
            # nothing written — the caller retires the task poisoned.
            raise FramePoisonError(dst_region.start)
        torn = inj.armed and inj.fire("engine_torn_write")
        if len(spans) == 1:
            # Common case: one resolved span — move it run-to-run with no
            # intermediate buffer (snapshot semantics are preserved by
            # copy_range's alias check).
            span = spans[0]
            if task.crc_expect is not None:
                task.crc_expect = fold_segment_crc(
                    task.crc_expect, seg_index,
                    zlib.crc32(bytes(span.aspace.read(
                        span.va, span.nbytes))) & 0xFFFFFFFF)
            if torn:
                # Silent torn write: half the segment lands, the engine
                # still reports success below.  Only the E2E CRC at
                # retirement can tell.
                copy_range(span.aspace, span.va, dst_as, dst_region.start,
                           span.nbytes // 2)
            else:
                copy_range(span.aspace, span.va, dst_as, dst_region.start,
                           span.nbytes)
            absorbed = span.nbytes if span.absorbed else 0
        else:
            data = bytearray(dst_region.length)
            view = memoryview(data)
            pos = 0
            absorbed = 0
            for span in spans:
                span.aspace.read_into(span.va, view[pos : pos + span.nbytes])
                pos += span.nbytes
                if span.absorbed:
                    absorbed += span.nbytes
            if task.crc_expect is not None:
                task.crc_expect = fold_segment_crc(
                    task.crc_expect, seg_index,
                    zlib.crc32(data) & 0xFFFFFFFF)
            if torn:
                dst_as.write(dst_region.start,
                             bytes(view[:dst_region.length // 2]))
            else:
                dst_as.write(dst_region.start, data)
        task.descriptor.mark(seg_index)
        task.absorbed_bytes += absorbed
        client.stats.bytes_copied += dst_region.length
        client.stats.bytes_absorbed += absorbed
        service.scheduler.charge(client, dst_region.length)
        if task.started_at is None:
            task.started_at = service.env.now
        trace = service.trace
        if trace.active:
            trace.emit(SegmentExecuted(service.env.now, task.task_id,
                                       seg_index, dst_region.length, "avx",
                                       absorbed))
